#pragma once

// Shared plumbing for the figure/table reproduction binaries: route a
// benchmark with both routers from one shared SABRE-style initial mapping
// (the paper's protocol) and report duration-weighted depths.

#include <iostream>
#include <string>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/verify.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::bench {

/// Weighted depths of one benchmark under both routers plus bookkeeping.
struct Comparison {
  arch::Duration depth_codar = 0;
  arch::Duration depth_sabre = 0;
  std::size_t swaps_codar = 0;
  std::size_t swaps_sabre = 0;

  double speedup() const {
    return depth_codar == 0
               ? 1.0
               : static_cast<double>(depth_sabre) /
                     static_cast<double>(depth_codar);
  }
};

/// Routes `circuit` on `device` with CODAR and SABRE from one shared
/// reverse-traversal initial mapping (seeded deterministically), verifies
/// both results when the circuit is small enough for the structural check
/// to be cheap, and returns the weighted depths.
inline Comparison compare_routers(
    const ir::Circuit& circuit, const arch::Device& device,
    const core::CodarConfig& codar_config = {},
    int initial_mapping_rounds = 2, std::uint64_t seed = 17,
    std::size_t verify_gate_limit = 12000) {
  const sabre::SabreRouter sabre(device);
  const core::CodarRouter codar(device, codar_config);
  const layout::Layout initial =
      sabre.initial_mapping(circuit, initial_mapping_rounds, seed);

  const core::RoutingResult r_codar = codar.route(circuit, initial);
  const core::RoutingResult r_sabre = sabre.route(circuit, initial);

  if (circuit.size() <= verify_gate_limit) {
    const auto v1 = core::verify_routing(circuit, r_codar, device.graph);
    const auto v2 = core::verify_routing(circuit, r_sabre, device.graph);
    if (!v1.valid || !v2.valid) {
      throw std::runtime_error("routing verification failed on " +
                               circuit.name() + ": " +
                               (v1.valid ? v2.reason : v1.reason));
    }
  }

  Comparison cmp;
  cmp.depth_codar =
      schedule::weighted_depth(r_codar.circuit, device.durations);
  cmp.depth_sabre =
      schedule::weighted_depth(r_sabre.circuit, device.durations);
  cmp.swaps_codar = r_codar.stats.swaps_inserted;
  cmp.swaps_sabre = r_sabre.stats.swaps_inserted;
  return cmp;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace codar::bench

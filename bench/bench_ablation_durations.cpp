// Ablation over the gate-duration spread (the maQAM's configurable τ):
// sweeps the 2-qubit/1-qubit duration ratio and runs the Table I
// technology presets, reporting CODAR-vs-SABRE speedup on a 4x4 lattice.
// Expected shape: duration awareness pays more as the spread grows
// (superconducting ~2x, ion trap ~12x); with uniform durations the gap
// narrows to pure context/commutativity gains.

#include <cmath>
#include <iostream>

#include "codar/common/table.hpp"
#include "codar/workloads/generators.hpp"
#include "support/harness.hpp"

namespace {

using namespace codar;

double geomean_speedup(const std::vector<ir::Circuit>& circuits,
                       const arch::Device& dev) {
  double log_sum = 0.0;
  for (const ir::Circuit& c : circuits) {
    log_sum += std::log(bench::compare_routers(c, dev).speedup());
    std::cerr << "." << std::flush;
  }
  return std::exp(log_sum / static_cast<double>(circuits.size()));
}

}  // namespace

int main() {
  bench::print_header("Ablation - duration-ratio sweep (grid 4x4)");

  const std::vector<ir::Circuit> circuits = {
      workloads::qft(10),
      workloads::bernstein_vazirani(12, 0xFFF),
      workloads::draper_adder(6),
      workloads::qaoa_maxcut(12, 2, 3),
      workloads::random_circuit(14, 1200, 0.5, 5),
  };

  Table sweep({"2q/1q duration ratio", "SWAP cycles", "geomean speedup"});
  for (const int ratio : {1, 2, 3, 4, 8, 12}) {
    arch::DurationMap durations;
    durations.set_all_two_qubit(ratio);
    durations.set(ir::GateKind::kSwap, 3 * ratio);
    const arch::Device dev = arch::grid(4, 4, durations);
    sweep.add_row({std::to_string(ratio), std::to_string(3 * ratio),
                   fmt_fixed(geomean_speedup(circuits, dev), 3)});
  }
  std::cerr << "\n";
  sweep.print(std::cout);

  std::cout << "\n--- Technology presets (Table I) ---\n\n";
  Table presets({"technology preset", "geomean speedup"});
  const std::pair<const char*, arch::DurationMap> techs[] = {
      {"superconducting (1q=1, 2q=2)", arch::DurationMap::superconducting()},
      {"ion trap (1q=1, 2q=12)", arch::DurationMap::ion_trap()},
      {"neutral atom (1q=2, 2q=1)", arch::DurationMap::neutral_atom()},
      {"uniform (all 1)", arch::DurationMap::uniform()},
  };
  for (const auto& [name, durations] : techs) {
    const arch::Device dev = arch::grid(4, 4, durations);
    presets.add_row({name, fmt_fixed(geomean_speedup(circuits, dev), 3)});
  }
  std::cerr << "\n";
  presets.print(std::cout);
  return 0;
}

// Reproduces Fig. 1: the impact of program context on SWAP selection.
// Program: "T q[2]; CX q[0],q[3];" on the 2x2 coupling map (Q0-Q1, Q0-Q2,
// Q1-Q3, Q2-Q3). The four candidate SWAPs are what-if analyzed: SWAPs
// touching Q2 conflict with the in-flight T gate and start later (the
// paper's Fig. 1c); SWAPs avoiding it run in parallel (Fig. 1d). CODAR's
// qubit lock makes it pick a non-conflicting SWAP.

#include <iostream>

#include "codar/common/table.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"
#include "support/harness.hpp"

int main() {
  using namespace codar;
  bench::print_header("Fig. 1 - program context and SWAP selection");

  const arch::Device dev = arch::grid(2, 2);
  std::cout << "Coupling: Q0-Q1, Q0-Q2, Q1-Q3, Q2-Q3 (2x2 lattice)\n"
            << "Program:  T q[2]; CX q[0],q[3];  (identity initial "
               "mapping)\n\n";

  // What-if: each of the four candidate SWAPs, spelled out as a full
  // transformed circuit, scheduled with real durations (T=1, CX=2,
  // SWAP=6).
  struct Candidate {
    ir::Qubit a, b;
    bool conflicts_with_t;
  };
  const Candidate candidates[] = {
      {0, 1, false}, {0, 2, true}, {1, 3, false}, {2, 3, true}};

  Table what_if({"SWAP", "conflicts with T q[2]", "SWAP start", "CX start",
                 "total time", "paper panel"});
  for (const Candidate& cand : candidates) {
    ir::Circuit variant(4);
    variant.t(2);
    variant.swap(cand.a, cand.b);
    // After the SWAP, q0/q3 sit on an adjacent pair; identify it.
    layout::Layout pi(4, 4);
    pi.swap_physical(cand.a, cand.b);
    variant.cx(pi.physical(0), pi.physical(3));
    const schedule::Schedule sched =
        schedule::asap_schedule(variant, dev.durations);
    what_if.add_row({"SWAP Q" + std::to_string(cand.a) + ",Q" +
                         std::to_string(cand.b),
                     cand.conflicts_with_t ? "yes" : "no",
                     std::to_string(sched.gates[1].start),
                     std::to_string(sched.gates[2].start),
                     std::to_string(sched.makespan),
                     cand.conflicts_with_t ? "(c) serialized"
                                           : "(d) parallel"});
  }
  what_if.print(std::cout);

  // CODAR itself.
  ir::Circuit program(4, "fig1");
  program.t(2);
  program.cx(0, 3);
  const core::CodarRouter codar(dev);
  const core::RoutingResult result = codar.route(program);
  std::cout << "\nCODAR's choice:\n";
  for (const ir::Gate& g : result.circuit.gates()) {
    std::cout << "  " << g.to_string() << "\n";
  }
  std::cout << "weighted depth: "
            << schedule::weighted_depth(result.circuit, dev.durations)
            << " cycles (minimum over the four candidates above)\n";
  return 0;
}

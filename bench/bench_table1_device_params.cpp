// Reprints Table I: the survey of NISQ device parameters (available gates,
// fidelities, gate times, coherence times) that motivates the maQAM's
// configurable gate-duration map, plus the duration presets each
// technology induces and the coupling summaries of the modeled devices.

#include <iostream>

#include "codar/arch/device.hpp"
#include "codar/arch/device_parameters.hpp"
#include "codar/common/table.hpp"

int main() {
  using namespace codar;
  using arch::DurationMap;
  using ir::GateKind;

  std::cout << "\n=== Table I - parameter survey of quantum computing "
               "devices ===\n\n";
  Table survey({"device", "technology", "1q gates", "2q gates", "F(1q)",
                "F(2q)", "F(readout)", "t(1q) us", "t(2q) us", "T1 us",
                "T2 us", "2q/1q cycles"});
  for (const arch::DeviceParameters& p : arch::table1_parameters()) {
    auto time_str = [](double v) {
      return v < 0 ? std::string("~inf") : fmt_fixed(v, 2);
    };
    survey.add_row({p.device, p.technology, p.one_qubit_gates,
                    p.two_qubit_gates, fmt_fixed(p.fidelity_1q, 4),
                    fmt_fixed(p.fidelity_2q, 3),
                    fmt_fixed(p.fidelity_readout, 3), fmt_fixed(p.time_1q_us, 2),
                    fmt_fixed(p.time_2q_us, 2), time_str(p.t1_us),
                    time_str(p.t2_us),
                    std::to_string(arch::duration_ratio_cycles(p))});
  }
  survey.print(std::cout);

  std::cout << "\n--- Induced gate-duration presets (cycles) ---\n\n";
  Table presets({"preset", "1q", "2q", "SWAP", "measure"});
  const std::pair<const char*, DurationMap> maps[] = {
      {"superconducting", DurationMap::superconducting()},
      {"ion trap", DurationMap::ion_trap()},
      {"neutral atom", DurationMap::neutral_atom()},
      {"uniform (ablation)", DurationMap::uniform()},
  };
  for (const auto& [name, m] : maps) {
    presets.add_row({name, std::to_string(m.of(GateKind::kH)),
                     std::to_string(m.of(GateKind::kCX)),
                     std::to_string(m.of(GateKind::kSwap)),
                     std::to_string(m.of(GateKind::kMeasure))});
  }
  presets.print(std::cout);

  std::cout << "\n--- Modeled coupling architectures ---\n\n";
  Table archs({"architecture", "qubits", "edges", "connected", "lattice"});
  for (const arch::Device& d : arch::paper_architectures()) {
    archs.add_row({d.name, std::to_string(d.graph.num_qubits()),
                   std::to_string(d.graph.num_edges()),
                   d.graph.is_fully_connected() ? "yes" : "no",
                   d.graph.has_coordinates() ? "yes" : "no"});
  }
  archs.print(std::cout);
  return 0;
}

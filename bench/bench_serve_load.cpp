// Load generator for the socket-transport `codar serve`: spins up an
// in-process TCP server, then drives it with concurrent pipelined NDJSON
// clients over four request mixes — sequential (each client walks the
// 71-benchmark suite in order), uniform (random benchmark per request),
// zipf (skewed toward the head of the suite, the classic hot-key cache
// shape) and warm_start (the sequential mix against a server restarted on
// a populated --cache-dir, so every request is answered by the persistent
// tier without routing). A deterministic slice of every mix ships an
// inline calibrated device object instead of the server's default device
// spec, so the content-addressed device path is on the measured path too.
//
//   bench_serve_load [OUTPUT.json] [--clients N] [--requests N]
//                    [--seed S] [--threads N]
//
// Emitted per mix: request/routed/error, cache-hit/miss and disk-hit
// counters — which are exact under concurrency (single-flight: every
// distinct (circuit, device, options) key routes — and probes disk —
// exactly once, so the counts depend only on the seeded request
// sequences, never on scheduling) and therefore CI-gated via
// BENCH_serve.json — plus throughput and p50/p95/p99 request latency,
// which are machine-dependent and stay informational. The RNG is raw
// mt19937_64 arithmetic (no std:: distributions, whose mappings vary by
// standard library) so the gated counts are identical on every platform.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/arch/device_json.hpp"
#include "codar/common/json.hpp"
#include "codar/service/server.hpp"
#include "codar/service/transport.hpp"
#include "codar/workloads/suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using codar::common::Json;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A blocking NDJSON client over one transport connection.
class NdjsonClient {
 public:
  explicit NdjsonClient(const std::string& endpoint)
      : conn_(codar::service::connect_endpoint(endpoint,
                                               /*timeout_ms=*/10000)) {}

  bool send(const std::string& line) { return conn_->write_all(line + "\n"); }

  bool read_line(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[64 * 1024];
      std::size_t got = 0;
      if (conn_->read_some(chunk, sizeof chunk, &got,
                           /*timeout_ms=*/120000) !=
          codar::service::ReadStatus::kData) {
        return false;
      }
      buffer_.append(chunk, got);
    }
  }

 private:
  std::unique_ptr<codar::service::Connection> conn_;
  std::string buffer_;
};

enum class Mix { kSequential, kUniform, kZipf, kWarmStart };

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kSequential: return "sequential";
    case Mix::kUniform: return "uniform";
    case Mix::kZipf: return "zipf";
    case Mix::kWarmStart: return "warm_start";
  }
  return "?";
}

/// Zipf(s=1) cumulative distribution over ranks 0..n-1. s is fixed at 1
/// on purpose: the weights are plain divisions (correctly rounded IEEE
/// ops), so the table — and with it the gated request mix — is
/// bit-identical across platforms, which pow() would not guarantee.
std::vector<double> zipf_cdf(std::size_t n) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) total += 1.0 / static_cast<double>(k + 1);
  double cum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    cum += 1.0 / static_cast<double>(k + 1) / total;
    cdf[k] = cum;
  }
  cdf[n - 1] = 1.0;  // guard against rounding shortfall
  return cdf;
}

/// Uniform double in [0,1) from raw engine output — top 53 bits.
double unit_double(std::uint64_t raw) {
  return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

struct ClientResult {
  std::vector<double> latencies_ms;
  std::size_t errors = 0;
  bool transport_ok = true;
};

struct MixRow {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t routed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t cache_entries = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(q * sorted.size()));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_serve.json";
  int clients = 8;
  int requests = 400;     // per client, per mix
  std::uint64_t seed = 1;
  int threads = 0;        // server worker pool; 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      clients = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      output = arg;
    }
  }

  const std::vector<codar::workloads::BenchmarkSpec> suite =
      codar::workloads::benchmark_suite();
  const std::vector<double> cdf = zipf_cdf(suite.size());

  // Pre-render the request line bodies once: {"suite_name": ...} for the
  // default device, plus three recalibrated Enfield variants shipped as
  // inline device objects (distinct fingerprints, so distinct cache keys
  // — the inline-device path does real routing work, not just lookups).
  auto one_line = [](std::string text) {
    for (char& c : text) {
      if (c == '\n') c = ' ';
    }
    return text;
  };
  std::vector<std::string> inline_devices;
  for (int v = 0; v < 3; ++v) {
    codar::arch::Device dev = codar::arch::enfield_6x6();
    dev.calibration.set_duration_2q(0, 1,
                                    static_cast<codar::arch::Duration>(12 + 4 * v));
    inline_devices.push_back(one_line(codar::arch::device_to_json(dev)));
  }

  std::ostringstream rows_json;
  double total_wall_ms = 0.0;
  std::uint64_t total_requests = 0;
  bool healthy = true;

  // Drives `clients` concurrent pipelined connections against `handle`
  // with mix `mix`; `m` seeds the per-mix RNG stream. The warm_start mix
  // replays the sequential request sequence exactly (same seed index), so
  // the persistent tier holds every key the measured pass asks for.
  auto drive_load = [&](codar::service::ServerHandle& handle, Mix mix,
                        std::size_t m,
                        std::vector<ClientResult>& per_client) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, mix, m, c] {
        ClientResult& out = per_client[static_cast<std::size_t>(c)];
        NdjsonClient client(handle.endpoint());
        std::mt19937_64 rng(seed * 1000003ULL + m * 1009ULL +
                            static_cast<std::uint64_t>(c));
        std::vector<Clock::time_point> sent(
            static_cast<std::size_t>(requests));
        out.latencies_ms.reserve(static_cast<std::size_t>(requests));
        constexpr int kWindow = 32;  // below --max-inflight: no parking
        int next = 0, done = 0;
        while (done < requests) {
          while (next < requests && next - done < kWindow) {
            std::size_t idx = 0;
            switch (mix) {
              case Mix::kSequential:
              case Mix::kWarmStart:
                idx = static_cast<std::size_t>(next) % suite.size();
                break;
              case Mix::kUniform:
                idx = static_cast<std::size_t>(rng() % suite.size());
                break;
              case Mix::kZipf: {
                const double u = unit_double(rng());
                idx = static_cast<std::size_t>(
                    std::upper_bound(cdf.begin(), cdf.end(), u) -
                    cdf.begin());
                idx = std::min(idx, suite.size() - 1);
                break;
              }
            }
            std::string line = "{\"id\": " + std::to_string(next) +
                               ", \"suite_name\": " +
                               codar::common::json_quote(suite[idx].name);
            // Every 8th request ships an inline calibrated device. The
            // variant choice burns one rng() draw in the random mixes so
            // the benchmark sequence stays aligned with it.
            if (next % 8 == 5) {
              const std::size_t v =
                  mix == Mix::kUniform || mix == Mix::kZipf
                      ? static_cast<std::size_t>(
                            rng() % inline_devices.size())
                      : (static_cast<std::size_t>(next) / 8) %
                            inline_devices.size();
              line += ", \"device\": " + inline_devices[v];
            }
            line += "}";
            sent[static_cast<std::size_t>(next)] = Clock::now();
            if (!client.send(line)) {
              out.transport_ok = false;
              return;
            }
            ++next;
          }
          std::string response;
          if (!client.read_line(&response)) {
            out.transport_ok = false;
            return;
          }
          const Clock::time_point now = Clock::now();
          try {
            const Json doc = Json::parse(response);
            const Json* id = doc.find("id");
            const std::size_t req_idx = static_cast<std::size_t>(
                std::strtoull(id->raw_number().c_str(), nullptr, 10));
            out.latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(now -
                                                          sent[req_idx])
                    .count());
            if (doc.find("error") != nullptr) ++out.errors;
          } catch (const std::exception&) {
            ++out.errors;
          }
          ++done;
        }
      });
    }
    for (std::thread& t : workers) t.join();
  };

  const Mix mixes[] = {Mix::kSequential, Mix::kUniform, Mix::kZipf,
                       Mix::kWarmStart};
  constexpr std::size_t kMixCount = sizeof mixes / sizeof mixes[0];
  // The warm_start mix replays the sequential stream, so it reuses the
  // sequential RNG index — the request sequences must match exactly.
  const std::size_t mix_seed_index[] = {0, 1, 2, 0};
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("codar_serve_bench_cache_" + std::to_string(::getpid())))
          .string();
  bool first_row = true;
  for (std::size_t m = 0; m < kMixCount; ++m) {
    const Mix mix = mixes[m];

    // Every mix gets a fresh server (and so a cold memory cache): the
    // gated counters then describe this mix alone.
    codar::service::ServeOptions sopts;
    sopts.defaults.device = "enfield";
    sopts.defaults.threads = threads;
    sopts.listen = "tcp:127.0.0.1:0";
    if (mix == Mix::kWarmStart) {
      // Populate pass (unmeasured): a server on a fresh --cache-dir
      // routes the sequential mix and persists every report, then stops —
      // the hard-stop-and-restart shape the persistent tier exists for.
      std::filesystem::remove_all(cache_dir);
      sopts.cache_dir = cache_dir;
      {
        const auto populate = codar::service::start_serve(sopts);
        std::vector<ClientResult> ignored(
            static_cast<std::size_t>(clients));
        drive_load(*populate, mix, mix_seed_index[m], ignored);
        for (const ClientResult& r : ignored) {
          if (!r.transport_ok || r.errors != 0) healthy = false;
        }
        populate->shutdown();
        if (populate->join() != 0) healthy = false;
      }
    }
    const auto handle = codar::service::start_serve(sopts);

    std::vector<ClientResult> per_client(
        static_cast<std::size_t>(clients));
    const Clock::time_point wall_start = Clock::now();
    drive_load(*handle, mix, mix_seed_index[m], per_client);
    const double wall_ms = ms_since(wall_start);

    MixRow row;
    row.name = mix_name(mix);
    row.wall_ms = wall_ms;
    std::vector<double> latencies;
    for (const ClientResult& r : per_client) {
      if (!r.transport_ok) healthy = false;
      row.errors += r.errors;
      latencies.insert(latencies.end(), r.latencies_ms.begin(),
                       r.latencies_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    row.p50_ms = percentile(latencies, 0.50);
    row.p95_ms = percentile(latencies, 0.95);
    row.p99_ms = percentile(latencies, 0.99);
    row.throughput_rps =
        wall_ms > 0.0 ? static_cast<double>(latencies.size()) /
                            (wall_ms / 1000.0)
                      : 0.0;

    // The server-side counters are the gated truth; client-side errors
    // cross-check them.
    {
      NdjsonClient probe(handle->endpoint());
      std::string line;
      if (!probe.send(R"({"id": 0, "cmd": "stats"})") ||
          !probe.read_line(&line)) {
        healthy = false;
      } else {
        const Json stats = Json::parse(line);
        auto count = [&stats](const char* field) {
          return static_cast<std::uint64_t>(stats.find(field)->as_number());
        };
        row.requests = count("requests");
        row.routed = count("routed");
        row.errors = count("errors");
        const Json* cache = stats.find("cache");
        row.cache_hits =
            static_cast<std::uint64_t>(cache->find("hits")->as_number());
        row.cache_misses =
            static_cast<std::uint64_t>(cache->find("misses")->as_number());
        row.disk_hits =
            static_cast<std::uint64_t>(cache->find("disk_hits")->as_number());
        row.cache_entries =
            static_cast<std::uint64_t>(cache->find("entries")->as_number());
      }
    }
    handle->shutdown();
    if (handle->join() != 0) healthy = false;

    std::cerr << row.name << ": " << row.requests << " requests, "
              << row.routed << " routed, " << row.cache_hits << " hits, "
              << static_cast<std::uint64_t>(row.throughput_rps)
              << " req/s, p50 " << row.p50_ms << " ms, p99 " << row.p99_ms
              << " ms\n";

    total_wall_ms += row.wall_ms;
    total_requests += row.requests;
    if (!first_row) rows_json << ",";
    first_row = false;
    rows_json << "\n  {\"name\": \"" << row.name
              << "\", \"requests\": " << row.requests
              << ", \"routed\": " << row.routed
              << ", \"errors\": " << row.errors
              << ", \"cache_hits\": " << row.cache_hits
              << ", \"cache_misses\": " << row.cache_misses
              << ", \"disk_hits\": " << row.disk_hits
              << ", \"cache_entries\": " << row.cache_entries
              << ", \"throughput_rps\": " << row.throughput_rps
              << ", \"p50_ms\": " << row.p50_ms
              << ", \"p95_ms\": " << row.p95_ms
              << ", \"p99_ms\": " << row.p99_ms
              << ", \"wall_ms\": " << row.wall_ms << "}";
  }
  {
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
  }

  std::ostringstream json;
  json << "{\"clients\": " << clients
       << ", \"requests_per_client\": " << requests << ", \"seed\": " << seed
       << ",\n \"gated_fields\": [\"requests\", \"routed\", \"errors\", "
          "\"cache_hits\", \"cache_misses\", \"disk_hits\"],\n \"results\": ["
       << rows_json.str() << "\n ],\n \"summary\": {\"mixes\": 4"
       << ", \"total_requests\": " << total_requests
       << ", \"total_wall_ms\": " << total_wall_ms << "}}\n";

  std::ofstream file(output);
  if (!file) {
    std::cerr << "error: cannot write " << output << "\n";
    return 1;
  }
  file << json.str();
  std::cout << total_requests << " requests across 4 mixes in "
            << total_wall_ms << " ms -> " << output << "\n";
  return healthy ? 0 : 1;
}

// Three-way baseline comparison: CODAR vs SABRE (Li et al.) vs the
// A*-layered mapper (Zulehner et al.) — the two heuristic families the
// paper's related-work section positions CODAR against. All three share
// one SABRE reverse-traversal initial mapping; the metric is the paper's
// duration-weighted depth plus SWAP counts and compile time.

#include <chrono>
#include <cmath>
#include <iostream>

#include "codar/astar/astar_router.hpp"
#include "codar/common/table.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

int main() {
  using namespace codar;
  using Clock = std::chrono::steady_clock;
  bench::print_header(
      "Baselines - CODAR vs SABRE vs A*-layers (IBM Q20 Tokyo)");

  const arch::Device dev = arch::ibm_q20_tokyo();
  const sabre::SabreRouter sabre(dev);
  const core::CodarRouter codar(dev);
  const astar::AstarRouter astar_router(dev);

  Table table({"benchmark", "depth CODAR", "depth SABRE", "depth A*",
               "swaps C/S/A", "speedup vs SABRE", "speedup vs A*"});
  double log_vs_sabre = 0.0, log_vs_astar = 0.0;
  std::int64_t ms_codar = 0, ms_sabre = 0, ms_astar = 0;
  int count = 0;

  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    if (spec.circuit.num_qubits() > 20) continue;
    if (spec.circuit.size() > 2000 || spec.circuit.size() < 20) continue;
    const layout::Layout initial = sabre.initial_mapping(spec.circuit, 2, 17);

    auto timed = [&](auto&& router, std::int64_t& ms_total) {
      const auto t0 = Clock::now();
      auto result = router.route(spec.circuit, initial);
      const auto t1 = Clock::now();
      ms_total += std::chrono::duration_cast<std::chrono::milliseconds>(
                      t1 - t0)
                      .count();
      const auto check =
          core::verify_routing(spec.circuit, result, dev.graph);
      if (!check.valid) throw std::runtime_error(check.reason);
      return result;
    };
    const auto r_codar = timed(codar, ms_codar);
    const auto r_sabre = timed(sabre, ms_sabre);
    const auto r_astar = timed(astar_router, ms_astar);

    const auto d_codar =
        schedule::weighted_depth(r_codar.circuit, dev.durations);
    const auto d_sabre =
        schedule::weighted_depth(r_sabre.circuit, dev.durations);
    const auto d_astar =
        schedule::weighted_depth(r_astar.circuit, dev.durations);
    const double s_sabre =
        static_cast<double>(d_sabre) / static_cast<double>(d_codar);
    const double s_astar =
        static_cast<double>(d_astar) / static_cast<double>(d_codar);
    table.add_row({spec.name, std::to_string(d_codar),
                   std::to_string(d_sabre), std::to_string(d_astar),
                   std::to_string(r_codar.stats.swaps_inserted) + "/" +
                       std::to_string(r_sabre.stats.swaps_inserted) + "/" +
                       std::to_string(r_astar.stats.swaps_inserted),
                   fmt_fixed(s_sabre, 3), fmt_fixed(s_astar, 3)});
    log_vs_sabre += std::log(s_sabre);
    log_vs_astar += std::log(s_astar);
    ++count;
    std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  table.print(std::cout);

  std::cout << "\nbenchmarks: " << count
            << "\ngeomean speedup vs SABRE:     "
            << fmt_fixed(std::exp(log_vs_sabre / count), 3)
            << "\ngeomean speedup vs A*-layers: "
            << fmt_fixed(std::exp(log_vs_astar / count), 3)
            << "\ntotal compile time: CODAR " << ms_codar << " ms, SABRE "
            << ms_sabre << " ms, A* " << ms_astar << " ms\n";
  return 0;
}

// Router throughput over the built-in 71-benchmark suite: pure route()
// wall time per benchmark (initial mapping excluded), emitted as JSON so CI
// can archive the perf trajectory (BENCH_router.json). Usage:
//
//   bench_router_throughput [OUTPUT.json] [--repeat N]
//
// Every benchmark is routed on the 36-qubit Enfield lattice (the only
// paper device that fits the 36-qubit programs) from the shared SABRE
// reverse-traversal initial mapping; wall_ms is the minimum over N repeats
// (default 3) so one-off scheduler noise doesn't poison the trajectory.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/workloads/suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Row {
  std::string name;
  int qubits = 0;
  std::size_t gates = 0;
  double wall_ms = 0.0;
  std::size_t swaps = 0;
  long long makespan = 0;
  std::size_t cycles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_router.json";
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else {
      output = arg;
    }
  }

  const codar::arch::Device device = codar::arch::enfield_6x6();
  const codar::core::CodarRouter router(device);
  const codar::sabre::SabreRouter mapper(device);
  const std::vector<codar::workloads::BenchmarkSpec> suite =
      codar::workloads::benchmark_suite();

  std::vector<Row> rows;
  rows.reserve(suite.size());
  double total_ms = 0.0;
  std::size_t total_swaps = 0;

  for (const codar::workloads::BenchmarkSpec& spec : suite) {
    const codar::layout::Layout initial =
        mapper.initial_mapping(spec.circuit, /*rounds=*/2, /*seed=*/17);
    Row row;
    row.name = spec.name;
    row.qubits = spec.circuit.used_qubit_count();
    row.gates = spec.circuit.size();
    row.wall_ms = -1.0;
    for (int r = 0; r < repeat; ++r) {
      const Clock::time_point start = Clock::now();
      const codar::core::RoutingResult result =
          router.route(spec.circuit, initial);
      const double elapsed = ms_since(start);
      if (row.wall_ms < 0.0 || elapsed < row.wall_ms) row.wall_ms = elapsed;
      row.swaps = result.stats.swaps_inserted;
      row.makespan = static_cast<long long>(result.stats.router_makespan);
      row.cycles = result.stats.cycles_simulated;
    }
    total_ms += row.wall_ms;
    total_swaps += row.swaps;
    std::cerr << row.name << ": " << row.wall_ms << " ms, " << row.swaps
              << " swaps\n";
    rows.push_back(std::move(row));
  }

  std::ostringstream json;
  json << "{\"device\": \"" << device.name << "\", \"repeat\": " << repeat
       << ",\n \"results\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i > 0) json << ",";
    json << "\n  {\"name\": \"" << r.name << "\", \"qubits\": " << r.qubits
         << ", \"gates\": " << r.gates << ", \"wall_ms\": " << r.wall_ms
         << ", \"swaps\": " << r.swaps << ", \"makespan\": " << r.makespan
         << ", \"cycles\": " << r.cycles << "}";
  }
  json << "\n ],\n \"summary\": {\"benchmarks\": " << rows.size()
       << ", \"total_wall_ms\": " << total_ms
       << ", \"total_swaps\": " << total_swaps << "}}\n";

  std::ofstream file(output);
  if (!file) {
    std::cerr << "error: cannot write " << output << "\n";
    return 1;
  }
  file << json.str();
  std::cout << "suite routed in " << total_ms << " ms (min-of-" << repeat
            << " per benchmark) -> " << output << "\n";
  return 0;
}

// CF-window ablation: CODAR caps its commutative-front scan at
// `front_window` pending gates to bound per-cycle cost on 30k-gate
// circuits (DESIGN.md §3.2). This bench sweeps the cap and reports routed
// quality (weighted depth) and compile time, showing the default (150) is
// on the flat part of the quality curve.

#include <chrono>
#include <cmath>
#include <iostream>

#include "codar/common/table.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

namespace {

using namespace codar;
using Clock = std::chrono::steady_clock;

struct SweepPoint {
  double geomean_depth_ratio = 0.0;
  std::int64_t compile_ms = 0;
};

SweepPoint run_window(const arch::Device& dev,
                      const std::vector<workloads::BenchmarkSpec>& slice,
                      const std::vector<layout::Layout>& initials,
                      const std::vector<arch::Duration>& reference,
                      int window) {
  core::CodarConfig cfg;
  cfg.front_window = window;
  const core::CodarRouter codar(dev, cfg);
  SweepPoint point;
  double log_sum = 0.0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const auto t0 = Clock::now();
    const auto result = codar.route(slice[i].circuit, initials[i]);
    const auto t1 = Clock::now();
    point.compile_ms +=
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
            .count();
    const auto depth =
        schedule::weighted_depth(result.circuit, dev.durations);
    log_sum += std::log(static_cast<double>(depth) /
                        static_cast<double>(reference[i]));
    std::cerr << "." << std::flush;
  }
  point.geomean_depth_ratio =
      std::exp(log_sum / static_cast<double>(slice.size()));
  return point;
}

}  // namespace

int main() {
  bench::print_header("Ablation - CF scan window (IBM Q20 Tokyo)");

  const arch::Device dev = arch::ibm_q20_tokyo();
  const sabre::SabreRouter sabre(dev);

  const std::vector<std::string> picks = {"qft_16",        "draper_8",
                                          "qaoa_16_3",     "random_14_1500",
                                          "random_16_4000", "grover_8"};
  std::vector<workloads::BenchmarkSpec> slice;
  for (const auto& spec : workloads::benchmark_suite()) {
    for (const auto& want : picks) {
      if (spec.name == want) slice.push_back(spec);
    }
  }
  std::vector<layout::Layout> initials;
  initials.reserve(slice.size());
  for (const auto& spec : slice) {
    initials.push_back(sabre.initial_mapping(spec.circuit, 2, 17));
  }

  // Reference: the default window.
  std::vector<arch::Duration> reference;
  {
    const core::CodarRouter codar(dev);  // front_window = 150
    for (std::size_t i = 0; i < slice.size(); ++i) {
      reference.push_back(schedule::weighted_depth(
          codar.route(slice[i].circuit, initials[i]).circuit,
          dev.durations));
    }
  }

  Table table({"front_window", "geomean depth vs w=150", "compile time ms"});
  for (const int window : {1, 4, 16, 64, 150, 512, 0 /* unbounded */}) {
    const SweepPoint point =
        run_window(dev, slice, initials, reference, window);
    table.add_row({window == 0 ? "unbounded" : std::to_string(window),
                   fmt_fixed(point.geomean_depth_ratio, 3),
                   std::to_string(point.compile_ms)});
  }
  std::cerr << "\n";
  table.print(std::cout);
  std::cout << "\nwindow=1 degenerates to a strict in-order front (no "
               "look-ahead); quality should flatten well before the "
               "unbounded scan.\n";
  return 0;
}

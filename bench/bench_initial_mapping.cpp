// Initial-mapping ablation. The paper: "Initial mapping has been proved to
// be significant for the qubit mapping problem" — its evaluation feeds
// both routers the SABRE reverse-traversal mapping. This bench quantifies
// that choice: CODAR's weighted depth under five initial-mapping
// strategies across a suite slice on IBM Q20 Tokyo.

#include <cmath>
#include <functional>
#include <iostream>

#include "codar/common/table.hpp"
#include "codar/layout/initial_mapping.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

int main() {
  using namespace codar;
  bench::print_header("Initial-mapping strategies (CODAR on IBM Q20 Tokyo)");

  const arch::Device dev = arch::ibm_q20_tokyo();
  const core::CodarRouter codar(dev);
  const sabre::SabreRouter sabre(dev);

  const std::vector<std::string> picks = {
      "qft_10",  "bv_12",      "wstate_13",      "draper_5",
      "qaoa_12_3", "ansatz_13_8", "random_14_1500", "simon_8",
      "cuccaro_5", "ising_14_12"};
  std::vector<workloads::BenchmarkSpec> slice;
  for (const auto& spec : workloads::benchmark_suite()) {
    for (const auto& want : picks) {
      if (spec.name == want) slice.push_back(spec);
    }
  }

  struct Strategy {
    const char* name;
    std::function<layout::Layout(const ir::Circuit&)> make;
  };
  const std::vector<Strategy> strategies = {
      {"identity",
       [&](const ir::Circuit& c) {
         return layout::Layout(c.num_qubits(), dev.graph.num_qubits());
       }},
      {"random (seed 7)",
       [&](const ir::Circuit& c) {
         return layout::random_layout(c.num_qubits(),
                                      dev.graph.num_qubits(), 7);
       }},
      {"greedy interaction",
       [&](const ir::Circuit& c) {
         return layout::greedy_interaction_layout(c, dev.graph);
       }},
      {"greedy + annealing",
       [&](const ir::Circuit& c) {
         return layout::annealed_layout(
             c, dev.graph, layout::greedy_interaction_layout(c, dev.graph),
             11, 3000);
       }},
      {"SABRE reverse traversal",
       [&](const ir::Circuit& c) { return sabre.initial_mapping(c, 2, 17); }},
  };

  // Reference depths: identity mapping.
  std::vector<arch::Duration> reference;
  Table table({"strategy", "geomean depth vs identity", "mean swaps"});
  for (const Strategy& strategy : strategies) {
    double log_sum = 0.0;
    double swap_sum = 0.0;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const auto result =
          codar.route(slice[i].circuit, strategy.make(slice[i].circuit));
      const auto v =
          core::verify_routing(slice[i].circuit, result, dev.graph);
      if (!v.valid) throw std::runtime_error(v.reason);
      const auto depth =
          schedule::weighted_depth(result.circuit, dev.durations);
      if (reference.size() <= i) reference.push_back(depth);
      log_sum += std::log(static_cast<double>(depth) /
                          static_cast<double>(reference[i]));
      swap_sum += static_cast<double>(result.stats.swaps_inserted);
      std::cerr << "." << std::flush;
    }
    table.add_row(
        {strategy.name,
         fmt_fixed(std::exp(log_sum / static_cast<double>(slice.size())), 3),
         fmt_fixed(swap_sum / static_cast<double>(slice.size()), 1)});
  }
  std::cerr << "\n";
  table.print(std::cout);
  std::cout << "\nLower is better; < 1.000 beats the identity placement.\n";
  return 0;
}

// Reproduces Fig. 2: the impact of gate-duration awareness. In the
// 4-qubit QFT fragment, "T q[1]" (1 cycle) finishes before "CX q[0],q[2]"
// (2 cycles), so the SWAP q[3],q[1] can start at cycle 1 while the other
// three candidates must wait until cycle 2. A duration-blind router
// assumes both finish together and loses that cycle. The bench routes the
// fragment and the full 4-qubit QFT with duration awareness on and off.

#include <iostream>

#include "codar/common/table.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"
#include "support/harness.hpp"

namespace {

using namespace codar;

arch::Duration route_depth(const ir::Circuit& c, const arch::Device& dev,
                           bool duration_aware, std::string* swap_desc) {
  core::CodarConfig cfg;
  cfg.duration_aware = duration_aware;
  const core::RoutingResult result = core::CodarRouter(dev, cfg).route(c);
  if (swap_desc != nullptr) {
    swap_desc->clear();
    for (const ir::Gate& g : result.circuit.gates()) {
      if (g.kind() == ir::GateKind::kSwap) {
        if (!swap_desc->empty()) *swap_desc += ", ";
        *swap_desc += g.to_string();
      }
    }
    if (swap_desc->empty()) *swap_desc = "(none)";
  }
  return schedule::weighted_depth(result.circuit, dev.durations);
}

}  // namespace

int main() {
  bench::print_header("Fig. 2 - gate-duration awareness (4-qubit QFT)");

  const arch::Device dev = arch::grid(2, 2);
  std::cout << "Coupling: Q0-Q1, Q0-Q2, Q1-Q3, Q2-Q3; durations: T=1, "
               "CX=2, SWAP=6 cycles\n\n";

  // The exact fragment of the paper's Fig. 2(b).
  ir::Circuit fragment(4, "qft4_fragment");
  fragment.t(1);
  fragment.cx(0, 2);
  fragment.cx(0, 3);

  Table table({"workload", "router", "chosen SWAPs", "weighted depth"});
  for (const bool aware : {true, false}) {
    std::string swaps;
    const arch::Duration depth = route_depth(fragment, dev, aware, &swaps);
    table.add_row({"QFT-4 fragment",
                   aware ? "CODAR (duration-aware)" : "CODAR (uniform-blind)",
                   swaps, std::to_string(depth)});
  }

  // Full 4-qubit QFT, lowered through the same device.
  const ir::Circuit full = workloads::qft(4);
  for (const bool aware : {true, false}) {
    std::string swaps;
    const arch::Duration depth = route_depth(full, dev, aware, &swaps);
    table.add_row({"QFT-4 full",
                   aware ? "CODAR (duration-aware)" : "CODAR (uniform-blind)",
                   swaps, std::to_string(depth)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 2c vs 2d): the duration-aware "
               "router starts its SWAP at cycle 1 on the qubit freed by T "
               "and finishes earlier.\n";
  return 0;
}

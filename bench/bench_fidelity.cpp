// Fidelity-aware routing versus plain CODAR on the calibrated example
// devices: every suite benchmark that fits is routed through the real
// Pipeline under both `codar` and `codar-fid` (default weights), and the
// reported makespan / SWAP count / log-ESP pairs are emitted as JSON so CI
// can gate routing-quality drift (BENCH_fidelity.json). Usage:
//
//   bench_fidelity [OUTPUT.json] [--devices DIR]
//
// DIR is the examples/devices directory (default assumes the bench runs
// from the repo root, as CI does). log-ESP values are rounded to 12
// significant digits before emission so the committed baseline is immune
// to sub-ulp libm differences while still catching any real drift.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codar/arch/device_json.hpp"
#include "codar/pipeline/pipeline.hpp"
#include "codar/workloads/suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// 12-significant-digit decimal rendering: deterministic for a given
/// double, and coarse enough to absorb cross-platform ln() ulp noise.
std::string fmt12(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

struct Row {
  std::string name;
  int qubits = 0;
  std::size_t gates = 0;
  std::size_t swaps_codar = 0, swaps_fid = 0;
  long long makespan_codar = 0, makespan_fid = 0;
  double log_esp_codar = 0.0, log_esp_fid = 0.0;
  double wall_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace codar;
  std::string output = "BENCH_fidelity.json";
  std::string devices_dir = "examples/devices";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--devices" && i + 1 < argc) {
      devices_dir = argv[++i];
    } else {
      output = arg;
    }
  }

  const std::vector<workloads::BenchmarkSpec> suite =
      workloads::benchmark_suite();
  std::vector<Row> rows;
  double total_ms = 0.0;
  int wins = 0, comparisons = 0;

  for (const char* file : {"tokyo_calibrated.json", "tokyo-noisy.json"}) {
    const std::string path = devices_dir + "/" + file;
    arch::Device device = arch::load_device_file(path);
    std::string tag = file;
    tag = tag.substr(0, tag.rfind('.'));

    pipeline::RoutingSpec base;
    base.router = "codar";
    pipeline::RoutingSpec fid = base;
    fid.router = "codar-fid";
    const pipeline::Pipeline plain(device, base);
    const pipeline::Pipeline aware(device, fid);

    for (const workloads::BenchmarkSpec& spec : suite) {
      if (spec.circuit.num_qubits() > device.graph.num_qubits()) continue;
      Row row;
      row.name = tag + "/" + spec.name;
      row.qubits = spec.circuit.used_qubit_count();
      row.gates = spec.circuit.size();
      const Clock::time_point start = Clock::now();
      const pipeline::RouteReport a = plain.run(spec.circuit);
      const pipeline::RouteReport b = aware.run(spec.circuit);
      row.wall_ms = ms_since(start);
      if (!a.ok() || !b.ok()) {
        std::cerr << "error: " << row.name << " failed to route: "
                  << (a.ok() ? b.error : a.error) << "\n";
        return 1;
      }
      row.swaps_codar = a.swaps;
      row.swaps_fid = b.swaps;
      row.makespan_codar = static_cast<long long>(a.depth_out);
      row.makespan_fid = static_cast<long long>(b.depth_out);
      row.log_esp_codar = a.log_esp;
      row.log_esp_fid = b.log_esp;
      total_ms += row.wall_ms;
      ++comparisons;
      if (b.log_esp > a.log_esp) ++wins;
      std::cerr << row.name << ": log-ESP " << fmt12(a.log_esp) << " -> "
                << fmt12(b.log_esp) << ", swaps " << a.swaps << " -> "
                << b.swaps << "\n";
      rows.push_back(std::move(row));
    }
  }

  std::ostringstream json;
  json << "{\"gated_fields\": [\"swaps_codar\", \"swaps_fid\", "
          "\"makespan_codar\", \"makespan_fid\", \"log_esp_codar\", "
          "\"log_esp_fid\"],\n \"results\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i > 0) json << ",";
    json << "\n  {\"name\": \"" << r.name << "\", \"qubits\": " << r.qubits
         << ", \"gates\": " << r.gates
         << ", \"swaps_codar\": " << r.swaps_codar
         << ", \"swaps_fid\": " << r.swaps_fid
         << ", \"makespan_codar\": " << r.makespan_codar
         << ", \"makespan_fid\": " << r.makespan_fid
         << ", \"log_esp_codar\": " << fmt12(r.log_esp_codar)
         << ", \"log_esp_fid\": " << fmt12(r.log_esp_fid)
         << ", \"wall_ms\": " << r.wall_ms << "}";
  }
  json << "\n ],\n \"summary\": {\"benchmarks\": " << rows.size()
       << ", \"esp_wins\": " << wins
       << ", \"comparisons\": " << comparisons
       << ", \"total_wall_ms\": " << total_ms << "}}\n";

  std::ofstream out_file(output);
  if (!out_file) {
    std::cerr << "error: cannot write " << output << "\n";
    return 1;
  }
  out_file << json.str();
  std::cout << "codar-fid beat codar's log-ESP on " << wins << "/"
            << comparisons << " routes -> " << output << "\n";
  return 0;
}

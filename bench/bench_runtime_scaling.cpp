// Router runtime scaling on large devices: routes synthetic workloads up
// to 100k gates / 2500 qubits (grid-50x50, the on-demand distance-oracle
// reference device) and emits BENCH_scaling.json in the BENCH_router.json
// shape, so CI can gate swaps/makespan/cycles exactly while wall time
// stays an informational trajectory. Usage:
//
//   bench_runtime_scaling [OUTPUT.json]
//
// Every workload routes from the identity initial layout: deterministic,
// and it skips the (quadratic-ish) SABRE mapping warm-up that would
// dominate wall time at 2500 qubits without exercising the router.
// Workloads above kDenseOracleMaxQubits qubits route through the
// on-demand CSR/BFS oracle picked by the kAuto policy — this harness is
// the regression net for that backend.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/workloads/generators.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Workload {
  std::string name;
  codar::arch::Device device;
  codar::ir::Circuit circuit;
};

struct Row {
  std::string name;
  int qubits = 0;
  std::size_t gates = 0;
  double wall_ms = 0.0;
  std::size_t swaps = 0;
  long long makespan = 0;
  std::size_t cycles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace codar;

  const std::string output = argc > 1 ? argv[1] : "BENCH_scaling.json";

  // Sizes climb from the dense-oracle regime (<= 1024 qubits) into the
  // on-demand regime (grid-50x50, 2500 qubits), ending at the headline
  // 100k-gate workload. Seeds are fixed; everything below is
  // deterministic except wall_ms.
  std::vector<Workload> sweep;
  sweep.push_back({"grid16x16_rand_10k", arch::grid(16, 16),
                   workloads::random_circuit(256, 10'000, 0.5, 21)});
  sweep.push_back({"grid32x32_rand_25k", arch::grid(32, 32),
                   workloads::random_circuit(1024, 25'000, 0.5, 22)});
  sweep.push_back({"grid50x50_rand_25k", arch::grid(50, 50),
                   workloads::random_circuit(2500, 25'000, 0.5, 23)});
  sweep.push_back({"grid50x50_ising_2500", arch::grid(50, 50),
                   workloads::ising_trotter(2500, 10)});
  sweep.push_back({"grid50x50_rand_100k", arch::grid(50, 50),
                   workloads::random_circuit(2500, 100'000, 0.5, 24)});

  std::vector<Row> rows;
  rows.reserve(sweep.size());
  double total_ms = 0.0;
  std::size_t total_swaps = 0;

  for (const Workload& w : sweep) {
    // Build the oracle outside the timed region: the steady-state question
    // is route() throughput, and the oracle is built once per device.
    w.device.graph.prepare();
    const core::CodarRouter router(w.device);
    Row row;
    row.name = w.name;
    row.qubits = w.device.graph.num_qubits();
    row.gates = w.circuit.size();
    const Clock::time_point start = Clock::now();
    const core::RoutingResult result = router.route(w.circuit);
    row.wall_ms = ms_since(start);
    row.swaps = result.stats.swaps_inserted;
    row.makespan = static_cast<long long>(result.stats.router_makespan);
    row.cycles = result.stats.cycles_simulated;
    total_ms += row.wall_ms;
    total_swaps += row.swaps;
    std::cerr << row.name << ": " << row.wall_ms << " ms, " << row.swaps
              << " swaps\n";
    rows.push_back(std::move(row));
  }

  std::ostringstream json;
  json << "{\"device\": \"scaling sweep (grids up to 50x50)\","
       << " \"repeat\": 1,\n \"results\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i > 0) json << ",";
    json << "\n  {\"name\": \"" << r.name << "\", \"qubits\": " << r.qubits
         << ", \"gates\": " << r.gates << ", \"wall_ms\": " << r.wall_ms
         << ", \"swaps\": " << r.swaps << ", \"makespan\": " << r.makespan
         << ", \"cycles\": " << r.cycles << "}";
  }
  json << "\n ],\n \"summary\": {\"benchmarks\": " << rows.size()
       << ", \"total_wall_ms\": " << total_ms
       << ", \"total_swaps\": " << total_swaps << "}}\n";

  std::ofstream out(output);
  if (!out.is_open()) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << output << " (" << rows.size() << " workloads, "
            << total_ms << " ms total)\n";
  return 0;
}

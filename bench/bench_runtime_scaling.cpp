// Router runtime scaling (google-benchmark): compilation time of CODAR and
// SABRE versus circuit size and device size, plus the cost of the two hot
// primitives (CF extraction, BFS all-pairs distances). The paper claims
// heuristic routers scale to large circuits; this harness quantifies ours.

#include <benchmark/benchmark.h>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/commutativity.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/workloads/generators.hpp"

namespace {

using namespace codar;

void BM_CodarRouteRandom(benchmark::State& state) {
  const int gates = static_cast<int>(state.range(0));
  const arch::Device dev = arch::ibm_q20_tokyo();
  const ir::Circuit c = workloads::random_circuit(16, gates, 0.5, 7);
  const core::CodarRouter router(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(c));
  }
  state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_CodarRouteRandom)->Arg(250)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SabreRouteRandom(benchmark::State& state) {
  const int gates = static_cast<int>(state.range(0));
  const arch::Device dev = arch::ibm_q20_tokyo();
  const ir::Circuit c = workloads::random_circuit(16, gates, 0.5, 7);
  const sabre::SabreRouter router(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(c));
  }
  state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_SabreRouteRandom)->Arg(250)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CodarRouteQft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const arch::Device dev = arch::google_sycamore54();
  const ir::Circuit c = workloads::qft(n);
  const core::CodarRouter router(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(c));
  }
}
BENCHMARK(BM_CodarRouteQft)->Arg(8)->Arg(16)->Arg(32)->Arg(54);

void BM_CodarDeviceSizeSweep(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const arch::Device dev = arch::grid(side, side);
  const ir::Circuit c =
      workloads::random_circuit(side * side, 2000, 0.5, 13);
  const core::CodarRouter router(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(c));
  }
}
BENCHMARK(BM_CodarDeviceSizeSweep)->Arg(4)->Arg(6)->Arg(8);

void BM_CommutativeFront(benchmark::State& state) {
  const ir::Circuit c = workloads::qft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::commutative_front(c, 150));
  }
}
BENCHMARK(BM_CommutativeFront)->Arg(8)->Arg(16)->Arg(32);

void BM_DistanceMatrix(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const arch::Device dev = arch::grid(side, side);
    benchmark::DoNotOptimize(dev.graph.distance(0, side * side - 1));
  }
}
BENCHMARK(BM_DistanceMatrix)->Arg(4)->Arg(8)->Arg(16);

void BM_SabreInitialMapping(benchmark::State& state) {
  const arch::Device dev = arch::ibm_q20_tokyo();
  const ir::Circuit c =
      workloads::random_circuit(16, static_cast<int>(state.range(0)), 0.5, 3);
  const sabre::SabreRouter router(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.initial_mapping(c, 2, 17));
  }
}
BENCHMARK(BM_SabreInitialMapping)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();

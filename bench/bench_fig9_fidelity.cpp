// Reproduces Fig. 9: fidelity of CODAR- vs SABRE-routed circuits for seven
// famous quantum algorithms on a noisy simulator (our QPanda substitute:
// exact density-matrix evolution under time-based dephasing / amplitude
// damping). Two regimes, as in the paper:
//   * dephasing-dominant (finite T2, infinite T1),
//   * damping-dominant  (finite T1, infinite T2).
// Expected shape: under dephasing-dominant noise CODAR's shorter schedules
// hold fidelity at least as well as SABRE's; under damping-dominant noise
// the two are comparable.

#include <iostream>

#include "codar/common/table.hpp"
#include "codar/sim/noisy_simulator.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

int main() {
  using namespace codar;
  bench::print_header("Fig. 9 - fidelity maintenance (noisy simulation)");

  const arch::Device dev = arch::grid(3, 3);
  const int n_phys = dev.graph.num_qubits();
  const double t2_cycles = 600.0;
  const double t1_cycles = 600.0;
  std::cout << "Device: 3x3 lattice (9 qubits), durations 1q=1 / 2q=2 / "
               "SWAP=6 cycles\n"
            << "Noise:  dephasing-dominant T2=" << t2_cycles
            << " cycles; damping-dominant T1=" << t1_cycles << " cycles\n\n";

  const sabre::SabreRouter sabre(dev);
  const core::CodarRouter codar(dev);

  Table table({"algorithm", "qubits", "depth CODAR", "depth SABRE",
               "F(dephase) CODAR", "F(dephase) SABRE", "F(damp) CODAR",
               "F(damp) SABRE"});

  double sum_deph_codar = 0, sum_deph_sabre = 0;
  double sum_damp_codar = 0, sum_damp_sabre = 0;
  int count = 0;

  for (const workloads::BenchmarkSpec& spec : workloads::famous_algorithms()) {
    const layout::Layout initial = sabre.initial_mapping(spec.circuit, 2, 17);
    const core::RoutingResult r_codar = codar.route(spec.circuit, initial);
    const core::RoutingResult r_sabre = sabre.route(spec.circuit, initial);

    const auto d_codar =
        schedule::weighted_depth(r_codar.circuit, dev.durations);
    const auto d_sabre =
        schedule::weighted_depth(r_sabre.circuit, dev.durations);

    const sim::NoiseParams dephase =
        sim::NoiseParams::dephasing_dominant(t2_cycles);
    const sim::NoiseParams damp = sim::NoiseParams::damping_dominant(t1_cycles);

    const double f_deph_codar = sim::noisy_fidelity_density(
        r_codar.circuit, n_phys, dev.durations, dephase);
    const double f_deph_sabre = sim::noisy_fidelity_density(
        r_sabre.circuit, n_phys, dev.durations, dephase);
    const double f_damp_codar = sim::noisy_fidelity_density(
        r_codar.circuit, n_phys, dev.durations, damp);
    const double f_damp_sabre = sim::noisy_fidelity_density(
        r_sabre.circuit, n_phys, dev.durations, damp);

    table.add_row({spec.name, std::to_string(spec.circuit.num_qubits()),
                   std::to_string(d_codar), std::to_string(d_sabre),
                   fmt_fixed(f_deph_codar, 4), fmt_fixed(f_deph_sabre, 4),
                   fmt_fixed(f_damp_codar, 4), fmt_fixed(f_damp_sabre, 4)});
    sum_deph_codar += f_deph_codar;
    sum_deph_sabre += f_deph_sabre;
    sum_damp_codar += f_damp_codar;
    sum_damp_sabre += f_damp_sabre;
    ++count;
    std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  table.print(std::cout);

  Table avg({"regime", "CODAR avg fidelity", "SABRE avg fidelity"});
  avg.add_row({"dephasing-dominant", fmt_fixed(sum_deph_codar / count, 4),
               fmt_fixed(sum_deph_sabre / count, 4)});
  avg.add_row({"damping-dominant", fmt_fixed(sum_damp_codar / count, 4),
               fmt_fixed(sum_damp_sabre / count, 4)});
  std::cout << "\n";
  avg.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}

// Estimated-success-probability (ESP) complement to Fig. 9: the analytic
// fidelity proxy ESP = Π gate fidelities × exp(-Σ qubit lifetime / T)
// lets us probe the SWAP-count-vs-schedule-length trade-off on devices far
// beyond density-matrix reach. Reported for CODAR and SABRE across a suite
// slice on IBM Q20 Tokyo and Google Sycamore, with Table I's
// superconducting gate fidelities.

#include <iostream>

#include "codar/common/table.hpp"
#include "codar/schedule/success.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

int main() {
  using namespace codar;
  bench::print_header("ESP - analytic fidelity proxy (Fig. 9 complement)");

  const double coherence_cycles = 2000.0;
  const arch::FidelityMap fidelities = arch::FidelityMap::superconducting();
  std::cout << "gate fidelities: superconducting preset (F2q = 0.965, "
               "SWAP = 0.965^3); coherence T = "
            << coherence_cycles << " cycles\n\n";

  for (const arch::Device& dev :
       {arch::ibm_q20_tokyo(), arch::google_sycamore54()}) {
    std::cout << "--- " << dev.name << " ---\n\n";
    const sabre::SabreRouter sabre(dev);
    const core::CodarRouter codar(dev);
    Table table({"benchmark", "ESP CODAR", "ESP SABRE", "gate factor C/S",
                 "coherence factor C/S"});
    double sum_codar = 0.0, sum_sabre = 0.0;
    int count = 0;
    for (const auto& spec : workloads::benchmark_suite()) {
      if (spec.circuit.num_qubits() > dev.graph.num_qubits()) continue;
      if (spec.circuit.size() > 700 || spec.circuit.size() < 30) continue;
      const layout::Layout initial =
          sabre.initial_mapping(spec.circuit, 2, 17);
      const auto r_codar = codar.route(spec.circuit, initial);
      const auto r_sabre = sabre.route(spec.circuit, initial);
      const auto esp_codar = schedule::estimate_success(
          r_codar.circuit, dev.durations, fidelities, coherence_cycles);
      const auto esp_sabre = schedule::estimate_success(
          r_sabre.circuit, dev.durations, fidelities, coherence_cycles);
      table.add_row(
          {spec.name, fmt_fixed(esp_codar.esp(), 4),
           fmt_fixed(esp_sabre.esp(), 4),
           fmt_fixed(esp_codar.gate_factor / esp_sabre.gate_factor, 3),
           fmt_fixed(esp_codar.coherence_factor / esp_sabre.coherence_factor,
                     3)});
      sum_codar += esp_codar.esp();
      sum_sabre += esp_sabre.esp();
      ++count;
      std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "\naverage ESP: CODAR " << fmt_fixed(sum_codar / count, 4)
              << " vs SABRE " << fmt_fixed(sum_sabre / count, 4)
              << "  (CODAR trades a lower gate factor — more SWAPs — for a "
                 "higher coherence factor — shorter schedules)\n\n";
  }
  return 0;
}

// Ablation of CODAR's design features (DESIGN.md §1): qubit-lock context
// sensitivity, gate-duration awareness, commutativity look-ahead and the
// lattice fine priority are switched off one at a time (and all at once)
// across a medium slice of the suite on IBM Q20 Tokyo. Reported metric:
// weighted-depth ratio versus full CODAR (>1 means the feature helps).

#include <cmath>
#include <iostream>

#include "codar/common/table.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

int main() {
  using namespace codar;
  bench::print_header("Ablation - CODAR feature switches (IBM Q20 Tokyo)");

  const arch::Device dev = arch::ibm_q20_tokyo();

  struct Variant {
    const char* name;
    core::CodarConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"full CODAR", {}});
  {
    core::CodarConfig c;
    c.context_aware = false;
    variants.push_back({"- context (no qubit-lock filter)", c});
  }
  {
    core::CodarConfig c;
    c.duration_aware = false;
    variants.push_back({"- duration (uniform internal clock)", c});
  }
  {
    core::CodarConfig c;
    c.commutativity_aware = false;
    variants.push_back({"- commutativity (plain DAG front)", c});
  }
  {
    core::CodarConfig c;
    c.fine_priority = false;
    variants.push_back({"- fine priority (H_basic only)", c});
  }
  {
    core::CodarConfig c;
    c.context_aware = false;
    c.duration_aware = false;
    c.commutativity_aware = false;
    c.fine_priority = false;
    variants.push_back({"all features off", c});
  }

  // Medium slice: one representative per family, <= 20 qubits.
  std::vector<std::string> picks = {
      "qft_10",      "bv_12",      "wstate_13",    "grover_5",
      "cuccaro_5",   "draper_5",   "qaoa_12_3",    "ansatz_13_8",
      "ising_14_12", "tofchain_9_6", "random_14_1500", "simon_8"};
  std::vector<workloads::BenchmarkSpec> slice;
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    for (const std::string& want : picks) {
      if (spec.name == want) slice.push_back(spec);
    }
  }

  Table table({"variant", "benchmarks", "geomean depth ratio vs full",
               "mean swaps / full swaps"});
  std::vector<arch::Duration> full_depths;
  std::vector<std::size_t> full_swaps;
  for (const Variant& variant : variants) {
    double log_ratio_sum = 0.0;
    double swap_ratio_sum = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const bench::Comparison cmp =
          bench::compare_routers(slice[i].circuit, dev, variant.cfg);
      if (full_depths.size() <= i) {
        full_depths.push_back(cmp.depth_codar);
        full_swaps.push_back(cmp.swaps_codar);
      }
      const double depth_ratio = static_cast<double>(cmp.depth_codar) /
                                 static_cast<double>(full_depths[i]);
      const double swap_ratio =
          full_swaps[i] == 0
              ? 1.0
              : static_cast<double>(cmp.swaps_codar) /
                    static_cast<double>(full_swaps[i]);
      log_ratio_sum += std::log(depth_ratio);
      swap_ratio_sum += swap_ratio;
      ++count;
      std::cerr << "." << std::flush;
    }
    table.add_row({variant.name, std::to_string(count),
                   fmt_fixed(std::exp(log_ratio_sum / count), 3),
                   fmt_fixed(swap_ratio_sum / count, 2)});
  }
  std::cerr << "\n";
  table.print(std::cout);
  std::cout << "\nRatios > 1.000 mean the removed feature was contributing "
               "to shorter schedules on this slice.\n";
  return 0;
}

// Reproduces Fig. 8: speedup ratio (weighted depth of SABRE's circuit over
// CODAR's) for the 71-benchmark suite on the four evaluation
// architectures — IBM Q16, Enfield 6x6, IBM Q20 Tokyo, Google Q54
// Sycamore. Benchmarks wider than a device are skipped on it, exactly as
// the paper runs the three 36-qubit programs on Sycamore only.
//
// Paper-reported averages: 1.212 (Q16), 1.241 (6x6), 1.214 (Q20 Tokyo),
// 1.258 (Sycamore). Our reimplementation should land in the same band;
// per-benchmark bars will differ.

#include <cmath>
#include <iostream>

#include "codar/common/table.hpp"
#include "codar/workloads/suite.hpp"
#include "support/harness.hpp"

namespace {

using namespace codar;

struct ArchAccumulator {
  double ratio_sum = 0.0;
  double log_sum = 0.0;
  int count = 0;
  int wins = 0;

  void add(double speedup) {
    ratio_sum += speedup;
    log_sum += std::log(speedup);
    ++count;
    if (speedup > 1.0) ++wins;
  }
  double mean() const { return count == 0 ? 0.0 : ratio_sum / count; }
  double geomean() const {
    return count == 0 ? 0.0 : std::exp(log_sum / count);
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Fig. 8 - CODAR vs SABRE speedup (weighted depth ratio)");

  const auto devices = arch::paper_architectures();
  const auto suite = workloads::benchmark_suite();

  Table per_bench({"benchmark", "qubits", "gates", "IBM Q16", "Enfield 6x6",
                   "IBM Q20 Tokyo", "Google Q54"});
  std::vector<ArchAccumulator> accum(devices.size());

  for (const workloads::BenchmarkSpec& spec : suite) {
    std::vector<std::string> row = {
        spec.name, std::to_string(spec.circuit.num_qubits()),
        std::to_string(spec.circuit.size())};
    for (std::size_t d = 0; d < devices.size(); ++d) {
      if (spec.circuit.num_qubits() > devices[d].graph.num_qubits()) {
        row.push_back("-");
        continue;
      }
      const bench::Comparison cmp =
          bench::compare_routers(spec.circuit, devices[d]);
      accum[d].add(cmp.speedup());
      row.push_back(fmt_fixed(cmp.speedup(), 3));
    }
    per_bench.add_row(std::move(row));
    std::cerr << "." << std::flush;  // progress to stderr, data to stdout
  }
  std::cerr << "\n";

  per_bench.print(std::cout);

  Table summary({"architecture", "benchmarks", "mean speedup",
                 "geomean speedup", "CODAR wins", "paper mean"});
  const char* paper_means[] = {"1.212", "1.241", "1.214", "1.258"};
  for (std::size_t d = 0; d < devices.size(); ++d) {
    summary.add_row({devices[d].name, std::to_string(accum[d].count),
                     fmt_fixed(accum[d].mean(), 3),
                     fmt_fixed(accum[d].geomean(), 3),
                     std::to_string(accum[d].wins), paper_means[d]});
  }
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nCSV:\n";
  summary.print_csv(std::cout);
  return 0;
}

#include "codar/cli/report.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "codar/astar/astar_router.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/verify.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/ir/peephole.hpp"
#include "codar/layout/initial_mapping.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::cli {

namespace {

/// Shrinks a circuit whose declared register is wider than the device down
/// to its used qubits (QASM files routinely over-declare).
ir::Circuit fit_register(const ir::Circuit& circuit, int device_qubits) {
  if (circuit.num_qubits() <= device_qubits) return circuit;
  const int used = circuit.used_qubit_count();
  if (used > device_qubits) {
    throw std::runtime_error("circuit uses " + std::to_string(used) +
                             " qubits but the device has only " +
                             std::to_string(device_qubits));
  }
  std::vector<ir::Qubit> identity(
      static_cast<std::size_t>(circuit.num_qubits()));
  for (std::size_t q = 0; q < identity.size(); ++q) {
    identity[q] = static_cast<ir::Qubit>(q);
  }
  return circuit.remapped(identity, used);
}

layout::Layout choose_initial(const ir::Circuit& circuit,
                              const arch::Device& device,
                              const Options& opts) {
  switch (opts.mapping) {
    case MappingKind::kIdentity:
      return layout::Layout(circuit.num_qubits(), device.graph.num_qubits());
    case MappingKind::kGreedy:
      return layout::greedy_interaction_layout(circuit, device.graph);
    case MappingKind::kSabre:
      return sabre::SabreRouter(device).initial_mapping(
          circuit, opts.mapping_rounds, opts.seed);
  }
  throw std::logic_error("unreachable mapping kind");
}

core::RoutingResult dispatch_route(const ir::Circuit& circuit,
                                   const layout::Layout& initial,
                                   const arch::Device& device,
                                   const Options& opts) {
  switch (opts.router) {
    case RouterKind::kCodar:
      return core::CodarRouter(device, opts.codar).route(circuit, initial);
    case RouterKind::kSabre:
      return sabre::SabreRouter(device).route(circuit, initial);
    case RouterKind::kAstar:
      return astar::AstarRouter(device).route(circuit, initial);
  }
  throw std::logic_error("unreachable router kind");
}

}  // namespace

void append_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

RouteReport route_circuit(const ir::Circuit& circuit,
                          const arch::Device& device, const Options& opts,
                          bool keep_qasm) {
  RouteReport report;
  report.name = circuit.name();
  try {
    ir::Circuit lowered =
        fit_register(ir::decompose_toffoli(circuit),
                     device.graph.num_qubits());
    if (opts.peephole) lowered = ir::peephole_optimize(lowered);
    report.qubits = lowered.used_qubit_count();
    report.gates_in = lowered.size();
    report.depth_in = schedule::weighted_depth(lowered, device.durations);

    const layout::Layout initial = choose_initial(lowered, device, opts);
    const auto route_start = std::chrono::steady_clock::now();
    const core::RoutingResult result =
        dispatch_route(lowered, initial, device, opts);
    report.route_us = static_cast<std::size_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - route_start)
            .count());

    report.gates_out = result.circuit.size();
    report.gates_routed = result.stats.gates_routed;
    report.barriers = result.stats.barriers;
    report.swaps = result.stats.swaps_inserted;
    report.forced_swaps = result.stats.forced_swaps;
    report.escape_swaps = result.stats.escape_swaps;
    report.cycles = result.stats.cycles_simulated;
    report.makespan = result.stats.router_makespan;
    report.depth_out =
        schedule::weighted_depth(result.circuit, device.durations);

    if (opts.verify) {
      const core::VerifyOutcome outcome =
          core::verify_routing(lowered, result, device.graph);
      report.verified = outcome.valid;
      if (!outcome.valid) {
        report.error = "verification failed: " + outcome.reason;
        return report;
      }
    } else {
      report.verify_skipped = true;
    }
    if (keep_qasm) report.routed_qasm = qasm::to_qasm(result.circuit);
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

std::string to_json(const RouteReport& r, const Options& opts) {
  std::ostringstream out;
  out << "{\"name\": ";
  append_json_string(out, r.name);
  out << ", \"device\": ";
  append_json_string(out, opts.device);
  out << ", \"router\": ";
  append_json_string(out, to_string(opts.router));
  out << ", \"initial\": ";
  append_json_string(out, to_string(opts.mapping));
  if (!r.error.empty()) {
    out << ", \"error\": ";
    append_json_string(out, r.error);
  }
  out << ", \"qubits\": " << r.qubits << ", \"gates_in\": " << r.gates_in
      << ", \"gates_out\": " << r.gates_out
      << ", \"gates_routed\": " << r.gates_routed
      << ", \"barriers\": " << r.barriers << ", \"swaps\": " << r.swaps
      << ", \"forced_swaps\": " << r.forced_swaps
      << ", \"escape_swaps\": " << r.escape_swaps
      << ", \"cycles\": " << r.cycles << ", \"makespan\": " << r.makespan;
  // Wall time is the one nondeterministic stat: opt-in so default output
  // stays bit-identical across runs and thread counts.
  if (opts.timing) out << ", \"route_us\": " << r.route_us;
  out
      << ", \"weighted_depth_in\": " << r.depth_in
      << ", \"weighted_depth_out\": " << r.depth_out << ", \"verified\": "
      << (r.verified ? "true" : "false") << "}";
  return out.str();
}

std::string to_json(const std::vector<RouteReport>& reports,
                    const Options& opts) {
  std::size_t failed = 0;
  std::size_t swaps = 0;
  std::size_t route_us = 0;
  long long depth_in = 0;
  long long depth_out = 0;
  std::ostringstream out;
  out << "{\"results\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  " << to_json(reports[i], opts);
    if (!reports[i].ok()) ++failed;
    swaps += reports[i].swaps;
    route_us += reports[i].route_us;
    depth_in += reports[i].depth_in;
    depth_out += reports[i].depth_out;
  }
  out << "\n], \"summary\": {\"total\": " << reports.size()
      << ", \"failed\": " << failed << ", \"swaps\": " << swaps;
  if (opts.timing) out << ", \"route_us\": " << route_us;
  out << ", \"weighted_depth_in\": " << depth_in
      << ", \"weighted_depth_out\": " << depth_out << "}}";
  return out.str();
}

}  // namespace codar::cli

#include "codar/cli/report.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "codar/common/expects.hpp"
#include "codar/common/json.hpp"

namespace codar::cli {

namespace {

/// Shortest round-trip rendering (to_chars without a precision yields the
/// minimal digits that parse back to the same double) — the same idiom as
/// the canonical device serializer, so ESP values are deterministic for a
/// fixed platform and lossless to reparse.
std::string render_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CODAR_EXPECTS(ec == std::errc());
  return std::string(buf, ptr);
}

}  // namespace

void append_json_string(std::ostream& out, std::string_view s) {
  // Delegates to the one escaper of the whole binary (common::json_quote),
  // so batch stats and serve response envelopes can never diverge on how
  // the same byte renders.
  out << common::json_quote(s);
}

RouteReport route_circuit(const ir::Circuit& circuit,
                          const arch::Device& device, const Options& opts,
                          bool keep_qasm) {
  try {
    return pipeline::Pipeline(device, opts).run(circuit, keep_qasm);
  } catch (const std::exception& e) {
    // Pipeline construction failed (unknown router/mapping name): report
    // it the same way a routing failure is reported.
    RouteReport report;
    report.name = circuit.name();
    report.error = e.what();
    return report;
  }
}

std::string to_json(const RouteReport& r, const Options& opts) {
  std::ostringstream out;
  out << "{\"name\": ";
  append_json_string(out, r.name);
  out << ", \"device\": ";
  append_json_string(out, opts.device);
  out << ", \"router\": ";
  append_json_string(out, opts.router);
  out << ", \"initial\": ";
  append_json_string(out, opts.mapping);
  if (!r.error.empty()) {
    out << ", \"error\": ";
    append_json_string(out, r.error);
  }
  out << ", \"qubits\": " << r.qubits << ", \"gates_in\": " << r.gates_in
      << ", \"gates_out\": " << r.gates_out
      << ", \"gates_routed\": " << r.gates_routed
      << ", \"barriers\": " << r.barriers << ", \"swaps\": " << r.swaps
      << ", \"forced_swaps\": " << r.forced_swaps
      << ", \"escape_swaps\": " << r.escape_swaps
      << ", \"cycles\": " << r.cycles << ", \"makespan\": " << r.makespan;
  // Wall times are the one nondeterministic stat: opt-in so default output
  // stays bit-identical across runs and thread counts.
  if (opts.timing) {
    out << ", \"route_us\": " << r.route_us << ", \"stage_us\": {";
    for (std::size_t i = 0; i < r.stage_us.size(); ++i) {
      if (i > 0) out << ", ";
      append_json_string(out, r.stage_us[i].stage);
      out << ": " << r.stage_us[i].us;
    }
    out << "}";
  }
  out
      << ", \"weighted_depth_in\": " << r.depth_in
      << ", \"weighted_depth_out\": " << r.depth_out
      << ", \"est_success_probability\": " << render_double(std::exp(r.log_esp))
      << ", \"log_esp\": " << render_double(r.log_esp) << ", \"verified\": "
      << (r.verified ? "true" : "false") << "}";
  return out.str();
}

std::string to_json(const std::vector<RouteReport>& reports,
                    const Options& opts) {
  std::size_t failed = 0;
  std::size_t swaps = 0;
  std::size_t route_us = 0;
  long long depth_in = 0;
  long long depth_out = 0;
  double log_esp = 0.0;  ///< Σ log ESP = log of the suite-wide product.
  std::ostringstream out;
  out << "{\"results\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  " << to_json(reports[i], opts);
    if (!reports[i].ok()) ++failed;
    swaps += reports[i].swaps;
    route_us += reports[i].route_us;
    depth_in += reports[i].depth_in;
    depth_out += reports[i].depth_out;
    log_esp += reports[i].log_esp;
  }
  out << "\n], \"summary\": {\"total\": " << reports.size()
      << ", \"failed\": " << failed << ", \"swaps\": " << swaps;
  if (opts.timing) out << ", \"route_us\": " << route_us;
  out << ", \"weighted_depth_in\": " << depth_in
      << ", \"weighted_depth_out\": " << depth_out
      << ", \"log_esp\": " << render_double(log_esp) << "}}";
  return out.str();
}

}  // namespace codar::cli

#include "codar/cli/options.hpp"

#include <stdexcept>

#include "codar/arch/distance_oracle.hpp"

namespace codar::cli {

bool parse_routing_flag(Options& opts, const std::string& arg,
                        const std::function<std::string()>& value) {
  if (arg == "--device" || arg == "-d") {
    opts.device = value();
  } else if (arg == "--router" || arg == "-r") {
    // Validate eagerly so a typo fails at parse time with the registered
    // names, not at route time.
    opts.router = pipeline::RouterRegistry::instance().at(value()).name;
  } else if (arg == "--initial") {
    opts.mapping = pipeline::MappingRegistry::instance().at(value()).name;
  } else if (arg == "--threads" || arg == "-j") {
    opts.threads = static_cast<int>(pipeline::knob_int(arg, value()));
    if (opts.threads < 0) throw UsageError("--threads must be >= 0");
  } else if (arg == "--set") {
    // Free-form knob for externally registered passes (see
    // RoutingSpec::extras); built-in knobs have dedicated flags.
    const std::string kv = value();
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw UsageError("--set expects KEY=VALUE, got '" + kv + "'");
    }
    opts.set_extra(kv.substr(0, eq), kv.substr(eq + 1));
  } else if (arg == "--distance-oracle") {
    // Process-wide distance-backend override, applied at parse time: it
    // only changes how distances are computed (memory/latency), never
    // their values, so it is deliberately not part of Options or any
    // route-cache key — and not accepted on untrusted serve request
    // lines, only on the trusted command line.
    try {
      arch::set_default_distance_policy(arch::parse_distance_policy(value()));
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
  } else if (arg == "--no-verify") {
    opts.verify = false;
  } else if (arg == "--timing") {
    opts.timing = true;
  } else if (arg == "--peephole") {
    opts.peephole = true;
  } else {
    // Pass-specific knobs (--no-context, --window, --seed, ...) belong to
    // whichever registered pass claimed them.
    return pipeline::RouterRegistry::instance().parse_knob(opts, arg,
                                                           value) ||
           pipeline::MappingRegistry::instance().parse_knob(opts, arg,
                                                            value);
  }
  return true;
}

Options parse_args(const std::vector<std::string>& args) {
  Options opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw UsageError(arg + " expects a value");
      }
      return args[++i];
    };
    if (parse_routing_flag(opts, arg, value)) {
      continue;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--list-devices") {
      opts.list_devices = true;
    } else if (arg == "--describe-device") {
      opts.describe_device = value();
    } else if (arg == "--list-routers") {
      opts.list_routers = true;
    } else if (arg == "--list-mappings") {
      opts.list_mappings = true;
    } else if (arg == "--batch") {
      opts.batch_dir = value();
    } else if (arg == "--suite") {
      opts.suite = true;
    } else if (arg == "--output" || arg == "-o") {
      opts.output_path = value();
    } else if (arg == "--stats") {
      opts.stats_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      throw UsageError("unknown flag '" + arg + "'");
    } else {
      opts.inputs.push_back(arg);
    }
  }
  if (opts.help || opts.list_devices || opts.list_routers ||
      opts.list_mappings || !opts.describe_device.empty()) {
    return opts;
  }
  const int modes = static_cast<int>(!opts.inputs.empty()) +
                    static_cast<int>(!opts.batch_dir.empty()) +
                    static_cast<int>(opts.suite);
  if (modes == 0) {
    throw UsageError("nothing to route: give .qasm files, --batch DIR, "
                     "or --suite");
  }
  if (modes > 1) {
    throw UsageError("pick one mode: positional files, --batch, or --suite");
  }
  if (!opts.output_path.empty() && opts.inputs.size() != 1) {
    throw UsageError("-o/--output requires exactly one input file");
  }
  return opts;
}

std::string usage() {
  return R"(codar — contextual duration-aware qubit mapping (DAC 2020)

usage:
  codar [options] FILE.qasm...       route the given OpenQASM 2.0 files
  codar [options] --batch DIR        route every *.qasm under DIR (parallel)
  codar [options] --suite            route the built-in 71-benchmark suite
  codar serve [options]              NDJSON routing service with a route
                                     cache (see codar serve --help)
  codar --list-devices               print every device spec
  codar --describe-device SPEC       print one device's shape + fingerprint
  codar --list-routers               print every registered routing pass
  codar --list-mappings              print every initial-mapping strategy

modes and I/O:
  -o, --output FILE     routed QASM destination (single input only; default
                        stdout)
      --stats FILE      JSON statistics destination (default: stderr for a
                        single input, stdout for batch/suite)
      --threads, -j N   batch worker threads (0 = hardware concurrency)

routing:
  -d, --device SPEC     target device (default tokyo); see --list-devices.
                        file:PATH.json loads a JSON device description
                        (graph + durations/fidelities + calibration; see
                        README "Device files")
  -r, --router NAME     routing pass (default codar); see --list-routers
      --initial NAME    initial mapping (default sabre); see --list-mappings
      --seed N          initial-mapping RNG seed (default 17)
      --mapping-rounds N  SABRE reverse-traversal rounds (default 3)
      --peephole        run the peephole cleanup pass before routing
      --set KEY=VALUE   free-form knob for externally registered passes
                        (read via RoutingSpec::extra; cache-key relevant)
      --distance-oracle MODE
                        distance backend: auto (default; dense matrix up
                        to 1024 qubits, on-demand above), dense,
                        on-demand, or landmark. Affects memory and speed
                        only — routed output is identical for every MODE
      --no-verify       skip the routing verifier
      --timing          add per-route and per-stage wall times (route_us,
                        stage_us) to the JSON stats; off by default so
                        stats stay bit-identical across runs and thread
                        counts

CODAR ablation knobs:
      --no-context --no-duration --no-commutativity --no-fine-priority
      --window N        commutative-front scan cap (<=0 unbounded)
      --stagnation N    forced SWAPs before the shortest-path escape

codar-fid objective weights (see README "Routing objectives"):
      --alpha X         distance term weight (default 1)
      --beta X          log-fidelity term weight (default 5; >= 0)
      --gamma X         decoherence term weight (default 1; >= 0)
                        beta=0 gamma=0 routes byte-identically to codar
)";
}

}  // namespace codar::cli

#include "codar/cli/options.hpp"

#include <charconv>

namespace codar::cli {

namespace {

/// Parses a mandatory integral flag value; throws UsageError on garbage.
long long to_int(const std::string& flag, const std::string& value) {
  long long result = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw UsageError(flag + " expects an integer, got '" + value + "'");
  }
  return result;
}

}  // namespace

std::string to_string(RouterKind kind) {
  switch (kind) {
    case RouterKind::kCodar: return "codar";
    case RouterKind::kSabre: return "sabre";
    case RouterKind::kAstar: return "astar";
  }
  return "?";
}

std::string to_string(MappingKind kind) {
  switch (kind) {
    case MappingKind::kIdentity: return "identity";
    case MappingKind::kGreedy: return "greedy";
    case MappingKind::kSabre: return "sabre";
  }
  return "?";
}

bool parse_routing_flag(Options& opts, const std::string& arg,
                        const std::function<std::string()>& value) {
  if (arg == "--device" || arg == "-d") {
    opts.device = value();
  } else if (arg == "--router" || arg == "-r") {
    const std::string v = value();
    if (v == "codar") {
      opts.router = RouterKind::kCodar;
    } else if (v == "sabre") {
      opts.router = RouterKind::kSabre;
    } else if (v == "astar") {
      opts.router = RouterKind::kAstar;
    } else {
      throw UsageError("unknown router '" + v +
                       "' (expected codar|sabre|astar)");
    }
  } else if (arg == "--initial") {
    const std::string v = value();
    if (v == "identity") {
      opts.mapping = MappingKind::kIdentity;
    } else if (v == "greedy") {
      opts.mapping = MappingKind::kGreedy;
    } else if (v == "sabre") {
      opts.mapping = MappingKind::kSabre;
    } else {
      throw UsageError("unknown initial mapping '" + v +
                       "' (expected identity|greedy|sabre)");
    }
  } else if (arg == "--threads" || arg == "-j") {
    opts.threads = static_cast<int>(to_int(arg, value()));
    if (opts.threads < 0) throw UsageError("--threads must be >= 0");
  } else if (arg == "--seed") {
    opts.seed = static_cast<std::uint64_t>(to_int(arg, value()));
  } else if (arg == "--mapping-rounds") {
    opts.mapping_rounds = static_cast<int>(to_int(arg, value()));
    if (opts.mapping_rounds < 0) {
      throw UsageError("--mapping-rounds must be >= 0");
    }
  } else if (arg == "--no-verify") {
    opts.verify = false;
  } else if (arg == "--timing") {
    opts.timing = true;
  } else if (arg == "--peephole") {
    opts.peephole = true;
  } else if (arg == "--no-context") {
    opts.codar.context_aware = false;
  } else if (arg == "--no-duration") {
    opts.codar.duration_aware = false;
  } else if (arg == "--no-commutativity") {
    opts.codar.commutativity_aware = false;
  } else if (arg == "--no-fine-priority") {
    opts.codar.fine_priority = false;
  } else if (arg == "--window") {
    opts.codar.front_window = static_cast<int>(to_int(arg, value()));
  } else if (arg == "--stagnation") {
    opts.codar.stagnation_threshold = static_cast<int>(to_int(arg, value()));
    if (opts.codar.stagnation_threshold < 1) {
      throw UsageError("--stagnation must be >= 1");
    }
  } else {
    return false;
  }
  return true;
}

Options parse_args(const std::vector<std::string>& args) {
  Options opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw UsageError(arg + " expects a value");
      }
      return args[++i];
    };
    if (parse_routing_flag(opts, arg, value)) {
      continue;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--list-devices") {
      opts.list_devices = true;
    } else if (arg == "--batch") {
      opts.batch_dir = value();
    } else if (arg == "--suite") {
      opts.suite = true;
    } else if (arg == "--output" || arg == "-o") {
      opts.output_path = value();
    } else if (arg == "--stats") {
      opts.stats_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      throw UsageError("unknown flag '" + arg + "'");
    } else {
      opts.inputs.push_back(arg);
    }
  }
  if (opts.help || opts.list_devices) return opts;
  const int modes = static_cast<int>(!opts.inputs.empty()) +
                    static_cast<int>(!opts.batch_dir.empty()) +
                    static_cast<int>(opts.suite);
  if (modes == 0) {
    throw UsageError("nothing to route: give .qasm files, --batch DIR, "
                     "or --suite");
  }
  if (modes > 1) {
    throw UsageError("pick one mode: positional files, --batch, or --suite");
  }
  if (!opts.output_path.empty() && opts.inputs.size() != 1) {
    throw UsageError("-o/--output requires exactly one input file");
  }
  return opts;
}

std::string usage() {
  return R"(codar — contextual duration-aware qubit mapping (DAC 2020)

usage:
  codar [options] FILE.qasm...       route the given OpenQASM 2.0 files
  codar [options] --batch DIR        route every *.qasm under DIR (parallel)
  codar [options] --suite            route the built-in 71-benchmark suite
  codar serve [options]              NDJSON routing service with a route
                                     cache (see codar serve --help)
  codar --list-devices               print every device spec

modes and I/O:
  -o, --output FILE     routed QASM destination (single input only; default
                        stdout)
      --stats FILE      JSON statistics destination (default: stderr for a
                        single input, stdout for batch/suite)
      --threads, -j N   batch worker threads (0 = hardware concurrency)

routing:
  -d, --device SPEC     target device (default tokyo); see --list-devices
  -r, --router NAME     codar | sabre | astar (default codar)
      --initial NAME    identity | greedy | sabre (default sabre)
      --seed N          initial-mapping RNG seed (default 17)
      --mapping-rounds N  SABRE reverse-traversal rounds (default 3)
      --peephole        run the peephole cleanup pass before routing
      --no-verify       skip the routing verifier
      --timing          add per-route wall time (route_us) to the JSON
                        stats; off by default so stats stay bit-identical
                        across runs and thread counts

CODAR ablation knobs:
      --no-context --no-duration --no-commutativity --no-fine-priority
      --window N        commutative-front scan cap (<=0 unbounded)
      --stagnation N    forced SWAPs before the shortest-path escape
)";
}

}  // namespace codar::cli

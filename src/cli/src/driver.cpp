#include "codar/cli/driver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <thread>

#include "codar/cli/device_registry.hpp"
#include "codar/pipeline/registry.hpp"
#include "codar/qasm/parser.hpp"

namespace codar::cli {

std::vector<RouteReport> run_batch(
    const std::vector<workloads::BenchmarkSpec>& jobs,
    const arch::Device& device, const Options& opts) {
  std::vector<RouteReport> results(jobs.size());
  if (jobs.empty()) return results;
  int threads = opts.threads > 0
                    ? opts.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp<int>(threads, 1, static_cast<int>(jobs.size()));

  // The distance oracle is built lazily on first use. The lazy build is
  // race-free (mutex + published atomic, see CouplingGraph::oracle()), but
  // paying it here, while still single-threaded, keeps the build cost out
  // of the contended fan-out below.
  device.graph.prepare();

  // Work stealing off one atomic counter; each worker routes with its own
  // router instance (constructed inside route_circuit) and writes only its
  // own results[i] slots, so the pool needs no mutex at all: concurrent
  // jobs share nothing mutable but `next`, and the joins below publish the
  // slot writes to the caller.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      results[i] =
          route_circuit(jobs[i].circuit, device, opts, /*keep_qasm=*/false);
      results[i].name = jobs[i].name;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return results;
}

namespace {

/// Writes `text` to `path`, or to `fallback` when path is empty.
void write_text(const std::string& path, const std::string& text,
                std::ostream& fallback) {
  if (path.empty()) {
    fallback << text;
    if (!text.empty() && text.back() != '\n') fallback << '\n';
    return;
  }
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write " + path);
  file << text;
  if (!text.empty() && text.back() != '\n') file << '\n';
}

int run_single(const Options& opts, const arch::Device& device,
               std::ostream& out, std::ostream& err) {
  RouteReport report;
  try {
    // Load failures get the same JSON error report as in batch mode (so
    // scripts can rely on the stats output existing, and exit 1 means
    // "this circuit failed" while 2 stays "bad invocation").
    const ir::Circuit circuit = qasm::parse_file(opts.inputs.front());
    report = route_circuit(circuit, device, opts, /*keep_qasm=*/true);
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  if (report.name.empty()) report.name = opts.inputs.front();
  if (report.error.empty()) {
    write_text(opts.output_path, report.routed_qasm, out);
  } else {
    err << "error: " << report.name << ": " << report.error << "\n";
  }
  write_text(opts.stats_path, to_json(report, opts), err);
  return report.ok() ? 0 : 1;
}

int run_many(const Options& opts, const arch::Device& device,
             std::ostream& out, std::ostream& err) {
  std::vector<workloads::BenchmarkSpec> jobs;
  // Jobs that already failed at load time, keyed by output position.
  std::vector<std::optional<RouteReport>> preloaded;

  auto add_file = [&](const std::filesystem::path& path) {
    RouteReport failure;
    failure.name = path.filename().string();
    try {
      ir::Circuit circuit = qasm::parse_file(path.string());
      circuit.set_name(path.filename().string());
      jobs.push_back({path.filename().string(), std::move(circuit)});
      preloaded.emplace_back(std::nullopt);
      return;
    } catch (const std::exception& e) {
      failure.error = e.what();
    }
    preloaded.emplace_back(std::move(failure));
  };

  if (opts.suite) {
    jobs = workloads::benchmark_suite();
    preloaded.assign(jobs.size(), std::nullopt);
  } else if (!opts.batch_dir.empty()) {
    std::vector<std::filesystem::path> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(opts.batch_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".qasm") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
      err << "error: no .qasm files under " << opts.batch_dir << "\n";
      return 2;
    }
    for (const auto& path : paths) add_file(path);
  } else {
    for (const std::string& input : opts.inputs) add_file(input);
  }

  const std::vector<RouteReport> routed = run_batch(jobs, device, opts);

  // Merge routed results back into input order around the load failures.
  std::vector<RouteReport> reports;
  reports.reserve(preloaded.size());
  std::size_t next_routed = 0;
  for (auto& slot : preloaded) {
    if (slot.has_value()) {
      reports.push_back(std::move(*slot));
    } else {
      reports.push_back(routed[next_routed++]);
    }
  }

  write_text(opts.stats_path, to_json(reports, opts), out);
  const std::size_t failed = static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [](const RouteReport& r) { return !r.ok(); }));
  err << reports.size() - failed << "/" << reports.size() << " circuits "
      << "routed on " << opts.device << " with " << opts.router
      << (failed ? " (FAILURES above)" : "") << "\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Options opts;
  try {
    opts = parse_args(args);
  } catch (const UsageError& e) {
    err << "error: " << e.what() << "\n\n" << usage();
    return 2;
  }
  if (opts.help) {
    out << usage();
    return 0;
  }
  if (opts.list_devices) {
    for (const DeviceEntry& entry : device_catalog()) {
      out << entry.spec << "\t" << entry.description << "\n";
    }
    return 0;
  }
  if (!opts.describe_device.empty()) {
    // One deterministic JSON line per device: shape plus the content
    // fingerprint the serve route cache keys on. scripts/
    // check_device_files.sh diffs two runs of this to pin determinism.
    try {
      const arch::Device device = make_device(opts.describe_device);
      char fp[32];
      std::snprintf(fp, sizeof(fp), "0x%016llx",
                    static_cast<unsigned long long>(device.fingerprint()));
      out << "{\"name\": ";
      append_json_string(out, device.name);
      out << ", \"qubits\": " << device.graph.num_qubits()
          << ", \"edges\": " << device.graph.num_edges()
          << ", \"coordinates\": "
          << (device.graph.has_coordinates() ? "true" : "false")
          << ", \"calibrated\": "
          << (device.calibration.empty() ? "false" : "true")
          << ", \"coherence\": "
          << (device.coherence.any_finite() ? "true" : "false")
          << ", \"fingerprint\": \"" << fp << "\"}\n";
      return 0;
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }
  if (opts.list_routers) {
    for (const pipeline::RouterEntry& entry :
         pipeline::RouterRegistry::instance().entries()) {
      out << entry.name << "\t" << entry.description << "\n";
    }
    return 0;
  }
  if (opts.list_mappings) {
    for (const pipeline::MappingEntry& entry :
         pipeline::MappingRegistry::instance().entries()) {
      out << entry.name << "\t" << entry.description << "\n";
    }
    return 0;
  }
  try {
    const arch::Device device = make_device(opts.device);
    if (!opts.batch_dir.empty() || opts.suite || opts.inputs.size() > 1) {
      return run_many(opts, device, out, err);
    }
    return run_single(opts, device, out, err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace codar::cli

#include "codar/cli/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "codar/astar/astar_router.hpp"
#include "codar/cli/device_registry.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/verify.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/ir/peephole.hpp"
#include "codar/layout/initial_mapping.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::cli {

namespace {

/// Shrinks a circuit whose declared register is wider than the device down
/// to its used qubits (QASM files routinely over-declare).
ir::Circuit fit_register(const ir::Circuit& circuit, int device_qubits) {
  if (circuit.num_qubits() <= device_qubits) return circuit;
  const int used = circuit.used_qubit_count();
  if (used > device_qubits) {
    throw std::runtime_error("circuit uses " + std::to_string(used) +
                             " qubits but the device has only " +
                             std::to_string(device_qubits));
  }
  std::vector<ir::Qubit> identity(
      static_cast<std::size_t>(circuit.num_qubits()));
  for (std::size_t q = 0; q < identity.size(); ++q) {
    identity[q] = static_cast<ir::Qubit>(q);
  }
  return circuit.remapped(identity, used);
}

layout::Layout choose_initial(const ir::Circuit& circuit,
                              const arch::Device& device,
                              const Options& opts) {
  switch (opts.mapping) {
    case MappingKind::kIdentity:
      return layout::Layout(circuit.num_qubits(), device.graph.num_qubits());
    case MappingKind::kGreedy:
      return layout::greedy_interaction_layout(circuit, device.graph);
    case MappingKind::kSabre:
      return sabre::SabreRouter(device).initial_mapping(
          circuit, opts.mapping_rounds, opts.seed);
  }
  throw std::logic_error("unreachable mapping kind");
}

core::RoutingResult dispatch_route(const ir::Circuit& circuit,
                                   const layout::Layout& initial,
                                   const arch::Device& device,
                                   const Options& opts) {
  switch (opts.router) {
    case RouterKind::kCodar:
      return core::CodarRouter(device, opts.codar).route(circuit, initial);
    case RouterKind::kSabre:
      return sabre::SabreRouter(device).route(circuit, initial);
    case RouterKind::kAstar:
      return astar::AstarRouter(device).route(circuit, initial);
  }
  throw std::logic_error("unreachable router kind");
}

void json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';  // other control chars: not worth escaping exactly
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

RouteReport route_circuit(const ir::Circuit& circuit,
                          const arch::Device& device, const Options& opts,
                          bool keep_qasm) {
  RouteReport report;
  report.name = circuit.name();
  try {
    ir::Circuit lowered =
        fit_register(ir::decompose_toffoli(circuit),
                     device.graph.num_qubits());
    if (opts.peephole) lowered = ir::peephole_optimize(lowered);
    report.qubits = lowered.used_qubit_count();
    report.gates_in = lowered.size();
    report.depth_in = schedule::weighted_depth(lowered, device.durations);

    const layout::Layout initial = choose_initial(lowered, device, opts);
    const auto route_start = std::chrono::steady_clock::now();
    const core::RoutingResult result =
        dispatch_route(lowered, initial, device, opts);
    report.route_us = static_cast<std::size_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - route_start)
            .count());

    report.gates_out = result.circuit.size();
    report.gates_routed = result.stats.gates_routed;
    report.barriers = result.stats.barriers;
    report.swaps = result.stats.swaps_inserted;
    report.forced_swaps = result.stats.forced_swaps;
    report.escape_swaps = result.stats.escape_swaps;
    report.cycles = result.stats.cycles_simulated;
    report.makespan = result.stats.router_makespan;
    report.depth_out =
        schedule::weighted_depth(result.circuit, device.durations);

    if (opts.verify) {
      const core::VerifyOutcome outcome =
          core::verify_routing(lowered, result, device.graph);
      report.verified = outcome.valid;
      if (!outcome.valid) {
        report.error = "verification failed: " + outcome.reason;
        return report;
      }
    } else {
      report.verify_skipped = true;
    }
    if (keep_qasm) report.routed_qasm = qasm::to_qasm(result.circuit);
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

std::vector<RouteReport> run_batch(
    const std::vector<workloads::BenchmarkSpec>& jobs,
    const arch::Device& device, const Options& opts) {
  std::vector<RouteReport> results(jobs.size());
  if (jobs.empty()) return results;
  int threads = opts.threads > 0
                    ? opts.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp<int>(threads, 1, static_cast<int>(jobs.size()));

  // Work stealing off one atomic counter; each worker routes with its own
  // router instance (constructed inside route_circuit), so concurrent jobs
  // share only the immutable device model and options.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      results[i] =
          route_circuit(jobs[i].circuit, device, opts, /*keep_qasm=*/false);
      results[i].name = jobs[i].name;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return results;
}

std::string to_json(const RouteReport& r, const Options& opts) {
  std::ostringstream out;
  out << "{\"name\": ";
  json_string(out, r.name);
  out << ", \"device\": ";
  json_string(out, opts.device);
  out << ", \"router\": ";
  json_string(out, to_string(opts.router));
  out << ", \"initial\": ";
  json_string(out, to_string(opts.mapping));
  if (!r.error.empty()) {
    out << ", \"error\": ";
    json_string(out, r.error);
  }
  out << ", \"qubits\": " << r.qubits << ", \"gates_in\": " << r.gates_in
      << ", \"gates_out\": " << r.gates_out
      << ", \"gates_routed\": " << r.gates_routed
      << ", \"barriers\": " << r.barriers << ", \"swaps\": " << r.swaps
      << ", \"forced_swaps\": " << r.forced_swaps
      << ", \"escape_swaps\": " << r.escape_swaps
      << ", \"cycles\": " << r.cycles << ", \"makespan\": " << r.makespan;
  // Wall time is the one nondeterministic stat: opt-in so default output
  // stays bit-identical across runs and thread counts.
  if (opts.timing) out << ", \"route_us\": " << r.route_us;
  out
      << ", \"weighted_depth_in\": " << r.depth_in
      << ", \"weighted_depth_out\": " << r.depth_out << ", \"verified\": "
      << (r.verified ? "true" : "false") << "}";
  return out.str();
}

std::string to_json(const std::vector<RouteReport>& reports,
                    const Options& opts) {
  std::size_t failed = 0;
  std::size_t swaps = 0;
  std::size_t route_us = 0;
  long long depth_in = 0;
  long long depth_out = 0;
  std::ostringstream out;
  out << "{\"results\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  " << to_json(reports[i], opts);
    if (!reports[i].ok()) ++failed;
    swaps += reports[i].swaps;
    route_us += reports[i].route_us;
    depth_in += reports[i].depth_in;
    depth_out += reports[i].depth_out;
  }
  out << "\n], \"summary\": {\"total\": " << reports.size()
      << ", \"failed\": " << failed << ", \"swaps\": " << swaps;
  if (opts.timing) out << ", \"route_us\": " << route_us;
  out << ", \"weighted_depth_in\": " << depth_in
      << ", \"weighted_depth_out\": " << depth_out << "}}";
  return out.str();
}

namespace {

/// Writes `text` to `path`, or to `fallback` when path is empty.
void write_text(const std::string& path, const std::string& text,
                std::ostream& fallback) {
  if (path.empty()) {
    fallback << text;
    if (!text.empty() && text.back() != '\n') fallback << '\n';
    return;
  }
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write " + path);
  file << text;
  if (!text.empty() && text.back() != '\n') file << '\n';
}

int run_single(const Options& opts, const arch::Device& device,
               std::ostream& out, std::ostream& err) {
  RouteReport report;
  try {
    // Load failures get the same JSON error report as in batch mode (so
    // scripts can rely on the stats output existing, and exit 1 means
    // "this circuit failed" while 2 stays "bad invocation").
    const ir::Circuit circuit = qasm::parse_file(opts.inputs.front());
    report = route_circuit(circuit, device, opts, /*keep_qasm=*/true);
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  if (report.name.empty()) report.name = opts.inputs.front();
  if (report.error.empty()) {
    write_text(opts.output_path, report.routed_qasm, out);
  } else {
    err << "error: " << report.name << ": " << report.error << "\n";
  }
  write_text(opts.stats_path, to_json(report, opts), err);
  return report.ok() ? 0 : 1;
}

int run_many(const Options& opts, const arch::Device& device,
             std::ostream& out, std::ostream& err) {
  std::vector<workloads::BenchmarkSpec> jobs;
  // Jobs that already failed at load time, keyed by output position.
  std::vector<std::optional<RouteReport>> preloaded;

  auto add_file = [&](const std::filesystem::path& path) {
    RouteReport failure;
    failure.name = path.filename().string();
    try {
      ir::Circuit circuit = qasm::parse_file(path.string());
      circuit.set_name(path.filename().string());
      jobs.push_back({path.filename().string(), std::move(circuit)});
      preloaded.emplace_back(std::nullopt);
      return;
    } catch (const std::exception& e) {
      failure.error = e.what();
    }
    preloaded.emplace_back(std::move(failure));
  };

  if (opts.suite) {
    jobs = workloads::benchmark_suite();
    preloaded.assign(jobs.size(), std::nullopt);
  } else if (!opts.batch_dir.empty()) {
    std::vector<std::filesystem::path> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(opts.batch_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".qasm") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
      err << "error: no .qasm files under " << opts.batch_dir << "\n";
      return 2;
    }
    for (const auto& path : paths) add_file(path);
  } else {
    for (const std::string& input : opts.inputs) add_file(input);
  }

  const std::vector<RouteReport> routed = run_batch(jobs, device, opts);

  // Merge routed results back into input order around the load failures.
  std::vector<RouteReport> reports;
  reports.reserve(preloaded.size());
  std::size_t next_routed = 0;
  for (auto& slot : preloaded) {
    if (slot.has_value()) {
      reports.push_back(std::move(*slot));
    } else {
      reports.push_back(routed[next_routed++]);
    }
  }

  write_text(opts.stats_path, to_json(reports, opts), out);
  const std::size_t failed = static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [](const RouteReport& r) { return !r.ok(); }));
  err << reports.size() - failed << "/" << reports.size() << " circuits "
      << "routed on " << opts.device << " with " << to_string(opts.router)
      << (failed ? " (FAILURES above)" : "") << "\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Options opts;
  try {
    opts = parse_args(args);
  } catch (const UsageError& e) {
    err << "error: " << e.what() << "\n\n" << usage();
    return 2;
  }
  if (opts.help) {
    out << usage();
    return 0;
  }
  if (opts.list_devices) {
    for (const DeviceEntry& entry : device_catalog()) {
      out << entry.spec << "\t" << entry.description << "\n";
    }
    return 0;
  }
  try {
    const arch::Device device = make_device(opts.device);
    if (!opts.batch_dir.empty() || opts.suite || opts.inputs.size() > 1) {
      return run_many(opts, device, out, err);
    }
    return run_single(opts, device, out, err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace codar::cli

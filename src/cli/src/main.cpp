// Entry point of the `codar` binary; all behavior lives in codar::cli and
// codar::service so the integration tests can drive it in-process.

#include <iostream>
#include <string>
#include <vector>

#include "codar/cli/driver.hpp"
#include "codar/service/server.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args.front() == "serve") {
    return codar::service::run_serve_cli({args.begin() + 1, args.end()},
                                         std::cin, std::cout, std::cerr);
  }
  return codar::cli::run_cli(args, std::cout, std::cerr);
}

// Entry point of the `codar` binary; all behavior lives in codar::cli so
// the integration tests can drive it in-process.

#include <iostream>
#include <string>
#include <vector>

#include "codar/cli/driver.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return codar::cli::run_cli(args, std::cout, std::cerr);
}

#include "codar/cli/device_registry.hpp"

namespace codar::cli {

arch::Device make_device(const std::string& spec) {
  return pipeline::DeviceRegistry::instance().make(spec);
}

const std::vector<DeviceEntry>& device_catalog() {
  return pipeline::DeviceRegistry::instance().entries();
}

}  // namespace codar::cli

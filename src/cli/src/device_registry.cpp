#include "codar/cli/device_registry.hpp"

#include <charconv>
#include <stdexcept>

#include "codar/arch/extra_devices.hpp"

namespace codar::cli {

namespace {

int parse_param(const std::string& spec, const std::string& text) {
  int n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  if (ec != std::errc() || ptr != text.data() + text.size() || n <= 0) {
    throw std::invalid_argument("bad device parameter in '" + spec + "'");
  }
  return n;
}

}  // namespace

arch::Device make_device(const std::string& spec) {
  // Fixed presets (the paper's four evaluation architectures + the unit-test
  // bow-tie), with the aliases people actually type.
  if (spec == "q16" || spec == "ibm_q16") return arch::ibm_q16();
  if (spec == "tokyo" || spec == "q20" || spec == "ibm_q20_tokyo") {
    return arch::ibm_q20_tokyo();
  }
  if (spec == "enfield" || spec == "6x6" || spec == "enfield_6x6") {
    return arch::enfield_6x6();
  }
  if (spec == "sycamore" || spec == "q54" || spec == "google_sycamore54") {
    return arch::google_sycamore54();
  }
  if (spec == "yorktown" || spec == "q5" || spec == "ibm_q5_yorktown") {
    return arch::ibm_q5_yorktown();
  }

  // Parameterized generators: name:param.
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos && colon > 0 && colon + 1 < spec.size()) {
    const std::string kind = spec.substr(0, colon);
    const std::string param = spec.substr(colon + 1);
    if (kind == "grid") {
      const std::size_t x = param.find('x');
      if (x == std::string::npos || x == 0 || x + 1 >= param.size()) {
        throw std::invalid_argument("grid expects grid:RxC, got '" + spec +
                                    "'");
      }
      return arch::grid(parse_param(spec, param.substr(0, x)),
                        parse_param(spec, param.substr(x + 1)));
    }
    if (kind == "linear") return arch::linear(parse_param(spec, param));
    if (kind == "ring") return arch::ring(parse_param(spec, param));
    if (kind == "heavyhex") {
      const int d = parse_param(spec, param);
      if (d < 3 || d % 2 == 0) {
        throw std::invalid_argument("heavyhex distance must be odd and >= 3");
      }
      return arch::heavy_hex(d);
    }
    if (kind == "octagons") {
      return arch::rigetti_octagons(parse_param(spec, param));
    }
    if (kind == "iontrap") {
      return arch::ion_trap_all_to_all(parse_param(spec, param));
    }
  }
  throw std::invalid_argument("unknown device '" + spec +
                              "' (see --list-devices)");
}

const std::vector<DeviceEntry>& device_catalog() {
  static const std::vector<DeviceEntry> catalog = {
      {"q16", "IBM Q16 (2x8 lattice, 16 qubits)"},
      {"tokyo", "IBM Q20 Tokyo (4x5 lattice + diagonals, 20 qubits)"},
      {"enfield", "Enfield 6x6 square lattice (36 qubits)"},
      {"sycamore", "Google Q54 Sycamore diamond lattice (54 qubits)"},
      {"yorktown", "IBM Q5 bow-tie (5 qubits, unit tests)"},
      {"grid:RxC", "R x C square lattice"},
      {"linear:N", "path graph on N qubits"},
      {"ring:N", "cycle graph on N qubits"},
      {"heavyhex:D", "IBM heavy-hex lattice, odd distance D >= 3"},
      {"octagons:N", "Rigetti Aspen chain of N fused octagons"},
      {"iontrap:N", "trapped-ion all-to-all over N qubits"},
  };
  return catalog;
}

}  // namespace codar::cli

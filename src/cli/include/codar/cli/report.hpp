#pragma once

// The canonical JSON rendering of route reports, plus the one-circuit
// convenience wrapper the batch driver and the `codar serve` service
// share. The pipeline itself (stage sequence, pass resolution, report
// production) lives in codar::pipeline — this header is the presentation
// layer: RouteReport → stable-key-order JSON, byte-identical across entry
// points (the serve differential test locks `to_json` output against
// batch output).

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/cli/options.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/pipeline/pipeline.hpp"

namespace codar::cli {

/// Everything the driver reports about one routed circuit — the pipeline's
/// report type, re-exported under its historical CLI name.
using RouteReport = pipeline::RouteReport;

/// Routes one circuit on `device` per `opts` (router, mapping, knobs,
/// verify) through a freshly resolved pipeline::Pipeline. Never throws for
/// routing/verification problems — failures (including unknown router or
/// mapping names) land in `error`. `keep_qasm` controls whether
/// routed_qasm is rendered.
RouteReport route_circuit(const ir::Circuit& circuit,
                          const arch::Device& device, const Options& opts,
                          bool keep_qasm);

/// Writes `s` as a JSON string literal (quoted, escaped) to `out`.
void append_json_string(std::ostream& out, std::string_view s);

/// JSON object for one report (stable key order, integers only; the
/// nondeterministic route_us/stage_us fields appear only under
/// opts.timing).
std::string to_json(const RouteReport& report, const Options& opts);

/// JSON array over all reports plus a summary object.
std::string to_json(const std::vector<RouteReport>& reports,
                    const Options& opts);

}  // namespace codar::cli

#pragma once

// The shared routing pipeline behind every codar entry point: one circuit
// in, one RouteReport out, plus the canonical JSON rendering of reports.
// Extracted from driver.cpp so the batch driver and the `codar serve`
// service (src/service) run byte-identical pipelines — the serve
// differential test locks `to_json` output against batch output.

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/cli/options.hpp"
#include "codar/ir/circuit.hpp"

namespace codar::cli {

/// Everything the driver reports about one routed circuit. All counters are
/// integers so the JSON rendering is bit-exact across runs and thread
/// counts.
struct RouteReport {
  std::string name;
  std::string error;         ///< Nonempty = the job failed; other fields stale.
  bool verified = false;     ///< verify_routing passed (false if skipped).
  bool verify_skipped = false;
  int qubits = 0;            ///< Logical qubits used by the input.
  std::size_t gates_in = 0;
  std::size_t gates_out = 0; ///< Routed gates incl. SWAPs.
  std::size_t gates_routed = 0;  ///< Real (non-barrier) input gates routed.
  std::size_t barriers = 0;      ///< Barrier fences carried through.
  std::size_t swaps = 0;
  std::size_t forced_swaps = 0;
  std::size_t escape_swaps = 0;
  std::size_t cycles = 0;        ///< Distinct simulated timestamps (CODAR).
  std::size_t route_us = 0;      ///< route() wall time, microseconds.
  arch::Duration makespan = 0;   ///< Router's own timeline length.
  arch::Duration depth_in = 0;   ///< Duration-weighted depth before routing.
  arch::Duration depth_out = 0;  ///< ... and after (the paper's metric).
  std::string routed_qasm;       ///< Empty in batch mode.

  bool ok() const { return error.empty() && (verified || verify_skipped); }
};

/// Routes one circuit on `device` per `opts` (router, mapping, CodarConfig,
/// verify). Lowers Toffolis first; runs the peephole pass when requested.
/// Never throws for routing/verification problems — failures land in
/// `error`. `keep_qasm` controls whether routed_qasm is rendered.
RouteReport route_circuit(const ir::Circuit& circuit,
                          const arch::Device& device, const Options& opts,
                          bool keep_qasm);

/// Writes `s` as a JSON string literal (quoted, escaped) to `out`.
void append_json_string(std::ostream& out, std::string_view s);

/// JSON object for one report (stable key order, integers only).
std::string to_json(const RouteReport& report, const Options& opts);

/// JSON array over all reports plus a summary object.
std::string to_json(const std::vector<RouteReport>& reports,
                    const Options& opts);

}  // namespace codar::cli

#pragma once

// Name → Device factory covering every preset in arch/device.cpp and
// arch/extra_devices.cpp, plus parameterized specs for the generic
// generators:
//
//   q16 | tokyo | enfield | sycamore | yorktown      (fixed presets)
//   grid:RxC | linear:N | ring:N                     (lattice generators)
//   heavyhex:D | octagons:N | iontrap:N              (extra architectures)

#include <string>
#include <vector>

#include "codar/arch/device.hpp"

namespace codar::cli {

/// Builds the device named by `spec`. Throws std::invalid_argument for an
/// unknown name or out-of-range parameter.
arch::Device make_device(const std::string& spec);

/// One catalog row for --list-devices.
struct DeviceEntry {
  std::string spec;         ///< Canonical name or parameterized form.
  std::string description;
};

/// Every supported spec, fixed presets first.
const std::vector<DeviceEntry>& device_catalog();

}  // namespace codar::cli

#pragma once

// Compatibility shim: the device catalog moved to the string-keyed
// pipeline::DeviceRegistry (codar/pipeline/device_registry.hpp) in PR 5,
// alongside RouterRegistry and MappingRegistry, so every front end shares
// one catalog and third-party devices can register themselves. These
// forwarders keep the old cli:: spellings working; new code should use
// the registry directly.

#include <string>
#include <vector>

#include "codar/pipeline/device_registry.hpp"

namespace codar::cli {

/// One catalog row (the registry's entry type; `spec` + `description` are
/// the fields the old cli::DeviceEntry carried).
using DeviceEntry = pipeline::DeviceEntry;

/// Builds the device named by `spec` via DeviceRegistry::instance().
/// Throws UsageError (listing every registered spec) for an unknown name
/// or malformed parameter.
arch::Device make_device(const std::string& spec);

/// Every registered entry, presets first (registration order).
const std::vector<DeviceEntry>& device_catalog();

}  // namespace codar::cli

#pragma once

// The driver behind the `codar` binary, exposed as a library so the
// integration tests can exercise exactly what the CLI runs. The one-circuit
// pipeline (route_circuit + RouteReport + to_json) lives in report.hpp;
// this header adds the batch fan-out (run_batch: a job list over a thread
// pool, share-nothing per job, results in input order regardless of thread
// count) and the full single/batch CLI entry point.

#include <string>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/cli/options.hpp"
#include "codar/cli/report.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::cli {

/// Routes every job across `opts.threads` worker threads (0 = hardware
/// concurrency). Jobs are claimed from a shared atomic counter; each worker
/// builds its own router, so no routing state is shared. The result vector
/// is indexed like `jobs` — identical output for any thread count.
std::vector<RouteReport> run_batch(
    const std::vector<workloads::BenchmarkSpec>& jobs,
    const arch::Device& device, const Options& opts);

/// Full CLI: parse args, run single or batch mode, write QASM/stats to the
/// configured streams/files. Returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace codar::cli

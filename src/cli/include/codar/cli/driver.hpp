#pragma once

// The driver behind the `codar` binary, exposed as a library so the
// integration tests can exercise exactly what the CLI runs. Two entry
// points: route_circuit (one circuit → one report) and run_batch (a job
// list fanned out over a thread pool, share-nothing per job, results in
// input order regardless of thread count).

#include <string>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/cli/options.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::cli {

/// Everything the driver reports about one routed circuit. All counters are
/// integers so the JSON rendering is bit-exact across runs and thread
/// counts.
struct RouteReport {
  std::string name;
  std::string error;         ///< Nonempty = the job failed; other fields stale.
  bool verified = false;     ///< verify_routing passed (false if skipped).
  bool verify_skipped = false;
  int qubits = 0;            ///< Logical qubits used by the input.
  std::size_t gates_in = 0;
  std::size_t gates_out = 0; ///< Routed gates incl. SWAPs.
  std::size_t gates_routed = 0;  ///< Real (non-barrier) input gates routed.
  std::size_t barriers = 0;      ///< Barrier fences carried through.
  std::size_t swaps = 0;
  std::size_t forced_swaps = 0;
  std::size_t escape_swaps = 0;
  std::size_t cycles = 0;        ///< Distinct simulated timestamps (CODAR).
  std::size_t route_us = 0;      ///< route() wall time, microseconds.
  arch::Duration makespan = 0;   ///< Router's own timeline length.
  arch::Duration depth_in = 0;   ///< Duration-weighted depth before routing.
  arch::Duration depth_out = 0;  ///< ... and after (the paper's metric).
  std::string routed_qasm;       ///< Empty in batch mode.

  bool ok() const { return error.empty() && (verified || verify_skipped); }
};

/// Routes one circuit on `device` per `opts` (router, mapping, CodarConfig,
/// verify). Lowers Toffolis first; runs the peephole pass when requested.
/// Never throws for routing/verification problems — failures land in
/// `error`. `keep_qasm` controls whether routed_qasm is rendered.
RouteReport route_circuit(const ir::Circuit& circuit,
                          const arch::Device& device, const Options& opts,
                          bool keep_qasm);

/// Routes every job across `opts.threads` worker threads (0 = hardware
/// concurrency). Jobs are claimed from a shared atomic counter; each worker
/// builds its own router, so no routing state is shared. The result vector
/// is indexed like `jobs` — identical output for any thread count.
std::vector<RouteReport> run_batch(
    const std::vector<workloads::BenchmarkSpec>& jobs,
    const arch::Device& device, const Options& opts);

/// JSON object for one report (stable key order, integers only).
std::string to_json(const RouteReport& report, const Options& opts);

/// JSON array over all reports plus a summary object.
std::string to_json(const std::vector<RouteReport>& reports,
                    const Options& opts);

/// Full CLI: parse args, run single or batch mode, write QASM/stats to the
/// configured streams/files. Returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace codar::cli

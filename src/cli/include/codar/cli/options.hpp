#pragma once

// Command-line surface of the `codar` driver binary: QASM in, routed QASM
// out, with device/router/initial-mapping selection, CodarConfig knobs,
// JSON statistics and a multi-threaded batch mode (directory of .qasm
// files, or the built-in 71-benchmark suite).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "codar/core/codar_router.hpp"

namespace codar::cli {

/// Which routing pass to run.
enum class RouterKind { kCodar, kSabre, kAstar };

/// How the initial layout π is chosen.
enum class MappingKind {
  kIdentity,  ///< π(q) = q.
  kGreedy,    ///< layout::greedy_interaction_layout.
  kSabre,     ///< SABRE reverse-traversal refinement (the paper's protocol).
};

/// Raised on malformed command lines; `what()` is the message to print
/// (the caller appends the usage text).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Options {
  std::vector<std::string> inputs;  ///< Positional .qasm files.
  std::string batch_dir;            ///< --batch DIR: route every *.qasm in DIR.
  bool suite = false;               ///< --suite: route the built-in suite.

  std::string device = "tokyo";     ///< --device SPEC (see device_registry).
  RouterKind router = RouterKind::kCodar;      ///< --router codar|sabre|astar.
  MappingKind mapping = MappingKind::kSabre;   ///< --initial identity|greedy|sabre.
  core::CodarConfig codar;          ///< --no-context / --no-duration / ...
  std::uint64_t seed = 17;          ///< --seed N (initial-mapping RNG).
  int mapping_rounds = 3;           ///< --mapping-rounds N (SABRE refinement).

  int threads = 0;                  ///< --threads N; 0 = hardware concurrency.
  bool verify = true;               ///< --no-verify skips verify_routing.
  bool peephole = false;            ///< --peephole: pre-routing cleanup pass.
  bool timing = false;              ///< --timing: route_us in the JSON stats.

  std::string output_path;          ///< -o FILE: routed QASM (default stdout).
  std::string stats_path;           ///< --stats FILE: JSON (default stderr/stdout).
  bool list_devices = false;        ///< --list-devices.
  bool help = false;                ///< --help.
};

/// Parses argv (excluding argv[0]). Throws UsageError on malformed input.
Options parse_args(const std::vector<std::string>& args);

/// Shared option plumbing for every subcommand: tries to consume one
/// routing-related flag (--device/--router/--initial/--seed/
/// --mapping-rounds/--threads/--no-verify/--timing/--peephole and the
/// CODAR ablation knobs) into `opts`. `value` must yield the flag's
/// argument (and may throw UsageError when none is left). Returns false
/// when `arg` is not a routing flag, so the caller can handle its own
/// mode/I-O flags. Used by parse_args and by `codar serve`, whose
/// requests default to the flags given on the serve command line.
bool parse_routing_flag(Options& opts, const std::string& arg,
                        const std::function<std::string()>& value);

/// The full usage/help text.
std::string usage();

/// Lower-case name of a router / mapping kind (for JSON and messages).
std::string to_string(RouterKind kind);
std::string to_string(MappingKind kind);

}  // namespace codar::cli

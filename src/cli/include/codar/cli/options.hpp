#pragma once

// Command-line surface of the `codar` driver binary: QASM in, routed QASM
// out, with device/router/initial-mapping selection, per-pass knobs, JSON
// statistics and a multi-threaded batch mode (directory of .qasm files, or
// the built-in 71-benchmark suite).
//
// Router and initial-mapping selection is string-keyed through the
// pipeline registries: `--router`/`--initial` validate against the
// registered names, `--list-routers`/`--list-mappings` enumerate them, and
// pass-specific knob flags (the CODAR ablation switches, --seed,
// --mapping-rounds) are parsed by the hooks the passes registered — a new
// pass never needs a CLI edit.

#include <functional>
#include <string>
#include <vector>

#include "codar/pipeline/registry.hpp"
#include "codar/pipeline/spec.hpp"

namespace codar::cli {

/// Raised on malformed command lines; `what()` is the message to print
/// (the caller appends the usage text). Shared with the pipeline layer so
/// registry lookups and knob hooks throw the same type the CLI catches.
using UsageError = pipeline::UsageError;

/// The routing-relevant core (router/mapping names, knobs, verify,
/// peephole) is the library-level RoutingSpec; Options adds the CLI's
/// I/O and presentation fields on top.
struct Options : pipeline::RoutingSpec {
  std::vector<std::string> inputs;  ///< Positional .qasm files.
  std::string batch_dir;            ///< --batch DIR: route every *.qasm in DIR.
  bool suite = false;               ///< --suite: route the built-in suite.

  std::string device = "tokyo";     ///< --device SPEC (see device_registry).

  int threads = 0;                  ///< --threads N; 0 = hardware concurrency.
  bool timing = false;              ///< --timing: stage wall times in the JSON.

  std::string output_path;          ///< -o FILE: routed QASM (default stdout).
  std::string stats_path;           ///< --stats FILE: JSON (default stderr/stdout).
  std::string describe_device;      ///< --describe-device SPEC.
  bool list_devices = false;        ///< --list-devices.
  bool list_routers = false;        ///< --list-routers.
  bool list_mappings = false;       ///< --list-mappings.
  bool help = false;                ///< --help.
};

/// Parses argv (excluding argv[0]). Throws UsageError on malformed input.
Options parse_args(const std::vector<std::string>& args);

/// Shared option plumbing for every subcommand: tries to consume one
/// routing-related flag into `opts` — the generic selection flags
/// (--device/--router/--initial/--threads/--no-verify/--timing/--peephole)
/// plus any knob flag claimed by a registered pass's parsing hook.
/// `value` must yield the flag's argument (and may throw UsageError when
/// none is left). Returns false when `arg` is not a routing flag, so the
/// caller can handle its own mode/I-O flags. Used by parse_args and by
/// `codar serve`, whose requests default to the flags given on the serve
/// command line.
bool parse_routing_flag(Options& opts, const std::string& arg,
                        const std::function<std::string()>& value);

/// The full usage/help text.
std::string usage();

}  // namespace codar::cli

#pragma once

// SABRE baseline (Li, Ding, Xie — ASPLOS 2019): the SWAP-based
// bidirectional heuristic the paper compares CODAR against. Implements the
// published algorithm from its description:
//
//  * DAG front layer F; every dependency-free, coupling-compliant gate is
//    retired eagerly;
//  * when F is blocked, candidate SWAPs are the coupling edges incident to
//    F's physical qubits, scored by nearest-neighbour distance over F plus
//    a look-ahead term over the extended set E (successor 2-qubit gates),
//    multiplied by a decay factor that discourages serializing SWAPs on
//    the same qubits;
//  * initial mappings come from reverse-traversal refinement: route the
//    circuit forward, route its reverse starting from the resulting final
//    layout, and iterate.
//
// SABRE is duration- and context-blind by design — that is precisely the
// gap CODAR exploits.

#include "codar/arch/device.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/layout/layout.hpp"

namespace codar::sabre {

/// Tuning knobs with the values published in the SABRE paper.
struct SabreConfig {
  double extended_weight = 0.5;  ///< W: weight of the look-ahead term.
  int extended_set_size = 20;    ///< |E| cap.
  double decay_delta = 0.001;    ///< Per-use decay increment.
  int decay_reset_interval = 5;  ///< SWAP selections between decay resets.
  /// Consecutive SWAPs without progress before the shortest-path escape
  /// (anti-livelock guard; the published algorithm can oscillate on
  /// symmetric scores).
  int stagnation_threshold = 30;
};

/// The SABRE routing pass.
class SabreRouter {
 public:
  explicit SabreRouter(const arch::Device& device, SabreConfig config = {});

  const SabreConfig& config() const { return config_; }

  /// Routes `circuit` (lowered to <=2-qubit gates) from `initial`.
  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const;

  /// Routes from the identity layout.
  core::RoutingResult route(const ir::Circuit& circuit) const;

  /// SABRE's reverse-traversal initial mapping: starts from a seeded random
  /// layout and refines it with `rounds` forward+backward routing passes.
  /// The paper's evaluation hands this same mapping to both routers.
  layout::Layout initial_mapping(const ir::Circuit& circuit, int rounds = 3,
                                 std::uint64_t seed = 17) const;

 private:
  arch::Device device_;  ///< Copied: the router owns its device model.
  SabreConfig config_;
};

}  // namespace codar::sabre

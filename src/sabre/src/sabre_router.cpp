#include "codar/sabre/sabre_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "codar/arch/distance_oracle.hpp"
#include "codar/ir/dag.hpp"
#include "codar/ir/decompose.hpp"

namespace codar::sabre {

namespace {

using core::RouterStats;
using core::RoutingResult;
using ir::Gate;
using ir::GateKind;
using ir::Qubit;

constexpr std::size_t kMaxIterations = 50'000'000;

/// Working state of one SABRE route() invocation.
class SabreRun {
 public:
  SabreRun(const arch::Device& device, const SabreConfig& config,
           const ir::Circuit& input, const layout::Layout& initial)
      : device_(device),
        config_(config),
        dist_(device.graph.oracle()),
        input_(input),
        dag_(input),
        pi_(initial),
        initial_(initial),
        decay_(static_cast<std::size_t>(device.graph.num_qubits()), 1.0),
        out_(device.graph.num_qubits(), input.name() + "_sabre") {
    unresolved_.resize(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
      unresolved_[i] = dag_.in_degree(static_cast<int>(i));
      if (unresolved_[i] == 0) front_.push_back(static_cast<int>(i));
    }
  }

  RoutingResult run() {
    std::size_t iterations = 0;
    while (!front_.empty()) {
      if (++iterations > kMaxIterations) {
        throw std::runtime_error(
            "SabreRouter: iteration cap exceeded (livelock?)");
      }
      if (execute_ready()) {
        since_progress_ = 0;
        continue;
      }
      if (since_progress_ >= config_.stagnation_threshold) {
        escape_swap();
      } else {
        best_swap();
      }
      ++since_progress_;
    }
    RoutingResult result{std::move(out_), std::move(initial_), std::move(pi_),
                         stats_};
    result.stats.barriers = input_.barrier_count();
    result.stats.gates_routed = input_.size() - result.stats.barriers;
    return result;
  }

 private:
  bool executable(const Gate& g) const {
    if (g.num_qubits() != 2 || g.kind() == GateKind::kBarrier) return true;
    return device_.graph.connected(pi_.physical(g.qubit(0)),
                                   pi_.physical(g.qubit(1)));
  }

  /// Retires every executable front gate; returns true when any retired.
  bool execute_ready() {
    bool any = false;
    for (std::size_t i = 0; i < front_.size();) {
      const int gi = front_[i];
      const Gate& g = input_.gate(static_cast<std::size_t>(gi));
      if (!executable(g)) {
        ++i;
        continue;
      }
      out_.add(g.remapped([&](Qubit lq) { return pi_.physical(lq); }));
      front_[i] = front_.back();
      front_.pop_back();
      for (const int succ : dag_.successors(gi)) {
        if (--unresolved_[static_cast<std::size_t>(succ)] == 0) {
          front_.push_back(succ);
        }
      }
      any = true;
    }
    if (any) {
      std::fill(decay_.begin(), decay_.end(), 1.0);
      decay_rounds_ = 0;
    }
    return any;
  }

  /// Candidate SWAPs: coupling edges incident to the physical positions of
  /// the front gates' qubits.
  std::vector<std::pair<Qubit, Qubit>> candidates() const {
    std::vector<std::pair<Qubit, Qubit>> edges;
    for (const int gi : front_) {
      const Gate& g = input_.gate(static_cast<std::size_t>(gi));
      for (const Qubit lq : g.qubits()) {
        const Qubit p = pi_.physical(lq);
        for (const Qubit nb : device_.graph.neighbors(p)) {
          const std::pair<Qubit, Qubit> edge{std::min(p, nb),
                                             std::max(p, nb)};
          if (std::find(edges.begin(), edges.end(), edge) == edges.end()) {
            edges.push_back(edge);
          }
        }
      }
    }
    return edges;
  }

  /// Extended set E: the next 2-qubit gates reachable from the front layer
  /// through the DAG, capped at config.extended_set_size.
  std::vector<int> extended_set() const {
    std::vector<int> ext;
    std::vector<int> queue = front_;
    std::vector<bool> seen(input_.size(), false);
    for (const int gi : queue) seen[static_cast<std::size_t>(gi)] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      if (ext.size() >= static_cast<std::size_t>(config_.extended_set_size))
        break;
      for (const int succ : dag_.successors(queue[head])) {
        if (seen[static_cast<std::size_t>(succ)]) continue;
        seen[static_cast<std::size_t>(succ)] = true;
        queue.push_back(succ);
        const Gate& g = input_.gate(static_cast<std::size_t>(succ));
        if (g.num_qubits() == 2 && g.kind() != GateKind::kBarrier) {
          ext.push_back(succ);
          if (ext.size() >=
              static_cast<std::size_t>(config_.extended_set_size))
            break;
        }
      }
    }
    return ext;
  }

  double distance_after(const Gate& g, Qubit sa, Qubit sb) const {
    auto moved = [&](Qubit p) {
      if (p == sa) return sb;
      if (p == sb) return sa;
      return p;
    };
    const Qubit pa = moved(pi_.physical(g.qubit(0)));
    const Qubit pb = moved(pi_.physical(g.qubit(1)));
    return static_cast<double>(dist_.distance(pa, pb));
  }

  void best_swap() {
    const auto edges = candidates();
    CODAR_ENSURES(!edges.empty());
    const std::vector<int> ext = extended_set();
    // Front 2-qubit gates (everything executable was already retired, so
    // every remaining front gate is a blocked 2-qubit gate).
    std::vector<int> front2q;
    for (const int gi : front_) {
      const Gate& g = input_.gate(static_cast<std::size_t>(gi));
      if (g.num_qubits() == 2 && g.kind() != GateKind::kBarrier) {
        front2q.push_back(gi);
      }
    }
    CODAR_ENSURES(!front2q.empty());

    double best_score = 0.0;
    std::pair<Qubit, Qubit> best{-1, -1};
    for (const auto& [sa, sb] : edges) {
      double front_cost = 0.0;
      for (const int gi : front2q) {
        front_cost +=
            distance_after(input_.gate(static_cast<std::size_t>(gi)), sa, sb);
      }
      front_cost /= static_cast<double>(front2q.size());
      double ext_cost = 0.0;
      if (!ext.empty()) {
        for (const int gi : ext) {
          ext_cost += distance_after(input_.gate(static_cast<std::size_t>(gi)),
                                     sa, sb);
        }
        ext_cost /= static_cast<double>(ext.size());
      }
      const double decay = std::max(decay_[static_cast<std::size_t>(sa)],
                                    decay_[static_cast<std::size_t>(sb)]);
      const double score =
          decay * (front_cost + config_.extended_weight * ext_cost);
      if (best.first < 0 || score < best_score) {
        best_score = score;
        best = {sa, sb};
      }
    }
    apply_swap(best.first, best.second);
  }

  /// Anti-livelock: move the oldest front gate one step along a shortest
  /// path (same guarantee as CODAR's escape).
  void escape_swap() {
    const int gi = *std::min_element(front_.begin(), front_.end());
    const Gate& g = input_.gate(static_cast<std::size_t>(gi));
    CODAR_ENSURES(g.num_qubits() == 2);
    const Qubit pa = pi_.physical(g.qubit(0));
    const Qubit pb = pi_.physical(g.qubit(1));
    Qubit step = -1;
    for (const Qubit nb : device_.graph.neighbors(pa)) {
      if (step < 0 || dist_.distance(nb, pb) < dist_.distance(step, pb)) {
        step = nb;
      }
    }
    CODAR_ENSURES(step >= 0);
    apply_swap(pa, step);
    ++stats_.escape_swaps;
  }

  void apply_swap(Qubit a, Qubit b) {
    out_.swap(a, b);
    pi_.swap_physical(a, b);
    decay_[static_cast<std::size_t>(a)] += config_.decay_delta;
    decay_[static_cast<std::size_t>(b)] += config_.decay_delta;
    ++stats_.swaps_inserted;
    if (++decay_rounds_ >= config_.decay_reset_interval) {
      std::fill(decay_.begin(), decay_.end(), 1.0);
      decay_rounds_ = 0;
    }
  }

  const arch::Device& device_;
  const SabreConfig& config_;
  const arch::DistanceOracle& dist_;  ///< Cached distance backend.
  const ir::Circuit& input_;
  ir::DependencyDag dag_;
  layout::Layout pi_;
  layout::Layout initial_;
  std::vector<int> unresolved_;
  std::vector<int> front_;
  std::vector<double> decay_;
  int decay_rounds_ = 0;
  int since_progress_ = 0;
  ir::Circuit out_;
  RouterStats stats_;
};

}  // namespace

SabreRouter::SabreRouter(const arch::Device& device, SabreConfig config)
    : device_(device), config_(config) {
  CODAR_EXPECTS(device.graph.is_fully_connected());
  CODAR_EXPECTS(config.extended_set_size >= 0);
  CODAR_EXPECTS(config.stagnation_threshold >= 1);
}

RoutingResult SabreRouter::route(const ir::Circuit& circuit,
                                 const layout::Layout& initial) const {
  CODAR_EXPECTS(ir::is_two_qubit_lowered(circuit));
  CODAR_EXPECTS(circuit.num_qubits() <= device_.graph.num_qubits());
  CODAR_EXPECTS(initial.num_logical() == circuit.num_qubits());
  CODAR_EXPECTS(initial.num_physical() == device_.graph.num_qubits());
  SabreRun run(device_, config_, circuit, initial);
  return run.run();
}

RoutingResult SabreRouter::route(const ir::Circuit& circuit) const {
  return route(circuit, layout::Layout(circuit.num_qubits(),
                                       device_.graph.num_qubits()));
}

layout::Layout SabreRouter::initial_mapping(const ir::Circuit& circuit,
                                            int rounds,
                                            std::uint64_t seed) const {
  CODAR_EXPECTS(rounds >= 1);
  layout::Layout layout = layout::random_layout(
      circuit.num_qubits(), device_.graph.num_qubits(), seed);
  const ir::Circuit reversed = circuit.reversed();
  for (int r = 0; r < rounds; ++r) {
    layout = route(circuit, layout).final;
    layout = route(reversed, layout).final;
  }
  return layout;
}

}  // namespace codar::sabre

#include "codar/arch/coupling_graph.hpp"

#include <algorithm>
#include <deque>

#include "codar/common/fnv.hpp"

namespace codar::arch {

CouplingGraph::CouplingGraph(int num_qubits) : num_qubits_(num_qubits) {
  CODAR_EXPECTS(num_qubits > 0);
  adjacency_.resize(static_cast<std::size_t>(num_qubits));
}

void CouplingGraph::check_qubit(Qubit q) const {
  CODAR_EXPECTS(q >= 0 && q < num_qubits_);
}

void CouplingGraph::add_edge(Qubit a, Qubit b) {
  check_qubit(a);
  check_qubit(b);
  CODAR_EXPECTS(a != b);
  CODAR_EXPECTS(!connected(a, b));
  adjacency_[static_cast<std::size_t>(a)].push_back(b);
  adjacency_[static_cast<std::size_t>(b)].push_back(a);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
  dist_valid_ = false;
}

bool CouplingGraph::connected(Qubit a, Qubit b) const {
  check_qubit(a);
  check_qubit(b);
  const auto& adj = adjacency_[static_cast<std::size_t>(a)];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

const std::vector<Qubit>& CouplingGraph::neighbors(Qubit q) const {
  check_qubit(q);
  return adjacency_[static_cast<std::size_t>(q)];
}

void CouplingGraph::ensure_distances() const {
  if (dist_valid_) return;
  const auto n = static_cast<std::size_t>(num_qubits_);
  dist_.assign(n * n, kInfDistance);
  std::deque<Qubit> queue;
  for (std::size_t src = 0; src < n; ++src) {
    int* row = dist_.data() + src * n;
    row[src] = 0;
    queue.clear();
    queue.push_back(static_cast<Qubit>(src));
    while (!queue.empty()) {
      const Qubit u = queue.front();
      queue.pop_front();
      for (const Qubit v : adjacency_[static_cast<std::size_t>(u)]) {
        if (row[static_cast<std::size_t>(v)] == kInfDistance) {
          row[static_cast<std::size_t>(v)] =
              row[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  dist_valid_ = true;
}

int CouplingGraph::distance(Qubit a, Qubit b) const {
  check_qubit(a);
  check_qubit(b);
  ensure_distances();
  return dist_[static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(num_qubits_) +
               static_cast<std::size_t>(b)];
}

bool CouplingGraph::is_fully_connected() const {
  for (Qubit q = 1; q < num_qubits_; ++q) {
    if (distance(0, q) >= kInfDistance) return false;
  }
  return true;
}

void CouplingGraph::set_coordinates(std::vector<Coordinate> coords) {
  CODAR_EXPECTS(coords.size() == static_cast<std::size_t>(num_qubits_));
  coords_ = std::move(coords);
}

Coordinate CouplingGraph::coordinate(Qubit q) const {
  check_qubit(q);
  CODAR_EXPECTS(has_coordinates());
  return coords_[static_cast<std::size_t>(q)];
}

std::uint64_t CouplingGraph::fingerprint() const {
  common::Fnv1a h;
  h.u64(1);  // fingerprint schema version
  h.i64(num_qubits_);
  std::vector<std::pair<Qubit, Qubit>> sorted = edges_;
  for (auto& [a, b] : sorted) {
    if (a > b) std::swap(a, b);
  }
  std::sort(sorted.begin(), sorted.end());
  h.u64(sorted.size());
  for (const auto& [a, b] : sorted) {
    h.i64(a);
    h.i64(b);
  }
  h.byte(has_coordinates() ? 1 : 0);
  for (const Coordinate& c : coords_) {
    h.i64(c.row);
    h.i64(c.col);
  }
  return h.value();
}

}  // namespace codar::arch

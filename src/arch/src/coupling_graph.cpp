#include "codar/arch/coupling_graph.hpp"

#include <algorithm>

#include "codar/arch/distance_oracle.hpp"
#include "codar/common/fnv.hpp"

namespace codar::arch {

CouplingGraph::CouplingGraph(int num_qubits) : num_qubits_(num_qubits) {
  CODAR_EXPECTS(num_qubits > 0);
  adjacency_.resize(static_cast<std::size_t>(num_qubits));
  adjacency_edge_ids_.resize(static_cast<std::size_t>(num_qubits));
}

CouplingGraph::~CouplingGraph() = default;

CouplingGraph::CouplingGraph(CouplingGraph&& other) noexcept
    : num_qubits_(other.num_qubits_),
      adjacency_(std::move(other.adjacency_)),
      adjacency_edge_ids_(std::move(other.adjacency_edge_ids_)),
      edges_(std::move(other.edges_)),
      coords_(std::move(other.coords_)),
      policy_(other.policy_) {
  // Moving requires exclusive access to both operands (the source is being
  // destroyed-in-place; no concurrent reader may exist), so the oracle is
  // stolen without other.oracle_mutex_. Constructors are outside the
  // thread-safety analysis — *this is not shared yet.
  oracle_ = std::move(other.oracle_);
  oracle_published_.store(oracle_.get(), std::memory_order_release);
  other.oracle_published_.store(nullptr, std::memory_order_release);
}

CouplingGraph& CouplingGraph::operator=(CouplingGraph&& other) noexcept {
  if (this == &other) return *this;
  num_qubits_ = other.num_qubits_;
  adjacency_ = std::move(other.adjacency_);
  adjacency_edge_ids_ = std::move(other.adjacency_edge_ids_);
  edges_ = std::move(other.edges_);
  coords_ = std::move(other.coords_);
  policy_ = other.policy_;
  // Assignment mutates *this, which requires exclusive access like any
  // other mutation; the locks below only satisfy the guarded_by contract
  // (and make the source safe to steal from while *it* is still shared).
  std::shared_ptr<const DistanceOracle> stolen;
  {
    const common::MutexLock lock(other.oracle_mutex_);
    stolen = std::move(other.oracle_);
  }
  other.oracle_published_.store(nullptr, std::memory_order_release);
  {
    const common::MutexLock lock(oracle_mutex_);
    oracle_ = std::move(stolen);
    oracle_published_.store(oracle_.get(), std::memory_order_release);
  }
  return *this;
}

CouplingGraph::CouplingGraph(const CouplingGraph& other)
    : num_qubits_(other.num_qubits_),
      adjacency_(other.adjacency_),
      adjacency_edge_ids_(other.adjacency_edge_ids_),
      edges_(other.edges_),
      coords_(other.coords_),
      policy_(other.policy_) {
  // Sharing the (immutable) oracle is sound because both sides describe
  // the same structure; add_edge()/set_distance_policy() detach by reset.
  // The source may be mid-lazy-build in another thread, so its shared_ptr
  // is read under its build mutex.
  const common::MutexLock lock(other.oracle_mutex_);
  oracle_ = other.oracle_;
  oracle_published_.store(oracle_.get(), std::memory_order_release);
}

CouplingGraph& CouplingGraph::operator=(const CouplingGraph& other) {
  if (this == &other) return *this;
  num_qubits_ = other.num_qubits_;
  adjacency_ = other.adjacency_;
  adjacency_edge_ids_ = other.adjacency_edge_ids_;
  edges_ = other.edges_;
  coords_ = other.coords_;
  policy_ = other.policy_;
  std::shared_ptr<const DistanceOracle> shared;
  {
    const common::MutexLock lock(other.oracle_mutex_);
    shared = other.oracle_;
  }
  {
    const common::MutexLock lock(oracle_mutex_);
    oracle_ = std::move(shared);
    oracle_published_.store(oracle_.get(), std::memory_order_release);
  }
  return *this;
}

void CouplingGraph::check_qubit(Qubit q) const {
  CODAR_EXPECTS(q >= 0 && q < num_qubits_);
}

void CouplingGraph::add_edge(Qubit a, Qubit b) {
  check_qubit(a);
  check_qubit(b);
  CODAR_EXPECTS(a != b);
  CODAR_EXPECTS(!connected(a, b));
  const int edge_id = static_cast<int>(edges_.size());
  adjacency_[static_cast<std::size_t>(a)].push_back(b);
  adjacency_[static_cast<std::size_t>(b)].push_back(a);
  adjacency_edge_ids_[static_cast<std::size_t>(a)].push_back(edge_id);
  adjacency_edge_ids_[static_cast<std::size_t>(b)].push_back(edge_id);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
  reset_oracle();
}

bool CouplingGraph::connected(Qubit a, Qubit b) const {
  check_qubit(a);
  check_qubit(b);
  const auto& adj = adjacency_[static_cast<std::size_t>(a)];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

const std::vector<Qubit>& CouplingGraph::neighbors(Qubit q) const {
  check_qubit(q);
  return adjacency_[static_cast<std::size_t>(q)];
}

std::span<const int> CouplingGraph::incident_edge_ids(Qubit q) const {
  check_qubit(q);
  return adjacency_edge_ids_[static_cast<std::size_t>(q)];
}

const DistanceOracle& CouplingGraph::build_oracle() const {
  const common::MutexLock lock(oracle_mutex_);
  if (!oracle_) {
    // make_distance_oracle only reads the adjacency, which cannot be
    // mutated concurrently (mutation requires exclusive graph access), so
    // only the build itself needs serializing. Losers of the race wait
    // here and reuse the winner's oracle.
    oracle_ = make_distance_oracle(*this, policy_);
    oracle_published_.store(oracle_.get(), std::memory_order_release);
  }
  return *oracle_;
}

const DistanceOracle& CouplingGraph::oracle() const {
  if (const DistanceOracle* built =
          oracle_published_.load(std::memory_order_acquire)) {
    return *built;
  }
  return build_oracle();
}

void CouplingGraph::prepare() const {
  // Both backends build their tables eagerly at construction, so forcing
  // the oracle into existence is all the pre-warm there is.
  (void)oracle();
}

std::size_t CouplingGraph::distance_footprint_bytes() const {
  return oracle().footprint_bytes();
}

void CouplingGraph::reset_oracle() {
  const common::MutexLock lock(oracle_mutex_);
  oracle_.reset();
  oracle_published_.store(nullptr, std::memory_order_release);
}

void CouplingGraph::set_distance_policy(DistancePolicy policy) {
  policy_ = policy;
  reset_oracle();
}

int CouplingGraph::distance(Qubit a, Qubit b) const {
  check_qubit(a);
  check_qubit(b);
  return oracle().distance(a, b);
}

bool CouplingGraph::is_fully_connected() const {
  // One BFS row answers this for every backend (the on-demand oracle
  // caches the source-0 row; dense reads the matrix).
  const DistanceOracle& d = oracle();
  for (Qubit q = 1; q < num_qubits_; ++q) {
    if (d.distance(0, q) >= kInfDistance) return false;
  }
  return true;
}

void CouplingGraph::set_coordinates(std::vector<Coordinate> coords) {
  CODAR_EXPECTS(coords.size() == static_cast<std::size_t>(num_qubits_));
  coords_ = std::move(coords);
}

Coordinate CouplingGraph::coordinate(Qubit q) const {
  check_qubit(q);
  CODAR_EXPECTS(has_coordinates());
  return coords_[static_cast<std::size_t>(q)];
}

std::uint64_t CouplingGraph::fingerprint() const {
  common::Fnv1a h;
  h.u64(1);  // fingerprint schema version
  h.i64(num_qubits_);
  std::vector<std::pair<Qubit, Qubit>> sorted = edges_;
  for (auto& [a, b] : sorted) {
    if (a > b) std::swap(a, b);
  }
  std::sort(sorted.begin(), sorted.end());
  h.u64(sorted.size());
  for (const auto& [a, b] : sorted) {
    h.i64(a);
    h.i64(b);
  }
  h.byte(has_coordinates() ? 1 : 0);
  for (const Coordinate& c : coords_) {
    h.i64(c.row);
    h.i64(c.col);
  }
  return h.value();
}

}  // namespace codar::arch

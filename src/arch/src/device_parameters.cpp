#include "codar/arch/device_parameters.hpp"

#include <algorithm>
#include <cmath>

namespace codar::arch {

const std::vector<DeviceParameters>& table1_parameters() {
  // Representative midpoints of the ranges in the paper's Table I.
  static const std::vector<DeviceParameters> params = {
      {"Ion Q5", "ion trap", "R(theta,alpha)", "XX", 0.991, 0.97, 0.997, 20.0,
       250.0, -1.0, 500000.0},
      {"Ion Q11", "ion trap", "R(theta,alpha)", "XX", 0.995, 0.975, 0.993,
       20.0, 250.0, -1.0, 500000.0},
      {"IBM Q5", "superconducting", "X,Y,Z,H,S,T", "CNOT", 0.997, 0.965, 0.96,
       0.13, 0.35, 60.0, 60.0},
      {"IBM Q16", "superconducting", "X,Y,Z,H,S,T", "CNOT", 0.998, 0.96, 0.93,
       0.08, 0.28, 70.0, 70.0},
      {"IBM Q20", "superconducting", "X,Y,Z,H,S,T", "CNOT", 0.9956, 0.97,
       0.912, 0.08, 0.28, 87.29, 54.43},
      {"Neutral Atom", "neutral atom", "R(theta,alpha)", "CNOT", 0.99995,
       0.82, 0.986, 10.0, 10.0, 10000000.0, 1000000.0},
  };
  return params;
}

int duration_ratio_cycles(const DeviceParameters& params) {
  const double ratio = params.time_2q_us / params.time_1q_us;
  return std::max(1, static_cast<int>(std::lround(ratio)));
}

}  // namespace codar::arch

#include "codar/arch/calibration.hpp"

#include <algorithm>

#include "codar/common/fnv.hpp"

namespace codar::arch {

namespace {

CalibrationTable::Edge normalized(Qubit a, Qubit b) {
  CODAR_EXPECTS(a >= 0 && b >= 0 && a != b);
  return {std::min(a, b), std::max(a, b)};
}

void check_duration(Duration d) { CODAR_EXPECTS(d >= 0); }

// Fidelity 0 is rejected alongside out-of-range values: the ESP estimator
// works in log-space and ln(0) would poison every aggregate.
void check_fidelity(double f) { CODAR_EXPECTS(f > 0.0 && f <= 1.0); }

template <typename Map, typename Key>
std::optional<typename Map::mapped_type> lookup(const Map& map,
                                                const Key& key) {
  const auto it = map.find(key);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

}  // namespace

void CalibrationTable::set_duration_1q(Qubit q, Duration d) {
  CODAR_EXPECTS(q >= 0);
  check_duration(d);
  duration_1q_[q] = d;
}

void CalibrationTable::set_duration_readout(Qubit q, Duration d) {
  CODAR_EXPECTS(q >= 0);
  check_duration(d);
  duration_readout_[q] = d;
}

void CalibrationTable::set_duration_2q(Qubit a, Qubit b, Duration d) {
  check_duration(d);
  duration_2q_[normalized(a, b)] = d;
}

void CalibrationTable::set_fidelity_1q(Qubit q, double f) {
  CODAR_EXPECTS(q >= 0);
  check_fidelity(f);
  fidelity_1q_[q] = f;
}

void CalibrationTable::set_fidelity_readout(Qubit q, double f) {
  CODAR_EXPECTS(q >= 0);
  check_fidelity(f);
  fidelity_readout_[q] = f;
}

void CalibrationTable::set_fidelity_2q(Qubit a, Qubit b, double f) {
  check_fidelity(f);
  fidelity_2q_[normalized(a, b)] = f;
}

std::optional<Duration> CalibrationTable::duration_1q(Qubit q) const {
  return lookup(duration_1q_, q);
}

std::optional<Duration> CalibrationTable::duration_readout(Qubit q) const {
  return lookup(duration_readout_, q);
}

std::optional<Duration> CalibrationTable::duration_2q(Qubit a,
                                                      Qubit b) const {
  return lookup(duration_2q_, normalized(a, b));
}

std::optional<double> CalibrationTable::fidelity_1q(Qubit q) const {
  return lookup(fidelity_1q_, q);
}

std::optional<double> CalibrationTable::fidelity_readout(Qubit q) const {
  return lookup(fidelity_readout_, q);
}

std::optional<double> CalibrationTable::fidelity_2q(Qubit a, Qubit b) const {
  return lookup(fidelity_2q_, normalized(a, b));
}

void CalibrationTable::clear_durations() {
  duration_1q_.clear();
  duration_readout_.clear();
  duration_2q_.clear();
}

std::uint64_t CalibrationTable::fingerprint() const {
  common::Fnv1a h;
  h.u64(1);  // calibration fingerprint schema version
  auto fold_qubit_durations = [&](const std::map<Qubit, Duration>& map) {
    h.u64(map.size());
    for (const auto& [q, d] : map) {
      h.i64(q);
      h.i64(d);
    }
  };
  auto fold_edge_durations = [&](const std::map<Edge, Duration>& map) {
    h.u64(map.size());
    for (const auto& [e, d] : map) {
      h.i64(e.first);
      h.i64(e.second);
      h.i64(d);
    }
  };
  auto fold_qubit_fidelities = [&](const std::map<Qubit, double>& map) {
    h.u64(map.size());
    for (const auto& [q, f] : map) {
      h.i64(q);
      h.f64(f);
    }
  };
  auto fold_edge_fidelities = [&](const std::map<Edge, double>& map) {
    h.u64(map.size());
    for (const auto& [e, f] : map) {
      h.i64(e.first);
      h.i64(e.second);
      h.f64(f);
    }
  };
  fold_qubit_durations(duration_1q_);
  fold_qubit_durations(duration_readout_);
  fold_edge_durations(duration_2q_);
  fold_qubit_fidelities(fidelity_1q_);
  fold_qubit_fidelities(fidelity_readout_);
  fold_edge_fidelities(fidelity_2q_);
  return h.value();
}

}  // namespace codar::arch

#include "codar/arch/durations.hpp"

#include "codar/common/fnv.hpp"

namespace codar::arch {

using ir::GateKind;

DurationMap::DurationMap() {
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    const ir::GateInfo& info = ir::gate_info(kind);
    if (kind == GateKind::kBarrier) {
      table_[i] = 0;
    } else if (kind == GateKind::kMeasure) {
      table_[i] = 1;
    } else if (kind == GateKind::kSwap) {
      table_[i] = 6;
    } else if (kind == GateKind::kCCX) {
      table_[i] = 12;  // six CX at 2 cycles each, 1q gates absorbed
    } else if (info.num_qubits == 2) {
      table_[i] = 2;
    } else {
      table_[i] = 1;
    }
  }
}

void DurationMap::set(GateKind kind, Duration d) {
  CODAR_EXPECTS(d >= 0);
  table_[static_cast<std::size_t>(kind)] = d;
}

void DurationMap::set_all_single_qubit(Duration d) {
  CODAR_EXPECTS(d >= 0);
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    if (ir::gate_info(kind).num_qubits == 1 && ir::is_unitary(kind)) {
      table_[i] = d;
    }
  }
}

void DurationMap::set_all_two_qubit(Duration d) {
  CODAR_EXPECTS(d >= 0);
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    if (ir::gate_info(kind).num_qubits == 2 && kind != GateKind::kSwap) {
      table_[i] = d;
    }
  }
}

DurationMap DurationMap::superconducting() { return DurationMap(); }

DurationMap DurationMap::ion_trap() {
  DurationMap m;
  m.set_all_two_qubit(12);
  m.set(GateKind::kSwap, 36);
  m.set(GateKind::kCCX, 72);
  return m;
}

DurationMap DurationMap::neutral_atom() {
  DurationMap m;
  m.set_all_single_qubit(2);
  m.set_all_two_qubit(1);
  m.set(GateKind::kSwap, 3);
  m.set(GateKind::kCCX, 6);
  m.set(GateKind::kMeasure, 2);
  return m;
}

DurationMap DurationMap::uniform() {
  DurationMap m;
  m.set_all_two_qubit(1);
  m.set(GateKind::kSwap, 3);
  m.set(GateKind::kCCX, 6);
  return m;
}

std::uint64_t DurationMap::fingerprint() const {
  common::Fnv1a h;
  h.u64(1);  // fingerprint schema version
  h.u64(table_.size());
  for (const Duration d : table_) h.i64(d);
  return h.value();
}

}  // namespace codar::arch

#include "codar/arch/device.hpp"

#include <map>

#include "codar/common/fnv.hpp"

namespace codar::arch {

Duration Device::duration(ir::GateKind kind,
                          std::span<const Qubit> phys) const {
  const Duration base = durations.of(kind);
  if (calibration.empty()) return base;
  const int arity = ir::gate_info(kind).num_qubits;
  if (arity == 1 && !phys.empty()) {
    if (kind == ir::GateKind::kMeasure) {
      if (const auto d = calibration.duration_readout(phys[0])) return *d;
    } else if (ir::is_unitary(kind)) {
      if (const auto d = calibration.duration_1q(phys[0])) return *d;
    }
  } else if (arity == 2 && phys.size() >= 2) {
    if (const auto d = calibration.duration_2q(phys[0], phys[1])) {
      // SWAP keeps the three-CX convention of the kind-level defaults.
      return kind == ir::GateKind::kSwap ? 3 * *d : *d;
    }
  }
  return base;
}

double Device::fidelity(ir::GateKind kind,
                        std::span<const Qubit> phys) const {
  const double base = fidelities.of(kind);
  if (calibration.empty()) return base;
  const int arity = ir::gate_info(kind).num_qubits;
  if (arity == 1 && !phys.empty()) {
    if (kind == ir::GateKind::kMeasure) {
      if (const auto f = calibration.fidelity_readout(phys[0])) return *f;
    } else if (ir::is_unitary(kind)) {
      if (const auto f = calibration.fidelity_1q(phys[0])) return *f;
    }
  } else if (arity == 2 && phys.size() >= 2) {
    if (const auto f = calibration.fidelity_2q(phys[0], phys[1])) {
      return kind == ir::GateKind::kSwap ? *f * *f * *f : *f;
    }
  }
  return base;
}

std::uint64_t Device::fingerprint() const {
  common::Fnv1a h;
  h.u64(2);  // fingerprint schema version (2: + fidelities + calibration)
  h.u64(graph.fingerprint());
  h.u64(durations.fingerprint());
  h.u64(fidelities.fingerprint());
  h.u64(calibration.fingerprint());
  // Coherence entered the model after schema v2 shipped; fold it only when
  // finite (behind an extension tag) so every pre-coherence device keeps
  // its pinned v2 value, while a finite-T1/T2 device can never alias its
  // ideal twin in the serve route cache.
  if (coherence.any_finite()) {
    h.u64(3);  // coherence extension tag
    h.f64(coherence.t1);
    h.f64(coherence.t2);
  }
  return h.value();
}

namespace {

/// Builds a rows×cols lattice: edges between horizontal and vertical
/// neighbours, coordinates (row, col) attached.
CouplingGraph make_grid_graph(int rows, int cols) {
  CODAR_EXPECTS(rows > 0 && cols > 0);
  CouplingGraph g(rows * cols);
  std::vector<Coordinate> coords;
  coords.reserve(static_cast<std::size_t>(rows * cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const Qubit q = r * cols + c;
      if (c + 1 < cols) g.add_edge(q, q + 1);
      if (r + 1 < rows) g.add_edge(q, q + cols);
      coords.push_back(Coordinate{r, c});
    }
  }
  g.set_coordinates(std::move(coords));
  return g;
}

}  // namespace

Device ibm_q16() {
  return Device{"IBM Q16", make_grid_graph(2, 8),
                DurationMap::superconducting()};
}

Device ibm_q20_tokyo() {
  CouplingGraph g(20);
  std::vector<Coordinate> coords;
  coords.reserve(20);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) {
      const Qubit q = r * 5 + c;
      if (c + 1 < 5) g.add_edge(q, q + 1);
      if (r + 1 < 4) g.add_edge(q, q + 5);
      coords.push_back(Coordinate{r, c});
    }
  }
  // The published Tokyo map adds diagonal couplers inside alternating
  // lattice squares (the "X" cells in the SABRE paper's figure).
  const std::pair<Qubit, Qubit> diagonals[] = {
      {1, 7},  {2, 6},  {3, 9},  {4, 8},  {5, 11},  {6, 10},
      {7, 13}, {8, 12}, {11, 17}, {12, 16}, {13, 19}, {14, 18}};
  for (const auto& [a, b] : diagonals) g.add_edge(a, b);
  g.set_coordinates(std::move(coords));
  return Device{"IBM Q20 Tokyo", std::move(g),
                DurationMap::superconducting()};
}

Device enfield_6x6() {
  return Device{"Enfield 6x6", make_grid_graph(6, 6),
                DurationMap::superconducting()};
}

Device google_sycamore54() {
  // Diamond-shaped subset of the square lattice matching the Sycamore
  // qubit arrangement: per-row column ranges, grid adjacency.
  const std::pair<int, int> row_span[] = {
      {5, 6}, {4, 7}, {3, 8}, {2, 9}, {1, 9}, {0, 8}, {1, 7}, {2, 6},
      {3, 5}, {4, 4}};
  std::map<std::pair<int, int>, Qubit> index_of;
  std::vector<Coordinate> coords;
  Qubit next = 0;
  for (int r = 0; r < 10; ++r) {
    for (int c = row_span[r].first; c <= row_span[r].second; ++c) {
      index_of[{r, c}] = next++;
      coords.push_back(Coordinate{r, c});
    }
  }
  CODAR_ENSURES(next == 54);
  CouplingGraph g(54);
  for (const auto& [rc, q] : index_of) {
    const auto right = index_of.find({rc.first, rc.second + 1});
    if (right != index_of.end()) g.add_edge(q, right->second);
    const auto down = index_of.find({rc.first + 1, rc.second});
    if (down != index_of.end()) g.add_edge(q, down->second);
  }
  g.set_coordinates(std::move(coords));
  return Device{"Google Q54 Sycamore", std::move(g),
                DurationMap::superconducting()};
}

Device ibm_q5_yorktown() {
  CouplingGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  return Device{"IBM Q5 Yorktown", std::move(g),
                DurationMap::superconducting()};
}

Device grid(int rows, int cols, DurationMap durations) {
  return Device{"grid " + std::to_string(rows) + "x" + std::to_string(cols),
                make_grid_graph(rows, cols), durations};
}

Device linear(int n, DurationMap durations) {
  CODAR_EXPECTS(n > 0);
  CouplingGraph g(n);
  std::vector<Coordinate> coords;
  for (Qubit q = 0; q < n; ++q) {
    if (q + 1 < n) g.add_edge(q, q + 1);
    coords.push_back(Coordinate{0, q});
  }
  g.set_coordinates(std::move(coords));
  return Device{"linear " + std::to_string(n), std::move(g), durations};
}

Device ring(int n, DurationMap durations) {
  CODAR_EXPECTS(n >= 3);
  CouplingGraph g(n);
  for (Qubit q = 0; q < n; ++q) g.add_edge(q, (q + 1) % n);
  return Device{"ring " + std::to_string(n), std::move(g), durations};
}

std::vector<Device> paper_architectures() {
  std::vector<Device> out;
  out.push_back(ibm_q16());
  out.push_back(enfield_6x6());
  out.push_back(ibm_q20_tokyo());
  out.push_back(google_sycamore54());
  return out;
}

}  // namespace codar::arch

#include "codar/arch/fidelity_map.hpp"

#include <cmath>

namespace codar::arch {

using ir::GateKind;

FidelityMap::FidelityMap() { table_.fill(1.0); }

void FidelityMap::set(GateKind kind, double fidelity) {
  CODAR_EXPECTS(fidelity >= 0.0 && fidelity <= 1.0);
  table_[static_cast<std::size_t>(kind)] = fidelity;
}

void FidelityMap::set_all_single_qubit(double fidelity) {
  CODAR_EXPECTS(fidelity >= 0.0 && fidelity <= 1.0);
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    if (ir::gate_info(kind).num_qubits == 1 && ir::is_unitary(kind)) {
      table_[i] = fidelity;
    }
  }
}

void FidelityMap::set_all_two_qubit(double fidelity) {
  CODAR_EXPECTS(fidelity >= 0.0 && fidelity <= 1.0);
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    if (ir::gate_info(kind).num_qubits == 2) table_[i] = fidelity;
  }
  set(GateKind::kSwap, std::pow(fidelity, 3.0));
  set(GateKind::kCCX, std::pow(fidelity, 6.0));
}

void FidelityMap::set_measure(double fidelity) {
  set(GateKind::kMeasure, fidelity);
}

FidelityMap FidelityMap::superconducting() {
  FidelityMap m;
  m.set_all_single_qubit(0.9977);
  m.set_all_two_qubit(0.965);
  m.set_measure(0.93);
  return m;
}

FidelityMap FidelityMap::ion_trap() {
  FidelityMap m;
  m.set_all_single_qubit(0.993);
  m.set_all_two_qubit(0.973);
  m.set_measure(0.995);
  return m;
}

FidelityMap FidelityMap::neutral_atom() {
  FidelityMap m;
  m.set_all_single_qubit(0.99995);
  m.set_all_two_qubit(0.82);
  m.set_measure(0.986);
  return m;
}

}  // namespace codar::arch

#include "codar/arch/fidelity_map.hpp"

#include <cmath>

#include "codar/common/fnv.hpp"

namespace codar::arch {

using ir::GateKind;

FidelityMap::FidelityMap() { table_.fill(1.0); }

void FidelityMap::set(GateKind kind, double fidelity) {
  CODAR_EXPECTS(fidelity > 0.0 && fidelity <= 1.0);
  table_[static_cast<std::size_t>(kind)] = fidelity;
}

void FidelityMap::set_all_single_qubit(double fidelity) {
  CODAR_EXPECTS(fidelity > 0.0 && fidelity <= 1.0);
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    if (ir::gate_info(kind).num_qubits == 1 && ir::is_unitary(kind)) {
      table_[i] = fidelity;
    }
  }
}

void FidelityMap::set_all_two_qubit(double fidelity) {
  CODAR_EXPECTS(fidelity > 0.0 && fidelity <= 1.0);
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<GateKind>(i);
    if (ir::gate_info(kind).num_qubits == 2) table_[i] = fidelity;
  }
  // Plain multiplications, not std::pow: these values feed the pinned
  // fingerprints (the serve route-cache key), and pow is not correctly
  // rounded on every libm — IEEE products are bit-exact everywhere.
  const double cube = fidelity * fidelity * fidelity;
  set(GateKind::kSwap, cube);
  set(GateKind::kCCX, cube * cube);
}

void FidelityMap::set_measure(double fidelity) {
  set(GateKind::kMeasure, fidelity);
}

std::uint64_t FidelityMap::fingerprint() const {
  common::Fnv1a h;
  h.u64(1);  // fingerprint schema version
  h.u64(table_.size());
  for (const double f : table_) h.f64(f);
  return h.value();
}

FidelityMap FidelityMap::superconducting() {
  FidelityMap m;
  m.set_all_single_qubit(0.9977);
  m.set_all_two_qubit(0.965);
  m.set_measure(0.93);
  return m;
}

FidelityMap FidelityMap::ion_trap() {
  FidelityMap m;
  m.set_all_single_qubit(0.993);
  m.set_all_two_qubit(0.973);
  m.set_measure(0.995);
  return m;
}

FidelityMap FidelityMap::neutral_atom() {
  FidelityMap m;
  m.set_all_single_qubit(0.99995);
  m.set_all_two_qubit(0.82);
  m.set_measure(0.986);
  return m;
}

}  // namespace codar::arch

#include "codar/arch/device_json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace codar::arch {

using common::Json;

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("device json: " + what);
}

/// Strict-schema helper: every key of `obj` must appear in `allowed`, and
/// no key may repeat (find() would silently drop all but the first).
/// O(N log N) — inline serve devices are untrusted, so a huge object must
/// not buy quadratic validation time on the reader thread.
void check_keys(const Json& obj, const char* context,
                std::initializer_list<std::string_view> allowed) {
  std::set<std::string_view> seen;
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const std::string_view a : allowed) known = known || key == a;
    if (!known) bad(std::string("unknown key '") + key + "' in " + context);
    if (!seen.insert(key).second) {
      bad(std::string("duplicate key '") + key + "' in " + context);
    }
  }
}

/// Duplicate-key check for objects whose keys are free-form (the per-kind
/// tables, where any gate mnemonic is legal). O(N log N), as check_keys.
void check_no_duplicates(const Json& obj, const char* context) {
  std::set<std::string_view> seen;
  for (const auto& [key, value] : obj.members()) {
    if (!seen.insert(key).second) {
      bad("duplicate key '" + key + "' in " + context);
    }
  }
}

long long require_int(const Json& v, const char* what) {
  if (!v.is_number()) bad(std::string(what) + " must be an integer");
  const double d = v.as_number();
  if (d != std::floor(d) || std::abs(d) > 9.0e15) {
    bad(std::string(what) + " must be an integer");
  }
  return static_cast<long long>(d);
}

Duration require_duration(const Json& v, const char* what) {
  const long long d = require_int(v, what);
  if (d < 0) bad(std::string(what) + " must be >= 0");
  return static_cast<Duration>(d);
}

double require_fidelity(const Json& v, const char* what) {
  if (!v.is_number()) bad(std::string(what) + " must be a number");
  const double f = v.as_number();
  // Zero is rejected alongside out-of-range values: the ESP estimator
  // works in log-space and ln(0) would poison every aggregate.
  if (!(f > 0.0 && f <= 1.0)) {
    bad(std::string(what) + " must be in (0, 1]");
  }
  return f;
}

Qubit require_qubit(const Json& v, int num_qubits, const char* what) {
  const long long q = require_int(v, what);
  if (q < 0 || q >= num_qubits) {
    bad(std::string(what) + " out of range [0, " +
        std::to_string(num_qubits) + ")");
  }
  return static_cast<Qubit>(q);
}

std::pair<Qubit, Qubit> require_edge(const Json& v, int num_qubits,
                                     const char* what) {
  if (!v.is_array() || v.items().size() != 2) {
    bad(std::string(what) + " must be a [a, b] pair");
  }
  const Qubit a = require_qubit(v.items()[0], num_qubits, what);
  const Qubit b = require_qubit(v.items()[1], num_qubits, what);
  if (a == b) bad(std::string(what) + " endpoints must differ");
  return {a, b};
}

/// A decoherence time: positive, possibly fractional, in cycles. Omitted
/// channels stay infinite (ideal), so there is no way to *write* infinity
/// in a file — leave the key out instead.
double require_coherence_time(const Json& v, const char* what) {
  if (!v.is_number()) bad(std::string(what) + " must be a number");
  const double t = v.as_number();
  if (!(t > 0.0) || !std::isfinite(t)) {
    bad(std::string(what) + " must be a positive finite number of cycles");
  }
  return t;
}

Coherence parse_coherence(const Json& obj) {
  check_keys(obj, "'coherence'", {"t1", "t2"});
  Coherence c;
  if (const Json* v = obj.find("t1")) {
    c.t1 = require_coherence_time(*v, "'coherence.t1'");
  }
  if (const Json* v = obj.find("t2")) {
    c.t2 = require_coherence_time(*v, "'coherence.t2'");
  }
  return c;
}

/// qasm mnemonic → GateKind, or throws naming the offender.
ir::GateKind kind_by_name(const std::string& name) {
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<ir::GateKind>(i);
    if (name == ir::gate_info(kind).name) return kind;
  }
  bad("unknown gate kind '" + name + "'");
}

DurationMap parse_durations(const Json& obj) {
  check_keys(obj, "'durations'", {"1q", "2q", "swap", "measure", "kinds"});
  DurationMap m;  // superconducting defaults, as the presets use
  // Broadcast helpers first, per-kind overrides last, independent of the
  // document's member order.
  if (const Json* v = obj.find("1q")) {
    m.set_all_single_qubit(require_duration(*v, "'durations.1q'"));
  }
  if (const Json* v = obj.find("2q")) {
    const Duration d = require_duration(*v, "'durations.2q'");
    m.set_all_two_qubit(d);
    // Derive the composite kinds exactly as the fidelity helper does
    // (f^3 / f^6): SWAP = three CX, CCX = six CX. Explicit "swap" or
    // "kinds" entries below still override.
    m.set(ir::GateKind::kSwap, 3 * d);
    m.set(ir::GateKind::kCCX, 6 * d);
  }
  if (const Json* v = obj.find("swap")) {
    m.set(ir::GateKind::kSwap, require_duration(*v, "'durations.swap'"));
  }
  if (const Json* v = obj.find("measure")) {
    m.set(ir::GateKind::kMeasure,
          require_duration(*v, "'durations.measure'"));
  }
  if (const Json* kinds = obj.find("kinds")) {
    if (!kinds->is_object()) bad("'durations.kinds' must be an object");
    check_no_duplicates(*kinds, "'durations.kinds'");
    for (const auto& [name, v] : kinds->members()) {
      m.set(kind_by_name(name),
            require_duration(v, ("'durations.kinds." + name + "'").c_str()));
    }
  }
  return m;
}

FidelityMap parse_fidelities(const Json& obj) {
  check_keys(obj, "'fidelities'", {"1q", "2q", "measure", "kinds"});
  FidelityMap m;  // ideal defaults
  if (const Json* v = obj.find("1q")) {
    m.set_all_single_qubit(require_fidelity(*v, "'fidelities.1q'"));
  }
  if (const Json* v = obj.find("2q")) {
    // Also derives swap = f^3 and ccx = f^6, as the Table I presets do.
    m.set_all_two_qubit(require_fidelity(*v, "'fidelities.2q'"));
  }
  if (const Json* v = obj.find("measure")) {
    m.set_measure(require_fidelity(*v, "'fidelities.measure'"));
  }
  if (const Json* kinds = obj.find("kinds")) {
    if (!kinds->is_object()) bad("'fidelities.kinds' must be an object");
    check_no_duplicates(*kinds, "'fidelities.kinds'");
    for (const auto& [name, v] : kinds->members()) {
      m.set(kind_by_name(name),
            require_fidelity(v, ("'fidelities.kinds." + name + "'").c_str()));
    }
  }
  return m;
}

CalibrationTable parse_calibration(const Json& obj, const Device& device) {
  check_keys(obj, "'calibration'", {"qubits", "edges"});
  CalibrationTable table;
  const int n = device.graph.num_qubits();
  std::set<Qubit> seen_qubits;
  std::set<std::pair<Qubit, Qubit>> seen_edges;
  if (const Json* qubits = obj.find("qubits")) {
    if (!qubits->is_array()) bad("'calibration.qubits' must be an array");
    for (const Json& entry : qubits->items()) {
      if (!entry.is_object()) {
        bad("'calibration.qubits' entries must be objects");
      }
      check_keys(entry, "a 'calibration.qubits' entry",
                 {"qubit", "duration_1q", "duration_readout", "fidelity_1q",
                  "fidelity_readout"});
      const Json* q = entry.find("qubit");
      if (!q) bad("'calibration.qubits' entry is missing 'qubit'");
      const Qubit qubit = require_qubit(*q, n, "'qubit'");
      // Strict like the top-level edge list: a second entry for the same
      // site would silently overwrite (last one wins) — reject instead.
      if (!seen_qubits.insert(qubit).second) {
        bad("duplicate 'calibration.qubits' entry for qubit " +
            std::to_string(qubit));
      }
      bool any = false;
      if (const Json* v = entry.find("duration_1q")) {
        table.set_duration_1q(qubit, require_duration(*v, "'duration_1q'"));
        any = true;
      }
      if (const Json* v = entry.find("duration_readout")) {
        table.set_duration_readout(
            qubit, require_duration(*v, "'duration_readout'"));
        any = true;
      }
      if (const Json* v = entry.find("fidelity_1q")) {
        table.set_fidelity_1q(qubit, require_fidelity(*v, "'fidelity_1q'"));
        any = true;
      }
      if (const Json* v = entry.find("fidelity_readout")) {
        table.set_fidelity_readout(
            qubit, require_fidelity(*v, "'fidelity_readout'"));
        any = true;
      }
      if (!any) {
        bad("'calibration.qubits' entry for qubit " + std::to_string(qubit) +
            " carries no override");
      }
    }
  }
  if (const Json* edges = obj.find("edges")) {
    if (!edges->is_array()) bad("'calibration.edges' must be an array");
    for (const Json& entry : edges->items()) {
      if (!entry.is_object()) {
        bad("'calibration.edges' entries must be objects");
      }
      check_keys(entry, "a 'calibration.edges' entry",
                 {"edge", "duration_2q", "fidelity_2q"});
      const Json* e = entry.find("edge");
      if (!e) bad("'calibration.edges' entry is missing 'edge'");
      const auto [a, b] = require_edge(*e, n, "'edge'");
      if (!seen_edges.insert({std::min(a, b), std::max(a, b)}).second) {
        bad("duplicate 'calibration.edges' entry for [" + std::to_string(a) +
            ", " + std::to_string(b) + "]");
      }
      if (!device.graph.connected(a, b)) {
        bad("calibration edge [" + std::to_string(a) + ", " +
            std::to_string(b) + "] is not a coupler of the device");
      }
      bool any = false;
      if (const Json* v = entry.find("duration_2q")) {
        table.set_duration_2q(a, b, require_duration(*v, "'duration_2q'"));
        any = true;
      }
      if (const Json* v = entry.find("fidelity_2q")) {
        table.set_fidelity_2q(a, b, require_fidelity(*v, "'fidelity_2q'"));
        any = true;
      }
      if (!any) {
        bad("'calibration.edges' entry for [" + std::to_string(a) + ", " +
            std::to_string(b) + "] carries no override");
      }
    }
  }
  return table;
}

/// Shortest round-trip rendering for a double (to_chars without a
/// precision yields the minimal digits that parse back to the same value).
std::string render_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) bad("unrepresentable number");  // cannot happen
  return std::string(buf, ptr);
}

}  // namespace

Device device_from_json(const Json& doc) {
  if (!doc.is_object()) bad("device description must be a JSON object");
  check_keys(doc, "the device object",
             {"name", "qubits", "edges", "coordinates", "durations",
              "fidelities", "calibration", "coherence"});

  const Json* qubits = doc.find("qubits");
  if (!qubits) bad("missing required key 'qubits'");
  const long long n = require_int(*qubits, "'qubits'");
  // Device descriptions reach the serve process from untrusted request
  // lines, so a huge 'qubits' must not be able to OOM it. Devices above
  // kDenseOracleMaxQubits get the byte-budgeted on-demand distance backend
  // (O(E) + a bounded row cache, not an O(V^2) matrix), which is what
  // makes this cap 65536 rather than the old matrix-bound 4096.
  if (n < 1 || n > 65536) bad("'qubits' must be in [1, 65536]");

  std::string display_name = "json device";
  if (const Json* name = doc.find("name")) {
    if (!name->is_string()) bad("'name' must be a string");
    display_name = name->as_string();
  }

  CouplingGraph graph(static_cast<int>(n));
  const Json* edges = doc.find("edges");
  if (!edges) bad("missing required key 'edges'");
  if (!edges->is_array()) bad("'edges' must be an array");
  for (const Json& e : edges->items()) {
    const auto [a, b] = require_edge(e, static_cast<int>(n), "an edge");
    if (graph.connected(a, b)) {
      bad("duplicate edge [" + std::to_string(a) + ", " + std::to_string(b) +
          "]");
    }
    graph.add_edge(a, b);
  }

  if (const Json* coords = doc.find("coordinates")) {
    if (!coords->is_array() ||
        coords->items().size() != static_cast<std::size_t>(n)) {
      bad("'coordinates' must list one [row, col] per qubit");
    }
    std::vector<Coordinate> parsed;
    parsed.reserve(static_cast<std::size_t>(n));
    auto coord_value = [](const Json& v, const char* what) {
      const long long c = require_int(v, what);
      // Strict like every other numeric field: reject instead of
      // silently truncating through the int narrowing.
      if (c < -1'000'000 || c > 1'000'000) {
        bad(std::string(what) + " out of range [-1000000, 1000000]");
      }
      return static_cast<int>(c);
    };
    for (const Json& c : coords->items()) {
      if (!c.is_array() || c.items().size() != 2) {
        bad("'coordinates' entries must be [row, col] pairs");
      }
      parsed.push_back(
          Coordinate{coord_value(c.items()[0], "a coordinate row"),
                     coord_value(c.items()[1], "a coordinate col")});
    }
    graph.set_coordinates(std::move(parsed));
  }

  // Every consumer (all three routers) requires a connected graph; reject
  // here with a schema-level message instead of leaking the routers'
  // internal precondition later. One linear BFS, deliberately not
  // CouplingGraph::is_fully_connected(): that would compute the full
  // O(V^2) distance matrix, and inline serve devices are parsed on the
  // single reader thread (workers warm the matrix later, off the memo
  // miss path).
  {
    std::vector<char> reached(static_cast<std::size_t>(n), 0);
    std::vector<Qubit> frontier{0};
    reached[0] = 1;
    std::size_t count = 1;
    while (!frontier.empty()) {
      const Qubit q = frontier.back();
      frontier.pop_back();
      for (const Qubit nb : graph.neighbors(q)) {
        if (!reached[static_cast<std::size_t>(nb)]) {
          reached[static_cast<std::size_t>(nb)] = 1;
          ++count;
          frontier.push_back(nb);
        }
      }
    }
    if (count != static_cast<std::size_t>(n)) {
      bad("device graph must be connected (some qubit pairs are "
          "unreachable)");
    }
  }

  Device device{display_name, std::move(graph), DurationMap(),
                FidelityMap(), CalibrationTable()};
  if (const Json* durations = doc.find("durations")) {
    if (!durations->is_object()) bad("'durations' must be an object");
    device.durations = parse_durations(*durations);
  }
  if (const Json* fidelities = doc.find("fidelities")) {
    if (!fidelities->is_object()) bad("'fidelities' must be an object");
    device.fidelities = parse_fidelities(*fidelities);
  }
  if (const Json* calibration = doc.find("calibration")) {
    if (!calibration->is_object()) bad("'calibration' must be an object");
    device.calibration = parse_calibration(*calibration, device);
  }
  if (const Json* coherence = doc.find("coherence")) {
    if (!coherence->is_object()) bad("'coherence' must be an object");
    device.coherence = parse_coherence(*coherence);
  }
  return device;
}

Device device_from_json_text(std::string_view text) {
  try {
    return device_from_json(Json::parse(text));
  } catch (const common::JsonError& e) {
    throw std::invalid_argument(std::string("device json: ") + e.what());
  }
}

Device load_device_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::invalid_argument("cannot read device file '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  try {
    return device_from_json_text(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()) + " (in '" + path +
                                "')");
  }
}

std::string device_to_json(const Device& device) {
  std::ostringstream out;
  out << "{\n  \"name\": " << common::json_quote(device.name)
      << ",\n  \"qubits\": " << device.graph.num_qubits();

  // Endpoint-normalized, sorted edge list — the same canonical order the
  // coupling-graph fingerprint uses.
  std::vector<std::pair<Qubit, Qubit>> edges = device.graph.edges();
  for (auto& [a, b] : edges) {
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  out << ",\n  \"edges\": [";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out << ", ";
    out << "[" << edges[i].first << ", " << edges[i].second << "]";
  }
  out << "]";

  if (device.graph.has_coordinates()) {
    out << ",\n  \"coordinates\": [";
    for (Qubit q = 0; q < device.graph.num_qubits(); ++q) {
      if (q > 0) out << ", ";
      const Coordinate c = device.graph.coordinate(q);
      out << "[" << c.row << ", " << c.col << "]";
    }
    out << "]";
  }

  // Full per-kind tables: lossless, independent of how the maps were
  // built. The broadcast helpers are a convenience for hand-written files.
  out << ",\n  \"durations\": {\"kinds\": {";
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<ir::GateKind>(i);
    if (i > 0) out << ", ";
    out << common::json_quote(ir::gate_info(kind).name) << ": "
        << device.durations.of(kind);
  }
  out << "}}";
  out << ",\n  \"fidelities\": {\"kinds\": {";
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    const auto kind = static_cast<ir::GateKind>(i);
    if (i > 0) out << ", ";
    out << common::json_quote(ir::gate_info(kind).name) << ": "
        << render_double(device.fidelities.of(kind));
  }
  out << "}}";

  if (!device.calibration.empty()) {
    const CalibrationTable& cal = device.calibration;
    // Union of qubits carrying any per-qubit override, sorted (std::map).
    std::vector<Qubit> qubits;
    auto collect = [&](const auto& map) {
      for (const auto& [q, unused] : map) {
        if (qubits.empty() || qubits.back() != q) qubits.push_back(q);
      }
    };
    collect(cal.duration_1q_entries());
    collect(cal.duration_readout_entries());
    collect(cal.fidelity_1q_entries());
    collect(cal.fidelity_readout_entries());
    std::sort(qubits.begin(), qubits.end());
    qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());

    std::vector<CalibrationTable::Edge> cal_edges;
    for (const auto& [e, unused] : cal.duration_2q_entries()) {
      cal_edges.push_back(e);
    }
    for (const auto& [e, unused] : cal.fidelity_2q_entries()) {
      cal_edges.push_back(e);
    }
    std::sort(cal_edges.begin(), cal_edges.end());
    cal_edges.erase(std::unique(cal_edges.begin(), cal_edges.end()),
                    cal_edges.end());

    out << ",\n  \"calibration\": {";
    bool first_section = true;
    if (!qubits.empty()) {
      out << "\n    \"qubits\": [";
      for (std::size_t i = 0; i < qubits.size(); ++i) {
        const Qubit q = qubits[i];
        if (i > 0) out << ",";
        out << "\n      {\"qubit\": " << q;
        if (const auto d = cal.duration_1q(q)) {
          out << ", \"duration_1q\": " << *d;
        }
        if (const auto d = cal.duration_readout(q)) {
          out << ", \"duration_readout\": " << *d;
        }
        if (const auto f = cal.fidelity_1q(q)) {
          out << ", \"fidelity_1q\": " << render_double(*f);
        }
        if (const auto f = cal.fidelity_readout(q)) {
          out << ", \"fidelity_readout\": " << render_double(*f);
        }
        out << "}";
      }
      out << "\n    ]";
      first_section = false;
    }
    if (!cal_edges.empty()) {
      if (!first_section) out << ",";
      out << "\n    \"edges\": [";
      for (std::size_t i = 0; i < cal_edges.size(); ++i) {
        const auto [a, b] = cal_edges[i];
        if (i > 0) out << ",";
        out << "\n      {\"edge\": [" << a << ", " << b << "]";
        if (const auto d = cal.duration_2q(a, b)) {
          out << ", \"duration_2q\": " << *d;
        }
        if (const auto f = cal.fidelity_2q(a, b)) {
          out << ", \"fidelity_2q\": " << render_double(*f);
        }
        out << "}";
      }
      out << "\n    ]";
    }
    out << "\n  }";
  }

  // Infinite channels are represented by omission (JSON has no infinity).
  if (device.coherence.any_finite()) {
    out << ",\n  \"coherence\": {";
    bool first = true;
    if (std::isfinite(device.coherence.t1)) {
      out << "\"t1\": " << render_double(device.coherence.t1);
      first = false;
    }
    if (std::isfinite(device.coherence.t2)) {
      if (!first) out << ", ";
      out << "\"t2\": " << render_double(device.coherence.t2);
    }
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace codar::arch

#include "codar/arch/distance_oracle.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace codar::arch {

namespace {

std::atomic<DistancePolicy> g_default_policy{DistancePolicy::kAuto};

/// BFS from `source` over a CSR adjacency into `out` (pre-sized to n,
/// kInfDistance-filled by the caller). Uses a plain vector as the queue —
/// every vertex enters at most once.
void csr_bfs(std::size_t n, const std::vector<std::int32_t>& offsets,
             const std::vector<Qubit>& neighbors, Qubit source,
             std::vector<int>& out, std::vector<Qubit>& queue) {
  out.assign(n, kInfDistance);
  out[static_cast<std::size_t>(source)] = 0;
  queue.clear();
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Qubit u = queue[head];
    const int du = out[static_cast<std::size_t>(u)];
    const auto begin = static_cast<std::size_t>(offsets[u]);
    const auto end = static_cast<std::size_t>(offsets[u + 1]);
    for (std::size_t i = begin; i < end; ++i) {
      const Qubit v = neighbors[i];
      if (out[static_cast<std::size_t>(v)] == kInfDistance) {
        out[static_cast<std::size_t>(v)] = du + 1;
        queue.push_back(v);
      }
    }
  }
}

/// Default landmark count for the kLandmark policy: enough for useful ALT
/// bounds on lattices, cheap even on 65536-qubit devices (k BFS passes +
/// k*V ints).
constexpr int kDefaultLandmarks = 8;

}  // namespace

DistancePolicy parse_distance_policy(const std::string& name) {
  if (name == "auto") return DistancePolicy::kAuto;
  if (name == "dense") return DistancePolicy::kDense;
  if (name == "on-demand") return DistancePolicy::kOnDemand;
  if (name == "landmark") return DistancePolicy::kLandmark;
  throw std::invalid_argument(
      "unknown distance-oracle policy '" + name +
      "' (expected auto, dense, on-demand, or landmark)");
}

void set_default_distance_policy(DistancePolicy policy) {
  if (policy == DistancePolicy::kInherit) policy = DistancePolicy::kAuto;
  g_default_policy.store(policy, std::memory_order_relaxed);
}

DistancePolicy default_distance_policy() {
  return g_default_policy.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// DenseDistanceOracle

DenseDistanceOracle::DenseDistanceOracle(const CouplingGraph& graph)
    : n_(static_cast<std::size_t>(graph.num_qubits())) {
  dist_.assign(n_ * n_, kInfDistance);
  dense_data_ = dist_.data();
  dense_stride_ = n_;
  std::vector<Qubit> queue;
  queue.reserve(n_);
  for (std::size_t src = 0; src < n_; ++src) {
    int* row = dist_.data() + src * n_;
    row[src] = 0;
    queue.clear();
    queue.push_back(static_cast<Qubit>(src));
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Qubit u = queue[head];
      for (const Qubit v : graph.neighbors(u)) {
        if (row[static_cast<std::size_t>(v)] == kInfDistance) {
          row[static_cast<std::size_t>(v)] =
              row[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OnDemandDistanceOracle

OnDemandDistanceOracle::OnDemandDistanceOracle(const CouplingGraph& graph)
    : OnDemandDistanceOracle(graph, Config{}) {}

OnDemandDistanceOracle::OnDemandDistanceOracle(const CouplingGraph& graph,
                                               Config config)
    : n_(static_cast<std::size_t>(graph.num_qubits())) {
  // Snapshot the adjacency as CSR: cache-friendly BFS rows, and the oracle
  // stays valid however the graph object is moved afterwards.
  csr_offsets_.assign(n_ + 1, 0);
  for (std::size_t q = 0; q < n_; ++q) {
    csr_offsets_[q + 1] =
        csr_offsets_[q] +
        static_cast<std::int32_t>(graph.neighbors(static_cast<Qubit>(q)).size());
  }
  csr_neighbors_.reserve(static_cast<std::size_t>(csr_offsets_[n_]));
  for (std::size_t q = 0; q < n_; ++q) {
    const auto& nbs = graph.neighbors(static_cast<Qubit>(q));
    csr_neighbors_.insert(csr_neighbors_.end(), nbs.begin(), nbs.end());
  }

  const std::size_t row_bytes = std::max<std::size_t>(1, n_ * sizeof(int));
  max_rows_ = std::max<std::size_t>(1, config.row_cache_bytes / row_bytes);
  max_rows_ = std::min(max_rows_, n_);  // more rows than sources is waste
  slot_of_source_.assign(n_, -1);
  rows_.reserve(std::min<std::size_t>(max_rows_, 64));

  const int k = std::min<int>(config.num_landmarks, static_cast<int>(n_));
  if (k > 0) {
    // Farthest-point landmark selection (deterministic): start at qubit 0,
    // then repeatedly take the qubit maximizing the distance to the chosen
    // set — the standard ALT heuristic, restricted to reachable vertices
    // so disconnected components never produce bogus "far" picks.
    landmark_dist_.reserve(static_cast<std::size_t>(k) * n_);
    std::vector<int> row;
    std::vector<Qubit> queue;
    std::vector<int> min_dist(n_, kInfDistance);
    Qubit next = 0;
    for (int l = 0; l < k; ++l) {
      csr_bfs(n_, csr_offsets_, csr_neighbors_, next, row, queue);
      landmark_dist_.insert(landmark_dist_.end(), row.begin(), row.end());
      Qubit farthest = next;
      int farthest_d = -1;
      for (std::size_t v = 0; v < n_; ++v) {
        min_dist[v] = std::min(min_dist[v], row[v]);
        if (min_dist[v] != kInfDistance && min_dist[v] > farthest_d) {
          farthest_d = min_dist[v];
          farthest = static_cast<Qubit>(v);
        }
      }
      if (farthest_d <= 0) break;  // every qubit already is a landmark
      next = farthest;
    }
  }
}

void OnDemandDistanceOracle::detach(int slot) const {
  Row& r = rows_[static_cast<std::size_t>(slot)];
  if (r.prev >= 0) {
    rows_[static_cast<std::size_t>(r.prev)].next = r.next;
  } else {
    lru_head_ = r.next;
  }
  if (r.next >= 0) {
    rows_[static_cast<std::size_t>(r.next)].prev = r.prev;
  } else {
    lru_tail_ = r.prev;
  }
  r.prev = r.next = -1;
}

void OnDemandDistanceOracle::push_front(int slot) const {
  Row& r = rows_[static_cast<std::size_t>(slot)];
  r.prev = -1;
  r.next = lru_head_;
  if (lru_head_ >= 0) rows_[static_cast<std::size_t>(lru_head_)].prev = slot;
  lru_head_ = slot;
  if (lru_tail_ < 0) lru_tail_ = slot;
}

const std::vector<int>& OnDemandDistanceOracle::row_for(Qubit source) const {
  // Caller holds lock_.
  int slot = slot_of_source_[static_cast<std::size_t>(source)];
  if (slot >= 0) {
    if (lru_head_ != slot) {
      detach(slot);
      push_front(slot);
    }
    return rows_[static_cast<std::size_t>(slot)].dist;
  }
  if (rows_.size() < max_rows_) {
    slot = static_cast<int>(rows_.size());
    rows_.emplace_back();
  } else {
    slot = lru_tail_;
    detach(slot);
    slot_of_source_[static_cast<std::size_t>(
        rows_[static_cast<std::size_t>(slot)].source)] = -1;
  }
  Row& r = rows_[static_cast<std::size_t>(slot)];
  r.source = source;
  std::vector<Qubit> queue;  // scratch; rows are computed rarely
  csr_bfs(n_, csr_offsets_, csr_neighbors_, source, r.dist, queue);
  ++row_computations_;
  slot_of_source_[static_cast<std::size_t>(source)] = slot;
  push_front(slot);
  return r.dist;
}

int OnDemandDistanceOracle::distance(Qubit a, Qubit b) const {
  if (a == b) return 0;
  // Query from the smaller endpoint: distances are symmetric, so
  // normalizing doubles the row-cache hit rate.
  const Qubit src = std::min(a, b);
  const Qubit dst = std::max(a, b);
  const common::MutexLock guard(lock_);
  return row_for(src)[static_cast<std::size_t>(dst)];
}

int OnDemandDistanceOracle::lower_bound(Qubit a, Qubit b) const {
  if (landmark_dist_.empty()) return distance(a, b);
  if (a == b) return 0;
  // ALT bound: d(a, b) >= |d(L, a) - d(L, b)| for every landmark L.
  // An unreachable pair (one side finite, one infinite) proves a and b
  // sit in different components, so the exact answer is kInfDistance.
  int best = 0;
  const std::size_t k = landmark_dist_.size() / n_;
  for (std::size_t l = 0; l < k; ++l) {
    const int* row = landmark_dist_.data() + l * n_;
    const int da = row[static_cast<std::size_t>(a)];
    const int db = row[static_cast<std::size_t>(b)];
    if ((da == kInfDistance) != (db == kInfDistance)) return kInfDistance;
    if (da == kInfDistance) continue;  // landmark sees neither endpoint
    best = std::max(best, std::abs(da - db));
  }
  return best;
}

std::size_t OnDemandDistanceOracle::footprint_bytes() const {
  return csr_offsets_.capacity() * sizeof(std::int32_t) +
         csr_neighbors_.capacity() * sizeof(Qubit) +
         landmark_dist_.capacity() * sizeof(int) +
         slot_of_source_.capacity() * sizeof(int) +
         max_rows_ * (n_ * sizeof(int) + sizeof(Row));
}

std::size_t OnDemandDistanceOracle::rows_cached() const {
  const common::MutexLock guard(lock_);
  return rows_.size();
}

std::uint64_t OnDemandDistanceOracle::row_computations() const {
  const common::MutexLock guard(lock_);
  return row_computations_;
}

// ---------------------------------------------------------------------------

std::unique_ptr<DistanceOracle> make_distance_oracle(
    const CouplingGraph& graph, DistancePolicy policy) {
  if (policy == DistancePolicy::kInherit) policy = default_distance_policy();
  if (policy == DistancePolicy::kAuto) {
    policy = graph.num_qubits() <= kDenseOracleMaxQubits
                 ? DistancePolicy::kDense
                 : DistancePolicy::kOnDemand;
  }
  switch (policy) {
    case DistancePolicy::kDense:
      return std::make_unique<DenseDistanceOracle>(graph);
    case DistancePolicy::kOnDemand:
      return std::make_unique<OnDemandDistanceOracle>(graph);
    case DistancePolicy::kLandmark: {
      OnDemandDistanceOracle::Config config;
      config.num_landmarks = kDefaultLandmarks;
      return std::make_unique<OnDemandDistanceOracle>(graph, config);
    }
    case DistancePolicy::kInherit:
    case DistancePolicy::kAuto:
      break;  // resolved above
  }
  throw std::logic_error("unresolved distance policy");
}

}  // namespace codar::arch

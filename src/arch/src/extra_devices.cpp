#include "codar/arch/extra_devices.hpp"

#include <map>
#include <string>

namespace codar::arch {

Device heavy_hex(int distance) {
  CODAR_EXPECTS(distance >= 3 && distance % 2 == 1);
  const int width = 2 * distance - 1;
  // Data qubits: `distance` rows of `width`, connected in row paths.
  // Connector qubits bridge vertically at alternating columns (c % 4 == 0
  // under even data rows, c % 4 == 2 under odd ones), giving the degree<=3
  // heavy-hex structure.
  std::map<std::pair<int, int>, Qubit> index_of;  // (grid row, col)
  std::vector<Coordinate> coords;
  Qubit next = 0;
  auto add_qubit = [&](int row, int col) {
    index_of[{row, col}] = next++;
    coords.push_back(Coordinate{row, col});
  };
  for (int r = 0; r < distance; ++r) {
    for (int c = 0; c < width; ++c) add_qubit(2 * r, c);
    if (r + 1 < distance) {
      const int offset = (r % 2 == 0) ? 0 : 2;
      for (int c = offset; c < width; c += 4) add_qubit(2 * r + 1, c);
    }
  }
  CouplingGraph g(next);
  for (const auto& [rc, q] : index_of) {
    const auto right = index_of.find({rc.first, rc.second + 1});
    if (right != index_of.end() && rc.first % 2 == 0) {
      g.add_edge(q, right->second);
    }
    const auto down = index_of.find({rc.first + 1, rc.second});
    if (down != index_of.end()) g.add_edge(q, down->second);
  }
  g.set_coordinates(std::move(coords));
  return Device{"heavy-hex d=" + std::to_string(distance), std::move(g),
                DurationMap::superconducting()};
}

Device rigetti_octagons(int octagons) {
  CODAR_EXPECTS(octagons >= 1);
  const int n = 8 * octagons;
  CouplingGraph g(n);
  for (int k = 0; k < octagons; ++k) {
    const Qubit base = static_cast<Qubit>(8 * k);
    for (Qubit i = 0; i < 8; ++i) {
      g.add_edge(base + i, base + (i + 1) % 8);
    }
    if (k + 1 < octagons) {
      // Two couplers fuse neighbouring rings, Aspen style.
      g.add_edge(base + 2, base + 8 + 7);
      g.add_edge(base + 3, base + 8 + 6);
    }
  }
  return Device{"rigetti " + std::to_string(octagons) + "-octagon",
                std::move(g), DurationMap::superconducting()};
}

Device ion_trap_all_to_all(int n) {
  CODAR_EXPECTS(n >= 2);
  CouplingGraph g(n);
  for (Qubit a = 0; a < n; ++a) {
    for (Qubit b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return Device{"ion trap " + std::to_string(n) + "q (all-to-all)",
                std::move(g), DurationMap::ion_trap()};
}

}  // namespace codar::arch

#pragma once

// The pluggable distance layer behind CouplingGraph::distance(): a
// polymorphic DistanceOracle answering shortest-path hop queries, with two
// registered backends selected automatically by device size.
//
//  - DenseDistanceOracle: the classic all-pairs BFS matrix. O(V^2) ints of
//    memory, O(1) lock-free lookups — unbeatable for the paper-scale
//    devices (<= kDenseOracleMaxQubits), and byte-identical to the
//    pre-oracle behavior.
//  - OnDemandDistanceOracle: CSR adjacency plus per-source BFS rows
//    computed on demand and kept in a byte-budgeted LRU cache, with an
//    optional landmark (ALT) table providing O(k) admissible lower bounds
//    for A*-style consumers. Memory is O(E + k*V + cache budget), which is
//    what lifts the JSON device cap from 4096 to 65536 qubits and makes
//    grid-50x50 (2500 qubits, 25 MB dense) a routable device.
//
// Both backends return identical distances (BFS hop counts are unique), so
// the choice is purely a memory/latency trade: routing results never
// depend on the policy. Oracles own their data (a CSR copy of the
// adjacency), so a CouplingGraph can be moved without invalidating an
// already-built oracle.
//
// Thread-safety: every backend is safe for concurrent readers — the dense
// matrix is immutable, and the on-demand row cache serializes internally
// on an annotated mutex (clang's -Wthread-safety checks the discipline).
// CouplingGraph's lazy build is itself race-free; prepare() remains the
// polite way to pay the build cost before fan-out rather than under it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codar/arch/coupling_graph.hpp"
#include "codar/common/thread_annotations.hpp"

namespace codar::arch {

/// Largest device the kAuto policy serves from the dense matrix. 1024
/// qubits = 4 MiB of matrix; every paper architecture is far below this,
/// so default routing behavior (and the pinned BENCH_router.json) is
/// byte-identical to the pre-oracle dense implementation.
inline constexpr int kDenseOracleMaxQubits = 1024;

/// Parses a policy name ("auto", "dense", "on-demand", "landmark") as used
/// by the --distance-oracle CLI/serve knob. Throws std::invalid_argument
/// on anything else.
DistancePolicy parse_distance_policy(const std::string& name);

/// The process-wide default policy, consulted by graphs whose own policy
/// is kInherit. Starts at kAuto. Setting kInherit resets to kAuto.
void set_default_distance_policy(DistancePolicy policy);
DistancePolicy default_distance_policy();

/// Polymorphic shortest-path oracle over one coupling graph snapshot.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Exact shortest-path hop count; kInfDistance if unreachable.
  virtual int distance(Qubit a, Qubit b) const = 0;

  /// Admissible lower bound on distance(a, b) — never above the true
  /// value, so A*-style consumers can use it as a heuristic. The default
  /// is exact; the landmark backend answers from its triangle-inequality
  /// table without running a BFS.
  virtual int lower_bound(Qubit a, Qubit b) const { return distance(a, b); }

  /// Backend name for diagnostics ("dense", "on-demand", "landmark").
  virtual const char* name() const = 0;

  /// Steady-state memory bound in bytes: what this oracle can grow to
  /// (dense: the full matrix; on-demand: CSR + landmark table + row-cache
  /// budget). The serve inline-device memo accounts with this.
  virtual std::size_t footprint_bytes() const = 0;

  /// Non-null when every distance lives in one flat row-major V x V array
  /// (the dense backend): hot loops branch on this once and index the
  /// matrix directly, skipping the virtual dispatch per lookup. Non-dense
  /// backends leave it null. Non-virtual on purpose — the check itself
  /// must cost nothing.
  const int* dense_matrix() const { return dense_data_; }
  std::size_t dense_stride() const { return dense_stride_; }

 protected:
  const int* dense_data_ = nullptr;
  std::size_t dense_stride_ = 0;
};

/// All-pairs BFS matrix, computed eagerly at construction.
class DenseDistanceOracle final : public DistanceOracle {
 public:
  explicit DenseDistanceOracle(const CouplingGraph& graph);

  int distance(Qubit a, Qubit b) const override {
    return dist_[static_cast<std::size_t>(a) * n_ + static_cast<std::size_t>(b)];
  }
  const char* name() const override { return "dense"; }
  std::size_t footprint_bytes() const override {
    return dist_.capacity() * sizeof(int);
  }

 private:
  std::size_t n_;
  std::vector<int> dist_;
};

/// CSR adjacency + on-demand per-source BFS rows in a byte-budgeted LRU,
/// with an optional landmark (ALT) lower-bound table.
class OnDemandDistanceOracle final : public DistanceOracle {
 public:
  struct Config {
    /// Byte budget for cached BFS rows (one row = V ints). At least one
    /// row is always kept so progress is guaranteed.
    std::size_t row_cache_bytes = 64u << 20;
    /// Landmarks for lower_bound(); 0 disables the table (lower_bound
    /// then falls back to the exact distance).
    int num_landmarks = 0;
  };

  explicit OnDemandDistanceOracle(const CouplingGraph& graph);
  OnDemandDistanceOracle(const CouplingGraph& graph, Config config);

  int distance(Qubit a, Qubit b) const override;
  int lower_bound(Qubit a, Qubit b) const override;
  const char* name() const override {
    return landmark_dist_.empty() ? "on-demand" : "landmark";
  }
  std::size_t footprint_bytes() const override;

  /// Observability for tests and diagnostics.
  std::size_t rows_cached() const;
  std::uint64_t row_computations() const;
  int num_landmarks() const {
    return n_ == 0 ? 0 : static_cast<int>(landmark_dist_.size() / n_);
  }

 private:
  /// One cached BFS row plus its LRU links (indices into rows_).
  struct Row {
    Qubit source = -1;
    std::vector<int> dist;
    int prev = -1;
    int next = -1;
  };

  /// Returns the cached row for `source`, computing and possibly evicting
  /// under lock_.
  const std::vector<int>& row_for(Qubit source) const CODAR_REQUIRES(lock_);
  void detach(int slot) const CODAR_REQUIRES(lock_);
  void push_front(int slot) const CODAR_REQUIRES(lock_);

  std::size_t n_ = 0;
  std::vector<std::int32_t> csr_offsets_;  ///< V+1 prefix offsets.
  std::vector<Qubit> csr_neighbors_;       ///< Concatenated adjacency.
  std::size_t max_rows_ = 1;               ///< Row-cache capacity.

  /// d(L, v) for each landmark L, row-major [landmark][qubit]. Immutable
  /// after construction, so lower_bound() never takes the lock.
  std::vector<int> landmark_dist_;

  /// Serializes the mutable row-LRU below: `distance()` on a shared oracle
  /// (graph copies share one) is called from every routing worker at once.
  mutable common::Mutex lock_;
  mutable std::vector<Row> rows_ CODAR_GUARDED_BY(lock_);  ///< Slot storage.
  /// V-sized source → slot map, -1 = absent.
  mutable std::vector<int> slot_of_source_ CODAR_GUARDED_BY(lock_);
  mutable int lru_head_ CODAR_GUARDED_BY(lock_) = -1;  ///< Most recent.
  mutable int lru_tail_ CODAR_GUARDED_BY(lock_) = -1;  ///< Eviction victim.
  mutable std::uint64_t row_computations_ CODAR_GUARDED_BY(lock_) = 0;
};

/// Builds the backend `policy` resolves to for a graph of this size.
/// kInherit reads the process default first; kAuto then applies the size
/// threshold. The oracle copies what it needs — it does not retain a
/// reference to `graph`.
std::unique_ptr<DistanceOracle> make_distance_oracle(
    const CouplingGraph& graph, DistancePolicy policy);

}  // namespace codar::arch

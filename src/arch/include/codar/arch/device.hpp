#pragma once

// Device presets: the four evaluation architectures of the paper plus
// generic lattice generators for tests and ablations. A Device bundles the
// maQAM static structure pieces a router needs: coupling graph + durations.

#include <string>

#include "codar/arch/coupling_graph.hpp"
#include "codar/arch/durations.hpp"

namespace codar::arch {

/// A named NISQ device model (maQAM static structure A_s).
struct Device {
  std::string name;
  CouplingGraph graph;
  DurationMap durations;

  /// Content-addressed 64-bit fingerprint combining the coupling-graph and
  /// duration-map fingerprints. The display name is deliberately excluded,
  /// so two structurally identical devices fingerprint identically
  /// regardless of how they were built or labeled.
  std::uint64_t fingerprint() const;
};

/// IBM Q16 (2×8 lattice, 16 qubits, as in ibmqx5 Rüschlikon / the
/// "Q16 Melbourne" class of devices). Grid coordinates attached.
Device ibm_q16();

/// IBM Q20 Tokyo: 4×5 lattice plus the twelve diagonal couplers of the
/// published coupling map (as used by SABRE). Grid coordinates attached.
Device ibm_q20_tokyo();

/// Enfield 6×6: plain 36-qubit square lattice.
Device enfield_6x6();

/// Google Q54 Sycamore: 54-qubit diamond-shaped square lattice (degree <=4)
/// matching the Sycamore qubit arrangement. Grid coordinates attached.
Device google_sycamore54();

/// IBM Q5 bow-tie (Yorktown): 5 qubits, edges 0-1, 0-2, 1-2, 2-3, 2-4, 3-4.
/// Small device for unit tests. No lattice coordinates (not a grid).
Device ibm_q5_yorktown();

/// rows×cols square lattice with coordinates.
Device grid(int rows, int cols, DurationMap durations = DurationMap());

/// Path graph 0-1-...-n-1 with coordinates on one row.
Device linear(int n, DurationMap durations = DurationMap());

/// Cycle graph (linear plus wrap-around edge). No coordinates.
Device ring(int n, DurationMap durations = DurationMap());

/// The four evaluation architectures of the paper's Fig. 8, in paper order:
/// IBM Q16, Enfield 6×6, IBM Q20 Tokyo, Google Q54 Sycamore.
std::vector<Device> paper_architectures();

}  // namespace codar::arch

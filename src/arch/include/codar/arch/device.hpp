#pragma once

// The device model: coupling graph + kind-level duration/fidelity defaults
// + an optional per-qubit/per-edge calibration overlay, behind one query
// API (duration()/fidelity()) that every router and scheduler goes
// through. Includes the four evaluation architectures of the paper plus
// generic lattice generators for tests and ablations.

#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <utility>

#include "codar/arch/calibration.hpp"
#include "codar/arch/coupling_graph.hpp"
#include "codar/arch/durations.hpp"
#include "codar/arch/fidelity_map.hpp"

namespace codar::arch {

/// Device-level decoherence times in quantum clock cycles (the unit every
/// duration uses), infinity by default — an ideal device never decoheres,
/// which is exactly how every pre-coherence device behaved. Finite values
/// feed the ESP estimator (cost::FidelityModel) and the codar-fid
/// decoherence scoring term; they mirror sim::NoiseParams so an estimate
/// and a noisy simulation describe the same physics.
struct Coherence {
  double t1 = std::numeric_limits<double>::infinity();  ///< Damping time.
  double t2 = std::numeric_limits<double>::infinity();  ///< Dephasing time.

  /// True when either channel is actually active.
  bool any_finite() const { return std::isfinite(t1) || std::isfinite(t2); }

  friend bool operator==(const Coherence&, const Coherence&) = default;
};

/// A named NISQ device model (maQAM static structure A_s). Presets are
/// homogeneous: kind-level durations/fidelities, empty calibration. A
/// calibrated device (loaded from JSON, or built in code) overlays
/// heterogeneous per-qubit/per-edge values; all consumers query through
/// duration()/fidelity(), so homogeneous devices behave exactly as before.
struct Device {
  Device(std::string device_name, CouplingGraph coupling,
         DurationMap duration_defaults = DurationMap(),
         FidelityMap fidelity_defaults = FidelityMap(),
         CalibrationTable calibration_overlay = CalibrationTable())
      : name(std::move(device_name)),
        graph(std::move(coupling)),
        durations(std::move(duration_defaults)),
        fidelities(std::move(fidelity_defaults)),
        calibration(std::move(calibration_overlay)) {}

  std::string name;
  CouplingGraph graph;
  DurationMap durations;        ///< Kind-level duration defaults.
  FidelityMap fidelities;       ///< Kind-level fidelity defaults (ideal).
  CalibrationTable calibration; ///< Sparse heterogeneous overrides.
  Coherence coherence;          ///< T1/T2 in cycles (default: infinite).

  /// Duration of `kind` applied to the physical qubits `phys`, resolved
  /// against the calibration overlay:
  ///  - 1-qubit unitaries: per-qubit 1q override, else the kind default;
  ///  - measure: per-qubit readout override, else the kind default;
  ///  - 2-qubit gates: per-edge 2q override, else the kind default —
  ///    except SWAP, which resolves to 3x the edge override (three CX);
  ///  - everything else (barrier, CCX): the kind default.
  /// With an empty calibration this is exactly durations.of(kind).
  Duration duration(ir::GateKind kind, std::span<const Qubit> phys) const;
  Duration duration(const ir::Gate& g, std::span<const Qubit> phys) const {
    return duration(g.kind(), phys);
  }
  /// Kind-level duration, ignoring calibration (logical circuits, which
  /// have no physical placement yet).
  Duration duration(ir::GateKind kind) const { return durations.of(kind); }

  /// Fidelity of `kind` on `phys`, resolved like duration(): per-qubit 1q
  /// and readout overrides, per-edge 2q overrides, SWAP = edge override
  /// cubed. With an empty calibration this is exactly fidelities.of(kind).
  double fidelity(ir::GateKind kind, std::span<const Qubit> phys) const;
  double fidelity(const ir::Gate& g, std::span<const Qubit> phys) const {
    return fidelity(g.kind(), phys);
  }

  /// Content-addressed 64-bit fingerprint combining the coupling-graph,
  /// duration-map, fidelity-map and calibration fingerprints (schema v2).
  /// The display name is deliberately excluded, so two structurally
  /// identical devices fingerprint identically regardless of how they
  /// were built or labeled — and a recalibrated device can never alias
  /// its homogeneous twin in the serve route cache. Finite coherence
  /// times are folded in as a tagged extension (infinite-coherence
  /// devices keep their historical v2 value, and a finite-T2 device can
  /// never alias its ideal twin — coherence shapes reported ESP, so it
  /// must be cache-key relevant).
  std::uint64_t fingerprint() const;
};

/// IBM Q16 (2×8 lattice, 16 qubits, as in ibmqx5 Rüschlikon / the
/// "Q16 Melbourne" class of devices). Grid coordinates attached.
Device ibm_q16();

/// IBM Q20 Tokyo: 4×5 lattice plus the twelve diagonal couplers of the
/// published coupling map (as used by SABRE). Grid coordinates attached.
Device ibm_q20_tokyo();

/// Enfield 6×6: plain 36-qubit square lattice.
Device enfield_6x6();

/// Google Q54 Sycamore: 54-qubit diamond-shaped square lattice (degree <=4)
/// matching the Sycamore qubit arrangement. Grid coordinates attached.
Device google_sycamore54();

/// IBM Q5 bow-tie (Yorktown): 5 qubits, edges 0-1, 0-2, 1-2, 2-3, 2-4, 3-4.
/// Small device for unit tests. No lattice coordinates (not a grid).
Device ibm_q5_yorktown();

/// rows×cols square lattice with coordinates.
Device grid(int rows, int cols, DurationMap durations = DurationMap());

/// Path graph 0-1-...-n-1 with coordinates on one row.
Device linear(int n, DurationMap durations = DurationMap());

/// Cycle graph (linear plus wrap-around edge). No coordinates.
Device ring(int n, DurationMap durations = DurationMap());

/// The four evaluation architectures of the paper's Fig. 8, in paper order:
/// IBM Q16, Enfield 6×6, IBM Q20 Tokyo, Google Q54 Sycamore.
std::vector<Device> paper_architectures();

}  // namespace codar::arch

#pragma once

// Gate-fidelity model backed by Table I: per-kind success probabilities
// plus readout fidelity. Combined with the duration map and coherence
// times, it yields the estimated success probability (ESP) metric used by
// the error-aware mapping literature the paper discusses (§II-b) — an
// analytical complement to the density-matrix simulation of Fig. 9.

#include <array>
#include <cstdint>

#include "codar/arch/durations.hpp"

namespace codar::arch {

/// Maps every GateKind to its gate fidelity in (0, 1]. Same-kind gates
/// share one fidelity (the paper's modeling assumption, §III-B).
class FidelityMap {
 public:
  /// Defaults: ideal (fidelity 1 everywhere).
  FidelityMap();

  double of(ir::GateKind kind) const {
    return table_[static_cast<std::size_t>(kind)];
  }
  double of(const ir::Gate& g) const { return of(g.kind()); }

  void set(ir::GateKind kind, double fidelity);
  void set_all_single_qubit(double fidelity);
  /// Every 2-qubit kind; SWAP is set to fidelity^3 (three CX).
  void set_all_two_qubit(double fidelity);
  void set_measure(double fidelity);

  /// Content-addressed 64-bit fingerprint over the full fidelity table in
  /// GateKind enum order (IEEE-754 bit patterns, -0.0 normalized).
  /// Deterministic across runs, platforms and build modes.
  std::uint64_t fingerprint() const;

  // -- Table I presets --
  /// Superconducting: F1q = 0.9977, F2q = 0.965, readout = 0.93.
  static FidelityMap superconducting();
  /// Ion trap: F1q = 0.993, F2q = 0.973, readout = 0.995.
  static FidelityMap ion_trap();
  /// Neutral atom: F1q = 0.99995, F2q = 0.82, readout = 0.986.
  static FidelityMap neutral_atom();

 private:
  std::array<double, ir::kGateKindCount> table_{};
};

}  // namespace codar::arch

#pragma once

// Per-qubit / per-edge calibration overlays (IBM backend-properties style).
// A CalibrationTable refines the kind-level DurationMap / FidelityMap
// defaults of a Device with heterogeneous values: every physical qubit may
// carry its own 1-qubit-gate and readout duration/fidelity, and every
// coupler its own 2-qubit duration/fidelity. Entries are sparse — a qubit
// or edge without an override falls back to the kind-level default — so an
// empty table models exactly the homogeneous devices of earlier revisions.
//
// Lookups are resolved through Device::duration() / Device::fidelity();
// routers never read this table directly.

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "codar/arch/durations.hpp"

namespace codar::arch {

using ir::Qubit;

/// Sparse per-qubit / per-edge duration and fidelity overrides. Value
/// type; edge keys are endpoint-normalized (a < b), so the (a, b) and
/// (b, a) spellings address the same coupler.
class CalibrationTable {
 public:
  using Edge = std::pair<Qubit, Qubit>;

  /// True when the table carries no override at all: the device behaves
  /// exactly like its kind-level defaults (the fast path routers test).
  bool empty() const {
    return duration_1q_.empty() && duration_readout_.empty() &&
           duration_2q_.empty() && fidelity_1q_.empty() &&
           fidelity_readout_.empty() && fidelity_2q_.empty();
  }

  // -- Setters. Durations must be >= 0, fidelities in (0, 1], qubits >= 0;
  //    violations throw ContractViolation. Setting twice overwrites. --

  void set_duration_1q(Qubit q, Duration d);
  void set_duration_readout(Qubit q, Duration d);
  /// Duration of one generic 2-qubit gate across coupler (a, b). SWAP
  /// resolves to three times this value (the three-CX convention the
  /// kind-level defaults also follow).
  void set_duration_2q(Qubit a, Qubit b, Duration d);

  void set_fidelity_1q(Qubit q, double f);
  void set_fidelity_readout(Qubit q, double f);
  /// Fidelity of one generic 2-qubit gate across coupler (a, b). SWAP
  /// resolves to the cube of this value.
  void set_fidelity_2q(Qubit a, Qubit b, double f);

  // -- Lookups: the override, or nullopt when the qubit/edge has none. --

  std::optional<Duration> duration_1q(Qubit q) const;
  std::optional<Duration> duration_readout(Qubit q) const;
  std::optional<Duration> duration_2q(Qubit a, Qubit b) const;
  std::optional<double> fidelity_1q(Qubit q) const;
  std::optional<double> fidelity_readout(Qubit q) const;
  std::optional<double> fidelity_2q(Qubit a, Qubit b) const;

  /// Drops every duration override (fidelity entries stay). Used by the
  /// duration-blind router ablation, which must ignore heterogeneous
  /// timing exactly as it ignores the kind-level durations.
  void clear_durations();

  // -- Ordered views for serialization and fingerprinting (sorted by
  //    qubit / normalized edge, deterministic across runs). --

  const std::map<Qubit, Duration>& duration_1q_entries() const {
    return duration_1q_;
  }
  const std::map<Qubit, Duration>& duration_readout_entries() const {
    return duration_readout_;
  }
  const std::map<Edge, Duration>& duration_2q_entries() const {
    return duration_2q_;
  }
  const std::map<Qubit, double>& fidelity_1q_entries() const {
    return fidelity_1q_;
  }
  const std::map<Qubit, double>& fidelity_readout_entries() const {
    return fidelity_readout_;
  }
  const std::map<Edge, double>& fidelity_2q_entries() const {
    return fidelity_2q_;
  }

  /// Content-addressed 64-bit fingerprint over every entry in sorted
  /// order, insensitive to insertion order. An empty table fingerprints
  /// to a fixed tag, so folding it into Device::fingerprint() keeps
  /// homogeneous devices distinct from calibrated ones.
  std::uint64_t fingerprint() const;

  friend bool operator==(const CalibrationTable& a,
                         const CalibrationTable& b) = default;

 private:
  std::map<Qubit, Duration> duration_1q_;
  std::map<Qubit, Duration> duration_readout_;
  std::map<Edge, Duration> duration_2q_;
  std::map<Qubit, double> fidelity_1q_;
  std::map<Qubit, double> fidelity_readout_;
  std::map<Edge, double> fidelity_2q_;
};

}  // namespace codar::arch

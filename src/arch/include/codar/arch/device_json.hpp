#pragma once

// JSON device descriptions: load a Device — coupling graph, kind-level
// duration/fidelity defaults, per-qubit/per-edge calibration — from a JSON
// document, and serialize one back canonically. This is the `--device
// file:PATH.json` format of the CLI and the inline `device` object of
// `codar serve`; examples/devices/ ships descriptions of the four paper
// architectures.
//
// Schema (strict: unknown or malformed keys are errors, not warnings):
//
//   {
//     "name": "IBM Q20 Tokyo",            // optional display name
//     "qubits": 20,                       // required, 1..65536 (devices
//                                         //   arrive on untrusted serve
//                                         //   requests; large ones use the
//                                         //   bounded on-demand oracle,
//                                         //   not an O(V^2) matrix)
//     "edges": [[0, 1], [1, 2], ...],     // required coupler list
//     "coordinates": [[0, 0], ...],       // optional, one [row, col]/qubit
//     "durations": {                      // optional kind-level overrides
//       "1q": 1, "2q": 2,                 //   broadcast helpers; "2q" also
//                                         //   derives swap=3x and ccx=6x
//                                         //   (the three-CX convention,
//                                         //   like fidelities' f^3 / f^6)
//       "swap": 6, "measure": 1,
//       "kinds": {"cx": 2, "h": 1}        //   per-kind by qasm mnemonic
//     },
//     "fidelities": {                     // optional kind-level overrides
//       "1q": 0.9977, "2q": 0.965, "measure": 0.93,
//       "kinds": {"cx": 0.965}
//     },
//     "calibration": {                    // optional heterogeneous overlay
//       "qubits": [{"qubit": 0, "duration_1q": 1, "duration_readout": 2,
//                   "fidelity_1q": 0.999, "fidelity_readout": 0.95}],
//       "edges": [{"edge": [0, 1], "duration_2q": 3, "fidelity_2q": 0.96}]
//     },
//     "coherence": {"t1": 8000, "t2": 5000}  // optional decoherence times
//                                         //   in cycles; omitted channels
//                                         //   stay infinite (ideal)
//   }
//
// Unset durations/fidelities fall back to the superconducting /
// ideal defaults (exactly the presets' kind-level tables). Broadcast
// helpers apply before "kinds"; fidelities must lie in (0, 1] (zero is
// rejected: the ESP estimator works in log-space); calibration edges must
// exist in the coupling graph. Every error throws std::invalid_argument
// with a "device json:" message.

#include <string>
#include <string_view>

#include "codar/arch/device.hpp"
#include "codar/common/json.hpp"

namespace codar::arch {

/// Builds a Device from a parsed JSON document. Throws
/// std::invalid_argument on schema violations.
Device device_from_json(const common::Json& doc);

/// Parses `text` as JSON and builds the Device. JSON syntax errors are
/// rethrown as std::invalid_argument too, offset included.
Device device_from_json_text(std::string_view text);

/// Reads and parses a device description file. Errors mention `path`.
Device load_device_file(const std::string& path);

/// Canonical serialization: sorted edges, full per-kind duration and
/// fidelity tables (lossless), calibration entries in sorted order,
/// shortest round-trip number rendering. load(serialize(d)) always
/// fingerprints identically to d.
std::string device_to_json(const Device& device);

}  // namespace codar::arch

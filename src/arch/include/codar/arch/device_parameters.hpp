#pragma once

// The Table I survey: per-technology device parameters (available gates,
// fidelities, durations, coherence times). This is reference data the
// paper reports, backing the duration presets and the noise models;
// bench_table1_device_params reprints it.

#include <string>
#include <vector>

namespace codar::arch {

/// One column of the paper's Table I.
struct DeviceParameters {
  std::string device;            ///< e.g. "Ion Q5", "IBM Q20".
  std::string technology;        ///< "ion trap", "superconducting", ...
  std::string one_qubit_gates;   ///< Available 1-qubit gate alphabet.
  std::string two_qubit_gates;   ///< Available 2-qubit gate alphabet.
  double fidelity_1q;            ///< 1-qubit gate fidelity (fraction).
  double fidelity_2q;            ///< 2-qubit gate fidelity (fraction).
  double fidelity_readout;       ///< 1-qubit readout fidelity (fraction).
  double time_1q_us;             ///< 1-qubit gate time in microseconds.
  double time_2q_us;             ///< 2-qubit gate time in microseconds.
  double t1_us;                  ///< Depolarization time T1 (µs); <0 = ~inf.
  double t2_us;                  ///< Dephasing time T2 (µs); <0 = ~inf.
};

/// All Table I columns. Values are the representative midpoints of the
/// ranges the paper cites.
const std::vector<DeviceParameters>& table1_parameters();

/// Duration ratio 2q/1q for a technology entry, rounded to whole cycles
/// (>=1). This is how Table I's timing column induces a DurationMap.
int duration_ratio_cycles(const DeviceParameters& params);

}  // namespace codar::arch

#pragma once

// The maQAM gate-duration map τ: G → N. Durations are integer multiples of
// the quantum clock cycle τ_u (paper §III-B). Presets encode the technology
// survey of Table I.

#include <array>
#include <cstdint>

#include "codar/ir/gate.hpp"

namespace codar::arch {

/// Duration / time values in quantum clock cycles.
using Duration = std::int64_t;

/// Maps every GateKind to its duration in cycles. Value type; routers copy
/// it freely.
class DurationMap {
 public:
  /// Defaults: every unitary 1-qubit gate 1 cycle, every 2-qubit gate
  /// 2 cycles, SWAP 6 (three CX), CCX 12, measure 1, barrier 0 — the
  /// superconducting profile the paper's evaluation uses.
  DurationMap();

  Duration of(ir::GateKind kind) const {
    return table_[static_cast<std::size_t>(kind)];
  }
  Duration of(const ir::Gate& g) const { return of(g.kind()); }

  /// Overrides a single kind. Durations must be non-negative.
  void set(ir::GateKind kind, Duration d);
  /// Overrides every 1-qubit unitary kind.
  void set_all_single_qubit(Duration d);
  /// Overrides every 2-qubit kind except SWAP.
  void set_all_two_qubit(Duration d);

  Duration swap_duration() const { return of(ir::GateKind::kSwap); }

  /// Content-addressed 64-bit fingerprint over the full duration table in
  /// GateKind enum order. Deterministic across runs.
  std::uint64_t fingerprint() const;

  // -- Technology presets (Table I) --

  /// Superconducting: 2-qubit ≈ 2× 1-qubit (IBM Q devices). 1q=1, 2q=2,
  /// SWAP=6. This is the profile used for the paper's Fig. 8.
  static DurationMap superconducting();
  /// Ion trap: 1q 20µs vs 2q 250µs → 2-qubit ≈ 12× 1-qubit. 1q=1, 2q=12,
  /// SWAP=36.
  static DurationMap ion_trap();
  /// Neutral atom: 2-qubit (~10µs) is *not* slower than 1-qubit (1–20µs);
  /// modeled as 1q=2, 2q=1, SWAP=3.
  static DurationMap neutral_atom();
  /// Duration-blind profile: every gate 1 cycle, SWAP 3 (still three CX).
  /// Used by the duration-awareness ablation.
  static DurationMap uniform();

 private:
  std::array<Duration, ir::kGateKindCount> table_{};
};

}  // namespace codar::arch

#pragma once

// The maQAM static structure M = (Q_H, E_H): an undirected coupling graph
// over physical qubits, with the all-pairs shortest-path map D the paper's
// heuristic needs, plus optional 2-D lattice coordinates that enable the
// fine priority H_fine.

#include <utility>
#include <vector>

#include "codar/ir/gate.hpp"

namespace codar::arch {

using ir::Qubit;

/// Distance value for disconnected qubit pairs. Large but safely summable
/// (the basic heuristic adds distances over the whole CF set).
inline constexpr int kInfDistance = 1 << 28;

/// Row/column position of a qubit on a 2-D lattice device.
struct Coordinate {
  int row = 0;
  int col = 0;
};

/// Undirected coupling graph with cached BFS all-pairs distances.
class CouplingGraph {
 public:
  explicit CouplingGraph(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge; duplicate and self edges are rejected.
  void add_edge(Qubit a, Qubit b);

  /// True when a two-qubit gate may be applied across (a, b).
  bool connected(Qubit a, Qubit b) const;

  const std::vector<Qubit>& neighbors(Qubit q) const;
  const std::vector<std::pair<Qubit, Qubit>>& edges() const { return edges_; }

  /// Shortest-path hop count between a and b; kInfDistance if unreachable.
  /// First call after a mutation computes the full BFS matrix (O(V·E)).
  int distance(Qubit a, Qubit b) const;

  /// True when every qubit can reach every other qubit.
  bool is_fully_connected() const;

  /// Lattice coordinates (used by H_fine). A graph either has coordinates
  /// for all qubits or none.
  void set_coordinates(std::vector<Coordinate> coords);
  bool has_coordinates() const { return !coords_.empty(); }
  Coordinate coordinate(Qubit q) const;

  /// Content-addressed 64-bit fingerprint over qubit count, the edge set
  /// (endpoint-normalized and sorted, so add_edge order is irrelevant) and
  /// coordinates. Deterministic across runs — no pointers or hash-table
  /// iteration order involved.
  std::uint64_t fingerprint() const;

 private:
  void check_qubit(Qubit q) const;
  void ensure_distances() const;

  int num_qubits_;
  std::vector<std::vector<Qubit>> adjacency_;
  std::vector<std::pair<Qubit, Qubit>> edges_;
  std::vector<Coordinate> coords_;
  // Lazily computed BFS distance matrix, invalidated by add_edge.
  mutable std::vector<int> dist_;
  mutable bool dist_valid_ = false;
};

}  // namespace codar::arch

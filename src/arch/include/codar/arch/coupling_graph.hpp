#pragma once

// The maQAM static structure M = (Q_H, E_H): an undirected coupling graph
// over physical qubits, with the shortest-path map D the paper's heuristic
// needs, plus optional 2-D lattice coordinates that enable the fine
// priority H_fine.
//
// Distance queries are answered by a pluggable DistanceOracle (see
// distance_oracle.hpp): a dense all-pairs matrix for small devices and an
// on-demand CSR/BFS backend with an LRU row cache for large ones, chosen
// by set_distance_policy() / the process-wide default. Both return
// identical values; only memory and latency differ.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "codar/common/thread_annotations.hpp"
#include "codar/ir/gate.hpp"

namespace codar::arch {

using ir::Qubit;

class DistanceOracle;

/// How distance queries are resolved (see distance_oracle.hpp for the
/// backends). Graphs default to kInherit, which reads the process-wide
/// policy (kAuto unless overridden via --distance-oracle or
/// set_default_distance_policy()).
enum class DistancePolicy {
  kInherit,   ///< Use the process-wide default policy.
  kAuto,      ///< Dense up to kDenseOracleMaxQubits qubits, on-demand above.
  kDense,     ///< Force the all-pairs matrix (O(V^2) memory).
  kOnDemand,  ///< Force CSR + LRU-cached per-source BFS rows.
  kLandmark,  ///< On-demand plus a landmark table for lower_bound().
};

/// Distance value for disconnected qubit pairs. Large but safely summable
/// (the basic heuristic adds distances over the whole CF set — with a
/// saturating add guarding the accumulator, see core::saturating_add).
inline constexpr int kInfDistance = 1 << 28;

/// Row/column position of a qubit on a 2-D lattice device.
struct Coordinate {
  int row = 0;
  int col = 0;
};

/// Undirected coupling graph with oracle-backed shortest-path distances.
class CouplingGraph {
 public:
  explicit CouplingGraph(int num_qubits);
  ~CouplingGraph();

  // Copies share an already-built oracle (copies of an unmutated graph
  // are structurally identical, and oracles own an immutable snapshot of
  // the adjacency) — so routers that copy a prepared Device per circuit
  // never rebuild the distance backend. Mutating either side afterwards
  // detaches it by resetting its oracle.
  CouplingGraph(const CouplingGraph& other);
  CouplingGraph& operator=(const CouplingGraph& other);
  CouplingGraph(CouplingGraph&&) noexcept;
  CouplingGraph& operator=(CouplingGraph&&) noexcept;

  int num_qubits() const { return num_qubits_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge; duplicate and self edges are rejected.
  void add_edge(Qubit a, Qubit b);

  /// True when a two-qubit gate may be applied across (a, b).
  bool connected(Qubit a, Qubit b) const;

  const std::vector<Qubit>& neighbors(Qubit q) const;
  const std::vector<std::pair<Qubit, Qubit>>& edges() const { return edges_; }

  /// Edge indices (into edges()) parallel to neighbors(q): the k-th entry
  /// is the index of the edge {q, neighbors(q)[k]}. Lets hot loops key
  /// per-edge scratch by a compact O(E) id instead of an O(V^2) pair key.
  std::span<const int> incident_edge_ids(Qubit q) const;

  /// Shortest-path hop count between a and b; kInfDistance if unreachable.
  /// Resolved through oracle() — prefer caching oracle() in loops.
  int distance(Qubit a, Qubit b) const;

  /// The distance backend for this graph, built on first use according to
  /// the distance policy. Hot consumers cache this reference and query it
  /// directly. Invalidated by add_edge()/set_distance_policy().
  ///
  /// Thread-safe: concurrent first calls race benignly on one build mutex
  /// (one thread builds, the rest wait and reuse), and every later call is
  /// a single atomic load. Mutation is still exclusive-access only.
  const DistanceOracle& oracle() const;

  /// Builds the oracle (and any eager tables) now, so concurrent readers
  /// later never even touch the build path. Safe to call repeatedly (a
  /// no-op once built) and safe to race — prepare() is just oracle() for
  /// its side effect.
  void prepare() const;

  /// Steady-state memory bound of the distance backend in bytes (builds
  /// the oracle if needed). Dense: the V^2 matrix; on-demand: CSR +
  /// landmark table + row-cache budget. The serve inline-device memo
  /// accounts with this.
  std::size_t distance_footprint_bytes() const;

  /// Per-graph policy override; kInherit (the default) defers to the
  /// process-wide policy. Resets an already-built oracle.
  void set_distance_policy(DistancePolicy policy);
  DistancePolicy distance_policy() const { return policy_; }

  /// True when every qubit can reach every other qubit.
  bool is_fully_connected() const;

  /// Lattice coordinates (used by H_fine). A graph either has coordinates
  /// for all qubits or none.
  void set_coordinates(std::vector<Coordinate> coords);
  bool has_coordinates() const { return !coords_.empty(); }
  Coordinate coordinate(Qubit q) const;

  /// Content-addressed 64-bit fingerprint over qubit count, the edge set
  /// (endpoint-normalized and sorted, so add_edge order is irrelevant) and
  /// coordinates. Deterministic across runs — no pointers or hash-table
  /// iteration order involved. The distance policy is deliberately
  /// excluded: it changes how distances are computed, never their values.
  std::uint64_t fingerprint() const;

 private:
  void check_qubit(Qubit q) const;
  const DistanceOracle& build_oracle() const CODAR_EXCLUDES(oracle_mutex_);
  /// Drops the built oracle (mutation invalidates it).
  void reset_oracle() CODAR_EXCLUDES(oracle_mutex_);

  int num_qubits_;
  std::vector<std::vector<Qubit>> adjacency_;
  std::vector<std::vector<int>> adjacency_edge_ids_;
  std::vector<std::pair<Qubit, Qubit>> edges_;
  std::vector<Coordinate> coords_;
  DistancePolicy policy_ = DistancePolicy::kInherit;
  // Lazily built distance backend, invalidated by mutation and shared
  // across copies. The lazy build is race-free: the first reader builds
  // under oracle_mutex_ and publishes the raw pointer through
  // oracle_published_ (release); every subsequent oracle() call is one
  // acquire load, never the lock. Mutation (add_edge, set_distance_policy,
  // assignment) still requires exclusive access to the graph — it
  // invalidates adjacency readers regardless of the oracle.
  mutable common::Mutex oracle_mutex_;
  mutable std::shared_ptr<const DistanceOracle> oracle_
      CODAR_GUARDED_BY(oracle_mutex_);
  mutable std::atomic<const DistanceOracle*> oracle_published_{nullptr};
};

}  // namespace codar::arch

#pragma once

// Additional device models beyond the paper's four evaluation
// architectures, demonstrating the maQAM's multi-architecture claim:
// IBM-style heavy-hex lattices, Rigetti-style octagon chains, and
// trapped-ion all-to-all connectivity.

#include "codar/arch/device.hpp"

namespace codar::arch {

/// IBM heavy-hex lattice of the given distance d (odd, >= 3): the qubit
/// layout used by IBM's Falcon/Hummingbird/Eagle families. Row structure:
/// d rows of 2d-1 "data" qubits connected horizontally, bridged by rows of
/// (d+1)/2 connector qubits attached to alternating columns. Grid
/// coordinates attached (enables H_fine).
Device heavy_hex(int distance);

/// Rigetti Aspen-style chain of 8-qubit octagon rings, fused at two
/// qubits per neighbouring ring pair. `octagons` >= 1.
Device rigetti_octagons(int octagons);

/// Trapped-ion device: all-to-all coupling over n qubits (every pair is
/// an edge), ion-trap durations by default. Routing on it is trivial —
/// a useful degenerate case for tests and for the duration ablation.
Device ion_trap_all_to_all(int n);

}  // namespace codar::arch

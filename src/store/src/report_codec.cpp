#include "codar/store/report_codec.hpp"

#include <cstring>

namespace codar::store {

namespace {

void put_u64(std::string* out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(bytes, sizeof bytes);
}

void put_f64(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string* out, std::string_view s) {
  put_u64(out, s.size());
  out->append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over the encoded bytes.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u64(std::uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return ok_ = false;
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof bits);
    return true;
  }

  bool str(std::string* s) {
    std::uint64_t size = 0;
    if (!u64(&size)) return false;
    if (size > bytes_.size() - pos_) return ok_ = false;
    s->assign(bytes_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return true;
  }

  bool done() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string encode_report(const pipeline::RouteReport& r) {
  std::string out;
  out.reserve(256 + r.name.size() + r.error.size() + r.routed_qasm.size());
  put_u64(&out, kReportCodecVersion);
  put_str(&out, r.name);
  put_str(&out, r.error);
  put_u64(&out, (r.verified ? 1u : 0u) | (r.verify_skipped ? 2u : 0u));
  put_u64(&out, static_cast<std::uint64_t>(r.qubits));
  put_u64(&out, r.gates_in);
  put_u64(&out, r.gates_out);
  put_u64(&out, r.gates_routed);
  put_u64(&out, r.barriers);
  put_u64(&out, r.swaps);
  put_u64(&out, r.forced_swaps);
  put_u64(&out, r.escape_swaps);
  put_u64(&out, r.cycles);
  put_u64(&out, r.route_us);
  put_u64(&out, static_cast<std::uint64_t>(r.makespan));
  put_u64(&out, static_cast<std::uint64_t>(r.depth_in));
  put_u64(&out, static_cast<std::uint64_t>(r.depth_out));
  put_f64(&out, r.log_esp);
  put_str(&out, r.routed_qasm);
  put_u64(&out, r.stage_us.size());
  for (const pipeline::StageTiming& t : r.stage_us) {
    put_str(&out, t.stage);
    put_u64(&out, t.us);
  }
  return out;
}

bool decode_report(std::string_view bytes, pipeline::RouteReport* report) {
  Reader in(bytes);
  std::uint64_t version = 0;
  if (!in.u64(&version) || version != kReportCodecVersion) return false;

  pipeline::RouteReport r;
  std::uint64_t flags = 0;
  std::uint64_t qubits = 0;
  std::uint64_t makespan = 0;
  std::uint64_t depth_in = 0;
  std::uint64_t depth_out = 0;
  std::uint64_t stages = 0;
  const bool fields_ok =
      in.str(&r.name) && in.str(&r.error) && in.u64(&flags) &&
      in.u64(&qubits) && in.u64(&r.gates_in) && in.u64(&r.gates_out) &&
      in.u64(&r.gates_routed) && in.u64(&r.barriers) && in.u64(&r.swaps) &&
      in.u64(&r.forced_swaps) && in.u64(&r.escape_swaps) &&
      in.u64(&r.cycles) && in.u64(&r.route_us) && in.u64(&makespan) &&
      in.u64(&depth_in) && in.u64(&depth_out) && in.f64(&r.log_esp) &&
      in.str(&r.routed_qasm) && in.u64(&stages);
  if (!fields_ok) return false;
  r.verified = (flags & 1u) != 0;
  r.verify_skipped = (flags & 2u) != 0;
  r.qubits = static_cast<int>(qubits);
  r.makespan = static_cast<arch::Duration>(makespan);
  r.depth_in = static_cast<arch::Duration>(depth_in);
  r.depth_out = static_cast<arch::Duration>(depth_out);
  // Each stage entry is at least 16 bytes; a corrupt count would otherwise
  // drive a multi-gigabyte reserve before the reads below caught it.
  if (stages > bytes.size() / 16) return false;
  r.stage_us.reserve(static_cast<std::size_t>(stages));
  for (std::uint64_t i = 0; i < stages; ++i) {
    pipeline::StageTiming t;
    if (!in.str(&t.stage) || !in.u64(&t.us)) return false;
    r.stage_us.push_back(std::move(t));
  }
  if (!in.done()) return false;  // trailing garbage = not our record
  *report = std::move(r);
  return true;
}

}  // namespace codar::store

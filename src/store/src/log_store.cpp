#include "codar/store/log_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "codar/common/crc32c.hpp"
#include "codar/common/expects.hpp"
#include "codar/common/fnv.hpp"

namespace codar::store {

namespace {

/// Per-segment magic: format name + version byte. A future record-format
/// change bumps the trailing digit, and old stores recover as "foreign
/// magic" (dropped with a warning) instead of being misparsed.
constexpr char kMagic[8] = {'C', 'O', 'D', 'A', 'R', 'S', 'G', '1'};
constexpr std::size_t kMagicBytes = sizeof kMagic;
constexpr std::size_t kHeaderBytes = 8;   ///< u32 len + u32 crc.
constexpr std::size_t kKeyBytes = 24;     ///< 3 × u64.
constexpr char kSegmentPrefix[] = "codar-";
constexpr char kSegmentSuffix[] = ".seg";
/// Sanity cap applied before trusting a length field from disk.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

std::size_t record_bytes(std::size_t payload_len) {
  return kHeaderBytes + kKeyBytes + payload_len;
}

std::string segment_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%012llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return buf;
}

/// Sequence number of a `codar-NNNNNNNNNNNN.seg` name, or nullopt.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  const std::size_t prefix = sizeof kSegmentPrefix - 1;
  const std::size_t suffix = sizeof kSegmentSuffix - 1;
  if (name.size() != prefix + 12 + suffix) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix; i < prefix + 12; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

void put_u32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

void put_u64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint64_t get_u64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

void encode_key(char* out, const Fingerprint& fp) {
  put_u64(out, fp.circuit);
  put_u64(out + 8, fp.device);
  put_u64(out + 16, fp.options);
}

Fingerprint decode_key(const char* in) {
  return Fingerprint{get_u64(in), get_u64(in + 8), get_u64(in + 16)};
}

}  // namespace

std::size_t FingerprintHash::operator()(const Fingerprint& fp) const {
  common::Fnv1a h;
  h.u64(fp.circuit);
  h.u64(fp.device);
  h.u64(fp.options);
  return static_cast<std::size_t>(h.value());
}

std::unique_ptr<LogStore> LogStore::open(const std::string& dir,
                                         LogStoreOptions options) {
  return std::unique_ptr<LogStore>(new LogStore(dir, std::move(options)));
}

LogStore::LogStore(std::string dir, LogStoreOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  common::ensure_directory(dir_);
  lock_ = std::make_unique<common::DirLock>(dir_, "LOCK");
  const common::MutexLock lock(m_);
  recover();
}

LogStore::~LogStore() {
  const common::MutexLock lock(m_);
  if (active_ != nullptr) active_->sync();
}

void LogStore::warn(const std::string& message) const {
  if (options_.log) options_.log(message);
}

void LogStore::recover() {
  // Collect (seq, name) pairs; lexicographic name order == numeric seq
  // order thanks to the zero padding, but sort by parsed seq anyway so a
  // hand-renamed file cannot reorder recovery.
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const std::string& name :
       common::list_files_with_prefix(dir_, kSegmentPrefix)) {
    if (const std::optional<std::uint64_t> seq = parse_segment_name(name)) {
      found.emplace_back(*seq, name);
    }
  }
  std::sort(found.begin(), found.end());

  std::uint64_t max_seq = 0;
  for (const auto& [seq, name] : found) {
    max_seq = std::max(max_seq, seq);
    recover_segment(seq, dir_ + "/" + name);
  }

  // Keep appending to the newest surviving segment while it has room;
  // otherwise (or with no segments at all) start a fresh one.
  const auto newest = segments_.find(max_seq);
  if (newest != segments_.end() &&
      newest->second.bytes < options_.max_segment_bytes) {
    open_active_segment(max_seq);
  } else {
    open_active_segment(max_seq + 1);
  }
  enforce_budget();
  maybe_compact();
}

bool LogStore::recover_segment(std::uint64_t seq, const std::string& path) {
  const std::uint64_t size = common::file_size(path);
  if (size == 0) {
    // A crash between creat() and the first append leaves this behind.
    warn("dropping empty segment file " + path);
    common::remove_file(path);
    ++counters_.corrupt_dropped;
    return false;
  }

  std::unique_ptr<common::RandomReadFile> file;
  try {
    file = std::make_unique<common::RandomReadFile>(path);
  } catch (const std::exception& e) {
    warn(std::string("skipping unreadable segment: ") + e.what());
    ++counters_.corrupt_dropped;
    return false;
  }

  char magic[kMagicBytes];
  if (size < kMagicBytes || !file->read_at(0, kMagicBytes, magic) ||
      std::memcmp(magic, kMagic, kMagicBytes) != 0) {
    warn("dropping segment with bad magic " + path);
    file.reset();
    common::remove_file(path);
    ++counters_.corrupt_dropped;
    return false;
  }

  std::uint64_t offset = kMagicBytes;
  std::string body;
  while (offset < size) {
    char header[kHeaderBytes];
    bool good = false;
    std::uint32_t payload_len = 0;
    if (size - offset >= kHeaderBytes &&
        file->read_at(offset, kHeaderBytes, header)) {
      payload_len = get_u32(header);
      const std::uint32_t want_crc = get_u32(header + 4);
      if (payload_len <= kMaxPayloadBytes &&
          size - offset - kHeaderBytes >= kKeyBytes + payload_len) {
        body.resize(kKeyBytes + payload_len);
        if (file->read_at(offset + kHeaderBytes, body.size(),
                          body.data()) &&
            common::crc32c(body) == want_crc) {
          good = true;
        }
      }
    }
    if (!good) {
      // Torn or corrupted record: everything after it is unreachable
      // (lengths chain), so truncate here and keep the prefix.
      warn("truncating " + path + " at byte " + std::to_string(offset) +
           " (torn or corrupt record; " +
           std::to_string(size - offset) + " bytes dropped)");
      file.reset();
      common::truncate_file(path, offset);
      ++counters_.corrupt_dropped;
      try {
        file = std::make_unique<common::RandomReadFile>(path);
      } catch (const std::exception&) {
        file = nullptr;
      }
      break;
    }
    index_record(decode_key(body.data()), seq, offset, payload_len);
    ++counters_.recovered;
    offset += record_bytes(payload_len);
  }

  if (offset <= kMagicBytes) {
    // Nothing usable beyond the magic; drop the file entirely.
    file.reset();
    common::remove_file(path);
    // Any records indexed from it? None (offset never advanced).
    return false;
  }
  Segment segment;
  segment.path = path;
  segment.bytes = offset;
  segment.reader = std::move(file);
  file_bytes_ += offset;
  segments_.emplace(seq, std::move(segment));
  return true;
}

void LogStore::open_active_segment(std::uint64_t seq) {
  const std::string path = dir_ + "/" + segment_name(seq);
  auto it = segments_.find(seq);
  if (it == segments_.end()) {
    it = segments_.emplace(seq, Segment{path, 0, nullptr}).first;
  }
  active_ = std::make_unique<common::AppendFile>(path);
  active_seq_ = seq;
  if (it->second.bytes == 0) {
    if (!active_->append(kMagic, kMagicBytes)) {
      warn("cannot write segment header to " + path);
    } else {
      it->second.bytes = kMagicBytes;
      file_bytes_ += kMagicBytes;
    }
  }
}

bool LogStore::append_record(const Fingerprint& fp,
                             std::string_view payload) {
  if (segments_.at(active_seq_).bytes >= options_.max_segment_bytes) {
    if (active_ != nullptr) active_->sync();
    open_active_segment(active_seq_ + 1);
  }
  const std::uint64_t offset = segments_.at(active_seq_).bytes;

  std::string record;
  record.resize(record_bytes(payload.size()));
  encode_key(record.data() + kHeaderBytes, fp);
  std::memcpy(record.data() + kHeaderBytes + kKeyBytes, payload.data(),
              payload.size());
  put_u32(record.data(),
          static_cast<std::uint32_t>(payload.size()));
  put_u32(record.data() + 4,
          common::crc32c(record.data() + kHeaderBytes,
                         kKeyBytes + payload.size()));
  if (!active_->append(record.data(), record.size())) {
    warn("append to " + active_->path() + " failed; entry not persisted");
    return false;
  }
  if (options_.sync_every_append) active_->sync();
  segments_.at(active_seq_).bytes += record.size();
  file_bytes_ += record.size();
  index_record(fp, active_seq_, offset,
               static_cast<std::uint32_t>(payload.size()));
  return true;
}

void LogStore::index_record(const Fingerprint& fp, std::uint64_t segment,
                            std::uint64_t offset,
                            std::uint32_t payload_len) {
  const auto it = index_.find(fp);
  if (it != index_.end()) {
    // Superseded: the old record's bytes become dead weight.
    live_bytes_ -= record_bytes(it->second.payload_len);
    order_.erase(it->second.order);
    index_.erase(it);
  }
  order_.push_back(fp);
  Location loc;
  loc.segment = segment;
  loc.offset = offset;
  loc.payload_len = payload_len;
  loc.order = std::prev(order_.end());
  index_.emplace(fp, loc);
  live_bytes_ += record_bytes(payload_len);
}

void LogStore::drop_entry(const Fingerprint& fp) {
  const auto it = index_.find(fp);
  if (it == index_.end()) return;
  live_bytes_ -= record_bytes(it->second.payload_len);
  order_.erase(it->second.order);
  index_.erase(it);
}

void LogStore::enforce_budget() {
  if (options_.max_total_bytes == 0) return;
  while (live_bytes_ > options_.max_total_bytes && !order_.empty()) {
    drop_entry(order_.front());  // oldest-appended first
    ++counters_.evictions;
  }
}

void LogStore::maybe_compact() {
  if (file_bytes_ <= live_bytes_) return;
  const std::size_t dead = file_bytes_ - live_bytes_;
  // Compact once the dead fraction crosses the threshold — but only when
  // there is at least a segment's worth of data on disk, so a tiny store
  // does not churn through rewrites.
  if (file_bytes_ < options_.max_segment_bytes) return;
  if (static_cast<double>(dead) <
      options_.compact_waste_ratio * static_cast<double>(file_bytes_)) {
    return;
  }
  compact_locked();
}

std::size_t LogStore::compact() {
  const common::MutexLock lock(m_);
  return compact_locked();
}

std::size_t LogStore::compact_locked() {
  const std::size_t before = file_bytes_;

  // Snapshot the live entries (locations only — payloads stream through
  // one at a time below) in append order, then rebuild from scratch into
  // fresh segments numbered after every existing one.
  std::vector<std::pair<Fingerprint, Location>> live;
  live.reserve(index_.size());
  for (const Fingerprint& fp : order_) {
    live.emplace_back(fp, index_.at(fp));
  }

  std::vector<std::pair<std::uint64_t, std::string>> old_files;
  for (const auto& [seq, segment] : segments_) {
    old_files.emplace_back(seq, segment.path);
  }

  index_.clear();
  order_.clear();
  live_bytes_ = 0;
  if (active_ != nullptr) active_->sync();
  active_.reset();

  std::uint64_t next_seq = 1;
  for (const auto& [seq, path] : old_files) {
    next_seq = std::max(next_seq, seq + 1);
  }

  // Old segments stay readable (their Segment entries and readers live in
  // segments_ until the loop below erases them) while records stream into
  // the new active segment.
  open_active_segment(next_seq);
  std::string payload;
  for (const auto& [fp, loc] : live) {
    if (!read_payload(loc, &payload)) {
      warn("compaction: skipping unreadable record");
      continue;
    }
    append_record(fp, payload);
  }
  if (active_ != nullptr) active_->sync();

  for (const auto& [seq, path] : old_files) {
    const auto it = segments_.find(seq);
    if (it == segments_.end()) continue;
    file_bytes_ -= it->second.bytes;
    segments_.erase(it);
    common::remove_file(path);
  }
  ++counters_.compactions;
  return before > file_bytes_ ? before - file_bytes_ : 0;
}

common::RandomReadFile* LogStore::reader_for(std::uint64_t segment) const {
  const auto it = segments_.find(segment);
  if (it == segments_.end()) return nullptr;
  if (it->second.reader == nullptr) {
    try {
      it->second.reader =
          std::make_unique<common::RandomReadFile>(it->second.path);
    } catch (const std::exception& e) {
      warn(std::string("cannot reopen segment: ") + e.what());
      return nullptr;
    }
  }
  return it->second.reader.get();
}

bool LogStore::read_payload(const Location& loc, std::string* payload) const {
  common::RandomReadFile* file = reader_for(loc.segment);
  if (file == nullptr) return false;
  // Re-read header + key + payload and re-verify the CRC: bit rot between
  // open() and now must surface as a miss (re-route), not a wrong answer.
  std::string record;
  record.resize(record_bytes(loc.payload_len));
  if (!file->read_at(loc.offset, record.size(), record.data())) {
    return false;
  }
  if (get_u32(record.data()) != loc.payload_len) return false;
  if (common::crc32c(record.data() + kHeaderBytes,
                     record.size() - kHeaderBytes) !=
      get_u32(record.data() + 4)) {
    warn("CRC mismatch reading record (bit rot?); treating as miss");
    return false;
  }
  payload->assign(record, kHeaderBytes + kKeyBytes,
                  record.size() - kHeaderBytes - kKeyBytes);
  return true;
}

bool LogStore::get(const Fingerprint& fp, std::string* payload) const {
  const common::MutexLock lock(m_);
  const auto it = index_.find(fp);
  if (it == index_.end()) return false;
  return read_payload(it->second, payload);
}

bool LogStore::put(const Fingerprint& fp, std::string_view payload) {
  const common::MutexLock lock(m_);
  if (options_.max_total_bytes != 0 &&
      record_bytes(payload.size()) > options_.max_total_bytes) {
    // Admitting it would immediately flush the whole store.
    ++counters_.evictions;
    return true;
  }
  if (!append_record(fp, payload)) return false;
  ++counters_.appends;
  enforce_budget();
  maybe_compact();
  return true;
}

std::vector<std::pair<Fingerprint, std::string>> LogStore::recent_entries(
    std::size_t n) const {
  const common::MutexLock lock(m_);
  std::vector<std::pair<Fingerprint, std::string>> entries;
  entries.reserve(std::min(n, order_.size()));
  // The newest n entries, emitted oldest-first: replaying them through an
  // LRU leaves the hottest (most recently appended) most recently used.
  auto it = order_.end();
  std::advance(it, -static_cast<std::ptrdiff_t>(std::min(n, order_.size())));
  for (; it != order_.end(); ++it) {
    std::string payload;
    if (read_payload(index_.at(*it), &payload)) {
      entries.emplace_back(*it, std::move(payload));
    }
  }
  return entries;
}

StoreStats LogStore::stats() const {
  const common::MutexLock lock(m_);
  StoreStats s = counters_;
  s.entries = index_.size();
  s.live_bytes = live_bytes_;
  s.file_bytes = file_bytes_;
  s.segments = segments_.size();
  return s;
}

}  // namespace codar::store

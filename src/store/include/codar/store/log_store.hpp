#pragma once

// Crash-safe, append-only persistence for the content-addressed route
// cache: the disk tier behind service::RouteCache. A store directory holds
// numbered segment files (`codar-<seq>.seg`), each a sequence of
// checksummed records:
//
//   segment  := magic "CODARSG1" record*
//   record   := u32 payload_len | u32 crc32c | key (3 × u64 LE) | payload
//
// The CRC covers key + payload, so a torn tail (power cut mid-append), a
// bit-flipped byte or a short header all surface as "first bad record" on
// open — recovery truncates the segment there, logs a warning, and serves
// everything before it. Zero-length and foreign-magic segment files are
// dropped with a warning. Opening never throws for *corruption*; it only
// throws when the directory is unusable (uncreatable, or flock-held by a
// live process — see common::DirLock).
//
// The in-memory index (fingerprint → segment/offset) is rebuilt by
// scanning segments oldest-first; a fingerprint appearing again later
// supersedes its earlier record (last-write-wins), leaving the old bytes
// as dead weight until compaction rewrites live records into a fresh
// segment and deletes the originals. The active segment rotates past
// `max_segment_bytes`; when live payload exceeds `max_total_bytes` the
// oldest-appended entries are evicted (index-only — their bytes die at the
// next compaction). Append order therefore approximates recency, which is
// what warm-start preloading and eviction both lean on.
//
// Concurrency: one annotated mutex serializes every operation. Disk
// lookups happen only on a memory-tier miss and appends only on a fresh
// route, so store contention is never on the serve hot path; what matters
// is that RouteCache calls into the store *outside* its shard locks.
//
// Durability contract: append() returns once the record reached the
// kernel (process death loses nothing); machine-crash durability costs an
// explicit sync_every_append. Either way recovery truncates any torn tail
// instead of refusing to start.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "codar/common/file_io.hpp"
#include "codar/common/thread_annotations.hpp"

namespace codar::store {

/// The content-addressed key of one record: the route cache's
/// (circuit, device, options) fingerprint triple.
struct Fingerprint {
  std::uint64_t circuit = 0;
  std::uint64_t device = 0;
  std::uint64_t options = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const;
};

struct LogStoreOptions {
  /// Rotate the active segment once it grows past this.
  std::size_t max_segment_bytes = 64u << 20;
  /// Budget over *live* record bytes; 0 = unbounded. Exceeding it evicts
  /// the oldest-appended entries.
  std::size_t max_total_bytes = 1u << 30;
  /// Compact when dead bytes exceed this fraction of on-disk bytes (and
  /// there is more than one segment's worth of data to reclaim).
  double compact_waste_ratio = 0.5;
  /// fsync after every append: machine-crash durability at ~1 ms/record.
  /// Off by default — process crashes (SIGKILL) lose nothing either way.
  bool sync_every_append = false;
  /// Sink for recovery/corruption warnings. Null = silent.
  std::function<void(const std::string&)> log;
};

/// Counters and sizes, all monotonically maintained under the store lock.
struct StoreStats {
  std::size_t entries = 0;        ///< Live index entries.
  std::size_t live_bytes = 0;     ///< Record bytes reachable via the index.
  std::size_t file_bytes = 0;     ///< Total segment bytes incl. dead records.
  std::size_t segments = 0;       ///< Segment files on disk.
  std::size_t appends = 0;        ///< put() calls this session.
  std::size_t evictions = 0;      ///< Entries dropped by the byte budget.
  std::size_t compactions = 0;    ///< Compaction passes this session.
  std::size_t recovered = 0;      ///< Records indexed by open()'s scan.
  std::size_t corrupt_dropped = 0;///< Records/files dropped by recovery.
};

class LogStore {
 public:
  /// Opens (creating if needed) the store in `dir`, scans and recovers
  /// segments, and takes the directory lock. Throws std::runtime_error
  /// when the directory is unusable or locked by another process;
  /// corruption never throws (see file comment).
  static std::unique_ptr<LogStore> open(const std::string& dir,
                                        LogStoreOptions options);

  ~LogStore();

  /// Copies the payload for `fp` into `*payload`. False = not stored.
  bool get(const Fingerprint& fp, std::string* payload) const;

  /// Appends (fp → payload), superseding any previous record for `fp`,
  /// then applies rotation / eviction / compaction policy. A payload that
  /// alone exceeds the byte budget is ignored (counted as an eviction).
  /// Returns false only on an I/O error (the store stays usable; the
  /// entry is simply not persisted).
  bool put(const Fingerprint& fp, std::string_view payload);

  /// Up to `n` live entries in oldest→newest append order — the warm-start
  /// feed: replaying it through an LRU leaves the hottest entry most
  /// recently used. Entries whose payload fails to re-read are skipped.
  std::vector<std::pair<Fingerprint, std::string>> recent_entries(
      std::size_t n) const;

  /// Rewrites live records into fresh segments and deletes the old files.
  /// Returns bytes reclaimed. (Runs automatically per policy; public for
  /// tests and tooling.)
  std::size_t compact();

  StoreStats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  struct Location {
    std::uint64_t segment = 0;      ///< Segment sequence number.
    std::uint64_t offset = 0;       ///< Byte offset of the record header.
    std::uint32_t payload_len = 0;
    std::list<Fingerprint>::iterator order;  ///< Position in order_.
  };

  struct Segment {
    std::string path;
    std::uint64_t bytes = 0;  ///< File size (header + records).
    mutable std::unique_ptr<common::RandomReadFile> reader;
  };

  LogStore(std::string dir, LogStoreOptions options);

  void recover() CODAR_REQUIRES(m_);
  /// Scans one segment file, indexing its records; truncates at the first
  /// bad record. Returns false when the whole file was dropped.
  bool recover_segment(std::uint64_t seq, const std::string& path)
      CODAR_REQUIRES(m_);
  void open_active_segment(std::uint64_t seq) CODAR_REQUIRES(m_);
  bool append_record(const Fingerprint& fp, std::string_view payload)
      CODAR_REQUIRES(m_);
  void index_record(const Fingerprint& fp, std::uint64_t segment,
                    std::uint64_t offset, std::uint32_t payload_len)
      CODAR_REQUIRES(m_);
  void drop_entry(const Fingerprint& fp) CODAR_REQUIRES(m_);
  void enforce_budget() CODAR_REQUIRES(m_);
  void maybe_compact() CODAR_REQUIRES(m_);
  std::size_t compact_locked() CODAR_REQUIRES(m_);
  bool read_payload(const Location& loc, std::string* payload) const
      CODAR_REQUIRES(m_);
  common::RandomReadFile* reader_for(std::uint64_t segment) const
      CODAR_REQUIRES(m_);
  void warn(const std::string& message) const;

  const std::string dir_;
  const LogStoreOptions options_;
  /// Taken before any scan, released on destruction (or process death).
  std::unique_ptr<common::DirLock> lock_;

  mutable common::Mutex m_;
  std::unordered_map<Fingerprint, Location, FingerprintHash> index_
      CODAR_GUARDED_BY(m_);
  /// Append order, oldest at front; eviction pops the front, warm-start
  /// walks front→back.
  std::list<Fingerprint> order_ CODAR_GUARDED_BY(m_);
  std::unordered_map<std::uint64_t, Segment> segments_ CODAR_GUARDED_BY(m_);
  std::unique_ptr<common::AppendFile> active_ CODAR_GUARDED_BY(m_);
  std::uint64_t active_seq_ CODAR_GUARDED_BY(m_) = 0;
  std::size_t live_bytes_ CODAR_GUARDED_BY(m_) = 0;
  std::size_t file_bytes_ CODAR_GUARDED_BY(m_) = 0;
  StoreStats counters_ CODAR_GUARDED_BY(m_);
};

}  // namespace codar::store

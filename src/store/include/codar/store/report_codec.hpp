#pragma once

// Binary serialization of pipeline::RouteReport for the persistent route
// cache. The codec must round-trip *exactly* — the serve acceptance test
// compares warm-start responses byte-for-byte against the cold run, and
// the JSON rendering reads every field — so everything is fixed-width
// little-endian: integers as u64, doubles as their IEEE-754 bit pattern,
// strings length-prefixed. A leading format-version word lets a future
// field addition invalidate old records cleanly (decode fails, the entry
// re-routes and is re-appended in the new format) instead of misreading
// them.

#include <string>
#include <string_view>

#include "codar/pipeline/pipeline.hpp"

namespace codar::store {

/// Current encoding version. Bump on any RouteReport field change; old
/// records then decode as "unreadable" and simply re-route.
inline constexpr std::uint32_t kReportCodecVersion = 1;

/// Serializes `report` (all fields, including routed_qasm and stage_us).
std::string encode_report(const pipeline::RouteReport& report);

/// Decodes into `*report`. Returns false (leaving `*report` unspecified)
/// on a version mismatch, truncation, or trailing garbage — never throws
/// on malformed input.
bool decode_report(std::string_view bytes, pipeline::RouteReport* report);

}  // namespace codar::store

#pragma once

// A*-layered baseline (Zulehner, Paler, Wille — TCAD 2019), the second
// heuristic family the paper's related-work section discusses: partition
// the circuit into layers of independent gates, then run an A* search over
// SWAP insertions until every two-qubit gate of the layer is
// coupling-compliant. Depth-oriented like SABRE, duration- and
// context-blind like SABRE — a second reference point for CODAR.
//
// Engineering notes: the search is per layer, states are layouts hashed by
// their logical→physical vector, candidate SWAPs touch only the qubits of
// unsatisfied gates, and a node cap guards against exponential blowups
// (falling back to greedy shortest-path routing for the rare layer that
// exceeds it).

#include "codar/arch/device.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/layout/layout.hpp"

namespace codar::astar {

struct AstarConfig {
  /// Maximum A* node expansions per layer before the greedy fallback.
  int max_expansions = 50000;
  /// Weight on the heuristic term (1.0 = classic A*; larger = greedier).
  double heuristic_weight = 1.0;
};

/// The layered A* mapping pass.
class AstarRouter {
 public:
  explicit AstarRouter(const arch::Device& device, AstarConfig config = {});

  const AstarConfig& config() const { return config_; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const;
  core::RoutingResult route(const ir::Circuit& circuit) const;

 private:
  arch::Device device_;
  AstarConfig config_;
};

}  // namespace codar::astar

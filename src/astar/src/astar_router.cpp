#include "codar/astar/astar_router.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <unordered_set>

#include "codar/arch/distance_oracle.hpp"
#include "codar/ir/dag.hpp"
#include "codar/ir/decompose.hpp"

namespace codar::astar {

namespace {

using core::RoutingResult;
using ir::Gate;
using ir::GateKind;
using ir::Qubit;
using layout::Layout;

/// FNV-1a hash of a logical->physical vector (the search-state identity).
std::size_t hash_l2p(const std::vector<Qubit>& l2p) {
  std::size_t h = 1469598103934665603u;
  for (const Qubit q : l2p) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(q)) +
         0x9e3779b97f4a7c15u;
    h *= 1099511628211u;
  }
  return h;
}

/// Partitions the circuit into layers of mutually independent gates (the
/// repeated DAG front construction of the A*-layering papers).
std::vector<std::vector<int>> build_layers(const ir::Circuit& circuit) {
  const ir::DependencyDag dag(circuit);
  std::vector<int> unresolved(circuit.size());
  std::vector<int> ready;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    unresolved[i] = dag.in_degree(static_cast<int>(i));
    if (unresolved[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<std::vector<int>> layers;
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end());
    layers.push_back(ready);
    std::vector<int> next;
    for (const int g : ready) {
      for (const int succ : dag.successors(g)) {
        if (--unresolved[static_cast<std::size_t>(succ)] == 0) {
          next.push_back(succ);
        }
      }
    }
    ready = std::move(next);
  }
  return layers;
}

/// One A* search node: a layout plus the SWAP that produced it and a link
/// to its parent (arena index), for O(depth) path reconstruction.
struct Node {
  Layout layout;
  int parent = -1;
  Qubit swap_a = -1;
  Qubit swap_b = -1;
  int g_cost = 0;
};

struct QueueEntry {
  double f_cost;
  int node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    return a.f_cost > b.f_cost;
  }
};

class LayerSearch {
 public:
  LayerSearch(const arch::Device& device, const AstarConfig& config,
              std::vector<std::pair<Qubit, Qubit>> targets)
      : device_(device),
        config_(config),
        dist_(device.graph.oracle()),
        targets_(std::move(targets)) {}

  /// Runs A* from `start`; appends the chosen SWAPs (in order) to `out`
  /// and returns the goal layout, or nullopt when the expansion cap is hit
  /// (the caller then falls back to per-gate greedy routing).
  std::optional<Layout> run(const Layout& start,
                            std::vector<std::pair<Qubit, Qubit>>& out) {
    arena_.clear();
    arena_.push_back(Node{start, -1, -1, -1, 0});
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>> open;
    std::unordered_set<std::size_t> closed;
    open.push(QueueEntry{heuristic(start), 0});
    int expansions = 0;

    while (!open.empty()) {
      const QueueEntry entry = open.top();
      open.pop();
      // Copy out of the arena: push_back below may reallocate it.
      const Layout current = arena_[static_cast<std::size_t>(entry.node)].layout;
      const int current_g = arena_[static_cast<std::size_t>(entry.node)].g_cost;
      if (satisfied(current)) {
        reconstruct(entry.node, out);
        return current;
      }
      const std::size_t key = hash_l2p(current.l2p());
      if (!closed.insert(key).second) continue;
      if (++expansions > config_.max_expansions) break;

      for (const auto& [a, b] : candidate_swaps(current)) {
        Layout next = current;
        next.swap_physical(a, b);
        if (closed.count(hash_l2p(next.l2p())) != 0) continue;
        const int g = current_g + 1;
        const double h = heuristic(next);
        arena_.push_back(Node{std::move(next), entry.node, a, b, g});
        open.push(
            QueueEntry{g + config_.heuristic_weight * h,
                       static_cast<int>(arena_.size()) - 1});
      }
    }
    return std::nullopt;
  }

 private:
  bool satisfied(const Layout& layout) const {
    for (const auto& [la, lb] : targets_) {
      if (!device_.graph.connected(layout.physical(la),
                                   layout.physical(lb))) {
        return false;
      }
    }
    return true;
  }

  /// Admissible-ish remaining-work estimate: each unsatisfied pair still
  /// needs at least D-1 SWAPs (a SWAP shortens one pair by at most 1).
  /// Uses the oracle's lower_bound: exact on the dense and plain on-demand
  /// backends, a cheap landmark (ALT) bound under --distance-oracle
  /// landmark — still admissible either way, so solutions stay optimal
  /// within the expansion budget.
  double heuristic(const Layout& layout) const {
    double h = 0.0;
    for (const auto& [la, lb] : targets_) {
      const int d = dist_.lower_bound(layout.physical(la), layout.physical(lb));
      h += std::max(0, d - 1);
    }
    return h;
  }

  std::vector<std::pair<Qubit, Qubit>> candidate_swaps(
      const Layout& layout) const {
    std::vector<std::pair<Qubit, Qubit>> swaps;
    for (const auto& [la, lb] : targets_) {
      if (device_.graph.connected(layout.physical(la),
                                  layout.physical(lb))) {
        continue;
      }
      for (const Qubit lq : {la, lb}) {
        const Qubit p = layout.physical(lq);
        for (const Qubit nb : device_.graph.neighbors(p)) {
          const std::pair<Qubit, Qubit> edge{std::min(p, nb),
                                             std::max(p, nb)};
          if (std::find(swaps.begin(), swaps.end(), edge) == swaps.end()) {
            swaps.push_back(edge);
          }
        }
      }
    }
    return swaps;
  }

  void reconstruct(int node, std::vector<std::pair<Qubit, Qubit>>& out) {
    std::vector<std::pair<Qubit, Qubit>> reversed;
    for (int cur = node; cur >= 0;
         cur = arena_[static_cast<std::size_t>(cur)].parent) {
      const Node& n = arena_[static_cast<std::size_t>(cur)];
      if (n.swap_a >= 0) reversed.emplace_back(n.swap_a, n.swap_b);
    }
    out.insert(out.end(), reversed.rbegin(), reversed.rend());
  }

  const arch::Device& device_;
  const AstarConfig& config_;
  const arch::DistanceOracle& dist_;  ///< Cached distance backend.
  std::vector<std::pair<Qubit, Qubit>> targets_;
  std::vector<Node> arena_;
};

}  // namespace

AstarRouter::AstarRouter(const arch::Device& device, AstarConfig config)
    : device_(device), config_(config) {
  CODAR_EXPECTS(device.graph.is_fully_connected());
  CODAR_EXPECTS(config.max_expansions > 0);
  CODAR_EXPECTS(config.heuristic_weight > 0.0);
}

RoutingResult AstarRouter::route(const ir::Circuit& circuit,
                                 const layout::Layout& initial) const {
  CODAR_EXPECTS(ir::is_two_qubit_lowered(circuit));
  CODAR_EXPECTS(circuit.num_qubits() <= device_.graph.num_qubits());
  CODAR_EXPECTS(initial.num_logical() == circuit.num_qubits());
  CODAR_EXPECTS(initial.num_physical() == device_.graph.num_qubits());

  Layout layout = initial;
  ir::Circuit out(device_.graph.num_qubits(), circuit.name() + "_astar");
  core::RouterStats stats;
  // The greedy fallback steps along exact shortest paths, so it queries
  // distance() (not lower_bound()) through a cached oracle reference.
  const arch::DistanceOracle& dist = device_.graph.oracle();

  // Greedy per-gate fallback: bring one pair together along a shortest
  // path and emit the gate immediately, so later movement cannot break it.
  auto emit_greedily = [&](const Gate& g) {
    if (g.num_qubits() == 2 && g.kind() != GateKind::kBarrier) {
      while (!device_.graph.connected(layout.physical(g.qubit(0)),
                                      layout.physical(g.qubit(1)))) {
        const Qubit pa = layout.physical(g.qubit(0));
        const Qubit pb = layout.physical(g.qubit(1));
        Qubit step = -1;
        for (const Qubit nb : device_.graph.neighbors(pa)) {
          if (step < 0 ||
              dist.distance(nb, pb) < dist.distance(step, pb)) {
            step = nb;
          }
        }
        out.swap(pa, step);
        ++stats.swaps_inserted;
        layout.swap_physical(pa, step);
      }
    }
    out.add(g.remapped([&](Qubit lq) { return layout.physical(lq); }));
  };

  for (const std::vector<int>& layer : build_layers(circuit)) {
    // Collect the layer's two-qubit coupling targets.
    std::vector<std::pair<Qubit, Qubit>> targets;
    for (const int gi : layer) {
      const Gate& g = circuit.gate(static_cast<std::size_t>(gi));
      if (g.num_qubits() == 2 && g.kind() != GateKind::kBarrier) {
        targets.emplace_back(g.qubit(0), g.qubit(1));
      }
    }
    std::vector<std::pair<Qubit, Qubit>> swaps;
    LayerSearch search(device_, config_, std::move(targets));
    const std::optional<Layout> solved = search.run(layout, swaps);
    if (solved.has_value()) {
      layout = *solved;
      for (const auto& [a, b] : swaps) {
        out.swap(a, b);
        ++stats.swaps_inserted;
      }
      for (const int gi : layer) {
        const Gate& g = circuit.gate(static_cast<std::size_t>(gi));
        out.add(g.remapped([&](Qubit lq) { return layout.physical(lq); }));
      }
    } else {
      ++stats.escape_swaps;  // counts fallback layers
      for (const int gi : layer) {
        emit_greedily(circuit.gate(static_cast<std::size_t>(gi)));
      }
    }
  }
  stats.barriers = circuit.barrier_count();
  stats.gates_routed = circuit.size() - stats.barriers;
  return RoutingResult{std::move(out), initial, std::move(layout), stats};
}

RoutingResult AstarRouter::route(const ir::Circuit& circuit) const {
  return route(circuit, layout::Layout(circuit.num_qubits(),
                                       device_.graph.num_qubits()));
}

}  // namespace codar::astar

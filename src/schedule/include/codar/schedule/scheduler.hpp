#pragma once

// Duration-weighted ASAP scheduling. The paper's quality metric is the
// *weighted depth* of the routed circuit: the makespan of an as-soon-as-
// possible schedule in which each gate occupies its qubits for τ(gate)
// cycles — exactly the execution-time model induced by CODAR's qubit locks.
// Both routers' outputs are scored with this one scheduler, so the
// comparison is apples-to-apples.

#include <vector>

#include "codar/arch/device.hpp"
#include "codar/arch/durations.hpp"
#include "codar/ir/circuit.hpp"

namespace codar::schedule {

using arch::Duration;

/// Start/finish times for one gate of the scheduled circuit.
struct ScheduledGate {
  std::size_t gate_index;  ///< Index into the source circuit.
  Duration start;
  Duration finish;
};

/// Full ASAP schedule of a circuit.
struct Schedule {
  std::vector<ScheduledGate> gates;
  Duration makespan = 0;  ///< Weighted depth.

  /// Number of gates executing at time t (for utilization analyses).
  int active_gates_at(Duration t) const;
};

/// Schedules every gate as early as its qubits allow (program order,
/// qubit-exclusivity). Barriers take 0 cycles but still synchronize.
Schedule asap_schedule(const ir::Circuit& circuit,
                       const arch::DurationMap& durations);

/// Device-resolved variant for *routed* circuits, whose qubit indices are
/// physical: each gate occupies its qubits for Device::duration(gate,
/// qubits) cycles, so per-qubit/per-edge calibration shapes the schedule.
/// Identical to the DurationMap overload when the calibration is empty.
Schedule asap_schedule(const ir::Circuit& circuit,
                       const arch::Device& device);

/// Weighted depth = makespan of the ASAP schedule.
Duration weighted_depth(const ir::Circuit& circuit,
                        const arch::DurationMap& durations);

/// Device-resolved weighted depth (physical circuits; see asap_schedule).
Duration weighted_depth(const ir::Circuit& circuit,
                        const arch::Device& device);

/// Classic unweighted depth (every non-barrier gate one layer).
int unweighted_depth(const ir::Circuit& circuit);

}  // namespace codar::schedule

#pragma once

// Estimated success probability (ESP): the analytical fidelity proxy used
// by the error-aware mapping line of work the paper discusses (§II-b).
//
//   ESP = Π_gates F(gate) × Π_qubits exp(-busy_or_idle_time / T_coherence)
//
// The first factor punishes extra SWAPs, the second punishes long
// schedules — exactly the trade-off Fig. 9 probes by simulation; ESP lets
// benches sweep it cheaply at any device size.

#include "codar/arch/fidelity_map.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::schedule {

struct EspBreakdown {
  double gate_factor = 1.0;        ///< Product of per-gate fidelities.
  double coherence_factor = 1.0;   ///< exp(-Σ_q lifetime_q / T).
  double esp() const { return gate_factor * coherence_factor; }
};

/// Computes ESP of a circuit under a fidelity map and a coherence time
/// (cycles; infinity disables the decoherence factor). Each *used* qubit
/// decoheres from its first gate's start to its last gate's finish.
EspBreakdown estimate_success(const ir::Circuit& circuit,
                              const arch::DurationMap& durations,
                              const arch::FidelityMap& fidelities,
                              double coherence_cycles);

}  // namespace codar::schedule

#pragma once

// Timeline analysis and rendering over ASAP schedules: an ASCII Gantt view
// (one row per qubit) plus parallelism / utilization statistics. Used by
// the examples to visualize why CODAR's circuits finish earlier, and by
// benches to report parallelism gains.

#include <string>

#include "codar/schedule/scheduler.hpp"

namespace codar::schedule {

/// Aggregate occupancy statistics of a schedule.
struct TimelineStats {
  Duration makespan = 0;
  double mean_parallelism = 0.0;  ///< Avg gates in flight over the makespan.
  double qubit_utilization = 0.0; ///< Busy qubit-cycles / (qubits*makespan).
  Duration busiest_qubit_cycles = 0;
  ir::Qubit busiest_qubit = -1;
};

/// Computes occupancy statistics for a circuit under the given durations.
TimelineStats analyze_timeline(const ir::Circuit& circuit,
                               const arch::DurationMap& durations);

/// Renders an ASCII Gantt chart: one row per *used* qubit, one column per
/// cycle (capped at `max_columns`; longer schedules are truncated with a
/// marker). Gate cells show the first letter of the mnemonic, SWAPs show
/// 'S', idle cycles show '.'.
std::string render_timeline(const ir::Circuit& circuit,
                            const arch::DurationMap& durations,
                            int max_columns = 120);

}  // namespace codar::schedule

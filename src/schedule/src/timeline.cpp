#include "codar/schedule/timeline.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace codar::schedule {

TimelineStats analyze_timeline(const ir::Circuit& circuit,
                               const arch::DurationMap& durations) {
  const Schedule sched = asap_schedule(circuit, durations);
  TimelineStats stats;
  stats.makespan = sched.makespan;
  if (sched.makespan == 0) return stats;

  std::vector<Duration> busy(static_cast<std::size_t>(circuit.num_qubits()),
                             0);
  Duration gate_cycles = 0;
  for (const ScheduledGate& sg : sched.gates) {
    const ir::Gate& g = circuit.gate(sg.gate_index);
    const Duration len = sg.finish - sg.start;
    gate_cycles += len;
    for (const ir::Qubit q : g.qubits()) {
      busy[static_cast<std::size_t>(q)] += len;
    }
  }
  stats.mean_parallelism = static_cast<double>(gate_cycles) /
                           static_cast<double>(sched.makespan);
  Duration total_busy = 0;
  for (std::size_t q = 0; q < busy.size(); ++q) {
    total_busy += busy[q];
    if (busy[q] > stats.busiest_qubit_cycles) {
      stats.busiest_qubit_cycles = busy[q];
      stats.busiest_qubit = static_cast<ir::Qubit>(q);
    }
  }
  const int used = circuit.used_qubit_count();
  if (used > 0) {
    stats.qubit_utilization =
        static_cast<double>(total_busy) /
        (static_cast<double>(used) * static_cast<double>(sched.makespan));
  }
  return stats;
}

std::string render_timeline(const ir::Circuit& circuit,
                            const arch::DurationMap& durations,
                            int max_columns) {
  CODAR_EXPECTS(max_columns > 0);
  const Schedule sched = asap_schedule(circuit, durations);
  const int used = circuit.used_qubit_count();
  const auto columns = static_cast<std::size_t>(
      std::min<Duration>(sched.makespan, max_columns));
  std::vector<std::string> rows(static_cast<std::size_t>(used),
                                std::string(columns, '.'));
  for (const ScheduledGate& sg : sched.gates) {
    const ir::Gate& g = circuit.gate(sg.gate_index);
    char symbol = ir::gate_info(g.kind()).name[0];
    if (g.kind() == ir::GateKind::kSwap) symbol = 'S';
    symbol = static_cast<char>(
        std::toupper(static_cast<unsigned char>(symbol)));
    for (const ir::Qubit q : g.qubits()) {
      auto& row = rows[static_cast<std::size_t>(q)];
      for (Duration t = sg.start; t < sg.finish; ++t) {
        if (t >= static_cast<Duration>(columns)) break;
        row[static_cast<std::size_t>(t)] = symbol;
      }
      // Zero-duration gates (barriers) still leave a mark.
      if (sg.finish == sg.start &&
          sg.start < static_cast<Duration>(columns)) {
        row[static_cast<std::size_t>(sg.start)] = '|';
      }
    }
  }
  std::ostringstream out;
  for (int q = 0; q < used; ++q) {
    out << 'Q' << q << (q < 10 ? "  |" : " |")
        << rows[static_cast<std::size_t>(q)];
    if (sched.makespan > static_cast<Duration>(columns)) out << " ...";
    out << '\n';
  }
  out << "t = 0.." << sched.makespan << " cycles\n";
  return out.str();
}

}  // namespace codar::schedule

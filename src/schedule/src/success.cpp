#include "codar/schedule/success.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace codar::schedule {

EspBreakdown estimate_success(const ir::Circuit& circuit,
                              const arch::DurationMap& durations,
                              const arch::FidelityMap& fidelities,
                              double coherence_cycles) {
  CODAR_EXPECTS(coherence_cycles > 0.0);
  const Schedule sched = asap_schedule(circuit, durations);
  EspBreakdown breakdown;

  std::vector<Duration> first_start(
      static_cast<std::size_t>(circuit.num_qubits()),
      std::numeric_limits<Duration>::max());
  std::vector<Duration> last_finish(
      static_cast<std::size_t>(circuit.num_qubits()), -1);

  for (const ScheduledGate& sg : sched.gates) {
    const ir::Gate& g = circuit.gate(sg.gate_index);
    breakdown.gate_factor *= fidelities.of(g);
    for (const ir::Qubit q : g.qubits()) {
      auto& fs = first_start[static_cast<std::size_t>(q)];
      fs = std::min(fs, sg.start);
      auto& lf = last_finish[static_cast<std::size_t>(q)];
      lf = std::max(lf, sg.finish);
    }
  }
  if (!std::isinf(coherence_cycles)) {
    double exposure = 0.0;
    for (std::size_t q = 0; q < last_finish.size(); ++q) {
      if (last_finish[q] < 0) continue;  // untouched qubit
      exposure +=
          static_cast<double>(last_finish[q] - first_start[q]);
    }
    breakdown.coherence_factor = std::exp(-exposure / coherence_cycles);
  }
  return breakdown;
}

}  // namespace codar::schedule

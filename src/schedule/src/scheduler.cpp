#include "codar/schedule/scheduler.hpp"

#include <algorithm>

namespace codar::schedule {

int Schedule::active_gates_at(Duration t) const {
  int active = 0;
  for (const ScheduledGate& g : gates) {
    if (g.start <= t && t < g.finish) ++active;
  }
  return active;
}

namespace {

/// Shared ASAP loop; `duration_of` resolves one gate's duration.
template <typename DurationOf>
Schedule asap_schedule_impl(const ir::Circuit& circuit,
                            DurationOf&& duration_of) {
  Schedule schedule;
  schedule.gates.reserve(circuit.size());
  std::vector<Duration> avail(static_cast<std::size_t>(circuit.num_qubits()),
                              0);
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const ir::Gate& g = circuit.gate(i);
    Duration start = 0;
    for (const ir::Qubit q : g.qubits()) {
      start = std::max(start, avail[static_cast<std::size_t>(q)]);
    }
    const Duration finish = start + duration_of(g);
    for (const ir::Qubit q : g.qubits()) {
      avail[static_cast<std::size_t>(q)] = finish;
    }
    schedule.gates.push_back(ScheduledGate{i, start, finish});
    schedule.makespan = std::max(schedule.makespan, finish);
  }
  return schedule;
}

}  // namespace

Schedule asap_schedule(const ir::Circuit& circuit,
                       const arch::DurationMap& durations) {
  return asap_schedule_impl(circuit,
                            [&](const ir::Gate& g) { return durations.of(g); });
}

Schedule asap_schedule(const ir::Circuit& circuit,
                       const arch::Device& device) {
  return asap_schedule_impl(circuit, [&](const ir::Gate& g) {
    return device.duration(g, g.qubits());
  });
}

Duration weighted_depth(const ir::Circuit& circuit,
                        const arch::DurationMap& durations) {
  return asap_schedule(circuit, durations).makespan;
}

Duration weighted_depth(const ir::Circuit& circuit,
                        const arch::Device& device) {
  return asap_schedule(circuit, device).makespan;
}

int unweighted_depth(const ir::Circuit& circuit) {
  std::vector<int> depth(static_cast<std::size_t>(circuit.num_qubits()), 0);
  int max_depth = 0;
  for (const ir::Gate& g : circuit.gates()) {
    int layer = 0;
    for (const ir::Qubit q : g.qubits()) {
      layer = std::max(layer, depth[static_cast<std::size_t>(q)]);
    }
    if (g.kind() != ir::GateKind::kBarrier) ++layer;
    for (const ir::Qubit q : g.qubits()) {
      depth[static_cast<std::size_t>(q)] = layer;
    }
    max_depth = std::max(max_depth, layer);
  }
  return max_depth;
}

}  // namespace codar::schedule

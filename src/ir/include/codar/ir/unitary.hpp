#pragma once

// Exact gate semantics: small dense complex matrices. Serves two clients:
// (1) the ground-truth commutation check backing CODAR's symbolic rule
// table, and (2) the state-vector / density-matrix simulators in src/sim.
//
// Bit convention: for a gate with operand list [a, b, c], bit k of a local
// basis index corresponds to operand k (operand 0 is the least significant
// bit). The same convention applies to joint-space embeddings.

#include <complex>
#include <vector>

#include "codar/ir/gate.hpp"

namespace codar::ir {

using Complex = std::complex<double>;

/// Dense square complex matrix, row-major. Dimensions stay tiny (2..8) for
/// gate semantics; the density-matrix simulator reuses it at larger sizes.
class Matrix {
 public:
  Matrix() : dim_(0) {}
  explicit Matrix(std::size_t dim) : dim_(dim), data_(dim * dim) {}

  static Matrix identity(std::size_t dim);

  std::size_t dim() const { return dim_; }
  Complex& at(std::size_t row, std::size_t col) {
    CODAR_EXPECTS(row < dim_ && col < dim_);
    return data_[row * dim_ + col];
  }
  const Complex& at(std::size_t row, std::size_t col) const {
    CODAR_EXPECTS(row < dim_ && col < dim_);
    return data_[row * dim_ + col];
  }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  /// Conjugate transpose.
  Matrix dagger() const;
  /// Largest absolute entry value.
  double max_abs() const;
  /// True when ‖U†U − I‖_max < tol.
  bool is_unitary(double tol = 1e-9) const;

 private:
  std::size_t dim_;
  std::vector<Complex> data_;
};

/// Kronecker product; bit semantics: index = i_b * a.dim() + i_a, i.e. `a`
/// occupies the low bits (matches the operand-0-is-LSB convention).
Matrix kron(const Matrix& a, const Matrix& b);

/// The unitary of a gate kind with the given parameters, in the gate-local
/// bit convention above. Throws ContractViolation for Measure/Barrier.
Matrix gate_unitary(GateKind kind, std::span<const double> params);

/// Embeds gate g into the joint space spanned by `joint_qubits`
/// (joint_qubits[0] = LSB). Every qubit of g must appear in joint_qubits.
Matrix embed(const Gate& g, std::span<const Qubit> joint_qubits);

/// Exact commutation test: builds the joint space of the two gates' qubit
/// union and checks ‖AB − BA‖_max < tol. Both gates must be unitary kinds.
bool unitaries_commute(const Gate& a, const Gate& b, double tol = 1e-9);

}  // namespace codar::ir

#pragma once

// Gate dependency DAG. Two gates depend on each other when they share a
// qubit and appear in sequence order; the DAG keeps only the immediate
// (per-wire) edges. Used by the SABRE baseline's front layer and by the
// equivalence checker.

#include <vector>

#include "codar/ir/circuit.hpp"

namespace codar::ir {

/// Immediate-dependency DAG of a circuit. Node i corresponds to gate i of
/// the circuit it was built from.
class DependencyDag {
 public:
  explicit DependencyDag(const Circuit& circuit);

  std::size_t size() const { return succ_.size(); }

  /// Gates that must retire before gate i may start (per-wire immediate
  /// predecessors, deduplicated).
  const std::vector<int>& predecessors(int i) const {
    CODAR_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < pred_.size());
    return pred_[static_cast<std::size_t>(i)];
  }
  /// Gates that directly wait on gate i.
  const std::vector<int>& successors(int i) const {
    CODAR_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < succ_.size());
    return succ_[static_cast<std::size_t>(i)];
  }
  int in_degree(int i) const {
    return static_cast<int>(predecessors(i).size());
  }

  /// Indices of gates with no predecessors (the initial front layer).
  std::vector<int> roots() const;

 private:
  std::vector<std::vector<int>> pred_;
  std::vector<std::vector<int>> succ_;
};

}  // namespace codar::ir

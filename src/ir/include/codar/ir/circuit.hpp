#pragma once

// Circuit container: an ordered gate sequence over a fixed-size qubit
// register. The order of the sequence is the program order; routers and
// schedulers are free to exploit commutation, but the IR itself stays a
// plain sequence (matching the paper's "gate sequence I").

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "codar/ir/gate.hpp"

namespace codar::ir {

/// An ordered sequence of gates over `num_qubits()` qubits.
class Circuit {
 public:
  /// Creates an empty circuit over `num_qubits` qubits (may be 0 only for a
  /// default-constructed placeholder).
  explicit Circuit(int num_qubits, std::string name = "");

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }
  const Gate& gate(std::size_t i) const {
    CODAR_EXPECTS(i < gates_.size());
    return gates_[i];
  }
  std::span<const Gate> gates() const { return gates_; }

  /// Appends a gate; all its qubits must lie in [0, num_qubits).
  void add(const Gate& g);

  /// Appends every gate of `other` (same or smaller register width).
  void append(const Circuit& other);

  /// Convenience append helpers mirroring the Gate factories.
  void i(Qubit q) { add(Gate::i(q)); }
  void x(Qubit q) { add(Gate::x(q)); }
  void y(Qubit q) { add(Gate::y(q)); }
  void z(Qubit q) { add(Gate::z(q)); }
  void h(Qubit q) { add(Gate::h(q)); }
  void s(Qubit q) { add(Gate::s(q)); }
  void sdg(Qubit q) { add(Gate::sdg(q)); }
  void t(Qubit q) { add(Gate::t(q)); }
  void tdg(Qubit q) { add(Gate::tdg(q)); }
  void sx(Qubit q) { add(Gate::sx(q)); }
  void rx(Qubit q, double theta) { add(Gate::rx(q, theta)); }
  void ry(Qubit q, double theta) { add(Gate::ry(q, theta)); }
  void rz(Qubit q, double theta) { add(Gate::rz(q, theta)); }
  void u1(Qubit q, double lambda) { add(Gate::u1(q, lambda)); }
  void u2(Qubit q, double phi, double lambda) { add(Gate::u2(q, phi, lambda)); }
  void u3(Qubit q, double theta, double phi, double lambda) {
    add(Gate::u3(q, theta, phi, lambda));
  }
  void cx(Qubit c, Qubit t2) { add(Gate::cx(c, t2)); }
  void cz(Qubit a, Qubit b) { add(Gate::cz(a, b)); }
  void cy(Qubit c, Qubit t2) { add(Gate::cy(c, t2)); }
  void ch(Qubit c, Qubit t2) { add(Gate::ch(c, t2)); }
  void crz(Qubit c, Qubit t2, double theta) { add(Gate::crz(c, t2, theta)); }
  void cu1(Qubit a, Qubit b, double lambda) { add(Gate::cu1(a, b, lambda)); }
  void rzz(Qubit a, Qubit b, double theta) { add(Gate::rzz(a, b, theta)); }
  void swap(Qubit a, Qubit b) { add(Gate::swap(a, b)); }
  void ccx(Qubit c1, Qubit c2, Qubit t2) { add(Gate::ccx(c1, c2, t2)); }
  void measure(Qubit q) { add(Gate::measure(q)); }
  void barrier(std::span<const Qubit> qs) { add(Gate::barrier(qs)); }

  /// Number of gates with exactly two qubit operands.
  std::size_t two_qubit_gate_count() const;
  /// Number of kSwap gates.
  std::size_t swap_count() const;
  /// Number of kBarrier fences.
  std::size_t barrier_count() const;
  /// Highest qubit index actually used plus one (<= num_qubits()).
  int used_qubit_count() const;

  /// Gates in reverse sequence order over the same register (used by the
  /// SABRE-style reverse-traversal initial mapping; gate parameters are kept
  /// as-is because routing only depends on operand structure).
  Circuit reversed() const;

  /// Returns a copy with qubit q replaced by remap[q] everywhere, over a
  /// register of `new_num_qubits` qubits.
  Circuit remapped(std::span<const Qubit> remap, int new_num_qubits) const;

  /// Content-addressed 64-bit fingerprint over register width and the gate
  /// sequence (kind, operands, parameter bit patterns) in program order.
  /// The display name is deliberately excluded, so structurally identical
  /// circuits fingerprint identically. Deterministic across runs, platforms
  /// and thread counts (pure arithmetic over the stored data — no pointers
  /// or hash-table iteration order involved).
  std::uint64_t fingerprint() const;

 private:
  int num_qubits_;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace codar::ir

#pragma once

// Peephole circuit optimizer: a standard pre-routing cleanup pass that
// removes identities, cancels adjacent self-inverse pairs (H·H, X·X,
// CX·CX, S·Sdg, T·Tdg, ...) and fuses adjacent same-axis rotations
// (RZ·RZ, CU1·CU1, ...). Gates are "adjacent" when no other gate touches
// any of their qubits in between; cancellation re-exposes earlier gates,
// so chains collapse in one pass.
//
// Semantics-preserving up to global phase (exactly phase-preserving for
// all implemented rules); property tests check state equivalence.

#include "codar/ir/circuit.hpp"

namespace codar::ir {

struct PeepholeStats {
  std::size_t gates_removed = 0;  ///< From cancellations and identities.
  std::size_t gates_fused = 0;    ///< Rotation pairs merged into one.
};

/// Runs the peephole pass; `stats` (optional) receives counters.
Circuit peephole_optimize(const Circuit& circuit,
                          PeepholeStats* stats = nullptr);

}  // namespace codar::ir

#pragma once

// Quantum gate IR. A Gate is a small value type (kind + up to three qubit
// operands + up to three real parameters) with no heap allocation, so that
// circuits with tens of thousands of gates stay cheap to copy and scan —
// the CODAR router re-scans the pending gate window every cycle.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "codar/common/expects.hpp"

namespace codar::ir {

/// Logical or physical qubit index. Which one it denotes is contextual:
/// circuits entering the router use logical indices, routed circuits use
/// physical indices.
using Qubit = std::int32_t;

/// The gate alphabet: the OpenQASM-2 qelib1 subset that the paper's
/// benchmark families need, plus SWAP (inserted by routers), plus
/// Measure/Barrier pseudo-operations.
enum class GateKind : std::uint8_t {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSX,
  kRX,    // rx(theta)
  kRY,    // ry(theta)
  kRZ,    // rz(theta)
  kU1,    // u1(lambda)
  kU2,    // u2(phi, lambda)
  kU3,    // u3(theta, phi, lambda)
  kCX,    // controlled-X; qubit 0 = control, qubit 1 = target
  kCZ,
  kCY,
  kCH,
  kCRZ,   // crz(theta)
  kCU1,   // cu1(lambda) — controlled phase; ubiquitous in QFT
  kRZZ,   // rzz(theta)
  kSwap,
  kCCX,   // Toffoli; qubits 0,1 = controls, qubit 2 = target
  kMeasure,
  kBarrier,
};

/// Number of distinct GateKind values (for metadata tables / enumeration).
inline constexpr std::size_t kGateKindCount =
    static_cast<std::size_t>(GateKind::kBarrier) + 1;

/// Static per-kind metadata.
struct GateInfo {
  const char* name;      ///< OpenQASM mnemonic.
  int num_qubits;        ///< Operand arity (Barrier is variadic; this is -1).
  int num_params;        ///< Real-parameter arity.
};

/// Metadata lookup. Never fails: every GateKind has an entry.
const GateInfo& gate_info(GateKind kind);

/// True for gates whose unitary is diagonal in the computational basis
/// (Z-axis family). Diagonal gates all commute with each other.
bool is_diagonal(GateKind kind);

/// True for 1-qubit gates whose unitary is a (possibly scaled) rotation
/// about the X axis; these commute with each other and with the target of
/// a CX.
bool is_x_axis(GateKind kind);

/// True for the 2-qubit kinds (CX, CZ, CY, CH, CRZ, CU1, RZZ, Swap).
bool is_two_qubit(GateKind kind);

/// True for unitary gate kinds (everything except Measure and Barrier).
bool is_unitary(GateKind kind);

/// A single gate application. Value type; at most 3 qubits and 3 params.
class Gate {
 public:
  static constexpr int kMaxQubits = 3;
  static constexpr int kMaxParams = 3;

  /// Generic constructor; validates operand/parameter arity against the
  /// kind's metadata and pairwise-distinct qubits.
  Gate(GateKind kind, std::span<const Qubit> qubits,
       std::span<const double> params = {});

  // -- Convenience factories (cover the whole alphabet) --
  static Gate i(Qubit q) { return unary(GateKind::kI, q); }
  static Gate x(Qubit q) { return unary(GateKind::kX, q); }
  static Gate y(Qubit q) { return unary(GateKind::kY, q); }
  static Gate z(Qubit q) { return unary(GateKind::kZ, q); }
  static Gate h(Qubit q) { return unary(GateKind::kH, q); }
  static Gate s(Qubit q) { return unary(GateKind::kS, q); }
  static Gate sdg(Qubit q) { return unary(GateKind::kSdg, q); }
  static Gate t(Qubit q) { return unary(GateKind::kT, q); }
  static Gate tdg(Qubit q) { return unary(GateKind::kTdg, q); }
  static Gate sx(Qubit q) { return unary(GateKind::kSX, q); }
  static Gate rx(Qubit q, double theta);
  static Gate ry(Qubit q, double theta);
  static Gate rz(Qubit q, double theta);
  static Gate u1(Qubit q, double lambda);
  static Gate u2(Qubit q, double phi, double lambda);
  static Gate u3(Qubit q, double theta, double phi, double lambda);
  static Gate cx(Qubit control, Qubit target);
  static Gate cz(Qubit a, Qubit b);
  static Gate cy(Qubit control, Qubit target);
  static Gate ch(Qubit control, Qubit target);
  static Gate crz(Qubit control, Qubit target, double theta);
  static Gate cu1(Qubit a, Qubit b, double lambda);
  static Gate rzz(Qubit a, Qubit b, double theta);
  static Gate swap(Qubit a, Qubit b);
  static Gate ccx(Qubit control1, Qubit control2, Qubit target);
  static Gate measure(Qubit q);
  /// Barrier across an explicit qubit list (1..3 qubits per Gate; wider
  /// barriers are emitted as consecutive overlapping Gate records by the
  /// QASM frontend).
  static Gate barrier(std::span<const Qubit> qubits);

  GateKind kind() const { return kind_; }
  int num_qubits() const { return num_qubits_; }
  int num_params() const { return num_params_; }

  Qubit qubit(int i) const {
    CODAR_EXPECTS(i >= 0 && i < num_qubits_);
    return qubits_[static_cast<std::size_t>(i)];
  }
  std::span<const Qubit> qubits() const {
    return {qubits_.data(), static_cast<std::size_t>(num_qubits_)};
  }
  double param(int i) const {
    CODAR_EXPECTS(i >= 0 && i < num_params_);
    return params_[static_cast<std::size_t>(i)];
  }
  std::span<const double> params() const {
    return {params_.data(), static_cast<std::size_t>(num_params_)};
  }

  /// True if this gate operates on qubit q.
  bool acts_on(Qubit q) const;
  /// True if this gate and other share at least one qubit.
  bool overlaps(const Gate& other) const;

  /// Returns a copy with each qubit q replaced by remap(q).
  template <typename F>
  Gate remapped(F&& remap) const {
    Gate g = *this;
    for (int i = 0; i < g.num_qubits_; ++i) {
      g.qubits_[static_cast<std::size_t>(i)] =
          remap(qubits_[static_cast<std::size_t>(i)]);
    }
    return g;
  }

  /// OpenQASM-like rendering, e.g. "cx q[0], q[3]" or "rz(0.5) q[2]".
  std::string to_string() const;

  /// Structural equality (kind, qubits, params exactly equal).
  friend bool operator==(const Gate& a, const Gate& b);

 private:
  static Gate unary(GateKind kind, Qubit q);

  GateKind kind_;
  std::int8_t num_qubits_ = 0;
  std::int8_t num_params_ = 0;
  std::array<Qubit, kMaxQubits> qubits_{};
  std::array<double, kMaxParams> params_{};
};

}  // namespace codar::ir

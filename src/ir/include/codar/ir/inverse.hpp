#pragma once

// Exact gate and circuit inversion. Enables mirror-circuit benchmarking
// (C followed by C⁻¹ returns to |0...0>, a standard hardware fidelity
// probe) and inverse-based tests. Measure and Barrier are not invertible;
// inverting a circuit containing them throws.

#include "codar/ir/circuit.hpp"

namespace codar::ir {

/// The exact inverse gate (same qubits): self-inverse kinds map to
/// themselves, S/T to their daggers, rotations to negated angles,
/// U2/U3 to the standard angle-swapped adjoints.
Gate inverse(const Gate& g);

/// The inverse circuit: inverted gates in reverse order. Throws
/// ContractViolation if the circuit contains Measure or Barrier.
Circuit inverse(const Circuit& circuit);

/// circuit + inverse(circuit): the mirror benchmarking construction whose
/// ideal output is exactly |0...0>.
Circuit mirror(const Circuit& circuit);

}  // namespace codar::ir

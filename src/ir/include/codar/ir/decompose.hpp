#pragma once

// Decomposition passes that lower the IR to the operand arities the routers
// accept (<= 2 qubits). The routers treat every 2-qubit kind natively, so
// only 3-qubit Toffolis need lowering; SWAP lowering is provided for noise
// simulation on devices whose native alphabet has no SWAP.

#include "codar/ir/circuit.hpp"

namespace codar::ir {

/// Replaces every CCX by the standard 6-CX / T-depth-4 network
/// (Nielsen & Chuang fig. 4.9). Other gates pass through unchanged.
Circuit decompose_toffoli(const Circuit& circuit);

/// Replaces every SWAP a,b by CX a,b; CX b,a; CX a,b.
Circuit decompose_swaps(const Circuit& circuit);

/// True if every gate has at most 2 qubit operands.
bool is_two_qubit_lowered(const Circuit& circuit);

}  // namespace codar::ir

#include "codar/ir/inverse.hpp"

#include <numbers>

namespace codar::ir {

Gate inverse(const Gate& g) {
  CODAR_EXPECTS(is_unitary(g.kind()));
  switch (g.kind()) {
    // Self-inverse kinds.
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCY:
    case GateKind::kCH:
    case GateKind::kSwap:
    case GateKind::kCCX:
      return g;
    // Adjoint partners.
    case GateKind::kS:
      return Gate(GateKind::kSdg, g.qubits());
    case GateKind::kSdg:
      return Gate(GateKind::kS, g.qubits());
    case GateKind::kT:
      return Gate(GateKind::kTdg, g.qubits());
    case GateKind::kTdg:
      return Gate(GateKind::kT, g.qubits());
    case GateKind::kSX: {
      // SX† = SX · X ... no single kind; express as RX(-pi/2) up to global
      // phase, which is exact for state evolution.
      const double params[] = {-std::numbers::pi / 2.0};
      return Gate(GateKind::kRX, g.qubits(), params);
    }
    // Negated-angle rotations.
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kU1:
    case GateKind::kCRZ:
    case GateKind::kCU1:
    case GateKind::kRZZ: {
      const double params[] = {-g.param(0)};
      return Gate(g.kind(), g.qubits(), params);
    }
    case GateKind::kU2: {
      // u2(phi, lambda) = u3(pi/2, phi, lambda);
      // u3(t, p, l)^-1 = u3(-t, -l, -p).
      const double params[] = {-std::numbers::pi / 2.0, -g.param(1),
                               -g.param(0)};
      return Gate(GateKind::kU3, g.qubits(), params);
    }
    case GateKind::kU3: {
      const double params[] = {-g.param(0), -g.param(2), -g.param(1)};
      return Gate(GateKind::kU3, g.qubits(), params);
    }
    case GateKind::kMeasure:
    case GateKind::kBarrier:
      break;
  }
  throw ContractViolation("inverse: non-invertible gate kind");
}

Circuit inverse(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name() + "_inv");
  for (std::size_t i = circuit.size(); i-- > 0;) {
    out.add(inverse(circuit.gate(i)));
  }
  return out;
}

Circuit mirror(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name() + "_mirror");
  for (const Gate& g : circuit.gates()) out.add(g);
  const Circuit inv = inverse(circuit);
  for (const Gate& g : inv.gates()) out.add(g);
  return out;
}

}  // namespace codar::ir

#include "codar/ir/unitary.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace codar::ir {

namespace {

constexpr Complex kI1{0.0, 1.0};

Matrix make2(Complex a00, Complex a01, Complex a10, Complex a11) {
  Matrix m(2);
  m.at(0, 0) = a00;
  m.at(0, 1) = a01;
  m.at(1, 0) = a10;
  m.at(1, 1) = a11;
  return m;
}

Matrix diag4(Complex d0, Complex d1, Complex d2, Complex d3) {
  Matrix m(4);
  m.at(0, 0) = d0;
  m.at(1, 1) = d1;
  m.at(2, 2) = d2;
  m.at(3, 3) = d3;
  return m;
}

/// Controlled-U on two qubits with control = operand 0 (LSB), target =
/// operand 1. Local index = c + 2*t.
Matrix controlled(const Matrix& u) {
  CODAR_EXPECTS(u.dim() == 2);
  Matrix m(4);
  // Control bit 0: identity on target (indices 0 = |c0 t0>, 2 = |c0 t1>).
  m.at(0, 0) = 1.0;
  m.at(2, 2) = 1.0;
  // Control bit 1: U acts on target bit (indices 1 = |c1 t0>, 3 = |c1 t1>).
  m.at(1, 1) = u.at(0, 0);
  m.at(1, 3) = u.at(0, 1);
  m.at(3, 1) = u.at(1, 0);
  m.at(3, 3) = u.at(1, 1);
  return m;
}

Matrix u3_matrix(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return make2(c, -std::exp(kI1 * lambda) * s, std::exp(kI1 * phi) * s,
               std::exp(kI1 * (phi + lambda)) * c);
}

}  // namespace

Matrix Matrix::identity(std::size_t dim) {
  Matrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  CODAR_EXPECTS(dim_ == rhs.dim_);
  Matrix out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t k = 0; k < dim_; ++k) {
      const Complex aik = data_[i * dim_ + k];
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < dim_; ++j) {
        out.data_[i * dim_ + j] += aik * rhs.data_[k * dim_ + j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  CODAR_EXPECTS(dim_ == rhs.dim_);
  Matrix out(dim_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  CODAR_EXPECTS(dim_ == rhs.dim_);
  Matrix out(dim_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::dagger() const {
  Matrix out(dim_);
  for (std::size_t i = 0; i < dim_; ++i)
    for (std::size_t j = 0; j < dim_; ++j)
      out.at(j, i) = std::conj(at(i, j));
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const Complex& c : data_) m = std::max(m, std::abs(c));
  return m;
}

bool Matrix::is_unitary(double tol) const {
  return ((dagger() * *this) - Matrix::identity(dim_)).max_abs() < tol;
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.dim() * b.dim());
  for (std::size_t ib = 0; ib < b.dim(); ++ib)
    for (std::size_t jb = 0; jb < b.dim(); ++jb)
      for (std::size_t ia = 0; ia < a.dim(); ++ia)
        for (std::size_t ja = 0; ja < a.dim(); ++ja)
          out.at(ib * a.dim() + ia, jb * a.dim() + ja) =
              a.at(ia, ja) * b.at(ib, jb);
  return out;
}

Matrix gate_unitary(GateKind kind, std::span<const double> params) {
  using std::numbers::pi;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  auto p = [&](std::size_t i) {
    CODAR_EXPECTS(i < params.size());
    return params[i];
  };
  switch (kind) {
    case GateKind::kI:
      return Matrix::identity(2);
    case GateKind::kX:
      return make2(0, 1, 1, 0);
    case GateKind::kY:
      return make2(0, -kI1, kI1, 0);
    case GateKind::kZ:
      return make2(1, 0, 0, -1);
    case GateKind::kH:
      return make2(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateKind::kS:
      return make2(1, 0, 0, kI1);
    case GateKind::kSdg:
      return make2(1, 0, 0, -kI1);
    case GateKind::kT:
      return make2(1, 0, 0, std::exp(kI1 * (pi / 4.0)));
    case GateKind::kTdg:
      return make2(1, 0, 0, std::exp(-kI1 * (pi / 4.0)));
    case GateKind::kSX:
      return make2(Complex(0.5, 0.5), Complex(0.5, -0.5), Complex(0.5, -0.5),
                   Complex(0.5, 0.5));
    case GateKind::kRX: {
      const double c = std::cos(p(0) / 2.0), s = std::sin(p(0) / 2.0);
      return make2(c, -kI1 * s, -kI1 * s, c);
    }
    case GateKind::kRY: {
      const double c = std::cos(p(0) / 2.0), s = std::sin(p(0) / 2.0);
      return make2(c, -s, s, c);
    }
    case GateKind::kRZ:
      return make2(std::exp(-kI1 * (p(0) / 2.0)), 0, 0,
                   std::exp(kI1 * (p(0) / 2.0)));
    case GateKind::kU1:
      return make2(1, 0, 0, std::exp(kI1 * p(0)));
    case GateKind::kU2:
      return u3_matrix(pi / 2.0, p(0), p(1));
    case GateKind::kU3:
      return u3_matrix(p(0), p(1), p(2));
    case GateKind::kCX:
      return controlled(gate_unitary(GateKind::kX, {}));
    case GateKind::kCZ:
      return diag4(1, 1, 1, -1);
    case GateKind::kCY:
      return controlled(gate_unitary(GateKind::kY, {}));
    case GateKind::kCH:
      return controlled(gate_unitary(GateKind::kH, {}));
    case GateKind::kCRZ:
      return controlled(gate_unitary(GateKind::kRZ, params));
    case GateKind::kCU1:
      return diag4(1, 1, 1, std::exp(kI1 * p(0)));
    case GateKind::kRZZ: {
      const Complex e_minus = std::exp(-kI1 * (p(0) / 2.0));
      const Complex e_plus = std::exp(kI1 * (p(0) / 2.0));
      return diag4(e_minus, e_plus, e_plus, e_minus);
    }
    case GateKind::kSwap: {
      Matrix m(4);
      m.at(0, 0) = 1.0;
      m.at(1, 2) = 1.0;  // |10> (a=1,b=0) -> |01>
      m.at(2, 1) = 1.0;
      m.at(3, 3) = 1.0;
      return m;
    }
    case GateKind::kCCX: {
      // Controls = bits 0,1; target = bit 2.
      Matrix m = Matrix::identity(8);
      // |c1=1, c2=1, t=0> = index 3 <-> |c1=1, c2=1, t=1> = index 7.
      m.at(3, 3) = 0.0;
      m.at(7, 7) = 0.0;
      m.at(3, 7) = 1.0;
      m.at(7, 3) = 1.0;
      return m;
    }
    case GateKind::kMeasure:
    case GateKind::kBarrier:
      break;
  }
  throw ContractViolation("gate_unitary: non-unitary gate kind");
}

Matrix embed(const Gate& g, std::span<const Qubit> joint_qubits) {
  CODAR_EXPECTS(is_unitary(g.kind()));
  const std::size_t k = joint_qubits.size();
  CODAR_EXPECTS(k <= 16);
  // Map each operand of g to its bit position within the joint space.
  std::vector<int> bit_of_operand(static_cast<std::size_t>(g.num_qubits()),
                                  -1);
  for (int i = 0; i < g.num_qubits(); ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (joint_qubits[j] == g.qubit(i)) {
        bit_of_operand[static_cast<std::size_t>(i)] = static_cast<int>(j);
      }
    }
    CODAR_EXPECTS(bit_of_operand[static_cast<std::size_t>(i)] >= 0);
  }
  const Matrix u = gate_unitary(g.kind(), g.params());
  const std::size_t dim = std::size_t{1} << k;
  std::size_t gate_mask = 0;
  for (const int b : bit_of_operand) gate_mask |= (std::size_t{1} << b);

  auto local_index = [&](std::size_t joint) {
    std::size_t local = 0;
    for (int i = 0; i < g.num_qubits(); ++i) {
      const int b = bit_of_operand[static_cast<std::size_t>(i)];
      if ((joint >> b) & 1U) local |= (std::size_t{1} << i);
    }
    return local;
  };

  Matrix out(dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const std::size_t rest = col & ~gate_mask;
    const std::size_t lc = local_index(col);
    for (std::size_t lr = 0; lr < u.dim(); ++lr) {
      const Complex v = u.at(lr, lc);
      if (v == Complex{}) continue;
      // Scatter local row bits back into the joint index.
      std::size_t row = rest;
      for (int i = 0; i < g.num_qubits(); ++i) {
        if ((lr >> i) & 1U) {
          row |= (std::size_t{1}
                  << bit_of_operand[static_cast<std::size_t>(i)]);
        }
      }
      out.at(row, col) = v;
    }
  }
  return out;
}

bool unitaries_commute(const Gate& a, const Gate& b, double tol) {
  CODAR_EXPECTS(is_unitary(a.kind()) && is_unitary(b.kind()));
  // Joint space = union of both gates' qubits, in deterministic order.
  std::vector<Qubit> joint(a.qubits().begin(), a.qubits().end());
  for (const Qubit q : b.qubits()) {
    if (std::find(joint.begin(), joint.end(), q) == joint.end())
      joint.push_back(q);
  }
  const Matrix ua = embed(a, joint);
  const Matrix ub = embed(b, joint);
  return ((ua * ub) - (ub * ua)).max_abs() < tol;
}

}  // namespace codar::ir

#include "codar/ir/peephole.hpp"

#include <cmath>
#include <optional>
#include <vector>

namespace codar::ir {

namespace {

constexpr double kAngleEps = 1e-12;

/// Self-inverse kinds that cancel against an identical adjacent copy.
bool is_self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCY:
    case GateKind::kCH:
    case GateKind::kSwap:
    case GateKind::kCCX:
      return true;
    default:
      return false;
  }
}

/// Kinds whose operand order does not matter (symmetric unitaries).
bool is_symmetric(GateKind kind) {
  return kind == GateKind::kCZ || kind == GateKind::kCU1 ||
         kind == GateKind::kRZZ || kind == GateKind::kSwap;
}

bool same_operands(const Gate& a, const Gate& b) {
  if (a.num_qubits() != b.num_qubits()) return false;
  for (int i = 0; i < a.num_qubits(); ++i) {
    if (a.qubit(i) != b.qubit(i)) return false;
  }
  return true;
}

bool same_support(const Gate& a, const Gate& b) {
  if (a.num_qubits() != b.num_qubits()) return false;
  for (int i = 0; i < a.num_qubits(); ++i) {
    if (!b.acts_on(a.qubit(i))) return false;
  }
  return true;
}

/// True when a and b are exact inverses of each other.
bool cancels(const Gate& a, const Gate& b) {
  const GateKind ka = a.kind(), kb = b.kind();
  if (is_self_inverse(ka) && ka == kb) {
    return is_symmetric(ka) ? same_support(a, b) : same_operands(a, b);
  }
  // Adjoint pairs.
  auto adjoint_pair = [&](GateKind x, GateKind y) {
    return (ka == x && kb == y) || (ka == y && kb == x);
  };
  if ((adjoint_pair(GateKind::kS, GateKind::kSdg) ||
       adjoint_pair(GateKind::kT, GateKind::kTdg)) &&
      same_operands(a, b)) {
    return true;
  }
  return false;
}

/// Fusable rotation families: returns the merged gate, or nullopt.
std::optional<Gate> fuse(const Gate& a, const Gate& b) {
  const GateKind kind = a.kind();
  if (kind != b.kind() || a.num_params() != 1 || b.num_params() != 1) {
    return std::nullopt;
  }
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kU1:
    case GateKind::kCRZ:
      if (!same_operands(a, b)) return std::nullopt;
      break;
    case GateKind::kCU1:
    case GateKind::kRZZ:
      if (!same_support(a, b)) return std::nullopt;
      break;
    default:
      return std::nullopt;
  }
  const double angle = a.param(0) + b.param(0);
  const double params[] = {angle};
  return Gate(kind, a.qubits(), params);
}

bool is_zero_rotation(const Gate& g) {
  return g.num_params() == 1 && std::abs(g.param(0)) < kAngleEps &&
         (g.kind() == GateKind::kRX || g.kind() == GateKind::kRY ||
          g.kind() == GateKind::kRZ || g.kind() == GateKind::kU1 ||
          g.kind() == GateKind::kCRZ || g.kind() == GateKind::kCU1 ||
          g.kind() == GateKind::kRZZ);
}

}  // namespace

Circuit peephole_optimize(const Circuit& circuit, PeepholeStats* stats) {
  PeepholeStats local;
  std::vector<Gate> surviving;
  surviving.reserve(circuit.size());
  // last_on_wire[q] = index into `surviving` of the latest survivor on q,
  // or -1. A candidate pair must be the mutual latest on *all* its wires.
  std::vector<int> last_on_wire(
      static_cast<std::size_t>(circuit.num_qubits()), -1);

  auto latest_common = [&](const Gate& g) -> int {
    int idx = -1;
    for (const Qubit q : g.qubits()) {
      const int last = last_on_wire[static_cast<std::size_t>(q)];
      if (last < 0) return -1;
      if (idx < 0) {
        idx = last;
      } else if (idx != last) {
        return -1;
      }
    }
    // The partner must not touch wires outside g's support (otherwise
    // removing it would also need those wires re-examined).
    if (idx >= 0 &&
        surviving[static_cast<std::size_t>(idx)].num_qubits() !=
            g.num_qubits()) {
      return -1;
    }
    return idx;
  };

  auto rebuild_wires = [&]() {
    std::fill(last_on_wire.begin(), last_on_wire.end(), -1);
    for (std::size_t i = 0; i < surviving.size(); ++i) {
      for (const Qubit q : surviving[i].qubits()) {
        last_on_wire[static_cast<std::size_t>(q)] = static_cast<int>(i);
      }
    }
  };

  for (const Gate& next : circuit.gates()) {
    Gate g = next;
    // Drop identities and zero rotations outright.
    if (g.kind() == GateKind::kI || is_zero_rotation(g)) {
      ++local.gates_removed;
      continue;
    }
    bool absorbed = false;
    for (;;) {
      const int partner = latest_common(g);
      if (partner < 0) break;
      const Gate& prev = surviving[static_cast<std::size_t>(partner)];
      if (cancels(prev, g)) {
        surviving.erase(surviving.begin() + partner);
        rebuild_wires();
        local.gates_removed += 2;
        absorbed = true;
        break;
      }
      if (const auto merged = fuse(prev, g)) {
        surviving.erase(surviving.begin() + partner);
        rebuild_wires();
        ++local.gates_fused;
        if (is_zero_rotation(*merged)) {
          ++local.gates_removed;
          absorbed = true;
          break;
        }
        g = *merged;
        continue;  // the merged gate may cancel further back
      }
      break;
    }
    if (absorbed) continue;
    surviving.push_back(g);
    for (const Qubit q : g.qubits()) {
      last_on_wire[static_cast<std::size_t>(q)] =
          static_cast<int>(surviving.size()) - 1;
    }
  }

  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& g : surviving) out.add(g);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace codar::ir

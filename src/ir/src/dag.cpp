#include "codar/ir/dag.hpp"

#include <algorithm>

namespace codar::ir {

DependencyDag::DependencyDag(const Circuit& circuit) {
  const std::size_t n = circuit.size();
  pred_.resize(n);
  succ_.resize(n);
  // last_on_wire[q] = index of the most recent earlier gate touching q.
  std::vector<int> last_on_wire(static_cast<std::size_t>(circuit.num_qubits()),
                                -1);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = circuit.gate(i);
    for (const Qubit q : g.qubits()) {
      const int prev = last_on_wire[static_cast<std::size_t>(q)];
      if (prev >= 0) {
        auto& preds = pred_[i];
        if (std::find(preds.begin(), preds.end(), prev) == preds.end()) {
          preds.push_back(prev);
          succ_[static_cast<std::size_t>(prev)].push_back(static_cast<int>(i));
        }
      }
      last_on_wire[static_cast<std::size_t>(q)] = static_cast<int>(i);
    }
  }
}

std::vector<int> DependencyDag::roots() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < pred_.size(); ++i) {
    if (pred_[i].empty()) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace codar::ir

#include "codar/ir/decompose.hpp"

namespace codar::ir {

Circuit decompose_toffoli(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& g : circuit.gates()) {
    if (g.kind() != GateKind::kCCX) {
      out.add(g);
      continue;
    }
    const Qubit a = g.qubit(0), b = g.qubit(1), c = g.qubit(2);
    out.h(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(b);
    out.t(c);
    out.h(c);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
  }
  return out;
}

Circuit decompose_swaps(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& g : circuit.gates()) {
    if (g.kind() != GateKind::kSwap) {
      out.add(g);
      continue;
    }
    const Qubit a = g.qubit(0), b = g.qubit(1);
    out.cx(a, b);
    out.cx(b, a);
    out.cx(a, b);
  }
  return out;
}

bool is_two_qubit_lowered(const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    if (g.kind() != GateKind::kBarrier && g.num_qubits() > 2) return false;
  }
  return true;
}

}  // namespace codar::ir

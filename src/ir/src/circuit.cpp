#include "codar/ir/circuit.hpp"

#include <algorithm>

#include "codar/common/fnv.hpp"

namespace codar::ir {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  CODAR_EXPECTS(num_qubits >= 0);
}

void Circuit::add(const Gate& g) {
  for (const Qubit q : g.qubits()) {
    CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  }
  gates_.push_back(g);
}

void Circuit::append(const Circuit& other) {
  CODAR_EXPECTS(other.num_qubits() <= num_qubits_);
  for (const Gate& g : other.gates()) add(g);
}

std::size_t Circuit::two_qubit_gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.num_qubits() == 2; }));
}

std::size_t Circuit::swap_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
        return g.kind() == GateKind::kSwap;
      }));
}

std::size_t Circuit::barrier_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
        return g.kind() == GateKind::kBarrier;
      }));
}

int Circuit::used_qubit_count() const {
  Qubit max_q = -1;
  for (const Gate& g : gates_) {
    for (const Qubit q : g.qubits()) max_q = std::max(max_q, q);
  }
  return static_cast<int>(max_q + 1);
}

Circuit Circuit::reversed() const {
  Circuit rev(num_qubits_, name_ + "_reversed");
  rev.gates_.assign(gates_.rbegin(), gates_.rend());
  return rev;
}

Circuit Circuit::remapped(std::span<const Qubit> remap,
                          int new_num_qubits) const {
  CODAR_EXPECTS(remap.size() >= static_cast<std::size_t>(num_qubits_));
  Circuit out(new_num_qubits, name_);
  for (const Gate& g : gates_) {
    out.add(g.remapped([&](Qubit q) {
      CODAR_EXPECTS(static_cast<std::size_t>(q) < remap.size());
      return remap[static_cast<std::size_t>(q)];
    }));
  }
  return out;
}

std::uint64_t Circuit::fingerprint() const {
  common::Fnv1a h;
  h.u64(1);  // fingerprint schema version
  h.i64(num_qubits_);
  h.u64(gates_.size());
  for (const Gate& g : gates_) {
    h.byte(static_cast<std::uint8_t>(g.kind()));
    h.byte(static_cast<std::uint8_t>(g.num_qubits()));
    for (const Qubit q : g.qubits()) h.i64(q);
    h.byte(static_cast<std::uint8_t>(g.num_params()));
    for (const double p : g.params()) h.f64(p);
  }
  return h.value();
}

}  // namespace codar::ir

#include "codar/ir/gate.hpp"

#include <sstream>

namespace codar::ir {

namespace {

constexpr GateInfo kInfoTable[kGateKindCount] = {
    {"id", 1, 0},      // kI
    {"x", 1, 0},       // kX
    {"y", 1, 0},       // kY
    {"z", 1, 0},       // kZ
    {"h", 1, 0},       // kH
    {"s", 1, 0},       // kS
    {"sdg", 1, 0},     // kSdg
    {"t", 1, 0},       // kT
    {"tdg", 1, 0},     // kTdg
    {"sx", 1, 0},      // kSX
    {"rx", 1, 1},      // kRX
    {"ry", 1, 1},      // kRY
    {"rz", 1, 1},      // kRZ
    {"u1", 1, 1},      // kU1
    {"u2", 1, 2},      // kU2
    {"u3", 1, 3},      // kU3
    {"cx", 2, 0},      // kCX
    {"cz", 2, 0},      // kCZ
    {"cy", 2, 0},      // kCY
    {"ch", 2, 0},      // kCH
    {"crz", 2, 1},     // kCRZ
    {"cu1", 2, 1},     // kCU1
    {"rzz", 2, 1},     // kRZZ
    {"swap", 2, 0},    // kSwap
    {"ccx", 3, 0},     // kCCX
    {"measure", 1, 0}, // kMeasure
    {"barrier", -1, 0} // kBarrier
};

}  // namespace

const GateInfo& gate_info(GateKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  CODAR_EXPECTS(idx < kGateKindCount);
  return kInfoTable[idx];
}

bool is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kU1:
    case GateKind::kCZ:
    case GateKind::kCRZ:
    case GateKind::kCU1:
    case GateKind::kRZZ:
      return true;
    default:
      return false;
  }
}

bool is_x_axis(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kSX:
    case GateKind::kRX:
      return true;
    default:
      return false;
  }
}

bool is_two_qubit(GateKind kind) {
  return gate_info(kind).num_qubits == 2;
}

bool is_unitary(GateKind kind) {
  return kind != GateKind::kMeasure && kind != GateKind::kBarrier;
}

Gate::Gate(GateKind kind, std::span<const Qubit> qubits,
           std::span<const double> params)
    : kind_(kind) {
  const GateInfo& info = gate_info(kind);
  if (info.num_qubits >= 0) {
    CODAR_EXPECTS(qubits.size() == static_cast<std::size_t>(info.num_qubits));
  } else {
    CODAR_EXPECTS(!qubits.empty() && qubits.size() <= kMaxQubits);
  }
  CODAR_EXPECTS(params.size() == static_cast<std::size_t>(info.num_params));
  num_qubits_ = static_cast<std::int8_t>(qubits.size());
  num_params_ = static_cast<std::int8_t>(params.size());
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    CODAR_EXPECTS(qubits[i] >= 0);
    for (std::size_t j = 0; j < i; ++j) CODAR_EXPECTS(qubits[i] != qubits[j]);
    qubits_[i] = qubits[i];
  }
  for (std::size_t i = 0; i < params.size(); ++i) params_[i] = params[i];
}

Gate Gate::unary(GateKind kind, Qubit q) {
  const Qubit qs[] = {q};
  return Gate(kind, qs);
}

Gate Gate::rx(Qubit q, double theta) {
  const Qubit qs[] = {q};
  const double ps[] = {theta};
  return Gate(GateKind::kRX, qs, ps);
}
Gate Gate::ry(Qubit q, double theta) {
  const Qubit qs[] = {q};
  const double ps[] = {theta};
  return Gate(GateKind::kRY, qs, ps);
}
Gate Gate::rz(Qubit q, double theta) {
  const Qubit qs[] = {q};
  const double ps[] = {theta};
  return Gate(GateKind::kRZ, qs, ps);
}
Gate Gate::u1(Qubit q, double lambda) {
  const Qubit qs[] = {q};
  const double ps[] = {lambda};
  return Gate(GateKind::kU1, qs, ps);
}
Gate Gate::u2(Qubit q, double phi, double lambda) {
  const Qubit qs[] = {q};
  const double ps[] = {phi, lambda};
  return Gate(GateKind::kU2, qs, ps);
}
Gate Gate::u3(Qubit q, double theta, double phi, double lambda) {
  const Qubit qs[] = {q};
  const double ps[] = {theta, phi, lambda};
  return Gate(GateKind::kU3, qs, ps);
}
Gate Gate::cx(Qubit control, Qubit target) {
  const Qubit qs[] = {control, target};
  return Gate(GateKind::kCX, qs);
}
Gate Gate::cz(Qubit a, Qubit b) {
  const Qubit qs[] = {a, b};
  return Gate(GateKind::kCZ, qs);
}
Gate Gate::cy(Qubit control, Qubit target) {
  const Qubit qs[] = {control, target};
  return Gate(GateKind::kCY, qs);
}
Gate Gate::ch(Qubit control, Qubit target) {
  const Qubit qs[] = {control, target};
  return Gate(GateKind::kCH, qs);
}
Gate Gate::crz(Qubit control, Qubit target, double theta) {
  const Qubit qs[] = {control, target};
  const double ps[] = {theta};
  return Gate(GateKind::kCRZ, qs, ps);
}
Gate Gate::cu1(Qubit a, Qubit b, double lambda) {
  const Qubit qs[] = {a, b};
  const double ps[] = {lambda};
  return Gate(GateKind::kCU1, qs, ps);
}
Gate Gate::rzz(Qubit a, Qubit b, double theta) {
  const Qubit qs[] = {a, b};
  const double ps[] = {theta};
  return Gate(GateKind::kRZZ, qs, ps);
}
Gate Gate::swap(Qubit a, Qubit b) {
  const Qubit qs[] = {a, b};
  return Gate(GateKind::kSwap, qs);
}
Gate Gate::ccx(Qubit control1, Qubit control2, Qubit target) {
  const Qubit qs[] = {control1, control2, target};
  return Gate(GateKind::kCCX, qs);
}
Gate Gate::measure(Qubit q) {
  const Qubit qs[] = {q};
  return Gate(GateKind::kMeasure, qs);
}
Gate Gate::barrier(std::span<const Qubit> qubits) {
  return Gate(GateKind::kBarrier, qubits);
}

bool Gate::acts_on(Qubit q) const {
  for (int i = 0; i < num_qubits_; ++i) {
    if (qubits_[static_cast<std::size_t>(i)] == q) return true;
  }
  return false;
}

bool Gate::overlaps(const Gate& other) const {
  for (int i = 0; i < num_qubits_; ++i) {
    if (other.acts_on(qubits_[static_cast<std::size_t>(i)])) return true;
  }
  return false;
}

std::string Gate::to_string() const {
  std::ostringstream oss;
  oss << gate_info(kind_).name;
  if (num_params_ > 0) {
    oss << '(';
    for (int i = 0; i < num_params_; ++i) {
      if (i != 0) oss << ", ";
      oss << params_[static_cast<std::size_t>(i)];
    }
    oss << ')';
  }
  oss << ' ';
  for (int i = 0; i < num_qubits_; ++i) {
    if (i != 0) oss << ", ";
    oss << "q[" << qubits_[static_cast<std::size_t>(i)] << ']';
  }
  return oss.str();
}

bool operator==(const Gate& a, const Gate& b) {
  if (a.kind_ != b.kind_ || a.num_qubits_ != b.num_qubits_ ||
      a.num_params_ != b.num_params_) {
    return false;
  }
  for (int i = 0; i < a.num_qubits_; ++i) {
    if (a.qubits_[static_cast<std::size_t>(i)] !=
        b.qubits_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  for (int i = 0; i < a.num_params_; ++i) {
    if (a.params_[static_cast<std::size_t>(i)] !=
        b.params_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

}  // namespace codar::ir

#include "codar/layout/initial_mapping.hpp"

#include <algorithm>
#include <cmath>

#include "codar/arch/distance_oracle.hpp"
#include "codar/common/rng.hpp"

namespace codar::layout {

InteractionGraph::InteractionGraph(const ir::Circuit& circuit)
    : num_qubits_(circuit.num_qubits()) {
  const auto n = static_cast<std::size_t>(num_qubits_);
  weights_.assign(n * n, 0);
  for (const ir::Gate& g : circuit.gates()) {
    if (g.num_qubits() != 2 || g.kind() == ir::GateKind::kBarrier) continue;
    const auto a = static_cast<std::size_t>(g.qubit(0));
    const auto b = static_cast<std::size_t>(g.qubit(1));
    if (weights_[a * n + b] == 0) {
      pairs_.emplace_back(g.qubit(0), g.qubit(1));
    }
    ++weights_[a * n + b];
    ++weights_[b * n + a];
  }
}

std::int64_t InteractionGraph::weight(Qubit a, Qubit b) const {
  CODAR_EXPECTS(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_);
  return weights_[static_cast<std::size_t>(a) *
                      static_cast<std::size_t>(num_qubits_) +
                  static_cast<std::size_t>(b)];
}

std::int64_t InteractionGraph::degree(Qubit q) const {
  std::int64_t total = 0;
  for (Qubit other = 0; other < num_qubits_; ++other) {
    total += weight(q, other);
  }
  return total;
}

std::int64_t mapping_cost(const InteractionGraph& interactions,
                          const arch::CouplingGraph& coupling,
                          const Layout& layout) {
  const arch::DistanceOracle& dist = coupling.oracle();
  std::int64_t cost = 0;
  for (const auto& [a, b] : interactions.pairs()) {
    cost += interactions.weight(a, b) *
            dist.distance(layout.physical(a), layout.physical(b));
  }
  return cost;
}

Layout greedy_interaction_layout(const ir::Circuit& circuit,
                                 const arch::CouplingGraph& coupling) {
  const int n = circuit.num_qubits();
  const int n_phys = coupling.num_qubits();
  CODAR_EXPECTS(n <= n_phys);
  const InteractionGraph interactions(circuit);
  const arch::DistanceOracle& dist = coupling.oracle();

  std::vector<Qubit> l2p(static_cast<std::size_t>(n), -1);
  std::vector<bool> phys_used(static_cast<std::size_t>(n_phys), false);
  std::vector<bool> placed(static_cast<std::size_t>(n), false);

  // Seed: strongest logical qubit on the highest-degree physical qubit.
  Qubit seed_logical = 0;
  for (Qubit q = 1; q < n; ++q) {
    if (interactions.degree(q) > interactions.degree(seed_logical)) {
      seed_logical = q;
    }
  }
  Qubit seed_physical = 0;
  for (Qubit p = 1; p < n_phys; ++p) {
    if (coupling.neighbors(p).size() >
        coupling.neighbors(seed_physical).size()) {
      seed_physical = p;
    }
  }
  l2p[static_cast<std::size_t>(seed_logical)] = seed_physical;
  placed[static_cast<std::size_t>(seed_logical)] = true;
  phys_used[static_cast<std::size_t>(seed_physical)] = true;

  for (int round = 1; round < n; ++round) {
    // Next logical qubit: strongest total tie to the placed set (ties ->
    // lowest index, so the result is deterministic).
    Qubit best_logical = -1;
    std::int64_t best_tie = -1;
    for (Qubit q = 0; q < n; ++q) {
      if (placed[static_cast<std::size_t>(q)]) continue;
      std::int64_t tie = 0;
      for (Qubit other = 0; other < n; ++other) {
        if (placed[static_cast<std::size_t>(other)]) {
          tie += interactions.weight(q, other);
        }
      }
      if (tie > best_tie) {
        best_tie = tie;
        best_logical = q;
      }
    }
    // Best free physical slot: minimize weighted distance to the placed
    // partners (falls back to "any free slot nearest the seed" for
    // interaction-free qubits).
    Qubit best_physical = -1;
    std::int64_t best_cost = 0;
    for (Qubit p = 0; p < n_phys; ++p) {
      if (phys_used[static_cast<std::size_t>(p)]) continue;
      std::int64_t cost = 0;
      for (Qubit other = 0; other < n; ++other) {
        if (!placed[static_cast<std::size_t>(other)]) continue;
        const std::int64_t w = interactions.weight(best_logical, other);
        if (w > 0) {
          cost += w * dist.distance(p, l2p[static_cast<std::size_t>(other)]);
        }
      }
      if (best_tie == 0) {
        cost = dist.distance(p, seed_physical);
      }
      if (best_physical < 0 || cost < best_cost) {
        best_cost = cost;
        best_physical = p;
      }
    }
    l2p[static_cast<std::size_t>(best_logical)] = best_physical;
    placed[static_cast<std::size_t>(best_logical)] = true;
    phys_used[static_cast<std::size_t>(best_physical)] = true;
  }
  return Layout::from_l2p(l2p, n_phys);
}

Layout annealed_layout(const ir::Circuit& circuit,
                       const arch::CouplingGraph& coupling,
                       const Layout& start, std::uint64_t seed,
                       int iterations) {
  CODAR_EXPECTS(iterations >= 0);
  CODAR_EXPECTS(start.num_logical() == circuit.num_qubits());
  CODAR_EXPECTS(start.num_physical() == coupling.num_qubits());
  const InteractionGraph interactions(circuit);
  Rng rng(seed);

  Layout current = start;
  std::int64_t current_cost = mapping_cost(interactions, coupling, current);
  Layout best = current;
  std::int64_t best_cost = current_cost;

  // Geometric cooling from a temperature comparable to the cost scale.
  double temperature =
      std::max<double>(1.0, static_cast<double>(current_cost) * 0.05);
  const double cooling =
      iterations > 0 ? std::pow(1e-3, 1.0 / iterations) : 1.0;

  const int n_phys = coupling.num_qubits();
  for (int it = 0; it < iterations; ++it) {
    const Qubit a = static_cast<Qubit>(
        rng.index(static_cast<std::size_t>(n_phys)));
    Qubit b = a;
    while (b == a) {
      b = static_cast<Qubit>(rng.index(static_cast<std::size_t>(n_phys)));
    }
    // Swapping two unoccupied slots changes nothing; skip.
    if (!current.occupied(a) && !current.occupied(b)) continue;
    current.swap_physical(a, b);
    const std::int64_t next_cost =
        mapping_cost(interactions, coupling, current);
    const auto delta = static_cast<double>(next_cost - current_cost);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      current_cost = next_cost;
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best = current;
      }
    } else {
      current.swap_physical(a, b);  // revert
    }
    temperature *= cooling;
  }
  return best;
}

}  // namespace codar::layout

#include "codar/layout/layout.hpp"

#include <algorithm>
#include <numeric>

#include "codar/common/rng.hpp"

namespace codar::layout {

Layout::Layout(int num_logical, int num_physical) {
  CODAR_EXPECTS(num_logical >= 0);
  CODAR_EXPECTS(num_physical >= num_logical);
  l2p_.resize(static_cast<std::size_t>(num_logical));
  p2l_.assign(static_cast<std::size_t>(num_physical), -1);
  for (Qubit q = 0; q < num_logical; ++q) {
    l2p_[static_cast<std::size_t>(q)] = q;
    p2l_[static_cast<std::size_t>(q)] = q;
  }
}

Layout Layout::from_l2p(const std::vector<Qubit>& l2p, int num_physical) {
  CODAR_EXPECTS(l2p.size() <= static_cast<std::size_t>(num_physical));
  Layout out;
  out.l2p_ = l2p;
  out.p2l_.assign(static_cast<std::size_t>(num_physical), -1);
  for (std::size_t q = 0; q < l2p.size(); ++q) {
    const Qubit p = l2p[q];
    CODAR_EXPECTS(p >= 0 && p < num_physical);
    CODAR_EXPECTS(out.p2l_[static_cast<std::size_t>(p)] == -1);
    out.p2l_[static_cast<std::size_t>(p)] = static_cast<Qubit>(q);
  }
  return out;
}

void Layout::swap_physical(Qubit a, Qubit b) {
  CODAR_EXPECTS(a >= 0 && a < num_physical());
  CODAR_EXPECTS(b >= 0 && b < num_physical());
  CODAR_EXPECTS(a != b);
  const Qubit la = p2l_[static_cast<std::size_t>(a)];
  const Qubit lb = p2l_[static_cast<std::size_t>(b)];
  std::swap(p2l_[static_cast<std::size_t>(a)],
            p2l_[static_cast<std::size_t>(b)]);
  if (la >= 0) l2p_[static_cast<std::size_t>(la)] = b;
  if (lb >= 0) l2p_[static_cast<std::size_t>(lb)] = a;
}

Layout random_layout(int num_logical, int num_physical, std::uint64_t seed) {
  CODAR_EXPECTS(num_physical >= num_logical);
  std::vector<Qubit> all(static_cast<std::size_t>(num_physical));
  std::iota(all.begin(), all.end(), 0);
  Rng rng(seed);
  std::shuffle(all.begin(), all.end(), rng.engine());
  all.resize(static_cast<std::size_t>(num_logical));
  return Layout::from_l2p(all, num_physical);
}

}  // namespace codar::layout

#pragma once

// Initial-mapping strategies. The paper: "Initial mapping has been proved
// to be significant for the qubit mapping problem" — its evaluation uses
// SABRE's reverse traversal (implemented in codar::sabre). This module
// adds router-independent alternatives used by tests and the
// initial-mapping ablation bench:
//
//  * interaction-graph greedy placement — put strongly-interacting logical
//    qubits on adjacent, high-degree physical qubits (BFS expansion);
//  * simulated-annealing refinement of the weighted-distance objective
//    Σ w(a,b) · D(π(a), π(b)).

#include <cstdint>
#include <vector>

#include "codar/arch/coupling_graph.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/layout/layout.hpp"

namespace codar::layout {

/// Weighted logical interaction graph: weight(a, b) = number of two-qubit
/// gates between logical qubits a and b.
class InteractionGraph {
 public:
  explicit InteractionGraph(const ir::Circuit& circuit);

  int num_qubits() const { return num_qubits_; }
  /// Interaction count between a pair (symmetric).
  std::int64_t weight(Qubit a, Qubit b) const;
  /// Sum of interaction counts incident to q.
  std::int64_t degree(Qubit q) const;
  /// Pairs with nonzero weight.
  const std::vector<std::pair<Qubit, Qubit>>& pairs() const { return pairs_; }

 private:
  int num_qubits_;
  std::vector<std::int64_t> weights_;  // dense n*n
  std::vector<std::pair<Qubit, Qubit>> pairs_;
};

/// Mapping cost under a layout: Σ over interacting pairs of
/// weight(a,b) * D(π(a), π(b)). Lower is better; the theoretical floor is
/// Σ weight (every pair adjacent).
std::int64_t mapping_cost(const InteractionGraph& interactions,
                          const arch::CouplingGraph& coupling,
                          const Layout& layout);

/// Greedy placement: seeds the strongest-interacting logical qubit on the
/// physical qubit with the highest degree, then repeatedly places the
/// unplaced logical qubit with the strongest ties to the placed set on the
/// free physical qubit minimizing weighted distance to its placed
/// partners. Deterministic.
Layout greedy_interaction_layout(const ir::Circuit& circuit,
                                 const arch::CouplingGraph& coupling);

/// Simulated-annealing refinement: starts from `start` and applies random
/// physical transpositions, accepting worse moves with Metropolis
/// probability under a geometric cooling schedule. Deterministic given the
/// seed; returns the best layout visited.
Layout annealed_layout(const ir::Circuit& circuit,
                       const arch::CouplingGraph& coupling,
                       const Layout& start, std::uint64_t seed,
                       int iterations = 2000);

}  // namespace codar::layout

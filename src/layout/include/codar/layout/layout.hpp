#pragma once

// The maQAM dynamic structure π: the logical→physical qubit mapping that
// routers mutate by applying SWAPs. Physical registers may be wider than
// logical ones (N >= n); unoccupied physical qubits map back to -1.

#include <vector>

#include "codar/ir/gate.hpp"

namespace codar::layout {

using ir::Qubit;

/// Bijective-on-its-domain mapping π: {0..n-1} → {0..N-1} with inverse
/// lookup. Kept consistent under SWAPs of physical qubits.
class Layout {
 public:
  /// π(q) = q for every logical qubit (requires N >= n).
  Layout(int num_logical, int num_physical);

  /// Builds from an explicit logical→physical vector (must be injective,
  /// all entries in [0, num_physical)).
  static Layout from_l2p(const std::vector<Qubit>& l2p, int num_physical);

  int num_logical() const { return static_cast<int>(l2p_.size()); }
  int num_physical() const { return static_cast<int>(p2l_.size()); }

  /// π(logical) — always defined.
  Qubit physical(Qubit logical) const {
    CODAR_EXPECTS(logical >= 0 && logical < num_logical());
    return l2p_[static_cast<std::size_t>(logical)];
  }
  /// π⁻¹(physical) — -1 when no logical qubit sits there.
  Qubit logical(Qubit physical) const {
    CODAR_EXPECTS(physical >= 0 && physical < num_physical());
    return p2l_[static_cast<std::size_t>(physical)];
  }
  bool occupied(Qubit physical) const { return logical(physical) >= 0; }

  /// Applies a SWAP between two *physical* qubits (either or both may be
  /// unoccupied; the paper's routing swaps physical qubits, not logical).
  void swap_physical(Qubit a, Qubit b);

  /// The logical→physical vector (for serialization / remapping circuits).
  const std::vector<Qubit>& l2p() const { return l2p_; }

  friend bool operator==(const Layout&, const Layout&) = default;

 private:
  Layout() = default;
  std::vector<Qubit> l2p_;
  std::vector<Qubit> p2l_;
};

/// Uniformly random injective mapping (seeded, deterministic).
Layout random_layout(int num_logical, int num_physical, std::uint64_t seed);

}  // namespace codar::layout

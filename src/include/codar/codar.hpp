#pragma once

// Umbrella header: the whole codar library behind one include, so
// consumers never need to know the module layout. Link codar::codar (or
// the individual codar::<module> targets) to get the matching libraries.
//
//   #include "codar/codar.hpp"
//
//   codar::ir::Circuit circuit = codar::workloads::qft(6);
//   codar::arch::Device device = codar::arch::ibm_q20_tokyo();
//   codar::pipeline::RoutingSpec spec;           // router/mapping by name
//   codar::pipeline::Pipeline pipe(device, spec);
//   codar::pipeline::RouteReport report = pipe.run(circuit);
//
// The preferred compilation API is codar::pipeline (polymorphic passes,
// string-keyed registries, the composable Pipeline); the per-module
// headers below remain public for code that wants a specific router or
// building block directly.

// Shared utilities.
#include "codar/common/crc32c.hpp"
#include "codar/common/expects.hpp"
#include "codar/common/file_io.hpp"
#include "codar/common/fnv.hpp"
#include "codar/common/rng.hpp"
#include "codar/common/table.hpp"

// Circuit IR and transformations.
#include "codar/ir/circuit.hpp"
#include "codar/ir/dag.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/ir/gate.hpp"
#include "codar/ir/inverse.hpp"
#include "codar/ir/peephole.hpp"
#include "codar/ir/unitary.hpp"

// Device models (maQAM static structure).
#include "codar/arch/coupling_graph.hpp"
#include "codar/arch/device.hpp"
#include "codar/arch/device_parameters.hpp"
#include "codar/arch/durations.hpp"
#include "codar/arch/extra_devices.hpp"
#include "codar/arch/fidelity_map.hpp"

// OpenQASM 2.0 front end / back end.
#include "codar/qasm/lexer.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"

// Layouts and initial-mapping strategies.
#include "codar/layout/initial_mapping.hpp"
#include "codar/layout/layout.hpp"

// Duration-weighted scheduling and success-rate models.
#include "codar/schedule/scheduler.hpp"
#include "codar/schedule/success.hpp"
#include "codar/schedule/timeline.hpp"

// Simulators (statevector, density matrix, noise).
#include "codar/sim/density_matrix.hpp"
#include "codar/sim/noise_model.hpp"
#include "codar/sim/noisy_simulator.hpp"
#include "codar/sim/statevector.hpp"

// Routers.
#include "codar/astar/astar_router.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/commutativity.hpp"
#include "codar/core/front.hpp"
#include "codar/core/heuristic.hpp"
#include "codar/core/qubit_lock.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/core/swap_cost.hpp"
#include "codar/core/verify.hpp"
#include "codar/sabre/sabre_router.hpp"

// Fidelity cost model (ESP estimator + fidelity-aware SWAP pricing).
#include "codar/cost/fidelity_model.hpp"
#include "codar/cost/swap_cost.hpp"

// Benchmark workloads.
#include "codar/workloads/generators.hpp"
#include "codar/workloads/suite.hpp"

// The unified compilation API: passes, registries, pipeline.
#include "codar/pipeline/pipeline.hpp"
#include "codar/pipeline/registry.hpp"
#include "codar/pipeline/routing_pass.hpp"
#include "codar/pipeline/spec.hpp"

// Persistent route-report store (crash-safe append-only log).
#include "codar/store/log_store.hpp"
#include "codar/store/report_codec.hpp"

// Application layers: the CLI driver library and the serve service.
#include "codar/cli/device_registry.hpp"
#include "codar/cli/driver.hpp"
#include "codar/cli/options.hpp"
#include "codar/cli/report.hpp"
#include "codar/service/protocol.hpp"
#include "codar/service/route_cache.hpp"
#include "codar/service/server.hpp"

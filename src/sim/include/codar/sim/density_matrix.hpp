#pragma once

// Exact mixed-state simulator. The density matrix ρ over n qubits is kept
// as a vector over 2n index bits (row bits 0..n-1, column bits n..2n-1),
// so unitaries apply as U on the row bits and U* on the column bits, and
// Kraus channels as Σ_i (K_i ⊗ K_i*). Practical up to ~10 qubits — enough
// for the Fig. 9 fidelity study on small lattice devices.

#include "codar/ir/circuit.hpp"
#include "codar/ir/unitary.hpp"
#include "codar/sim/statevector.hpp"

namespace codar::sim {

/// Density matrix over `num_qubits` qubits, initialized to |0..0><0..0|.
class DensityMatrix {
 public:
  explicit DensityMatrix(int num_qubits);

  int num_qubits() const { return num_qubits_; }

  /// ρ[row, col].
  Complex entry(std::size_t row, std::size_t col) const;

  /// ρ → U ρ U† for a unitary gate (Measure/Barrier are no-ops).
  void apply(const ir::Gate& g);
  void apply(const ir::Circuit& circuit);

  /// ρ → Σ_i K_i ρ K_i† for a single-qubit channel on qubit q.
  void apply_kraus_1q(const std::vector<ir::Matrix>& kraus, ir::Qubit q);

  /// tr(ρ) — 1 for physical states (trace-preserving evolution).
  double trace() const;

  /// <ψ| ρ |ψ> — fidelity against a pure reference state.
  double fidelity(const Statevector& psi) const;

  /// Probability that qubit q reads 1 (diagonal sum).
  double probability_one(ir::Qubit q) const;

 private:
  /// Applies matrix m to row bits of the flattened index (qubit q) —
  /// conjugate = false — or to column bits with conjugated entries.
  void apply_1q_matrix(const ir::Matrix& m, ir::Qubit q, bool conjugate);
  void apply_gate_matrix(const ir::Gate& g, bool conjugate);

  int num_qubits_;
  std::vector<Complex> data_;  ///< 4^n entries; index = row | (col << n).
};

}  // namespace codar::sim

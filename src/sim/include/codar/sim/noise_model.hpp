#pragma once

// Qubit dephasing + amplitude damping noise (Nielsen & Chuang §8.3) — the
// model the paper's OriginQ noisy virtual machine implements. Decoherence
// is *time-based*: a qubit accumulates error over wall-clock cycles
// (busy or idle), which is exactly why a shorter weighted depth preserves
// fidelity.

#include <limits>

#include "codar/arch/durations.hpp"
#include "codar/ir/unitary.hpp"

namespace codar::sim {

using arch::Duration;

/// Decoherence times in quantum clock cycles. Infinity disables a channel.
struct NoiseParams {
  double t1 = std::numeric_limits<double>::infinity();  ///< Damping time.
  double t2 = std::numeric_limits<double>::infinity();  ///< Dephasing time.

  /// Dephasing-dominant regime of the paper's Fig. 9.
  static NoiseParams dephasing_dominant(double t2_cycles) {
    return NoiseParams{std::numeric_limits<double>::infinity(), t2_cycles};
  }
  /// Damping-dominant regime of the paper's Fig. 9.
  static NoiseParams damping_dominant(double t1_cycles) {
    return NoiseParams{t1_cycles, std::numeric_limits<double>::infinity()};
  }

  /// Phase-flip probability accumulated over `elapsed` cycles:
  /// p = (1 − exp(−t/T2)) / 2 (asymptotically fully dephased).
  double dephasing_prob(double elapsed) const;
  /// Amplitude-damping probability over `elapsed` cycles:
  /// γ = 1 − exp(−t/T1).
  double damping_prob(double elapsed) const;
};

/// Kraus operators of the single-qubit phase-flip channel with flip
/// probability p: { √(1−p)·I, √p·Z }.
std::vector<ir::Matrix> dephasing_kraus(double p);

/// Kraus operators of the amplitude-damping channel with decay γ:
/// { [[1,0],[0,√(1−γ)]], [[0,√γ],[0,0]] }.
std::vector<ir::Matrix> damping_kraus(double gamma);

}  // namespace codar::sim

#pragma once

// Schedule-aware noisy execution (the OriginQ-noisy-VM substitute). Gates
// run at their ASAP start times; every qubit accumulates dephasing and
// amplitude-damping noise over *elapsed wall-clock cycles* — busy or idle —
// up to the circuit makespan. Two backends:
//
//  * DensityMatrix (exact Kraus application) for small devices;
//  * Monte-Carlo statevector trajectories for larger ones.
//
// Fidelity of a routed circuit = overlap of its noisy output with its own
// noiseless output (the routed circuit is unitarily exact, so this equals
// the fidelity against the ideal logical state, permutation included).

#include <cstdint>

#include "codar/arch/durations.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/sim/density_matrix.hpp"
#include "codar/sim/noise_model.hpp"
#include "codar/sim/statevector.hpp"

namespace codar::sim {

/// Exact noisy execution on a density matrix. `num_qubits` is the device
/// register width (>= circuit width); practical limit ~10 qubits.
DensityMatrix run_noisy_density(const ir::Circuit& circuit, int num_qubits,
                                const arch::DurationMap& durations,
                                const NoiseParams& noise);

/// One stochastic trajectory on a statevector (quantum-jump unravelling of
/// the same channels). Deterministic given the seed.
Statevector run_noisy_trajectory(const ir::Circuit& circuit, int num_qubits,
                                 const arch::DurationMap& durations,
                                 const NoiseParams& noise,
                                 std::uint64_t seed);

/// Fidelity of the noisy execution against the noiseless execution of the
/// same circuit, on the density-matrix backend.
double noisy_fidelity_density(const ir::Circuit& circuit, int num_qubits,
                              const arch::DurationMap& durations,
                              const NoiseParams& noise);

/// Same fidelity estimated from `trajectories` Monte-Carlo samples.
double noisy_fidelity_trajectories(const ir::Circuit& circuit,
                                   int num_qubits,
                                   const arch::DurationMap& durations,
                                   const NoiseParams& noise,
                                   int trajectories, std::uint64_t seed);

}  // namespace codar::sim

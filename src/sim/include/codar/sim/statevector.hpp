#pragma once

// Pure state-vector simulator: exact unitary gate application over n
// qubits (basis index bit q = qubit q). Backs the routing equivalence
// tests and the Monte-Carlo trajectory noise simulator.

#include <complex>
#include <vector>

#include "codar/ir/circuit.hpp"
#include "codar/ir/unitary.hpp"

namespace codar::sim {

using ir::Complex;

/// State vector over `num_qubits` qubits, initialized to |0...0>.
class Statevector {
 public:
  explicit Statevector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  const Complex& amp(std::size_t basis) const {
    CODAR_EXPECTS(basis < amps_.size());
    return amps_[basis];
  }
  std::vector<Complex>& amplitudes() { return amps_; }
  const std::vector<Complex>& amplitudes() const { return amps_; }

  /// Applies a unitary gate (Measure and Barrier are no-ops here; the
  /// noisy simulators handle measurement noise separately).
  void apply(const ir::Gate& g);

  /// Applies every gate of a circuit in sequence.
  void apply(const ir::Circuit& circuit);

  /// Applies an arbitrary 2x2 matrix (not necessarily unitary — trajectory
  /// simulation applies Kraus operators) to one qubit.
  void apply_1q_matrix(const ir::Matrix& m, ir::Qubit q);

  /// Probability that qubit q reads 1.
  double probability_one(ir::Qubit q) const;

  /// Squared norm of the state (1 for normalized states).
  double norm_squared() const;
  /// Rescales to unit norm. Requires a nonzero state.
  void normalize();

  /// <this|other>.
  Complex inner_product(const Statevector& other) const;

  /// |<this|other>|^2 — state fidelity between pure states.
  double fidelity(const Statevector& other) const;

 private:
  int num_qubits_;
  std::vector<Complex> amps_;
};

}  // namespace codar::sim

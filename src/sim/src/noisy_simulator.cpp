#include "codar/sim/noisy_simulator.hpp"

#include <cmath>

#include "codar/common/rng.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::sim {

namespace {

using arch::Duration;
using ir::Gate;
using ir::GateKind;
using ir::Matrix;
using ir::Qubit;

/// Drives one noisy execution: walks the ASAP schedule in gate order and
/// hands each backend (density / trajectory) the decoherence interval each
/// qubit accumulated since its previous event, then the gate itself.
template <typename ApplyNoise, typename ApplyGate>
void walk_schedule(const ir::Circuit& circuit, int num_qubits,
                   const arch::DurationMap& durations,
                   ApplyNoise&& apply_noise, ApplyGate&& apply_gate) {
  const schedule::Schedule sched = schedule::asap_schedule(circuit, durations);
  std::vector<Duration> last_event(static_cast<std::size_t>(num_qubits), 0);
  for (const schedule::ScheduledGate& sg : sched.gates) {
    const Gate& g = circuit.gate(sg.gate_index);
    // Noise accumulated from each operand's previous event to this gate's
    // *finish* (covers idle wait plus the gate's own duration).
    for (const Qubit q : g.qubits()) {
      const Duration elapsed =
          sg.finish - last_event[static_cast<std::size_t>(q)];
      if (elapsed > 0) apply_noise(q, static_cast<double>(elapsed));
      last_event[static_cast<std::size_t>(q)] = sg.finish;
    }
    apply_gate(g);
  }
  // Trailing idle noise up to the global makespan.
  for (Qubit q = 0; q < num_qubits; ++q) {
    const Duration elapsed =
        sched.makespan - last_event[static_cast<std::size_t>(q)];
    if (elapsed > 0) apply_noise(q, static_cast<double>(elapsed));
  }
}

}  // namespace

DensityMatrix run_noisy_density(const ir::Circuit& circuit, int num_qubits,
                                const arch::DurationMap& durations,
                                const NoiseParams& noise) {
  CODAR_EXPECTS(circuit.num_qubits() <= num_qubits);
  DensityMatrix rho(num_qubits);
  walk_schedule(
      circuit, num_qubits, durations,
      [&](Qubit q, double elapsed) {
        const double p_phi = noise.dephasing_prob(elapsed);
        if (p_phi > 0.0) rho.apply_kraus_1q(dephasing_kraus(p_phi), q);
        const double gamma = noise.damping_prob(elapsed);
        if (gamma > 0.0) rho.apply_kraus_1q(damping_kraus(gamma), q);
      },
      [&](const Gate& g) { rho.apply(g); });
  return rho;
}

Statevector run_noisy_trajectory(const ir::Circuit& circuit, int num_qubits,
                                 const arch::DurationMap& durations,
                                 const NoiseParams& noise,
                                 std::uint64_t seed) {
  CODAR_EXPECTS(circuit.num_qubits() <= num_qubits);
  Statevector psi(num_qubits);
  Rng rng(seed);
  walk_schedule(
      circuit, num_qubits, durations,
      [&](Qubit q, double elapsed) {
        // Phase flip with probability p (stochastic unravelling of the
        // dephasing channel).
        const double p_phi = noise.dephasing_prob(elapsed);
        if (p_phi > 0.0 && rng.bernoulli(p_phi)) {
          psi.apply(Gate::z(q));
        }
        // Quantum-jump unravelling of amplitude damping: jump probability
        // is γ·P(q = 1); otherwise apply the no-jump Kraus and renormalize.
        const double gamma = noise.damping_prob(elapsed);
        if (gamma > 0.0) {
          const double p1 = psi.probability_one(q);
          const double p_jump = gamma * p1;
          if (p_jump > 0.0 && rng.uniform() < p_jump) {
            Matrix jump(2);  // |0><1|
            jump.at(0, 1) = 1.0;
            psi.apply_1q_matrix(jump, q);
          } else {
            Matrix no_jump(2);  // diag(1, sqrt(1-γ))
            no_jump.at(0, 0) = 1.0;
            no_jump.at(1, 1) = std::sqrt(1.0 - gamma);
            psi.apply_1q_matrix(no_jump, q);
          }
          psi.normalize();
        }
      },
      [&](const Gate& g) { psi.apply(g); });
  return psi;
}

double noisy_fidelity_density(const ir::Circuit& circuit, int num_qubits,
                              const arch::DurationMap& durations,
                              const NoiseParams& noise) {
  Statevector ideal(num_qubits);
  ideal.apply(circuit);
  const DensityMatrix rho =
      run_noisy_density(circuit, num_qubits, durations, noise);
  return rho.fidelity(ideal);
}

double noisy_fidelity_trajectories(const ir::Circuit& circuit,
                                   int num_qubits,
                                   const arch::DurationMap& durations,
                                   const NoiseParams& noise,
                                   int trajectories, std::uint64_t seed) {
  CODAR_EXPECTS(trajectories > 0);
  Statevector ideal(num_qubits);
  ideal.apply(circuit);
  double total = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    const Statevector psi = run_noisy_trajectory(
        circuit, num_qubits, durations, noise, seed + static_cast<std::uint64_t>(t));
    total += ideal.fidelity(psi);
  }
  return total / trajectories;
}

}  // namespace codar::sim

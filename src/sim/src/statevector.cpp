#include "codar/sim/statevector.hpp"

#include <cmath>

namespace codar::sim {

namespace {

using ir::Gate;
using ir::GateKind;
using ir::Matrix;
using ir::Qubit;

}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  CODAR_EXPECTS(num_qubits >= 1 && num_qubits <= 26);
  amps_.assign(std::size_t{1} << num_qubits, Complex{});
  amps_[0] = 1.0;
}

void Statevector::apply_1q_matrix(const Matrix& m, Qubit q) {
  CODAR_EXPECTS(m.dim() == 2);
  CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t stride = std::size_t{1} << q;
  for (std::size_t base = 0; base < amps_.size(); base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = base + offset;
      const std::size_t i1 = i0 + stride;
      const Complex a0 = amps_[i0];
      const Complex a1 = amps_[i1];
      amps_[i0] = m.at(0, 0) * a0 + m.at(0, 1) * a1;
      amps_[i1] = m.at(1, 0) * a0 + m.at(1, 1) * a1;
    }
  }
}

void Statevector::apply(const Gate& g) {
  if (g.kind() == GateKind::kMeasure || g.kind() == GateKind::kBarrier) {
    return;
  }
  for (const Qubit q : g.qubits()) {
    CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  }
  if (g.num_qubits() == 1) {
    apply_1q_matrix(ir::gate_unitary(g.kind(), g.params()), g.qubit(0));
    return;
  }
  // General k-qubit path via the local unitary (k = 2 or 3).
  const Matrix u = ir::gate_unitary(g.kind(), g.params());
  const int k = g.num_qubits();
  const std::size_t local_dim = std::size_t{1} << k;
  std::size_t mask = 0;
  for (int i = 0; i < k; ++i) {
    mask |= (std::size_t{1} << g.qubit(i));
  }
  std::vector<Complex> local(local_dim);
  for (std::size_t base = 0; base < amps_.size(); ++base) {
    if ((base & mask) != 0) continue;  // visit each local block once
    // Gather.
    for (std::size_t l = 0; l < local_dim; ++l) {
      std::size_t idx = base;
      for (int i = 0; i < k; ++i) {
        if ((l >> i) & 1U) idx |= (std::size_t{1} << g.qubit(i));
      }
      local[l] = amps_[idx];
    }
    // Multiply and scatter.
    for (std::size_t row = 0; row < local_dim; ++row) {
      Complex acc{};
      for (std::size_t col = 0; col < local_dim; ++col) {
        acc += u.at(row, col) * local[col];
      }
      std::size_t idx = base;
      for (int i = 0; i < k; ++i) {
        if ((row >> i) & 1U) idx |= (std::size_t{1} << g.qubit(i));
      }
      amps_[idx] = acc;
    }
  }
}

void Statevector::apply(const ir::Circuit& circuit) {
  CODAR_EXPECTS(circuit.num_qubits() <= num_qubits_);
  for (const Gate& g : circuit.gates()) apply(g);
}

double Statevector::probability_one(Qubit q) const {
  CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) p += std::norm(amps_[i]);
  }
  return p;
}

double Statevector::norm_squared() const {
  double n = 0.0;
  for (const Complex& a : amps_) n += std::norm(a);
  return n;
}

void Statevector::normalize() {
  const double n = std::sqrt(norm_squared());
  CODAR_EXPECTS(n > 0.0);
  for (Complex& a : amps_) a /= n;
}

Complex Statevector::inner_product(const Statevector& other) const {
  CODAR_EXPECTS(other.amps_.size() == amps_.size());
  Complex acc{};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double Statevector::fidelity(const Statevector& other) const {
  return std::norm(inner_product(other));
}

}  // namespace codar::sim

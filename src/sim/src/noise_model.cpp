#include "codar/sim/noise_model.hpp"

#include <cmath>

namespace codar::sim {

double NoiseParams::dephasing_prob(double elapsed) const {
  CODAR_EXPECTS(elapsed >= 0.0);
  if (std::isinf(t2)) return 0.0;
  CODAR_EXPECTS(t2 > 0.0);
  return 0.5 * (1.0 - std::exp(-elapsed / t2));
}

double NoiseParams::damping_prob(double elapsed) const {
  CODAR_EXPECTS(elapsed >= 0.0);
  if (std::isinf(t1)) return 0.0;
  CODAR_EXPECTS(t1 > 0.0);
  return 1.0 - std::exp(-elapsed / t1);
}

std::vector<ir::Matrix> dephasing_kraus(double p) {
  CODAR_EXPECTS(p >= 0.0 && p <= 1.0);
  ir::Matrix k0(2);
  k0.at(0, 0) = std::sqrt(1.0 - p);
  k0.at(1, 1) = std::sqrt(1.0 - p);
  ir::Matrix k1(2);
  k1.at(0, 0) = std::sqrt(p);
  k1.at(1, 1) = -std::sqrt(p);
  return {k0, k1};
}

std::vector<ir::Matrix> damping_kraus(double gamma) {
  CODAR_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  ir::Matrix k0(2);
  k0.at(0, 0) = 1.0;
  k0.at(1, 1) = std::sqrt(1.0 - gamma);
  ir::Matrix k1(2);
  k1.at(0, 1) = std::sqrt(gamma);
  return {k0, k1};
}

}  // namespace codar::sim

#include "codar/sim/density_matrix.hpp"

#include <cmath>

namespace codar::sim {

namespace {

using ir::Gate;
using ir::GateKind;
using ir::Matrix;
using ir::Qubit;

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits) : num_qubits_(num_qubits) {
  CODAR_EXPECTS(num_qubits >= 1 && num_qubits <= 13);
  data_.assign(std::size_t{1} << (2 * num_qubits), Complex{});
  data_[0] = 1.0;
}

Complex DensityMatrix::entry(std::size_t row, std::size_t col) const {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  CODAR_EXPECTS(row < dim && col < dim);
  return data_[row | (col << num_qubits_)];
}

void DensityMatrix::apply_1q_matrix(const Matrix& m, Qubit q,
                                    bool conjugate) {
  CODAR_EXPECTS(m.dim() == 2);
  const Qubit bit = conjugate ? q + num_qubits_ : q;
  const std::size_t stride = std::size_t{1} << bit;
  const Complex m00 = conjugate ? std::conj(m.at(0, 0)) : m.at(0, 0);
  const Complex m01 = conjugate ? std::conj(m.at(0, 1)) : m.at(0, 1);
  const Complex m10 = conjugate ? std::conj(m.at(1, 0)) : m.at(1, 0);
  const Complex m11 = conjugate ? std::conj(m.at(1, 1)) : m.at(1, 1);
  for (std::size_t base = 0; base < data_.size(); base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = base + offset;
      const std::size_t i1 = i0 + stride;
      const Complex a0 = data_[i0];
      const Complex a1 = data_[i1];
      data_[i0] = m00 * a0 + m01 * a1;
      data_[i1] = m10 * a0 + m11 * a1;
    }
  }
}

void DensityMatrix::apply_gate_matrix(const Gate& g, bool conjugate) {
  const Matrix u = ir::gate_unitary(g.kind(), g.params());
  const int k = g.num_qubits();
  const std::size_t local_dim = std::size_t{1} << k;
  std::size_t mask = 0;
  for (int i = 0; i < k; ++i) {
    const Qubit bit =
        conjugate ? g.qubit(i) + num_qubits_ : g.qubit(i);
    mask |= (std::size_t{1} << bit);
  }
  std::vector<Complex> local(local_dim);
  for (std::size_t base = 0; base < data_.size(); ++base) {
    if ((base & mask) != 0) continue;
    for (std::size_t l = 0; l < local_dim; ++l) {
      std::size_t idx = base;
      for (int i = 0; i < k; ++i) {
        if ((l >> i) & 1U) {
          const Qubit bit =
              conjugate ? g.qubit(i) + num_qubits_ : g.qubit(i);
          idx |= (std::size_t{1} << bit);
        }
      }
      local[l] = data_[idx];
    }
    for (std::size_t row = 0; row < local_dim; ++row) {
      Complex acc{};
      for (std::size_t col = 0; col < local_dim; ++col) {
        const Complex v = conjugate ? std::conj(u.at(row, col))
                                    : u.at(row, col);
        acc += v * local[col];
      }
      std::size_t idx = base;
      for (int i = 0; i < k; ++i) {
        if ((row >> i) & 1U) {
          const Qubit bit =
              conjugate ? g.qubit(i) + num_qubits_ : g.qubit(i);
          idx |= (std::size_t{1} << bit);
        }
      }
      data_[idx] = acc;
    }
  }
}

void DensityMatrix::apply(const Gate& g) {
  if (g.kind() == GateKind::kMeasure || g.kind() == GateKind::kBarrier) {
    return;
  }
  for (const Qubit q : g.qubits()) {
    CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  }
  apply_gate_matrix(g, /*conjugate=*/false);  // U on row bits
  apply_gate_matrix(g, /*conjugate=*/true);   // U* on column bits
}

void DensityMatrix::apply(const ir::Circuit& circuit) {
  CODAR_EXPECTS(circuit.num_qubits() <= num_qubits_);
  for (const Gate& g : circuit.gates()) apply(g);
}

void DensityMatrix::apply_kraus_1q(const std::vector<Matrix>& kraus,
                                   Qubit q) {
  CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  CODAR_EXPECTS(!kraus.empty());
  std::vector<Complex> accum(data_.size(), Complex{});
  std::vector<Complex> original = data_;
  for (const Matrix& k : kraus) {
    data_ = original;
    apply_1q_matrix(k, q, /*conjugate=*/false);
    apply_1q_matrix(k, q, /*conjugate=*/true);
    for (std::size_t i = 0; i < data_.size(); ++i) accum[i] += data_[i];
  }
  data_ = std::move(accum);
}

double DensityMatrix::trace() const {
  double tr = 0.0;
  const std::size_t dim = std::size_t{1} << num_qubits_;
  for (std::size_t i = 0; i < dim; ++i) {
    tr += data_[i | (i << num_qubits_)].real();
  }
  return tr;
}

double DensityMatrix::fidelity(const Statevector& psi) const {
  CODAR_EXPECTS(psi.num_qubits() == num_qubits_);
  const std::size_t dim = std::size_t{1} << num_qubits_;
  Complex acc{};
  for (std::size_t row = 0; row < dim; ++row) {
    for (std::size_t col = 0; col < dim; ++col) {
      acc += std::conj(psi.amp(row)) * entry(row, col) * psi.amp(col);
    }
  }
  return acc.real();
}

double DensityMatrix::probability_one(Qubit q) const {
  CODAR_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t dim = std::size_t{1} << num_qubits_;
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    if (i & bit) p += data_[i | (i << num_qubits_)].real();
  }
  return p;
}

}  // namespace codar::sim

#pragma once

// Hand-written lexer for the OpenQASM 2.0 subset the parser accepts.
// Produces a flat token stream with line/column positions for diagnostics.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace codar::qasm {

enum class TokenKind {
  kIdentifier,   // h, cx, q, myreg, pi is lexed as identifier
  kNumber,       // integer or real literal, value in Token::number
  kString,       // "qelib1.inc"
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kLBrace,       // {
  kRBrace,       // }
  kSemicolon,    // ;
  kComma,        // ,
  kArrow,        // ->
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,        // ^ (power)
  kEqualEqual,   // ==
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< Raw spelling (identifier name / string contents).
  double number = 0;  ///< Value for kNumber tokens.
  int line = 0;
  int column = 0;
};

/// Thrown on any lexical or syntactic error; carries a positioned message.
class QasmError : public std::runtime_error {
 public:
  QasmError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes the whole source. Comments (// ...) and whitespace are
/// skipped. Throws QasmError on an unrecognized character.
std::vector<Token> tokenize(std::string_view source);

}  // namespace codar::qasm

#pragma once

// OpenQASM 2.0 emitter: renders an IR circuit back to text that our own
// parser (and Qiskit) accept. Round-tripping is covered by tests.

#include <string>

#include "codar/ir/circuit.hpp"

namespace codar::qasm {

/// Renders the circuit as an OpenQASM 2.0 program over one flat register
/// `q[num_qubits]` (plus `c[num_qubits]` when the circuit measures).
std::string to_qasm(const ir::Circuit& circuit);

}  // namespace codar::qasm

#pragma once

// Recursive-descent parser for an OpenQASM 2.0 subset sufficient for the
// paper's benchmark families:
//
//   * OPENQASM 2.0; / include "...";  (includes are ignored; the qelib1
//     gate alphabet is built in)
//   * qreg / creg declarations (multiple registers are flattened into one
//     contiguous qubit index space, in declaration order)
//   * gate applications with constant-folded parameter expressions
//     (numbers, pi, + - * / ^, unary minus, sin/cos/tan/exp/ln/sqrt)
//   * user-defined `gate name(params) args { body }` definitions, expanded
//     inline at application sites
//   * register broadcast (`h q;`, `cx q, r;`, `measure q -> c;`)
//   * barrier (wide barriers are lowered to a chained fence of <=3-qubit
//     Barrier gates), opaque declarations (parsed, ignored)
//
// Unsupported constructs (`if`, `reset`) raise QasmError with position.

#include <string>
#include <string_view>

#include "codar/ir/circuit.hpp"

namespace codar::qasm {

/// Parses OpenQASM 2.0 source into a flat circuit. Throws QasmError on
/// lexical, syntactic or semantic errors.
ir::Circuit parse(std::string_view source, std::string circuit_name = "");

/// Reads and parses a .qasm file. Throws std::runtime_error if the file
/// cannot be read, QasmError on parse errors.
ir::Circuit parse_file(const std::string& path);

}  // namespace codar::qasm

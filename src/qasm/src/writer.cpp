#include "codar/qasm/writer.hpp"

#include <iomanip>
#include <sstream>

namespace codar::qasm {

std::string to_qasm(const ir::Circuit& circuit) {
  std::ostringstream out;
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.num_qubits() << "];\n";
  bool has_measure = false;
  for (const ir::Gate& g : circuit.gates()) {
    if (g.kind() == ir::GateKind::kMeasure) has_measure = true;
  }
  if (has_measure) out << "creg c[" << circuit.num_qubits() << "];\n";

  out << std::setprecision(17);
  for (const ir::Gate& g : circuit.gates()) {
    if (g.kind() == ir::GateKind::kMeasure) {
      out << "measure q[" << g.qubit(0) << "] -> c[" << g.qubit(0) << "];\n";
      continue;
    }
    out << gate_info(g.kind()).name;
    if (g.num_params() > 0) {
      out << '(';
      for (int i = 0; i < g.num_params(); ++i) {
        if (i != 0) out << ',';
        out << g.param(i);
      }
      out << ')';
    }
    out << ' ';
    for (int i = 0; i < g.num_qubits(); ++i) {
      if (i != 0) out << ',';
      out << "q[" << g.qubit(i) << ']';
    }
    out << ";\n";
  }
  return out.str();
}

}  // namespace codar::qasm

#include "codar/qasm/parser.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <numbers>
#include <optional>
#include <sstream>
#include <vector>

#include "codar/qasm/lexer.hpp"

namespace codar::qasm {

namespace {

using ir::Circuit;
using ir::Gate;
using ir::GateKind;
using ir::Qubit;

// ---------------------------------------------------------------------------
// Expression AST (needed so gate-definition bodies can reference formal
// parameters that are only bound at expansion time).
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Op {
    kNumber,
    kPi,
    kParam,
    kNeg,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kPow,
    kCall
  };
  Op op;
  double number = 0.0;
  std::string name;  // parameter name or function name
  ExprPtr lhs;
  ExprPtr rhs;
};

using ParamEnv = std::map<std::string, double>;

double eval(const Expr& e, const ParamEnv& env, int line, int col) {
  switch (e.op) {
    case Expr::Op::kNumber:
      return e.number;
    case Expr::Op::kPi:
      return std::numbers::pi;
    case Expr::Op::kParam: {
      const auto it = env.find(e.name);
      if (it == env.end())
        throw QasmError("unknown parameter '" + e.name + "'", line, col);
      return it->second;
    }
    case Expr::Op::kNeg:
      return -eval(*e.lhs, env, line, col);
    case Expr::Op::kAdd:
      return eval(*e.lhs, env, line, col) + eval(*e.rhs, env, line, col);
    case Expr::Op::kSub:
      return eval(*e.lhs, env, line, col) - eval(*e.rhs, env, line, col);
    case Expr::Op::kMul:
      return eval(*e.lhs, env, line, col) * eval(*e.rhs, env, line, col);
    case Expr::Op::kDiv:
      return eval(*e.lhs, env, line, col) / eval(*e.rhs, env, line, col);
    case Expr::Op::kPow:
      return std::pow(eval(*e.lhs, env, line, col),
                      eval(*e.rhs, env, line, col));
    case Expr::Op::kCall: {
      const double v = eval(*e.lhs, env, line, col);
      if (e.name == "sin") return std::sin(v);
      if (e.name == "cos") return std::cos(v);
      if (e.name == "tan") return std::tan(v);
      if (e.name == "exp") return std::exp(v);
      if (e.name == "ln") return std::log(v);
      if (e.name == "sqrt") return std::sqrt(v);
      throw QasmError("unknown function '" + e.name + "'", line, col);
    }
  }
  throw QasmError("bad expression", line, col);
}

// ---------------------------------------------------------------------------
// Builtin gate alphabet (qelib1 subset + QASM builtins U / CX).
// ---------------------------------------------------------------------------

struct Builtin {
  GateKind kind;
  int num_qubits;
  int num_params;
};

const std::map<std::string, Builtin>& builtin_table() {
  static const std::map<std::string, Builtin> table = {
      {"id", {GateKind::kI, 1, 0}},      {"x", {GateKind::kX, 1, 0}},
      {"y", {GateKind::kY, 1, 0}},       {"z", {GateKind::kZ, 1, 0}},
      {"h", {GateKind::kH, 1, 0}},       {"s", {GateKind::kS, 1, 0}},
      {"sdg", {GateKind::kSdg, 1, 0}},   {"t", {GateKind::kT, 1, 0}},
      {"tdg", {GateKind::kTdg, 1, 0}},   {"sx", {GateKind::kSX, 1, 0}},
      {"rx", {GateKind::kRX, 1, 1}},     {"ry", {GateKind::kRY, 1, 1}},
      {"rz", {GateKind::kRZ, 1, 1}},     {"u1", {GateKind::kU1, 1, 1}},
      {"p", {GateKind::kU1, 1, 1}},      {"u2", {GateKind::kU2, 1, 2}},
      {"u3", {GateKind::kU3, 1, 3}},     {"u", {GateKind::kU3, 1, 3}},
      {"U", {GateKind::kU3, 1, 3}},      {"cx", {GateKind::kCX, 2, 0}},
      {"CX", {GateKind::kCX, 2, 0}},     {"cz", {GateKind::kCZ, 2, 0}},
      {"cy", {GateKind::kCY, 2, 0}},     {"ch", {GateKind::kCH, 2, 0}},
      {"crz", {GateKind::kCRZ, 2, 1}},   {"cu1", {GateKind::kCU1, 2, 1}},
      {"cp", {GateKind::kCU1, 2, 1}},    {"rzz", {GateKind::kRZZ, 2, 1}},
      {"swap", {GateKind::kSwap, 2, 0}}, {"ccx", {GateKind::kCCX, 3, 0}},
  };
  return table;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct RegisterInfo {
  int offset;
  int size;
};

/// One statement inside a user gate-definition body.
struct BodyOp {
  std::string gate_name;
  std::vector<ExprPtr> params;
  std::vector<std::string> args;  // formal qubit names (no indexing in body)
  bool is_barrier = false;
  int line = 0;
  int column = 0;
};

struct GateDef {
  std::vector<std::string> param_names;
  std::vector<std::string> arg_names;
  std::vector<BodyOp> body;
};

class Parser {
 public:
  Parser(std::string_view source, std::string name)
      : tokens_(tokenize(source)), circuit_(0, std::move(name)) {}

  Circuit run() {
    parse_program();
    return std::move(circuit_);
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(TokenKind kind, const std::string& what) {
    if (!check(kind)) {
      throw QasmError("expected " + what + ", got '" + peek().text + "'",
                      peek().line, peek().column);
    }
    return tokens_[pos_++];
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw QasmError(message, peek().line, peek().column);
  }

  // -- grammar --

  void parse_program() {
    if (check(TokenKind::kIdentifier) && peek().text == "OPENQASM") {
      advance();
      expect(TokenKind::kNumber, "version number");
      expect(TokenKind::kSemicolon, "';'");
    }
    while (!check(TokenKind::kEof)) parse_statement();
    finalize();
  }

  void finalize() {
    // The circuit was built incrementally against a growing register; width
    // was fixed up front by pre-scanning qreg declarations in
    // parse_statement, so nothing to do here beyond sanity checks.
  }

  void parse_statement() {
    const Token& tok = peek();
    if (tok.kind != TokenKind::kIdentifier)
      fail("expected statement, got '" + tok.text + "'");
    const std::string& kw = tok.text;
    if (kw == "include") {
      advance();
      expect(TokenKind::kString, "include path");
      expect(TokenKind::kSemicolon, "';'");
    } else if (kw == "qreg") {
      parse_qreg();
    } else if (kw == "creg") {
      parse_creg();
    } else if (kw == "gate") {
      parse_gate_def();
    } else if (kw == "opaque") {
      parse_opaque();
    } else if (kw == "barrier") {
      parse_barrier();
    } else if (kw == "measure") {
      parse_measure();
    } else if (kw == "reset" || kw == "if") {
      fail("unsupported OpenQASM construct '" + kw + "'");
    } else {
      parse_gate_application();
    }
  }

  void parse_qreg() {
    advance();  // qreg
    const Token name = expect(TokenKind::kIdentifier, "register name");
    expect(TokenKind::kLBracket, "'['");
    const Token size_tok = expect(TokenKind::kNumber, "register size");
    expect(TokenKind::kRBracket, "']'");
    expect(TokenKind::kSemicolon, "';'");
    const int size = static_cast<int>(size_tok.number);
    if (size <= 0) throw QasmError("register size must be positive",
                                   size_tok.line, size_tok.column);
    if (qregs_.count(name.text) != 0)
      throw QasmError("duplicate qreg '" + name.text + "'", name.line,
                      name.column);
    qregs_[name.text] = RegisterInfo{total_qubits_, size};
    total_qubits_ += size;
    // Rebuild the circuit container at the new width, preserving gates.
    Circuit widened(total_qubits_, circuit_.name());
    for (const Gate& g : circuit_.gates()) widened.add(g);
    circuit_ = std::move(widened);
  }

  void parse_creg() {
    advance();  // creg
    const Token name = expect(TokenKind::kIdentifier, "register name");
    expect(TokenKind::kLBracket, "'['");
    const Token size_tok = expect(TokenKind::kNumber, "register size");
    expect(TokenKind::kRBracket, "']'");
    expect(TokenKind::kSemicolon, "';'");
    cregs_[name.text] = static_cast<int>(size_tok.number);
  }

  void parse_opaque() {
    advance();  // opaque
    while (!check(TokenKind::kSemicolon) && !check(TokenKind::kEof)) advance();
    expect(TokenKind::kSemicolon, "';'");
  }

  void parse_gate_def() {
    advance();  // gate
    const Token name = expect(TokenKind::kIdentifier, "gate name");
    GateDef def;
    if (match(TokenKind::kLParen)) {
      if (!check(TokenKind::kRParen)) {
        do {
          def.param_names.push_back(
              expect(TokenKind::kIdentifier, "parameter name").text);
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "')'");
    }
    do {
      def.arg_names.push_back(
          expect(TokenKind::kIdentifier, "qubit argument name").text);
    } while (match(TokenKind::kComma));
    expect(TokenKind::kLBrace, "'{'");
    while (!check(TokenKind::kRBrace)) {
      if (check(TokenKind::kEof)) fail("unterminated gate body");
      def.body.push_back(parse_body_op());
    }
    expect(TokenKind::kRBrace, "'}'");
    gate_defs_[name.text] = std::move(def);
  }

  BodyOp parse_body_op() {
    BodyOp op;
    const Token name = expect(TokenKind::kIdentifier, "gate name");
    op.gate_name = name.text;
    op.line = name.line;
    op.column = name.column;
    if (op.gate_name == "barrier") {
      op.is_barrier = true;
    } else if (match(TokenKind::kLParen)) {
      if (!check(TokenKind::kRParen)) {
        do {
          op.params.push_back(parse_expression());
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "')'");
    }
    do {
      op.args.push_back(expect(TokenKind::kIdentifier, "qubit name").text);
    } while (match(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "';'");
    return op;
  }

  void parse_barrier() {
    advance();  // barrier
    std::vector<Qubit> qubits;
    do {
      for (const Qubit q : parse_argument_expansion()) qubits.push_back(q);
    } while (match(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "';'");
    emit_barrier(qubits);
  }

  void emit_barrier(const std::vector<Qubit>& qubits) {
    if (qubits.empty()) return;
    // Wide barriers become a chained fence of overlapping <=3-qubit Gate
    // records; the shared qubit links the chain, so ordering is transitive.
    if (qubits.size() <= Gate::kMaxQubits) {
      circuit_.add(Gate::barrier(qubits));
      return;
    }
    for (std::size_t i = 0; i + 1 < qubits.size(); i += 2) {
      const std::size_t last = std::min(i + 2, qubits.size() - 1);
      std::vector<Qubit> link(qubits.begin() + static_cast<std::ptrdiff_t>(i),
                              qubits.begin() +
                                  static_cast<std::ptrdiff_t>(last) + 1);
      circuit_.add(Gate::barrier(link));
    }
  }

  void parse_measure() {
    advance();  // measure
    const std::vector<Qubit> sources = parse_argument_expansion();
    expect(TokenKind::kArrow, "'->'");
    const Token creg_name = expect(TokenKind::kIdentifier, "creg name");
    if (cregs_.count(creg_name.text) == 0)
      throw QasmError("unknown creg '" + creg_name.text + "'", creg_name.line,
                      creg_name.column);
    if (match(TokenKind::kLBracket)) {
      expect(TokenKind::kNumber, "bit index");
      expect(TokenKind::kRBracket, "']'");
    }
    expect(TokenKind::kSemicolon, "';'");
    for (const Qubit q : sources) circuit_.measure(q);
  }

  /// Parses one argument (`reg` or `reg[i]`) and returns the qubit indices
  /// it denotes (1 for an indexed arg, register size for a broadcast arg).
  std::vector<Qubit> parse_argument_expansion() {
    const Token name = expect(TokenKind::kIdentifier, "register name");
    const auto it = qregs_.find(name.text);
    if (it == qregs_.end())
      throw QasmError("unknown qreg '" + name.text + "'", name.line,
                      name.column);
    const RegisterInfo& reg = it->second;
    if (match(TokenKind::kLBracket)) {
      const Token idx_tok = expect(TokenKind::kNumber, "qubit index");
      expect(TokenKind::kRBracket, "']'");
      const int idx = static_cast<int>(idx_tok.number);
      if (idx < 0 || idx >= reg.size)
        throw QasmError("qubit index out of range", idx_tok.line,
                        idx_tok.column);
      return {static_cast<Qubit>(reg.offset + idx)};
    }
    std::vector<Qubit> all(static_cast<std::size_t>(reg.size));
    for (int k = 0; k < reg.size; ++k)
      all[static_cast<std::size_t>(k)] = static_cast<Qubit>(reg.offset + k);
    return all;
  }

  void parse_gate_application() {
    const Token name = advance();
    std::vector<double> params;
    if (match(TokenKind::kLParen)) {
      if (!check(TokenKind::kRParen)) {
        do {
          const ExprPtr e = parse_expression();
          params.push_back(eval(*e, {}, name.line, name.column));
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "')'");
    }
    std::vector<std::vector<Qubit>> args;
    do {
      args.push_back(parse_argument_expansion());
    } while (match(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "';'");

    // Broadcast: all multi-qubit (register) args must agree in size.
    std::size_t reps = 1;
    for (const auto& a : args) {
      if (a.size() > 1) {
        if (reps != 1 && reps != a.size())
          throw QasmError("mismatched register sizes in broadcast", name.line,
                          name.column);
        reps = a.size();
      }
    }
    for (std::size_t r = 0; r < reps; ++r) {
      std::vector<Qubit> operands;
      operands.reserve(args.size());
      for (const auto& a : args)
        operands.push_back(a.size() == 1 ? a[0] : a[r]);
      apply_named_gate(name.text, params, operands, name.line, name.column);
    }
  }

  void apply_named_gate(const std::string& name,
                        const std::vector<double>& params,
                        const std::vector<Qubit>& operands, int line,
                        int col) {
    // User definitions shadow builtins (matching textual QASM semantics,
    // where qelib1 gates are themselves definitions).
    const auto def_it = gate_defs_.find(name);
    if (def_it != gate_defs_.end()) {
      expand_gate_def(def_it->second, params, operands, line, col);
      return;
    }
    const auto& builtins = builtin_table();
    const auto it = builtins.find(name);
    if (it == builtins.end())
      throw QasmError("unknown gate '" + name + "'", line, col);
    const Builtin& b = it->second;
    if (operands.size() != static_cast<std::size_t>(b.num_qubits))
      throw QasmError("gate '" + name + "' expects " +
                          std::to_string(b.num_qubits) + " qubits",
                      line, col);
    if (params.size() != static_cast<std::size_t>(b.num_params))
      throw QasmError("gate '" + name + "' expects " +
                          std::to_string(b.num_params) + " parameters",
                      line, col);
    for (std::size_t i = 0; i < operands.size(); ++i)
      for (std::size_t j = 0; j < i; ++j)
        if (operands[i] == operands[j])
          throw QasmError("duplicate qubit operand", line, col);
    circuit_.add(Gate(b.kind, operands, params));
  }

  void expand_gate_def(const GateDef& def, const std::vector<double>& params,
                       const std::vector<Qubit>& operands, int line,
                       int col) {
    if (params.size() != def.param_names.size())
      throw QasmError("wrong number of parameters in gate call", line, col);
    if (operands.size() != def.arg_names.size())
      throw QasmError("wrong number of qubit arguments in gate call", line,
                      col);
    if (++expansion_depth_ > 64)
      throw QasmError("gate expansion too deep (recursive definition?)", line,
                      col);
    ParamEnv env;
    for (std::size_t i = 0; i < params.size(); ++i)
      env[def.param_names[i]] = params[i];
    std::map<std::string, Qubit> qubit_env;
    for (std::size_t i = 0; i < operands.size(); ++i)
      qubit_env[def.arg_names[i]] = operands[i];

    for (const BodyOp& op : def.body) {
      std::vector<Qubit> op_qubits;
      for (const std::string& arg : op.args) {
        const auto it = qubit_env.find(arg);
        if (it == qubit_env.end())
          throw QasmError("unknown qubit '" + arg + "' in gate body", op.line,
                          op.column);
        op_qubits.push_back(it->second);
      }
      if (op.is_barrier) {
        emit_barrier(op_qubits);
        continue;
      }
      std::vector<double> op_params;
      for (const ExprPtr& e : op.params)
        op_params.push_back(eval(*e, env, op.line, op.column));
      apply_named_gate(op.gate_name, op_params, op_qubits, op.line,
                       op.column);
    }
    --expansion_depth_;
  }

  // -- expression grammar: additive > multiplicative > power > unary --

  ExprPtr parse_expression() { return parse_additive(); }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
      const bool add = advance().kind == TokenKind::kPlus;
      ExprPtr rhs = parse_multiplicative();
      auto node = std::make_shared<Expr>();
      node->op = add ? Expr::Op::kAdd : Expr::Op::kSub;
      node->lhs = lhs;
      node->rhs = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_power();
    while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
      const bool mul = advance().kind == TokenKind::kStar;
      ExprPtr rhs = parse_power();
      auto node = std::make_shared<Expr>();
      node->op = mul ? Expr::Op::kMul : Expr::Op::kDiv;
      node->lhs = lhs;
      node->rhs = rhs;
      lhs = node;
    }
    return lhs;
  }

  ExprPtr parse_power() {
    ExprPtr lhs = parse_unary();
    if (check(TokenKind::kCaret)) {
      advance();
      ExprPtr rhs = parse_power();  // right-associative
      auto node = std::make_shared<Expr>();
      node->op = Expr::Op::kPow;
      node->lhs = lhs;
      node->rhs = rhs;
      return node;
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (match(TokenKind::kMinus)) {
      auto node = std::make_shared<Expr>();
      node->op = Expr::Op::kNeg;
      node->lhs = parse_unary();
      return node;
    }
    if (match(TokenKind::kPlus)) return parse_unary();
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (check(TokenKind::kNumber)) {
      auto node = std::make_shared<Expr>();
      node->op = Expr::Op::kNumber;
      node->number = advance().number;
      return node;
    }
    if (check(TokenKind::kIdentifier)) {
      const Token tok = advance();
      if (tok.text == "pi") {
        auto node = std::make_shared<Expr>();
        node->op = Expr::Op::kPi;
        return node;
      }
      if (check(TokenKind::kLParen)) {
        advance();
        ExprPtr arg = parse_expression();
        expect(TokenKind::kRParen, "')'");
        auto node = std::make_shared<Expr>();
        node->op = Expr::Op::kCall;
        node->name = tok.text;
        node->lhs = arg;
        return node;
      }
      auto node = std::make_shared<Expr>();
      node->op = Expr::Op::kParam;
      node->name = tok.text;
      return node;
    }
    if (match(TokenKind::kLParen)) {
      ExprPtr inner = parse_expression();
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Circuit circuit_;
  int total_qubits_ = 0;
  int expansion_depth_ = 0;
  std::map<std::string, RegisterInfo> qregs_;
  std::map<std::string, int> cregs_;
  std::map<std::string, GateDef> gate_defs_;
};

}  // namespace

ir::Circuit parse(std::string_view source, std::string circuit_name) {
  return Parser(source, std::move(circuit_name)).run();
}

ir::Circuit parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open qasm file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path);
}

}  // namespace codar::qasm

#include "codar/qasm/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace codar::qasm {

QasmError::QasmError(const std::string& message, int line, int column)
    : std::runtime_error("qasm:" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto push = [&](TokenKind kind, std::string text, int at_line, int at_col,
                  double number = 0.0) {
    tokens.push_back(Token{kind, std::move(text), number, at_line, at_col});
  };

  while (i < source.size()) {
    const char c = source[i];
    const int tl = line, tc = col;
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < source.size() && is_ident_char(source[i])) advance();
      push(TokenKind::kIdentifier,
           std::string(source.substr(start, i - start)), tl, tc);
      continue;
    }
    if (is_digit(c) || (c == '.' && i + 1 < source.size() &&
                        is_digit(source[i + 1]))) {
      std::size_t start = i;
      while (i < source.size() &&
             (is_digit(source[i]) || source[i] == '.' || source[i] == 'e' ||
              source[i] == 'E' ||
              ((source[i] == '+' || source[i] == '-') && i > start &&
               (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        advance();
      }
      const std::string text(source.substr(start, i - start));
      push(TokenKind::kNumber, text, tl, tc, std::strtod(text.c_str(), nullptr));
      continue;
    }
    if (c == '"') {
      advance();
      std::size_t start = i;
      while (i < source.size() && source[i] != '"') advance();
      if (i >= source.size()) throw QasmError("unterminated string", tl, tc);
      push(TokenKind::kString, std::string(source.substr(start, i - start)),
           tl, tc);
      advance();  // closing quote
      continue;
    }
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '>') {
      push(TokenKind::kArrow, "->", tl, tc);
      advance(2);
      continue;
    }
    if (c == '=' && i + 1 < source.size() && source[i + 1] == '=') {
      push(TokenKind::kEqualEqual, "==", tl, tc);
      advance(2);
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ',': kind = TokenKind::kComma; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '^': kind = TokenKind::kCaret; break;
      default:
        throw QasmError(std::string("unexpected character '") + c + "'", tl,
                        tc);
    }
    push(kind, std::string(1, c), tl, tc);
    advance();
  }
  push(TokenKind::kEof, "", line, col);
  return tokens;
}

}  // namespace codar::qasm

#include "codar/core/heuristic.hpp"

#include <cmath>

namespace codar::core {

namespace {

/// Applies the transposition (swap.a swap.b) to a physical qubit.
Qubit transpose(Qubit p, SwapCandidate swap) {
  if (p == swap.a) return swap.b;
  if (p == swap.b) return swap.a;
  return p;
}

}  // namespace

std::int64_t h_basic(std::span<const GateEndpoints> cf_gates,
                     const arch::DistanceOracle& dist, SwapCandidate swap) {
  std::int64_t total = 0;
  // Dense fast path: read the flat matrix directly instead of paying a
  // virtual call per lookup — this is the router's innermost loop.
  if (const int* m = dist.dense_matrix()) {
    const std::size_t n = dist.dense_stride();
    for (const auto& [pa, pb] : cf_gates) {
      const Qubit na = transpose(pa, swap);
      const Qubit nb = transpose(pb, swap);
      if (na == pa && nb == pb) continue;  // unaffected gate contributes 0
      total = saturating_add(
          total, m[static_cast<std::size_t>(pa) * n +
                   static_cast<std::size_t>(pb)] -
                     m[static_cast<std::size_t>(na) * n +
                       static_cast<std::size_t>(nb)]);
    }
    return total;
  }
  for (const auto& [pa, pb] : cf_gates) {
    const Qubit na = transpose(pa, swap);
    const Qubit nb = transpose(pb, swap);
    if (na == pa && nb == pb) continue;  // unaffected gate contributes 0
    // Each term is at most ±kInfDistance; the saturating accumulator keeps
    // the sum ordered even when a disconnected device stacks many of them.
    total = saturating_add(total, dist.distance(pa, pb) - dist.distance(na, nb));
  }
  return total;
}

std::int64_t h_basic(std::span<const GateEndpoints> cf_gates,
                     const arch::CouplingGraph& graph, SwapCandidate swap) {
  return h_basic(cf_gates, graph.oracle(), swap);
}

std::int64_t h_fine(std::span<const GateEndpoints> cf_gates,
                    const arch::CouplingGraph& graph, SwapCandidate swap) {
  if (!graph.has_coordinates()) return 0;
  std::int64_t total = 0;
  for (const auto& [pa, pb] : cf_gates) {
    const arch::Coordinate ca = graph.coordinate(transpose(pa, swap));
    const arch::Coordinate cb = graph.coordinate(transpose(pb, swap));
    const int vd = std::abs(ca.row - cb.row);
    const int hd = std::abs(ca.col - cb.col);
    total -= std::abs(vd - hd);
  }
  return total;
}

SwapPriority swap_priority(std::span<const GateEndpoints> cf_gates,
                           const arch::CouplingGraph& graph,
                           SwapCandidate swap, bool use_fine) {
  SwapPriority p;
  p.basic = h_basic(cf_gates, graph, swap);
  p.fine = use_fine ? h_fine(cf_gates, graph, swap) : 0;
  return p;
}

std::int64_t h_fine_delta(std::span<const GateEndpoints> cf_gates,
                          const arch::CouplingGraph& graph,
                          SwapCandidate swap) {
  if (!graph.has_coordinates()) return 0;
  std::int64_t total = 0;
  for (const auto& [pa, pb] : cf_gates) {
    const Qubit na = transpose(pa, swap);
    const Qubit nb = transpose(pb, swap);
    if (na == pa && nb == pb) continue;  // unaffected: part of the base term
    const arch::Coordinate ca = graph.coordinate(na);
    const arch::Coordinate cb = graph.coordinate(nb);
    total -= std::abs(std::abs(ca.row - cb.row) - std::abs(ca.col - cb.col));
    const arch::Coordinate oa = graph.coordinate(pa);
    const arch::Coordinate ob = graph.coordinate(pb);
    total += std::abs(std::abs(oa.row - ob.row) - std::abs(oa.col - ob.col));
  }
  return total;
}

SwapPriority swap_priority_delta(std::span<const GateEndpoints> cf_gates,
                                 const arch::DistanceOracle& dist,
                                 const arch::CouplingGraph& graph,
                                 SwapCandidate swap, bool use_fine) {
  SwapPriority p;
  p.basic = h_basic(cf_gates, dist, swap);
  p.fine = use_fine ? h_fine_delta(cf_gates, graph, swap) : 0;
  return p;
}

SwapPriority swap_priority_delta(std::span<const GateEndpoints> cf_gates,
                                 const arch::CouplingGraph& graph,
                                 SwapCandidate swap, bool use_fine) {
  return swap_priority_delta(cf_gates, graph.oracle(), graph, swap, use_fine);
}

}  // namespace codar::core

#include "codar/core/codar_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "codar/core/commutativity.hpp"
#include "codar/core/heuristic.hpp"
#include "codar/core/qubit_lock.hpp"
#include "codar/ir/decompose.hpp"

namespace codar::core {

namespace {

using ir::Gate;
using ir::GateKind;
using ir::Qubit;

/// Hard iteration cap: the stagnation escape guarantees progress, so this
/// only trips on an internal bug; better a loud error than a silent hang.
constexpr std::size_t kMaxIterations = 50'000'000;

/// Working state of one route() invocation.
class RoutingRun {
 public:
  RoutingRun(const arch::Device& device, const CodarConfig& config,
             const arch::DurationMap& lock_durations,
             const ir::Circuit& input, const layout::Layout& initial)
      : device_(device),
        config_(config),
        lock_dur_(lock_durations),
        gates_(input.gates().begin(), input.gates().end()),
        alive_(gates_.size(), true),
        live_count_(gates_.size()),
        pi_(initial),
        initial_(initial),
        locks_(device.graph.num_qubits()),
        out_(device.graph.num_qubits(), input.name() + "_codar") {
    pending_.resize(gates_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i)
      pending_[i] = static_cast<int>(i);
  }

  RoutingResult run() {
    std::size_t iterations = 0;
    while (live_count_ > 0) {
      if (++iterations > kMaxIterations) {
        throw std::runtime_error(
            "CodarRouter: iteration cap exceeded (livelock?)");
      }
      ++stats_.cycles_simulated;
      const bool launched = launch_step();
      const bool inserted = swap_step();
      if (launched || inserted) {
        advance_after_progress();
        continue;
      }
      const Duration next = locks_.next_expiry_after(now_);
      if (next > now_) {
        now_ = next;  // wait for a busy qubit to free up
      } else {
        // Deadlock (paper §IV-D): every qubit is idle yet nothing can
        // launch and no SWAP has positive priority.
        force_swap();
      }
    }
    RoutingResult result{std::move(out_), std::move(initial_), std::move(pi_),
                         stats_};
    for (Qubit q = 0; q < device_.graph.num_qubits(); ++q) {
      result.stats.router_makespan =
          std::max(result.stats.router_makespan, locks_.t_end(q));
    }
    result.stats.gates_routed = gates_.size();
    return result;
  }

 private:
  // -- CF maintenance -------------------------------------------------------

  void compact_pending() {
    if (dead_in_pending_ * 2 <= pending_.size()) return;
    std::erase_if(pending_, [&](int gi) {
      return !alive_[static_cast<std::size_t>(gi)];
    });
    dead_in_pending_ = 0;
  }

  /// Recomputes the CF gate list (gate indices, program order) over the
  /// first `front_window` alive pending gates.
  void compute_cf() {
    compact_pending();
    cf_.clear();
    const std::size_t window =
        config_.front_window <= 0
            ? pending_.size()
            : static_cast<std::size_t>(config_.front_window);
    // wire_scratch_[q] = alive scanned gate indices on logical wire q, in
    // program order.
    wire_scratch_.resize(static_cast<std::size_t>(device_.graph.num_qubits()));
    for (auto& wire : wire_scratch_) wire.clear();
    std::size_t scanned = 0;
    for (const int gi : pending_) {
      if (!alive_[static_cast<std::size_t>(gi)]) continue;
      if (scanned >= window) break;
      ++scanned;
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      bool is_front = true;
      for (const Qubit q : g.qubits()) {
        for (const int earlier : wire_scratch_[static_cast<std::size_t>(q)]) {
          const Gate& h = gates_[static_cast<std::size_t>(earlier)];
          if (!config_.commutativity_aware || !gates_commute(h, g)) {
            is_front = false;
            break;
          }
        }
        if (!is_front) break;
      }
      if (is_front) cf_.push_back(gi);
      for (const Qubit q : g.qubits()) {
        wire_scratch_[static_cast<std::size_t>(q)].push_back(gi);
      }
    }
    cf_dirty_ = false;
  }

  void retire(int gate_index) {
    alive_[static_cast<std::size_t>(gate_index)] = false;
    ++dead_in_pending_;
    --live_count_;
    cf_dirty_ = true;
    consecutive_forced_ = 0;
    last_forced_ = SwapCandidate{};
  }

  // -- Step 1 + 2: launch every executable CF gate (to fixpoint) ------------

  bool launch_step() {
    bool launched_any = false;
    for (;;) {
      if (cf_dirty_) compute_cf();
      bool launched = false;
      for (const int gi : cf_) {
        if (!alive_[static_cast<std::size_t>(gi)]) continue;
        const Gate& g = gates_[static_cast<std::size_t>(gi)];
        const Gate phys = g.remapped(
            [&](Qubit lq) { return pi_.physical(lq); });
        if (!locks_.all_free(phys.qubits(), now_)) continue;
        if (phys.num_qubits() == 2 && phys.kind() != GateKind::kBarrier &&
            !device_.graph.connected(phys.qubit(0), phys.qubit(1))) {
          continue;
        }
        out_.add(phys);
        locks_.lock(phys.qubits(), now_, lock_dur_.of(g));
        retire(gi);
        launched = true;
      }
      if (!launched) break;
      launched_any = true;
    }
    return launched_any;
  }

  // -- Step 3: SWAP insertion ------------------------------------------------

  /// Endpoints of every alive two-qubit CF gate under the current π.
  std::vector<GateEndpoints> cf_two_qubit_endpoints() const {
    std::vector<GateEndpoints> endpoints;
    for (const int gi : cf_) {
      if (!alive_[static_cast<std::size_t>(gi)]) continue;
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      if (g.num_qubits() != 2 || g.kind() == GateKind::kBarrier) continue;
      endpoints.emplace_back(pi_.physical(g.qubit(0)),
                             pi_.physical(g.qubit(1)));
    }
    return endpoints;
  }

  /// Alive CF two-qubit gates whose endpoints are not coupled (in program
  /// order).
  std::vector<int> blocked_gates() const {
    std::vector<int> blocked;
    for (const int gi : cf_) {
      if (!alive_[static_cast<std::size_t>(gi)]) continue;
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      if (g.num_qubits() != 2 || g.kind() == GateKind::kBarrier) continue;
      if (!device_.graph.connected(pi_.physical(g.qubit(0)),
                                   pi_.physical(g.qubit(1)))) {
        blocked.push_back(gi);
      }
    }
    return blocked;
  }

  /// Candidate SWAPs: edges adjacent to the physical qubits of blocked CF
  /// gates; with context awareness only lock-free edges qualify.
  std::vector<SwapCandidate> build_candidates(
      const std::vector<int>& blocked, bool filter_locks) const {
    std::vector<SwapCandidate> candidates;
    auto add_edge = [&](Qubit p, Qubit nb) {
      SwapCandidate cand{std::min(p, nb), std::max(p, nb)};
      if (std::find(candidates.begin(), candidates.end(), cand) ==
          candidates.end()) {
        candidates.push_back(cand);
      }
    };
    for (const int gi : blocked) {
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      for (int i = 0; i < 2; ++i) {
        const Qubit p = pi_.physical(g.qubit(i));
        if (filter_locks && !locks_.is_free(p, now_)) continue;
        for (const Qubit nb : device_.graph.neighbors(p)) {
          if (filter_locks && !locks_.is_free(nb, now_)) continue;
          add_edge(p, nb);
        }
      }
    }
    return candidates;
  }

  void insert_swap(SwapCandidate cand) {
    const Duration start = std::max(
        {now_, locks_.t_end(cand.a), locks_.t_end(cand.b)});
    out_.swap(cand.a, cand.b);
    const Qubit pair[] = {cand.a, cand.b};
    locks_.lock(pair, start, lock_dur_.of(GateKind::kSwap));
    pi_.swap_physical(cand.a, cand.b);
    ++stats_.swaps_inserted;
  }

  bool swap_step() {
    if (cf_dirty_) compute_cf();
    const std::vector<int> blocked = blocked_gates();
    if (blocked.empty()) return false;
    std::vector<SwapCandidate> candidates =
        build_candidates(blocked, config_.context_aware);
    bool inserted_any = false;
    while (!candidates.empty()) {
      const std::vector<GateEndpoints> endpoints = cf_two_qubit_endpoints();
      const SwapCandidate* best = nullptr;
      SwapPriority best_priority;
      for (const SwapCandidate& cand : candidates) {
        const SwapPriority p = swap_priority(endpoints, device_.graph, cand,
                                             config_.fine_priority);
        if (best == nullptr || p > best_priority) {
          best = &cand;
          best_priority = p;
        }
      }
      if (best == nullptr || best_priority.basic <= 0) break;
      const SwapCandidate chosen = *best;
      insert_swap(chosen);
      inserted_any = true;
      if (config_.context_aware) {
        // The chosen SWAP locked its endpoints; overlapping edges are no
        // longer lock-free this cycle.
        std::erase_if(candidates, [&](const SwapCandidate& c) {
          return c.a == chosen.a || c.a == chosen.b || c.b == chosen.a ||
                 c.b == chosen.b;
        });
      } else {
        std::erase_if(candidates,
                      [&](const SwapCandidate& c) { return c == chosen; });
      }
    }
    return inserted_any;
  }

  // -- Deadlock resolution ----------------------------------------------------

  void force_swap() {
    if (cf_dirty_) compute_cf();
    const std::vector<int> blocked = blocked_gates();
    // live_count_ > 0 and nothing launched with all qubits free implies at
    // least one CF two-qubit gate is blocked by connectivity.
    CODAR_ENSURES(!blocked.empty());
    ++consecutive_forced_;
    if (consecutive_forced_ > config_.stagnation_threshold) {
      escape_swap(blocked.front());
      return;
    }
    std::vector<SwapCandidate> candidates =
        build_candidates(blocked, config_.context_aware);
    CODAR_ENSURES(!candidates.empty());
    // Anti-oscillation: never immediately undo the previous forced SWAP
    // (forcing an H_basic = 0 SWAP and its inverse would ping-pong).
    if (candidates.size() > 1) {
      std::erase_if(candidates,
                    [&](const SwapCandidate& c) { return c == last_forced_; });
    }
    const std::vector<GateEndpoints> endpoints = cf_two_qubit_endpoints();
    const SwapCandidate* best = nullptr;
    SwapPriority best_priority;
    for (const SwapCandidate& cand : candidates) {
      const SwapPriority p = swap_priority(endpoints, device_.graph, cand,
                                           config_.fine_priority);
      if (best == nullptr || p > best_priority) {
        best = &cand;
        best_priority = p;
      }
    }
    last_forced_ = *best;
    insert_swap(*best);
    ++stats_.forced_swaps;
  }

  /// Stagnation escape: move the oldest blocked gate one step along a
  /// shortest path — monotone progress, so the router always terminates.
  void escape_swap(int gate_index) {
    const Gate& g = gates_[static_cast<std::size_t>(gate_index)];
    const Qubit pa = pi_.physical(g.qubit(0));
    const Qubit pb = pi_.physical(g.qubit(1));
    Qubit step = -1;
    for (const Qubit nb : device_.graph.neighbors(pa)) {
      if (step < 0 ||
          device_.graph.distance(nb, pb) < device_.graph.distance(step, pb)) {
        step = nb;
      }
    }
    CODAR_ENSURES(step >= 0);
    insert_swap(SwapCandidate{std::min(pa, step), std::max(pa, step)});
    last_forced_ = SwapCandidate{};
    ++stats_.forced_swaps;
    ++stats_.escape_swaps;
  }

  // -- Time control -----------------------------------------------------------

  void advance_after_progress() {
    const Duration next = locks_.next_expiry_after(now_);
    if (next > now_) now_ = next;
    // next == now_ happens when only zero-duration barriers launched; the
    // main loop simply runs another iteration at the same time.
  }

  const arch::Device& device_;
  const CodarConfig& config_;
  const arch::DurationMap& lock_dur_;

  std::vector<Gate> gates_;
  std::vector<int> pending_;
  std::vector<bool> alive_;
  std::size_t dead_in_pending_ = 0;
  std::size_t live_count_ = 0;
  layout::Layout pi_;
  layout::Layout initial_;
  QubitLockBank locks_;
  Duration now_ = 0;
  ir::Circuit out_;
  RouterStats stats_;

  std::vector<int> cf_;
  bool cf_dirty_ = true;
  std::vector<std::vector<int>> wire_scratch_;

  SwapCandidate last_forced_{};
  int consecutive_forced_ = 0;
};

}  // namespace

CodarRouter::CodarRouter(const arch::Device& device, CodarConfig config)
    : device_(device),
      config_(config),
      lock_durations_(config.duration_aware ? device.durations
                                            : arch::DurationMap::uniform()) {
  CODAR_EXPECTS(device.graph.is_fully_connected());
  CODAR_EXPECTS(config.stagnation_threshold >= 1);
}

RoutingResult CodarRouter::route(const ir::Circuit& circuit,
                                 const layout::Layout& initial) const {
  CODAR_EXPECTS(ir::is_two_qubit_lowered(circuit));
  CODAR_EXPECTS(circuit.num_qubits() <= device_.graph.num_qubits());
  CODAR_EXPECTS(initial.num_logical() == circuit.num_qubits());
  CODAR_EXPECTS(initial.num_physical() == device_.graph.num_qubits());
  RoutingRun run(device_, config_, lock_durations_, circuit, initial);
  return run.run();
}

RoutingResult CodarRouter::route(const ir::Circuit& circuit) const {
  return route(circuit, layout::Layout(circuit.num_qubits(),
                                       device_.graph.num_qubits()));
}

}  // namespace codar::core

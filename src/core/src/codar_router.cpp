#include "codar/core/codar_router.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "codar/arch/distance_oracle.hpp"
#include "codar/common/arena.hpp"
#include "codar/core/front.hpp"
#include "codar/core/heuristic.hpp"
#include "codar/core/qubit_lock.hpp"
#include "codar/ir/decompose.hpp"

namespace codar::core {

namespace {

using ir::Gate;
using ir::GateKind;
using ir::Qubit;

/// Hard iteration cap: the stagnation escape guarantees progress, so this
/// only trips on an internal bug; better a loud error than a silent hang.
constexpr std::size_t kMaxIterations = 50'000'000;

/// Working state of one route() invocation.
///
/// This is the event-driven rewrite of the original loop: the CF set lives
/// in an incrementally-maintained CommutativeFront (no per-iteration
/// rescan), time advances through the lock bank's expiry heap, and
/// swap_step runs allocation-free on reused scratch buffers with candidate
/// priorities recomputed only where a previous SWAP moved an endpoint. The
/// routing decisions — launch order, SWAP choices, timing — are identical
/// to the original rescan loop (preserved as the differential-test oracle
/// in tests/support/rescan_router.hpp).
class RoutingRun {
 public:
  RoutingRun(const arch::Device& device, const CodarConfig& config,
             const ir::Circuit& input, const layout::Layout& initial,
             common::Arena& arena)
      : device_(device),
        config_(config),
        dist_(device.graph.oracle()),
        cost_(config.swap_cost.get()),
        gates_(input.gates().begin(), input.gates().end()),
        barriers_(input.barrier_count()),
        front_(gates_, config.front_window, config.commutativity_aware),
        pi_(initial),
        initial_(initial),
        locks_(device.graph.num_qubits()),
        out_(device.graph.num_qubits(), input.name() + "_codar"),
        pass_scratch_(common::ArenaAllocator<int>(arena)),
        phys_scratch_(common::ArenaAllocator<Qubit>(arena)),
        blocked_scratch_(common::ArenaAllocator<int>(arena)),
        cand_scratch_(common::ArenaAllocator<SwapCandidate>(arena)),
        prio_scratch_(common::ArenaAllocator<SwapPriority>(arena)),
        bonus_scratch_(common::ArenaAllocator<double>(arena)),
        endpoints_scratch_(common::ArenaAllocator<GateEndpoints>(arena)),
        edge_seen_(device.graph.num_edges(), 0,
                   common::ArenaAllocator<std::uint32_t>(arena)),
        qubit_marked_(static_cast<std::size_t>(device.graph.num_qubits()), 0,
                      common::ArenaAllocator<std::uint32_t>(arena)) {}

  RoutingResult run() {
    std::size_t iterations = 0;
    Duration last_counted = -1;
    while (front_.live_count() > 0) {
      if (++iterations > kMaxIterations) {
        throw std::runtime_error(
            "CodarRouter: iteration cap exceeded (livelock?)");
      }
      // A "cycle" is a distinct visited timestamp, not a loop iteration:
      // launch/swap/forced-swap rounds at the same time count once.
      if (now_ != last_counted) {
        ++stats_.cycles_simulated;
        last_counted = now_;
      }
      const bool launched = launch_step();
      const bool inserted = swap_step();
      if (launched || inserted) {
        advance_after_progress();
        continue;
      }
      const Duration next = locks_.next_expiry_after(now_);
      if (next > now_) {
        now_ = next;  // wait for a busy qubit to free up
      } else {
        // Deadlock (paper §IV-D): every qubit is idle yet nothing can
        // launch and no SWAP has positive priority.
        force_swap();
      }
    }
    RoutingResult result{std::move(out_), std::move(initial_), std::move(pi_),
                         stats_};
    for (Qubit q = 0; q < device_.graph.num_qubits(); ++q) {
      result.stats.router_makespan =
          std::max(result.stats.router_makespan, locks_.t_end(q));
    }
    result.stats.barriers = barriers_;
    result.stats.gates_routed = gates_.size() - barriers_;
    return result;
  }

 private:
  void retire(int gate_index) {
    front_.retire(gate_index);
    consecutive_forced_ = 0;
    last_forced_ = SwapCandidate{};
  }

  // -- Step 1 + 2: launch every executable CF gate (to fixpoint) ------------

  bool launch_step() {
    bool launched_any = false;
    for (;;) {
      bool launched = false;
      // Snapshot the front: gates that become front mid-pass (unblocked by
      // a retirement) wait for the next pass, exactly as the rescan loop
      // only saw them on its next recompute.
      pass_scratch_.assign(front_.front().begin(), front_.front().end());
      for (const int gi : pass_scratch_) {
        const Gate& g = gates_[static_cast<std::size_t>(gi)];
        phys_scratch_.clear();
        for (const Qubit q : g.qubits()) {
          phys_scratch_.push_back(pi_.physical(q));
        }
        if (!locks_.all_free(phys_scratch_, now_)) continue;
        if (g.num_qubits() == 2 && g.kind() != GateKind::kBarrier &&
            !device_.graph.connected(phys_scratch_[0], phys_scratch_[1])) {
          continue;
        }
        out_.add(g.remapped([&](Qubit lq) { return pi_.physical(lq); }));
        // The device resolves calibration overrides against the *physical*
        // operands; with an empty calibration this is the kind default.
        locks_.lock(phys_scratch_, now_, device_.duration(g, phys_scratch_));
        retire(gi);
        launched = true;
      }
      if (!launched) break;
      launched_any = true;
    }
    return launched_any;
  }

  // -- Step 3: SWAP insertion ------------------------------------------------

  /// Fills endpoints_scratch_ with the physical endpoints of every two-qubit
  /// CF gate under the current π (front order == program order).
  void collect_cf_endpoints() {
    endpoints_scratch_.clear();
    for (const int gi : front_.front()) {
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      if (g.num_qubits() != 2 || g.kind() == GateKind::kBarrier) continue;
      endpoints_scratch_.emplace_back(pi_.physical(g.qubit(0)),
                                      pi_.physical(g.qubit(1)));
    }
  }

  /// Fills blocked_scratch_ with the CF two-qubit gates whose endpoints are
  /// not coupled (program order).
  void collect_blocked() {
    blocked_scratch_.clear();
    for (const int gi : front_.front()) {
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      if (g.num_qubits() != 2 || g.kind() == GateKind::kBarrier) continue;
      if (!device_.graph.connected(pi_.physical(g.qubit(0)),
                                   pi_.physical(g.qubit(1)))) {
        blocked_scratch_.push_back(gi);
      }
    }
  }

  /// Candidate SWAPs into cand_scratch_: edges adjacent to the physical
  /// qubits of blocked CF gates; with context awareness only lock-free
  /// edges qualify. First-occurrence order, deduplicated by a stamped
  /// table keyed on the graph's compact edge ids — O(E) scratch, so the
  /// table stays small even on 65536-qubit devices.
  void build_candidates(bool filter_locks) {
    cand_scratch_.clear();
    ++edge_stamp_;
    for (const int gi : blocked_scratch_) {
      const Gate& g = gates_[static_cast<std::size_t>(gi)];
      for (int i = 0; i < 2; ++i) {
        const Qubit p = pi_.physical(g.qubit(i));
        if (filter_locks && !locks_.is_free(p, now_)) continue;
        const auto& nbs = device_.graph.neighbors(p);
        const std::span<const int> edge_ids = device_.graph.incident_edge_ids(p);
        for (std::size_t k = 0; k < nbs.size(); ++k) {
          const Qubit nb = nbs[k];
          if (filter_locks && !locks_.is_free(nb, now_)) continue;
          const auto edge_id = static_cast<std::size_t>(edge_ids[k]);
          if (edge_seen_[edge_id] == edge_stamp_) continue;
          edge_seen_[edge_id] = edge_stamp_;
          cand_scratch_.push_back(SwapCandidate{std::min(p, nb), std::max(p, nb)});
        }
      }
    }
  }

  void insert_swap(SwapCandidate cand) {
    const Duration start = std::max(
        {now_, locks_.t_end(cand.a), locks_.t_end(cand.b)});
    out_.swap(cand.a, cand.b);
    const Qubit pair[] = {cand.a, cand.b};
    locks_.lock(pair, start, device_.duration(GateKind::kSwap, pair));
    pi_.swap_physical(cand.a, cand.b);
    ++stats_.swaps_inserted;
  }

  /// Mixed fidelity-aware score of cached candidate `i` (swap_cost set):
  /// alpha * H_basic + the model's per-edge bonus. Deterministic — every
  /// term is a pure function of the candidate edge and the cached basic.
  double score_of(std::size_t i) const {
    return config_.alpha * static_cast<double>(prio_scratch_[i].basic) +
           bonus_scratch_[i];
  }

  /// Index of the best candidate by cached priority (first strict maximum
  /// in candidate order, as the rescan loop's linear argmax). Under
  /// swap_cost scoring the score is compared first; ⟨H_basic, H_fine⟩
  /// breaks exact score ties, so zero-bonus models reproduce the paper
  /// ordering exactly.
  std::size_t best_candidate() const {
    std::size_t best = 0;
    if (cost_ == nullptr) {
      for (std::size_t i = 1; i < prio_scratch_.size(); ++i) {
        if (prio_scratch_[i] > prio_scratch_[best]) best = i;
      }
      return best;
    }
    double best_score = score_of(0);
    for (std::size_t i = 1; i < prio_scratch_.size(); ++i) {
      const double score = score_of(i);
      if (score > best_score ||
          (score == best_score && prio_scratch_[i] > prio_scratch_[best])) {
        best = i;
        best_score = score;
      }
    }
    return best;
  }

  /// Applies the chosen SWAP to the cached endpoints and re-prices exactly
  /// the candidates whose neighborhood it touched. Priorities are stored as
  /// ⟨H_basic, H_fine − base⟩; the dropped base term is shared by every
  /// candidate under one mapping, so comparisons (and the basic > 0 gate)
  /// are unchanged.
  void refresh_after_swap(SwapCandidate chosen) {
    ++qubit_stamp_;
    auto mark = [&](Qubit q) {
      qubit_marked_[static_cast<std::size_t>(q)] = qubit_stamp_;
    };
    auto transpose = [&](Qubit p) {
      if (p == chosen.a) return chosen.b;
      if (p == chosen.b) return chosen.a;
      return p;
    };
    for (auto& [pa, pb] : endpoints_scratch_) {
      if (pa == chosen.a || pa == chosen.b || pb == chosen.a ||
          pb == chosen.b) {
        // Both the old and new positions of a moved gate invalidate any
        // candidate touching them.
        mark(pa);
        mark(pb);
        pa = transpose(pa);
        pb = transpose(pb);
        mark(pa);
        mark(pb);
      }
    }
    for (std::size_t i = 0; i < cand_scratch_.size(); ++i) {
      const SwapCandidate& c = cand_scratch_[i];
      if (qubit_marked_[static_cast<std::size_t>(c.a)] == qubit_stamp_ ||
          qubit_marked_[static_cast<std::size_t>(c.b)] == qubit_stamp_) {
        prio_scratch_[i] = swap_priority_delta(
            endpoints_scratch_, dist_, device_.graph, c, config_.fine_priority);
      }
    }
  }

  /// Drops candidates matching `drop` from cand_scratch_/prio_scratch_,
  /// preserving relative order.
  template <typename Pred>
  void prune_candidates(Pred drop) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < cand_scratch_.size(); ++i) {
      if (drop(cand_scratch_[i])) continue;
      cand_scratch_[kept] = cand_scratch_[i];
      prio_scratch_[kept] = prio_scratch_[i];
      if (cost_ != nullptr) bonus_scratch_[kept] = bonus_scratch_[i];
      ++kept;
    }
    cand_scratch_.resize(kept);
    prio_scratch_.resize(kept);
    if (cost_ != nullptr) bonus_scratch_.resize(kept);
  }

  bool swap_step() {
    collect_blocked();
    if (blocked_scratch_.empty()) return false;
    build_candidates(config_.context_aware);
    collect_cf_endpoints();
    prio_scratch_.clear();
    for (const SwapCandidate& cand : cand_scratch_) {
      prio_scratch_.push_back(swap_priority_delta(
          endpoints_scratch_, dist_, device_.graph, cand,
          config_.fine_priority));
    }
    if (cost_ != nullptr) {
      // Bonuses are per-edge constants (state-free by contract), so one
      // fill per pricing round survives every refresh_after_swap.
      bonus_scratch_.clear();
      for (const SwapCandidate& cand : cand_scratch_) {
        bonus_scratch_.push_back(cost_->bonus(cand.a, cand.b));
      }
    }
    bool inserted_any = false;
    while (!cand_scratch_.empty()) {
      const std::size_t best = best_candidate();
      if (prio_scratch_[best].basic <= 0) break;
      const SwapCandidate chosen = cand_scratch_[best];
      insert_swap(chosen);
      inserted_any = true;
      if (config_.context_aware) {
        // The chosen SWAP locked its endpoints; overlapping edges are no
        // longer lock-free this cycle.
        prune_candidates([&](const SwapCandidate& c) {
          return c.a == chosen.a || c.a == chosen.b || c.b == chosen.a ||
                 c.b == chosen.b;
        });
      } else {
        prune_candidates(
            [&](const SwapCandidate& c) { return c == chosen; });
      }
      if (!cand_scratch_.empty()) refresh_after_swap(chosen);
    }
    return inserted_any;
  }

  // -- Deadlock resolution ----------------------------------------------------

  void force_swap() {
    collect_blocked();
    // live_count > 0 and nothing launched with all qubits free implies at
    // least one CF two-qubit gate is blocked by connectivity.
    CODAR_ENSURES(!blocked_scratch_.empty());
    ++consecutive_forced_;
    if (consecutive_forced_ > config_.stagnation_threshold) {
      escape_swap(blocked_scratch_.front());
      return;
    }
    build_candidates(config_.context_aware);
    CODAR_ENSURES(!cand_scratch_.empty());
    // Anti-oscillation: never immediately undo the previous forced SWAP
    // (forcing an H_basic = 0 SWAP and its inverse would ping-pong).
    if (cand_scratch_.size() > 1) {
      std::erase_if(cand_scratch_,
                    [&](const SwapCandidate& c) { return c == last_forced_; });
    }
    collect_cf_endpoints();
    std::size_t best = 0;
    SwapPriority best_priority;
    double best_score = 0.0;
    for (std::size_t i = 0; i < cand_scratch_.size(); ++i) {
      const SwapPriority p =
          swap_priority_delta(endpoints_scratch_, dist_, device_.graph,
                              cand_scratch_[i], config_.fine_priority);
      const double score =
          cost_ == nullptr
              ? 0.0
              : config_.alpha * static_cast<double>(p.basic) +
                    cost_->bonus(cand_scratch_[i].a, cand_scratch_[i].b);
      const bool improves =
          cost_ == nullptr
              ? p > best_priority
              : score > best_score ||
                    (score == best_score && p > best_priority);
      if (i == 0 || improves) {
        best = i;
        best_priority = p;
        best_score = score;
      }
    }
    last_forced_ = cand_scratch_[best];
    insert_swap(cand_scratch_[best]);
    ++stats_.forced_swaps;
  }

  /// Stagnation escape: move the oldest blocked gate one step along a
  /// shortest path — monotone progress, so the router always terminates.
  void escape_swap(int gate_index) {
    const Gate& g = gates_[static_cast<std::size_t>(gate_index)];
    const Qubit pa = pi_.physical(g.qubit(0));
    const Qubit pb = pi_.physical(g.qubit(1));
    Qubit step = -1;
    for (const Qubit nb : device_.graph.neighbors(pa)) {
      if (step < 0 || dist_.distance(nb, pb) < dist_.distance(step, pb)) {
        step = nb;
      }
    }
    CODAR_ENSURES(step >= 0);
    insert_swap(SwapCandidate{std::min(pa, step), std::max(pa, step)});
    last_forced_ = SwapCandidate{};
    ++stats_.forced_swaps;
    ++stats_.escape_swaps;
  }

  // -- Time control -----------------------------------------------------------

  void advance_after_progress() {
    const Duration next = locks_.next_expiry_after(now_);
    if (next > now_) now_ = next;
    // next == now_ happens when only zero-duration barriers launched; the
    // main loop simply runs another iteration at the same time.
  }

  const arch::Device& device_;
  const CodarConfig& config_;
  const arch::DistanceOracle& dist_;  ///< Cached distance backend.
  const SwapCostModel* cost_;  ///< Fidelity-aware scoring, or null (paper).

  std::vector<Gate> gates_;
  std::size_t barriers_;  ///< Barrier fences in the input (stat reporting).
  CommutativeFront front_;
  layout::Layout pi_;
  layout::Layout initial_;
  QubitLockBank locks_;
  Duration now_ = 0;
  ir::Circuit out_;
  RouterStats stats_;

  // Reused scratch buffers, bump-allocated from the per-thread arena — the
  // hot loop allocates nothing after warm-up, and the arena's blocks are
  // recycled wholesale across route() calls.
  common::ArenaVector<int> pass_scratch_;     ///< Front snapshot per launch pass.
  common::ArenaVector<Qubit> phys_scratch_;   ///< Physical operands of one gate.
  common::ArenaVector<int> blocked_scratch_;  ///< Blocked CF gate indices.
  common::ArenaVector<SwapCandidate> cand_scratch_;  ///< Candidate SWAP edges.
  common::ArenaVector<SwapPriority> prio_scratch_;   ///< Cached priorities.
  common::ArenaVector<double> bonus_scratch_;  ///< Per-edge cost bonuses.
  common::ArenaVector<GateEndpoints> endpoints_scratch_;  ///< CF 2q under π.
  common::ArenaVector<std::uint32_t> edge_seen_;  ///< Edge-id dedup stamps.
  std::uint32_t edge_stamp_ = 0;
  common::ArenaVector<std::uint32_t> qubit_marked_;  ///< Re-price marks.
  std::uint32_t qubit_stamp_ = 0;

  SwapCandidate last_forced_{};
  int consecutive_forced_ = 0;
};

}  // namespace

CodarRouter::CodarRouter(const arch::Device& device, CodarConfig config)
    : device_(device), config_(config) {
  CODAR_EXPECTS(device.graph.is_fully_connected());
  CODAR_EXPECTS(config.stagnation_threshold >= 1);
  CODAR_EXPECTS(std::isfinite(config.alpha));
  if (!config.duration_aware) {
    // Duration-blind ablation: the router's clock pretends every gate
    // takes one cycle (SWAP 3), heterogeneous timing included — so the
    // owned device copy drops its duration model entirely.
    device_.durations = arch::DurationMap::uniform();
    device_.calibration.clear_durations();
  }
}

RoutingResult CodarRouter::route(const ir::Circuit& circuit,
                                 const layout::Layout& initial) const {
  CODAR_EXPECTS(ir::is_two_qubit_lowered(circuit));
  CODAR_EXPECTS(circuit.num_qubits() <= device_.graph.num_qubits());
  CODAR_EXPECTS(initial.num_logical() == circuit.num_qubits());
  CODAR_EXPECTS(initial.num_physical() == device_.graph.num_qubits());
  // One arena per thread, recycled between invocations: scratch memory for
  // a batch of circuits is allocated once, however large the device.
  thread_local common::Arena arena;
  arena.reset();
  RoutingRun run(device_, config_, circuit, initial, arena);
  return run.run();
}

RoutingResult CodarRouter::route(const ir::Circuit& circuit) const {
  return route(circuit, layout::Layout(circuit.num_qubits(),
                                       device_.graph.num_qubits()));
}

}  // namespace codar::core

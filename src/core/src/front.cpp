#include "codar/core/front.hpp"

#include <algorithm>

#include "codar/core/commutativity.hpp"

namespace codar::core {

using ir::Gate;
using ir::Qubit;

CommutativeFront::CommutativeFront(std::span<const Gate> gates, int window,
                                   bool use_commutativity)
    : gates_(gates),
      window_cap_(window <= 0 ? gates.size()
                              : static_cast<std::size_t>(window)),
      use_commutativity_(use_commutativity),
      alive_(gates.size(), 1),
      in_window_(gates.size(), 0),
      block_count_(gates.size(), 0),
      live_count_(gates.size()),
      next_alive_(gates.size()),
      prev_alive_(gates.size()) {
  const int n = static_cast<int>(gates.size());

  // Global alive list: 0 <-> 1 <-> ... <-> n-1.
  for (int i = 0; i < n; ++i) {
    prev_alive_[static_cast<std::size_t>(i)] = i - 1;
    next_alive_[static_cast<std::size_t>(i)] = i + 1 < n ? i + 1 : -1;
  }
  first_alive_ = n > 0 ? 0 : -1;

  // Wire lists: one slot per gate operand, appended in program order.
  slot_offset_.resize(gates.size() + 1);
  int num_wires = 0;
  int total_slots = 0;
  for (int i = 0; i < n; ++i) {
    slot_offset_[static_cast<std::size_t>(i)] = total_slots;
    const Gate& g = gates_[static_cast<std::size_t>(i)];
    total_slots += g.num_qubits();
    for (const Qubit q : g.qubits()) num_wires = std::max(num_wires, q + 1);
  }
  slot_offset_[gates.size()] = total_slots;
  wire_links_.resize(static_cast<std::size_t>(total_slots));
  wire_tail_.assign(static_cast<std::size_t>(num_wires), -1);
  for (int i = 0; i < n; ++i) {
    const Gate& g = gates_[static_cast<std::size_t>(i)];
    for (int op = 0; op < g.num_qubits(); ++op) {
      const auto wire = static_cast<std::size_t>(g.qubit(op));
      WireLink& link = wire_links_[slot(i, op)];
      link.prev = wire_tail_[wire];
      if (link.prev >= 0) {
        // Find the predecessor's slot on this wire to hook its next.
        const Gate& h = gates_[static_cast<std::size_t>(link.prev)];
        for (int hop = 0; hop < h.num_qubits(); ++hop) {
          if (h.qubit(hop) == g.qubit(op)) {
            wire_links_[slot(link.prev, hop)].next = i;
            break;
          }
        }
      }
      wire_tail_[wire] = i;
    }
  }

  front_.reserve(std::min(window_cap_, gates.size()));
  window_next_ = first_alive_;
  while (window_size_ < window_cap_ && window_next_ >= 0) admit_next();
}

bool CommutativeFront::blocks(int h, int g) const {
  return !use_commutativity_ ||
         !gates_commute(gates_[static_cast<std::size_t>(h)],
                        gates_[static_cast<std::size_t>(g)]);
}

void CommutativeFront::admit_next() {
  const int gi = window_next_;
  const Gate& g = gates_[static_cast<std::size_t>(gi)];
  // Every earlier alive gate is inside the window (the window is an
  // alive-prefix), so the wire predecessor chains are exactly the gates the
  // rescan definition checks.
  int blockers = 0;
  for (int op = 0; op < g.num_qubits(); ++op) {
    for (int h = wire_links_[slot(gi, op)].prev; h >= 0;
         h = wire_links_[slot(h, wire_slot_of(h, g.qubit(op)))].prev) {
      if (blocks(h, gi)) ++blockers;
    }
  }
  block_count_[static_cast<std::size_t>(gi)] = blockers;
  in_window_[static_cast<std::size_t>(gi)] = 1;
  ++window_size_;
  window_next_ = next_alive_[static_cast<std::size_t>(gi)];
  if (blockers == 0) front_insert(gi);
}

void CommutativeFront::retire(int gate_index) {
  CODAR_EXPECTS(alive(gate_index));
  CODAR_EXPECTS(in_window_[static_cast<std::size_t>(gate_index)] != 0);
  const Gate& g = gates_[static_cast<std::size_t>(gate_index)];
  front_erase(gate_index);

  // Re-evaluate only the pairs this gate participated in: later windowed
  // gates on its wires (a program-order prefix of each wire list, so the
  // walk stops at the first out-of-window gate).
  for (int op = 0; op < g.num_qubits(); ++op) {
    const Qubit wire = g.qubit(op);
    for (int x = wire_links_[slot(gate_index, op)].next;
         x >= 0 && in_window_[static_cast<std::size_t>(x)] != 0;
         x = wire_links_[slot(x, wire_slot_of(x, wire))].next) {
      if (blocks(gate_index, x)) {
        if (--block_count_[static_cast<std::size_t>(x)] == 0) front_insert(x);
      }
    }
  }

  // Unlink from the wire lists ...
  for (int op = 0; op < g.num_qubits(); ++op) {
    const WireLink link = wire_links_[slot(gate_index, op)];
    const Qubit wire = g.qubit(op);
    if (link.prev >= 0) {
      wire_links_[slot(link.prev, wire_slot_of(link.prev, wire))].next =
          link.next;
    }
    if (link.next >= 0) {
      wire_links_[slot(link.next, wire_slot_of(link.next, wire))].prev =
          link.prev;
    } else {
      wire_tail_[static_cast<std::size_t>(wire)] = link.prev;
    }
  }

  // ... and from the global alive list.
  const int prev = prev_alive_[static_cast<std::size_t>(gate_index)];
  const int next = next_alive_[static_cast<std::size_t>(gate_index)];
  if (prev >= 0) {
    next_alive_[static_cast<std::size_t>(prev)] = next;
  } else {
    first_alive_ = next;
  }
  if (next >= 0) prev_alive_[static_cast<std::size_t>(next)] = prev;

  alive_[static_cast<std::size_t>(gate_index)] = 0;
  in_window_[static_cast<std::size_t>(gate_index)] = 0;
  --live_count_;
  --window_size_;

  // Slide the window boundary: admit gates until the window is full again.
  while (window_size_ < window_cap_ && window_next_ >= 0) admit_next();
}

int CommutativeFront::wire_slot_of(int gate_index, Qubit wire) const {
  const Gate& g = gates_[static_cast<std::size_t>(gate_index)];
  for (int op = 0; op < g.num_qubits(); ++op) {
    if (g.qubit(op) == wire) return op;
  }
  CODAR_ENSURES(false);  // gate_index is linked on `wire` by construction
  return -1;
}

void CommutativeFront::front_insert(int gate_index) {
  front_.insert(std::lower_bound(front_.begin(), front_.end(), gate_index),
                gate_index);
}

void CommutativeFront::front_erase(int gate_index) {
  const auto it =
      std::lower_bound(front_.begin(), front_.end(), gate_index);
  CODAR_EXPECTS(it != front_.end() && *it == gate_index);
  front_.erase(it);
}

}  // namespace codar::core

#include "codar/core/verify.hpp"

#include <sstream>

#include "codar/core/commutativity.hpp"

namespace codar::core {

namespace {

using ir::Gate;
using ir::GateKind;
using ir::Qubit;

std::string describe(const Gate& g) { return g.to_string(); }

/// Incremental matcher: maintains the pending original sequence with
/// per-wire occurrence lists and lazy deletion, so that matching each
/// routed gate against the commutative front costs roughly the number of
/// still-alive gates ahead of the match point (near-constant for router
/// outputs, which retire gates close to program order).
class FrontMatcher {
 public:
  explicit FrontMatcher(const ir::Circuit& original) {
    gates_.assign(original.gates().begin(), original.gates().end());
    alive_.assign(gates_.size(), true);
    wire_lists_.resize(static_cast<std::size_t>(original.num_qubits()));
    wire_cursor_.assign(wire_lists_.size(), 0);
    for (std::size_t i = 0; i < gates_.size(); ++i) {
      for (const Qubit q : gates_[i].qubits()) {
        wire_lists_[static_cast<std::size_t>(q)].push_back(i);
      }
    }
  }

  std::size_t remaining() const { return remaining_; }

  const Gate& gate(std::size_t i) const { return gates_[i]; }
  std::size_t first_alive() {
    while (head_ < gates_.size() && !alive_[head_]) ++head_;
    return head_;
  }

  /// Finds the first alive gate equal to `target` that commutes with every
  /// earlier alive gate sharing a wire (i.e. is in the commutative front),
  /// removes it, and returns true.
  bool match_and_remove(const Gate& target) {
    for (std::size_t i = first_alive(); i < gates_.size(); ++i) {
      if (!alive_[i] || !(gates_[i] == target)) continue;
      if (is_front(i)) {
        remove(i);
        return true;
      }
    }
    return false;
  }

 private:
  bool is_front(std::size_t i) {
    for (const Qubit q : gates_[i].qubits()) {
      auto& list = wire_lists_[static_cast<std::size_t>(q)];
      std::size_t& cursor = wire_cursor_[static_cast<std::size_t>(q)];
      while (cursor < list.size() && !alive_[list[cursor]]) ++cursor;
      for (std::size_t k = cursor; k < list.size() && list[k] < i; ++k) {
        if (!alive_[list[k]]) continue;
        if (!gates_commute(gates_[list[k]], gates_[i])) return false;
      }
    }
    return true;
  }

  void remove(std::size_t i) {
    alive_[i] = false;
    --remaining_;
  }

  std::vector<Gate> gates_;
  std::vector<bool> alive_;
  std::vector<std::vector<std::size_t>> wire_lists_;
  std::vector<std::size_t> wire_cursor_;
  std::size_t head_ = 0;
  std::size_t remaining_ = 0;

 public:
  void init_remaining() { remaining_ = gates_.size(); }
};

}  // namespace

VerifyOutcome verify_routing(const ir::Circuit& original,
                             const RoutingResult& result,
                             const arch::CouplingGraph& graph) {
  // 1. Connectivity compliance.
  for (const Gate& g : result.circuit.gates()) {
    if (g.num_qubits() == 2 && g.kind() != GateKind::kBarrier) {
      if (!graph.connected(g.qubit(0), g.qubit(1))) {
        return VerifyOutcome::fail("gate violates coupling constraint: " +
                                   describe(g));
      }
    }
  }

  // 2 + 3. Replay SWAPs, map every non-SWAP gate back to logical operands,
  // and match it against the commutative front of the remaining original
  // sequence.
  layout::Layout layout = result.initial;
  FrontMatcher matcher(original);
  matcher.init_remaining();

  for (const Gate& g : result.circuit.gates()) {
    if (g.kind() == GateKind::kSwap) {
      layout.swap_physical(g.qubit(0), g.qubit(1));
      continue;
    }
    bool unmapped = false;
    const Gate logical_gate = g.remapped([&](Qubit phys) {
      const Qubit lq = layout.logical(phys);
      if (lq < 0) unmapped = true;
      return lq < 0 ? Qubit{0} : lq;
    });
    if (unmapped) {
      return VerifyOutcome::fail(
          "routed gate touches a physical qubit holding no logical qubit: " +
          describe(g));
    }
    if (!matcher.match_and_remove(logical_gate)) {
      return VerifyOutcome::fail(
          "routed gate is not a commutative-front gate of the remaining "
          "original sequence: " +
          describe(logical_gate));
    }
  }

  if (matcher.remaining() != 0) {
    std::ostringstream oss;
    oss << "routed circuit dropped " << matcher.remaining()
        << " original gate(s)";
    return VerifyOutcome::fail(oss.str());
  }

  if (layout != result.final) {
    return VerifyOutcome::fail(
        "final layout does not match the SWAP replay of the routed circuit");
  }
  return VerifyOutcome::ok();
}

}  // namespace codar::core

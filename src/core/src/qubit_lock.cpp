#include "codar/core/qubit_lock.hpp"

#include <algorithm>
#include <functional>

namespace codar::core {

QubitLockBank::QubitLockBank(int num_qubits) {
  CODAR_EXPECTS(num_qubits > 0);
  t_end_.assign(static_cast<std::size_t>(num_qubits), 0);
}

bool QubitLockBank::all_free(std::span<const Qubit> qubits,
                             Duration now) const {
  for (const Qubit q : qubits) {
    if (!is_free(q, now)) return false;
  }
  return true;
}

void QubitLockBank::lock(std::span<const Qubit> qubits, Duration now,
                         Duration duration) {
  CODAR_EXPECTS(duration >= 0);
  for (const Qubit q : qubits) {
    CODAR_EXPECTS(q >= 0 && q < num_qubits());
    // A gate may only be launched on free qubits; re-locking a busy qubit
    // would mean two gates overlap on it.
    CODAR_EXPECTS(t_end_[static_cast<std::size_t>(q)] <= now);
    t_end_[static_cast<std::size_t>(q)] = now + duration;
    heap_.emplace_back(now + duration, q);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
}

Duration QubitLockBank::next_expiry_after(Duration now) {
  CODAR_EXPECTS(now >= last_query_);
  last_query_ = now;
  while (!heap_.empty()) {
    const auto [expiry, q] = heap_.front();
    // Elapsed entries can never be an answer again (queries are monotone);
    // superseded entries (expiry != the qubit's current t_end) are dead
    // because t_end never decreases.
    if (expiry > now && expiry == t_end_[static_cast<std::size_t>(q)]) {
      return expiry;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
  return now;
}

}  // namespace codar::core

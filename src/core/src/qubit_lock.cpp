#include "codar/core/qubit_lock.hpp"

namespace codar::core {

QubitLockBank::QubitLockBank(int num_qubits) {
  CODAR_EXPECTS(num_qubits > 0);
  t_end_.assign(static_cast<std::size_t>(num_qubits), 0);
}

bool QubitLockBank::all_free(std::span<const Qubit> qubits,
                             Duration now) const {
  for (const Qubit q : qubits) {
    if (!is_free(q, now)) return false;
  }
  return true;
}

void QubitLockBank::lock(std::span<const Qubit> qubits, Duration now,
                         Duration duration) {
  CODAR_EXPECTS(duration >= 0);
  for (const Qubit q : qubits) {
    CODAR_EXPECTS(q >= 0 && q < num_qubits());
    // A gate may only be launched on free qubits; re-locking a busy qubit
    // would mean two gates overlap on it.
    CODAR_EXPECTS(t_end_[static_cast<std::size_t>(q)] <= now);
    t_end_[static_cast<std::size_t>(q)] = now + duration;
  }
}

Duration QubitLockBank::next_expiry_after(Duration now) const {
  Duration next = now;
  for (const Duration t : t_end_) {
    if (t > now && (next == now || t < next)) next = t;
  }
  return next;
}

}  // namespace codar::core

#include "codar/core/commutativity.hpp"

#include <algorithm>
#include <optional>

#include "codar/ir/unitary.hpp"

namespace codar::core {

namespace {

using ir::Gate;
using ir::GateKind;
using ir::Qubit;

bool is_y_axis(GateKind kind) {
  return kind == GateKind::kI || kind == GateKind::kY ||
         kind == GateKind::kRY;
}

/// Control/target structure of the controlled 2-qubit kinds.
bool is_controlled_2q(GateKind kind) {
  switch (kind) {
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCH:
    case GateKind::kCRZ:
      return true;
    default:
      return false;
  }
}

/// True when the 1-qubit kind commutes with the *target* action of the
/// controlled kind (e.g. X-family with CX's X target, Y-family with CY).
bool commutes_with_target_of(GateKind one_qubit, GateKind controlled) {
  switch (controlled) {
    case GateKind::kCX:
      return ir::is_x_axis(one_qubit);
    case GateKind::kCY:
      return is_y_axis(one_qubit);
    case GateKind::kCRZ:
      return ir::is_diagonal(one_qubit);
    default:
      return false;  // CH target commutes with nothing in our alphabet
  }
}

/// Symbolic fast path. nullopt = not covered, fall back to matrices.
std::optional<bool> symbolic_commute(const Gate& a, const Gate& b) {
  // Identity gates commute with everything.
  if (a.kind() == GateKind::kI || b.kind() == GateKind::kI) return true;

  // Diagonal gates (Z family, CZ, CU1, CRZ, RZZ) all commute.
  if (ir::is_diagonal(a.kind()) && ir::is_diagonal(b.kind())) return true;

  // 1-qubit vs 1-qubit on the same wire.
  if (a.num_qubits() == 1 && b.num_qubits() == 1) {
    if (a.kind() == b.kind() && a.params().size() == b.params().size()) {
      bool same_params = true;
      for (int i = 0; i < a.num_params(); ++i) {
        if (a.param(i) != b.param(i)) same_params = false;
      }
      if (same_params) return true;  // identical gates
    }
    if (ir::is_x_axis(a.kind()) && ir::is_x_axis(b.kind())) return true;
    if (is_y_axis(a.kind()) && is_y_axis(b.kind())) return true;
    return std::nullopt;
  }

  // 1-qubit vs controlled 2-qubit.
  const auto one_vs_controlled = [](const Gate& single,
                                    const Gate& ctrl) -> std::optional<bool> {
    const Qubit q = single.qubit(0);
    if (q == ctrl.qubit(0)) {  // on the control wire
      return ir::is_diagonal(single.kind());
    }
    // on the target wire
    if (commutes_with_target_of(single.kind(), ctrl.kind())) return true;
    return std::nullopt;
  };
  if (a.num_qubits() == 1 && is_controlled_2q(b.kind()))
    return one_vs_controlled(a, b);
  if (b.num_qubits() == 1 && is_controlled_2q(a.kind()))
    return one_vs_controlled(b, a);

  // Controlled vs controlled: sharing only controls or only targets (of the
  // same target axis) commutes; control-meets-target does not.
  if (is_controlled_2q(a.kind()) && is_controlled_2q(b.kind())) {
    const bool share_control = a.qubit(0) == b.qubit(0);
    const bool share_target = a.qubit(1) == b.qubit(1);
    const bool cross_ab = a.qubit(0) == b.qubit(1);  // a's control = b's target
    const bool cross_ba = a.qubit(1) == b.qubit(0);
    if (share_control && !share_target && !cross_ba) return true;
    if (share_target && !share_control && !cross_ab) {
      // Controlled-U pairs with the same target action commute: every
      // control combination applies U-powers, which commute with
      // themselves (and RZ rotations commute regardless of angle).
      return a.kind() == b.kind();
    }
    if ((cross_ab || cross_ba) && !(share_control || share_target)) {
      // Pure control-meets-target chains (e.g. CX a,b then CX b,c) never
      // commute for X/Y/H targets; diagonal-target CRZ is caught above.
      if (a.kind() != GateKind::kCRZ && b.kind() != GateKind::kCRZ)
        return false;
    }
    return std::nullopt;
  }

  return std::nullopt;
}

}  // namespace

bool gates_commute(const Gate& a, const Gate& b) {
  if (!a.overlaps(b)) return true;
  const bool a_unitary = ir::is_unitary(a.kind());
  const bool b_unitary = ir::is_unitary(b.kind());
  // Barriers are ordering fences and measurements collapse state: neither
  // may move past an overlapping gate.
  if (!a_unitary || !b_unitary) return false;
  if (const auto fast = symbolic_commute(a, b)) return *fast;
  return ir::unitaries_commute(a, b);
}

std::vector<std::size_t> commutative_front(
    const std::vector<ir::Gate>& sequence, const std::vector<int>& pending,
    int window, bool use_commutativity) {
  std::vector<std::size_t> front;
  const std::size_t limit =
      window <= 0 ? pending.size()
                  : std::min(pending.size(), static_cast<std::size_t>(window));
  // wire_gates[q] = positions (into pending) of already-scanned gates on q.
  // Scanning from the head means every earlier pending gate sharing a wire
  // with gate k has already been recorded.
  std::vector<std::vector<std::size_t>> wire_gates;
  for (std::size_t k = 0; k < limit; ++k) {
    const int gate_idx = pending[k];
    CODAR_EXPECTS(gate_idx >= 0 &&
                  static_cast<std::size_t>(gate_idx) < sequence.size());
    const Gate& g = sequence[static_cast<std::size_t>(gate_idx)];
    bool is_front = true;
    for (const Qubit q : g.qubits()) {
      const auto wire = static_cast<std::size_t>(q);
      if (wire >= wire_gates.size()) wire_gates.resize(wire + 1);
      for (const std::size_t earlier : wire_gates[wire]) {
        const Gate& h = sequence[static_cast<std::size_t>(pending[earlier])];
        if (!use_commutativity || !gates_commute(h, g)) {
          is_front = false;
          break;
        }
      }
      if (!is_front) break;
    }
    if (is_front) front.push_back(k);
    for (const Qubit q : g.qubits()) {
      const auto wire = static_cast<std::size_t>(q);
      // The check loop may have bailed out before sizing every wire.
      if (wire >= wire_gates.size()) wire_gates.resize(wire + 1);
      wire_gates[wire].push_back(k);
    }
  }
  return front;
}

std::vector<std::size_t> commutative_front(const ir::Circuit& circuit,
                                           int window,
                                           bool use_commutativity) {
  std::vector<ir::Gate> sequence(circuit.gates().begin(),
                                 circuit.gates().end());
  std::vector<int> pending(circuit.size());
  for (std::size_t i = 0; i < pending.size(); ++i)
    pending[i] = static_cast<int>(i);
  return commutative_front(sequence, pending, window, use_commutativity);
}

}  // namespace codar::core

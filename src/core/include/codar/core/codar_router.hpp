#pragma once

// The CODAR remapper (paper §IV-C, Fig. 4): an event-driven loop that, per
// quantum clock cycle,
//   1. extracts the commutative front (CF) set of the pending sequence,
//   2. launches every CF gate that is lock-free and coupling-compliant,
//   3. for the still-blocked CF two-qubit gates, builds the candidate SWAP
//      set from lock-free edges adjacent to their physical qubits and
//      greedily inserts the highest-⟨H_basic, H_fine⟩ SWAPs with positive
//      basic priority,
// resolving deadlocks by forcing the best SWAP (with an anti-oscillation
// guard and a shortest-path stagnation escape; see DESIGN.md §3.3), and
// then jumping time to the next lock expiry.

#include <memory>

#include "codar/arch/device.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/core/swap_cost.hpp"
#include "codar/layout/layout.hpp"

namespace codar::core {

/// Feature toggles and tuning knobs. The defaults are the full CODAR
/// algorithm; the `*_aware` switches exist for the paper's motivating
/// comparisons and our ablation benches.
struct CodarConfig {
  /// Context sensitivity: restrict SWAP candidates to lock-free edges and
  /// launch order to lock-free gates. Off = the router ignores qubit
  /// occupancy when *choosing* SWAPs (timing stays correct).
  bool context_aware = true;
  /// Duration awareness: locks advance by real gate durations. Off = the
  /// router's internal clock pretends every gate takes one cycle (SWAP 3).
  bool duration_aware = true;
  /// CF look-ahead: off = plain DAG front layer instead of Definition 1.
  bool commutativity_aware = true;
  /// Lattice tie-breaking H_fine. Off = basic priority only.
  bool fine_priority = true;
  /// CF scan cap (gates); <= 0 means unbounded.
  int front_window = 150;
  /// Consecutive forced SWAPs (no launch in between) before switching to
  /// the shortest-path escape that guarantees progress.
  int stagnation_threshold = 2;
  /// Optional fidelity-aware scoring hook (the codar-fid pass). When set,
  /// candidates are picked by alpha * H_basic + swap_cost->bonus(a, b),
  /// tie-broken by the paper's ⟨H_basic, H_fine⟩; when null the router
  /// runs the unmodified paper heuristic — the two configurations are
  /// byte-identical whenever every bonus is zero. See core/swap_cost.hpp.
  std::shared_ptr<const SwapCostModel> swap_cost;
  /// Weight of the H_basic distance term under swap_cost scoring. Ignored
  /// when swap_cost is null.
  double alpha = 1.0;
};

/// SWAP-based heuristic remapper, duration- and context-aware.
class CodarRouter {
 public:
  /// The device graph must be connected (otherwise some two-qubit gates
  /// could never be routed).
  explicit CodarRouter(const arch::Device& device, CodarConfig config = {});

  const CodarConfig& config() const { return config_; }

  /// Routes `circuit` starting from the given initial layout. The circuit
  /// must be lowered to <=2-qubit gates and fit the device
  /// (used qubits <= physical qubits).
  RoutingResult route(const ir::Circuit& circuit,
                      const layout::Layout& initial) const;

  /// Routes from the identity layout π(q) = q.
  RoutingResult route(const ir::Circuit& circuit) const;

 private:
  /// Copied: the router owns its device model. Every lock duration is
  /// resolved through Device::duration(), so per-edge/per-qubit
  /// calibration reaches the router's clock. For the duration-blind
  /// ablation the copy's durations are replaced with the uniform profile
  /// (and its duration calibration dropped) at construction.
  arch::Device device_;
  CodarConfig config_;
};

}  // namespace codar::core

#pragma once

// The scoring seam for fidelity-aware SWAP selection. The CODAR router
// optionally consults a SwapCostModel while pricing candidate SWAPs: the
// model contributes a per-edge *bonus* (higher = better edge) that is
// mixed with the distance heuristic as
//
//   score(swap) = alpha * H_basic(swap) + bonus(swap.a, swap.b)
//
// and candidates are compared by ⟨score, H_basic, H_fine⟩, so equal-score
// candidates fall back to exactly the paper ordering. The voluntary
// insertion gate stays on H_basic > 0 (a SWAP must still shorten total
// distance to be worth inserting), which preserves the router's
// termination argument unchanged.
//
// The interface lives in core so the router needs no dependency on the
// cost subsystem; the production implementation is cost::SwapCost
// (calibrated log-fidelity + decoherence, see codar/cost/swap_cost.hpp).

#include "codar/ir/gate.hpp"

namespace codar::core {

/// Per-edge SWAP scoring hook. Implementations must be deterministic and
/// state-free: bonus() depends only on the edge (a, b), never on routing
/// progress — the router caches bonuses per candidate and reuses them
/// across re-pricing rounds.
class SwapCostModel {
 public:
  SwapCostModel() = default;
  SwapCostModel(const SwapCostModel&) = delete;
  SwapCostModel& operator=(const SwapCostModel&) = delete;
  SwapCostModel(SwapCostModel&&) = delete;
  SwapCostModel& operator=(SwapCostModel&&) = delete;
  virtual ~SwapCostModel() = default;

  /// Score bonus for swapping across coupler (a, b), in units of H_basic
  /// distance steps. Typically <= 0 (a SWAP always costs fidelity); only
  /// differences between edges matter. Must be symmetric in (a, b).
  virtual double bonus(ir::Qubit a, ir::Qubit b) const = 0;
};

}  // namespace codar::core

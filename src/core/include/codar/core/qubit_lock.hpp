#pragma once

// Qubit locks (paper §IV-A): one t_end per physical qubit. A qubit is busy
// until its lock expires; launching a gate of duration τ at time t sets the
// lock of every operand to t + τ. The lock bank is how CODAR perceives both
// program context (which qubits the past gates still occupy) and gate
// duration differences (shorter gates free their qubits earlier).

#include <span>
#include <vector>

#include "codar/arch/durations.hpp"
#include "codar/ir/gate.hpp"

namespace codar::core {

using arch::Duration;
using ir::Qubit;

/// Bank of per-physical-qubit locks t_end, all starting at 0.
class QubitLockBank {
 public:
  explicit QubitLockBank(int num_qubits);

  int num_qubits() const { return static_cast<int>(t_end_.size()); }

  /// The time until which qubit q is busy.
  Duration t_end(Qubit q) const {
    CODAR_EXPECTS(q >= 0 && q < num_qubits());
    return t_end_[static_cast<std::size_t>(q)];
  }

  /// True when qubit q is free at time `now` (t_end <= now).
  bool is_free(Qubit q, Duration now) const { return t_end(q) <= now; }

  /// True when every listed qubit is free at `now`.
  bool all_free(std::span<const Qubit> qubits, Duration now) const;

  /// Occupies every listed qubit until now + duration.
  void lock(std::span<const Qubit> qubits, Duration now, Duration duration);

  /// Earliest lock expiry strictly greater than `now`; returns `now` when
  /// no qubit is busy beyond `now`.
  Duration next_expiry_after(Duration now) const;

 private:
  std::vector<Duration> t_end_;
};

}  // namespace codar::core

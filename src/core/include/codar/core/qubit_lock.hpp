#pragma once

// Qubit locks (paper §IV-A): one t_end per physical qubit. A qubit is busy
// until its lock expires; launching a gate of duration τ at time t sets the
// lock of every operand to t + τ. The lock bank is how CODAR perceives both
// program context (which qubits the past gates still occupy) and gate
// duration differences (shorter gates free their qubits earlier).
//
// Time advance is event-driven: every lock() pushes its expiry onto a
// lazy-deletion min-heap, and next_expiry_after() pops superseded or
// elapsed entries until the heap top is the earliest live expiry — O(log Q)
// amortized instead of the former O(Q) scan over every qubit. Lazy deletion
// works because a qubit's t_end never decreases (re-locking requires the
// old lock to have expired), so an entry that no longer matches t_end[q] is
// dead forever.

#include <span>
#include <utility>
#include <vector>

#include "codar/arch/durations.hpp"
#include "codar/ir/gate.hpp"

namespace codar::core {

using arch::Duration;
using ir::Qubit;

/// Bank of per-physical-qubit locks t_end, all starting at 0.
class QubitLockBank {
 public:
  explicit QubitLockBank(int num_qubits);

  int num_qubits() const { return static_cast<int>(t_end_.size()); }

  /// The time until which qubit q is busy.
  Duration t_end(Qubit q) const {
    CODAR_EXPECTS(q >= 0 && q < num_qubits());
    return t_end_[static_cast<std::size_t>(q)];
  }

  /// True when qubit q is free at time `now` (t_end <= now).
  bool is_free(Qubit q, Duration now) const { return t_end(q) <= now; }

  /// True when every listed qubit is free at `now`.
  bool all_free(std::span<const Qubit> qubits, Duration now) const;

  /// Occupies every listed qubit until now + duration.
  void lock(std::span<const Qubit> qubits, Duration now, Duration duration);

  /// Earliest lock expiry strictly greater than `now`; returns `now` when
  /// no qubit is busy beyond `now`. Queries must be monotone non-decreasing
  /// (the router's clock only moves forward); elapsed heap entries are
  /// discarded as they surface, so each lock costs O(log Q) amortized over
  /// its lifetime.
  Duration next_expiry_after(Duration now);

 private:
  /// Heap entry: (expiry, qubit), min-ordered by expiry.
  using Expiry = std::pair<Duration, Qubit>;

  std::vector<Duration> t_end_;
  std::vector<Expiry> heap_;    ///< Lazy-deletion min-heap of lock expiries.
  Duration last_query_ = 0;     ///< Enforces the monotone-query contract.
};

}  // namespace codar::core

#pragma once

// Routing verifier: checks that a RoutingResult is a faithful, hardware-
// compliant transformation of its source circuit. Used by tests and by the
// benchmark harness as a safety net (a router that wins by dropping gates
// is not a router).

#include <string>

#include "codar/arch/coupling_graph.hpp"
#include "codar/core/routing_result.hpp"

namespace codar::core {

/// Outcome of verification; `ok()` or a human-readable failure reason.
struct VerifyOutcome {
  bool valid = true;
  std::string reason;

  static VerifyOutcome ok() { return {}; }
  static VerifyOutcome fail(std::string why) {
    return VerifyOutcome{false, std::move(why)};
  }
};

/// Verifies three properties:
///  1. connectivity — every 2-qubit gate of the routed circuit (including
///     SWAPs) acts on an edge of the coupling graph;
///  2. layout consistency — replaying the routed circuit's SWAPs from the
///     initial layout yields exactly `result.final`;
///  3. semantic faithfulness — stripping SWAPs and mapping physical
///     operands back to logical ones yields a sequence obtainable from the
///     original circuit by repeatedly emitting commutative-front gates
///     (hence equal as a unitary, gate for gate).
VerifyOutcome verify_routing(const ir::Circuit& original,
                             const RoutingResult& result,
                             const arch::CouplingGraph& graph);

}  // namespace codar::core

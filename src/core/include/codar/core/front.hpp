#pragma once

// Incrementally-maintained commutative front (paper §IV-B, Definition 1).
//
// The CF set over a pending gate sequence is: gate g is front iff it lies
// within the first `window` alive gates AND every earlier alive gate h
// sharing a wire with g commutes with it (with commutativity awareness off,
// iff no earlier alive gate shares a wire — the plain DAG front). The
// original router recomputed this from scratch with a full window rescan
// after every retirement, making the hot loop O(window · wire-depth)
// commute checks *per iteration*. This structure maintains the identical
// set incrementally: each (blocker, blockee) pair is examined O(1) times
// per retirement event instead of once per rescan.
//
// Representation:
//  * a doubly-linked list over alive gates in program order (the window is
//    always the first min(window, live) alive gates, so the boundary is a
//    single cursor into this list);
//  * one doubly-linked list per wire over the alive gates acting on it
//    (gates link in per-operand slots, so unlinking a retired gate is
//    O(num_operands));
//  * per windowed gate, block_count = number of earlier alive gates that
//    block it; the gate is front iff block_count == 0.
//
// retire(g) unlinks g, walks forward along each of g's wire lists over the
// still-windowed gates re-evaluating only the pairs g participated in, and
// admits gates past the old window boundary (computing their block_count
// against earlier alive wire predecessors — all of which are in the window,
// because the window is an alive-prefix). Equivalence with the rescan
// definition is locked in by randomized differential tests against
// commutative_front() and the preserved oracle router.

#include <span>
#include <vector>

#include "codar/ir/gate.hpp"

namespace codar::core {

/// The CF set of a fixed gate sequence under incremental retirement.
class CommutativeFront {
 public:
  /// Builds the front over `gates` (all initially alive, program order).
  /// The span must outlive this object. `window <= 0` means unbounded;
  /// `use_commutativity = false` degenerates to the plain DAG front layer.
  CommutativeFront(std::span<const ir::Gate> gates, int window,
                   bool use_commutativity);

  /// Current front: alive gate indices in ascending program order. The span
  /// is invalidated by retire().
  std::span<const int> front() const { return front_; }

  /// Number of alive (un-retired) gates.
  std::size_t live_count() const { return live_count_; }

  bool alive(int gate_index) const {
    return alive_[static_cast<std::size_t>(gate_index)] != 0;
  }

  /// Retires a gate currently in the front, updating the front in
  /// O(deg + admissions) pair re-evaluations.
  void retire(int gate_index);

 private:
  /// Per-operand wire-list links of one gate slot.
  struct WireLink {
    int prev = -1;  ///< Previous alive gate on this wire (gate index).
    int next = -1;  ///< Next alive gate on this wire (gate index).
  };

  std::size_t slot(int gate_index, int operand) const {
    return static_cast<std::size_t>(slot_offset_[
               static_cast<std::size_t>(gate_index)] + operand);
  }

  /// True when earlier gate h blocks later gate g (they share >= 1 wire by
  /// construction of the wire lists).
  bool blocks(int h, int g) const;

  /// The operand position of `wire` within the gate (the gate acts on it).
  int wire_slot_of(int gate_index, ir::Qubit wire) const;

  /// Admits the gate at the window cursor: computes its block_count against
  /// earlier alive gates (walking its wire predecessor chains) and advances
  /// the cursor.
  void admit_next();

  void front_insert(int gate_index);
  void front_erase(int gate_index);

  std::span<const ir::Gate> gates_;
  std::size_t window_cap_;  ///< Max gates in the window (SIZE_MAX = unbounded).
  bool use_commutativity_;

  std::vector<char> alive_;
  std::vector<char> in_window_;
  std::vector<int> block_count_;
  std::size_t live_count_ = 0;
  std::size_t window_size_ = 0;

  // Global alive list (program order).
  std::vector<int> next_alive_;
  std::vector<int> prev_alive_;
  int first_alive_ = -1;
  int window_next_ = -1;  ///< First alive gate beyond the window; -1 = none.

  // Per-wire alive lists, flattened per gate operand slot.
  std::vector<int> slot_offset_;       ///< gate -> first slot index.
  std::vector<WireLink> wire_links_;   ///< one entry per (gate, operand).
  std::vector<int> wire_tail_;         ///< wire -> last alive gate on it.

  std::vector<int> front_;  ///< Sorted gate indices with block_count == 0.
};

}  // namespace codar::core

#pragma once

// Common result type for qubit-mapping passes (CODAR and the SABRE
// baseline both produce one), plus per-run statistics.

#include <cstdint>

#include "codar/arch/durations.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/layout/layout.hpp"

namespace codar::core {

/// Counters a router reports alongside its output circuit.
struct RouterStats {
  std::size_t swaps_inserted = 0;
  /// Real (non-barrier) input gates emitted. Barriers are ordering fences,
  /// not operations — counting them here skewed fidelity/ESP
  /// post-processing, so they are reported separately below.
  std::size_t gates_routed = 0;
  std::size_t barriers = 0;         ///< Barrier fences carried through.
  /// Distinct simulated timestamps the event loop visited (CODAR only).
  /// NOT the number of loop iterations: launch/swap/forced-swap rounds at
  /// one timestamp count once.
  std::size_t cycles_simulated = 0;
  std::size_t forced_swaps = 0;     ///< Deadlock-resolution SWAPs (CODAR only).
  std::size_t escape_swaps = 0;     ///< Stagnation shortest-path SWAPs.
  arch::Duration router_makespan = 0;  ///< The router's own timeline length.
};

/// Output of a routing pass: a hardware-compliant circuit over the device's
/// physical register, together with the layouts that relate it back to the
/// logical input circuit.
struct RoutingResult {
  ir::Circuit circuit;     ///< Physical circuit (SWAPs included).
  layout::Layout initial;  ///< π at circuit start.
  layout::Layout final;    ///< π after all inserted SWAPs.
  RouterStats stats;
};

}  // namespace codar::core

#pragma once

// Commutativity detection (paper §IV-B). Two ingredients:
//
//  * `gates_commute` — a fast symbolic rule table (disjoint supports,
//    diagonal families, CX control/target structure, ...) with an exact
//    unitary-matrix fallback for pairs the rules don't cover. The rules are
//    cross-validated against the matrix ground truth by property tests.
//
//  * `commutative_front` — the CF set of a pending gate sequence: gate g_k
//    is a commutative-forward gate iff it commutes with every earlier
//    pending gate (Definition 1). Only pairs sharing a qubit need checking;
//    a scan window caps the cost on very long circuits.

#include <vector>

#include "codar/ir/circuit.hpp"

namespace codar::core {

/// True when the two gates commute (AB = BA). Measure and Barrier commute
/// only with gates on disjoint qubits (conservative: a barrier is an
/// explicit ordering fence; a measurement collapses its qubit).
bool gates_commute(const ir::Gate& a, const ir::Gate& b);

/// Computes the CF subset of `sequence[pending[0..]]`, scanning at most
/// `window` leading pending gates (gates beyond the window are
/// conservatively excluded). Returns positions *within the pending vector*
/// in ascending order. `window <= 0` means unbounded.
///
/// With `use_commutativity = false` this degenerates to the plain DAG front
/// layer (first pending gate on each wire), the paper's ablation baseline.
std::vector<std::size_t> commutative_front(
    const std::vector<ir::Gate>& sequence, const std::vector<int>& pending,
    int window = 256, bool use_commutativity = true);

/// Convenience overload over a whole circuit (all gates pending).
std::vector<std::size_t> commutative_front(const ir::Circuit& circuit,
                                           int window = 0,
                                           bool use_commutativity = true);

}  // namespace codar::core

#pragma once

// The CODAR heuristic cost function Heuristic(g_swap, M, π) = ⟨H_basic,
// H_fine⟩ (paper §IV-D). H_basic measures how much a candidate SWAP
// shortens the total coupling-graph distance of the CF set's two-qubit
// gates (Eq. 1); H_fine breaks ties on 2-D lattices by preferring mappings
// whose horizontal and vertical distances are balanced, which preserves
// more shortest routing paths (Eq. 2).
//
// Distance terms resolve through the graph's DistanceOracle; the hot-path
// overloads take the oracle directly so the router can cache one reference
// instead of re-resolving it per candidate.

#include <cstdint>
#include <limits>
#include <span>
#include <utility>

#include "codar/arch/coupling_graph.hpp"
#include "codar/arch/distance_oracle.hpp"

namespace codar::core {

using ir::Qubit;

/// A candidate SWAP: an edge of the coupling graph, physical qubits.
struct SwapCandidate {
  Qubit a = -1;
  Qubit b = -1;

  friend bool operator==(const SwapCandidate&, const SwapCandidate&) = default;
};

/// Physical endpoints of one two-qubit CF gate under the current π.
using GateEndpoints = std::pair<Qubit, Qubit>;

/// a + b clamped to the int64 range instead of wrapping. H_basic sums
/// distance terms over the whole CF set, and disconnected devices
/// contribute kInfDistance-sized terms — saturation keeps the accumulator
/// ordered (and defined) no matter how many such terms pile up.
constexpr std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  if (b > 0 && a > kMax - b) return kMax;
  if (b < 0 && a < kMin - b) return kMin;
  return a + b;
}

/// Lexicographic priority ⟨H_basic, H_fine⟩: basic compared first, fine
/// only on ties.
struct SwapPriority {
  std::int64_t basic = 0;
  std::int64_t fine = 0;

  friend bool operator==(const SwapPriority&, const SwapPriority&) = default;
  friend auto operator<=>(const SwapPriority& lhs, const SwapPriority& rhs) {
    if (lhs.basic != rhs.basic) return lhs.basic <=> rhs.basic;
    return lhs.fine <=> rhs.fine;
  }
};

/// H_basic (Eq. 1): Σ_g [ D(π(g)) − D(π∘swap(g)) ] over the CF two-qubit
/// gates (saturating). Positive = the SWAP brings gates closer overall.
std::int64_t h_basic(std::span<const GateEndpoints> cf_gates,
                     const arch::DistanceOracle& dist, SwapCandidate swap);
std::int64_t h_basic(std::span<const GateEndpoints> cf_gates,
                     const arch::CouplingGraph& graph, SwapCandidate swap);

/// H_fine (Eq. 2): −Σ_g |VD − HD| under π∘swap, on devices with lattice
/// coordinates; 0 on devices without coordinates.
std::int64_t h_fine(std::span<const GateEndpoints> cf_gates,
                    const arch::CouplingGraph& graph, SwapCandidate swap);

/// Full priority; `use_fine = false` pins H_fine to 0 (ablation).
SwapPriority swap_priority(std::span<const GateEndpoints> cf_gates,
                           const arch::CouplingGraph& graph,
                           SwapCandidate swap, bool use_fine = true);

/// H_fine relative to the current mapping: only gates the candidate moves
/// contribute, i.e. h_fine(swap) minus the candidate-independent
/// Σ −|VD − HD| over unaffected gates. Dropping that shared base term does
/// not change any comparison between candidates evaluated under the same
/// mapping — which is all the router uses priorities for — but it lets the
/// hot loop skip candidates whose neighborhood a previous SWAP didn't
/// touch.
std::int64_t h_fine_delta(std::span<const GateEndpoints> cf_gates,
                          const arch::CouplingGraph& graph,
                          SwapCandidate swap);

/// ⟨H_basic, H_fine − base⟩: ordering-equivalent to swap_priority among
/// candidates under one mapping (see h_fine_delta). The oracle overload is
/// the router's hot path; the graph overload resolves graph.oracle().
SwapPriority swap_priority_delta(std::span<const GateEndpoints> cf_gates,
                                 const arch::DistanceOracle& dist,
                                 const arch::CouplingGraph& graph,
                                 SwapCandidate swap, bool use_fine = true);
SwapPriority swap_priority_delta(std::span<const GateEndpoints> cf_gates,
                                 const arch::CouplingGraph& graph,
                                 SwapCandidate swap, bool use_fine = true);

}  // namespace codar::core

// The built-in device catalog as DeviceRegistry entries: the paper's four
// evaluation architectures (plus the unit-test bow-tie) with the aliases
// people actually type, the generic lattice generators, the extra
// architectures, and the `file:` JSON device loader. Moved here from
// cli/device_registry.cpp so every front end shares one catalog.

#include <charconv>
#include <string>

#include "builtins.hpp"
#include "codar/arch/device_json.hpp"
#include "codar/arch/extra_devices.hpp"

namespace codar::pipeline {

namespace {

int parse_param(const std::string& spec, const std::string& text) {
  int n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  if (ec != std::errc() || ptr != text.data() + text.size() || n <= 0) {
    throw UsageError("bad device parameter in '" + spec + "'");
  }
  return n;
}

/// Wraps a fixed preset factory into a registry entry factory.
DeviceEntry preset(std::string name, std::string description,
                   std::vector<std::string> aliases,
                   arch::Device (*factory)()) {
  DeviceEntry entry;
  entry.name = name;
  entry.spec = std::move(name);
  entry.description = std::move(description);
  entry.aliases = std::move(aliases);
  entry.make = [factory](const std::string&, const std::string&) {
    return factory();
  };
  return entry;
}

/// Wraps a one-int-parameter generator into a registry entry factory.
DeviceEntry generator(std::string name, std::string spec,
                      std::string description,
                      arch::Device (*factory)(const std::string& full_spec,
                                              int param)) {
  DeviceEntry entry;
  entry.name = std::move(name);
  entry.spec = std::move(spec);
  entry.description = std::move(description);
  entry.takes_arg = true;
  entry.make = [factory](const std::string& full_spec,
                         const std::string& arg) {
    return factory(full_spec, parse_param(full_spec, arg));
  };
  return entry;
}

}  // namespace

namespace detail {

void register_builtin_devices(DeviceRegistry& registry) {
  registry.add(preset("q16", "IBM Q16 (2x8 lattice, 16 qubits)",
                      {"ibm_q16"}, arch::ibm_q16));
  registry.add(preset("tokyo",
                      "IBM Q20 Tokyo (4x5 lattice + diagonals, 20 qubits)",
                      {"q20", "ibm_q20_tokyo"}, arch::ibm_q20_tokyo));
  registry.add(preset("enfield", "Enfield 6x6 square lattice (36 qubits)",
                      {"6x6", "enfield_6x6"}, arch::enfield_6x6));
  registry.add(preset("sycamore",
                      "Google Q54 Sycamore diamond lattice (54 qubits)",
                      {"q54", "google_sycamore54"},
                      arch::google_sycamore54));
  registry.add(preset("yorktown", "IBM Q5 bow-tie (5 qubits, unit tests)",
                      {"q5", "ibm_q5_yorktown"}, arch::ibm_q5_yorktown));
  // The reference large device: big enough (2500 qubits) that the kAuto
  // policy picks the on-demand distance oracle, and the scaling benchmark
  // exercises it by name.
  registry.add(preset("grid-50x50",
                      "50 x 50 square lattice (2500 qubits, large-device "
                      "reference)",
                      {"grid50", "grid50x50"},
                      [] { return arch::grid(50, 50); }));

  {
    DeviceEntry grid;
    grid.name = "grid";
    grid.spec = "grid:RxC";
    grid.description = "R x C square lattice";
    grid.takes_arg = true;
    grid.make = [](const std::string& spec, const std::string& arg) {
      const std::size_t x = arg.find('x');
      if (x == std::string::npos || x == 0 || x + 1 >= arg.size()) {
        throw UsageError("grid expects grid:RxC, got '" + spec + "'");
      }
      return arch::grid(parse_param(spec, arg.substr(0, x)),
                        parse_param(spec, arg.substr(x + 1)));
    };
    registry.add(std::move(grid));
  }
  registry.add(generator(
      "linear", "linear:N", "path graph on N qubits",
      [](const std::string&, int n) { return arch::linear(n); }));
  registry.add(generator(
      "ring", "ring:N", "cycle graph on N qubits",
      [](const std::string&, int n) { return arch::ring(n); }));
  registry.add(generator(
      "heavyhex", "heavyhex:D", "IBM heavy-hex lattice, odd distance D >= 3",
      [](const std::string&, int d) {
        if (d < 3 || d % 2 == 0) {
          throw UsageError("heavyhex distance must be odd and >= 3");
        }
        return arch::heavy_hex(d);
      }));
  registry.add(generator(
      "octagons", "octagons:N", "Rigetti Aspen chain of N fused octagons",
      [](const std::string&, int n) { return arch::rigetti_octagons(n); }));
  registry.add(generator(
      "iontrap", "iontrap:N", "trapped-ion all-to-all over N qubits",
      [](const std::string&, int n) {
        return arch::ion_trap_all_to_all(n);
      }));

  {
    DeviceEntry file;
    file.name = "file";
    file.spec = "file:PATH.json";
    file.description =
        "JSON device description (graph, durations, fidelities, "
        "calibration; see README \"Device files\")";
    file.takes_arg = true;
    file.local_only = true;  // serve requests must send inline objects

    file.make = [](const std::string&, const std::string& arg) {
      return arch::load_device_file(arg);
    };
    registry.add(std::move(file));
  }
}

}  // namespace detail

}  // namespace codar::pipeline

// The three built-in initial-mapping strategies as MappingPass adapters:
// identity, the interaction-graph greedy placement (src/layout) and
// SABRE's reverse-traversal refinement (the paper's evaluation protocol).
// The SABRE strategy owns the seed / rounds knobs, so --seed and
// --mapping-rounds parse through its registry hook.

#include <memory>
#include <sstream>

#include "builtins.hpp"
#include "codar/layout/initial_mapping.hpp"
#include "codar/sabre/sabre_router.hpp"

namespace codar::pipeline {

namespace {

class IdentityMapping final : public MappingPass {
 public:
  std::string_view name() const override { return "identity"; }

  layout::Layout choose(const ir::Circuit& circuit,
                        const arch::Device& device) const override {
    return layout::Layout(circuit.num_qubits(), device.graph.num_qubits());
  }

  std::string describe_config() const override { return "pi(q) = q"; }
};

class GreedyMapping final : public MappingPass {
 public:
  std::string_view name() const override { return "greedy"; }

  layout::Layout choose(const ir::Circuit& circuit,
                        const arch::Device& device) const override {
    return layout::greedy_interaction_layout(circuit, device.graph);
  }

  std::string describe_config() const override {
    return "interaction-graph greedy placement (deterministic)";
  }
};

class SabreMapping final : public MappingPass {
 public:
  explicit SabreMapping(const RoutingSpec& spec)
      : rounds_(spec.mapping_rounds), seed_(spec.seed) {}

  std::string_view name() const override { return "sabre"; }

  layout::Layout choose(const ir::Circuit& circuit,
                        const arch::Device& device) const override {
    return sabre::SabreRouter(device).initial_mapping(circuit, rounds_,
                                                      seed_);
  }

  std::string describe_config() const override {
    std::ostringstream out;
    out << "rounds=" << rounds_ << " seed=" << seed_;
    return out.str();
  }

 private:
  int rounds_;
  std::uint64_t seed_;
};

/// The reverse-traversal knobs (previously inlined in parse_routing_flag).
bool parse_sabre_mapping_flag(RoutingSpec& spec, const std::string& flag,
                              const FlagValue& value) {
  if (flag == "--seed") {
    spec.seed = static_cast<std::uint64_t>(knob_int(flag, value()));
  } else if (flag == "--mapping-rounds") {
    spec.mapping_rounds = static_cast<int>(knob_int(flag, value()));
    if (spec.mapping_rounds < 0) {
      throw UsageError("--mapping-rounds must be >= 0");
    }
  } else {
    return false;
  }
  return true;
}

}  // namespace

namespace detail {

void register_builtin_mappings(MappingRegistry& registry) {
  registry.add({"identity",
                "pi(q) = q (no placement)",
                [](const RoutingSpec&) {
                  return std::unique_ptr<MappingPass>(new IdentityMapping());
                },
                nullptr});
  registry.add({"greedy",
                "interaction-graph greedy placement, deterministic",
                [](const RoutingSpec&) {
                  return std::unique_ptr<MappingPass>(new GreedyMapping());
                },
                nullptr});
  registry.add({"sabre",
                "SABRE reverse-traversal refinement (the paper's protocol)",
                [](const RoutingSpec& s) {
                  return std::unique_ptr<MappingPass>(new SabreMapping(s));
                },
                parse_sabre_mapping_flag});
}

}  // namespace detail

}  // namespace codar::pipeline

// The three built-in routing passes as RoutingPass adapters: CODAR
// (src/core), SABRE (src/sabre) and the layered A* baseline (src/astar).
// Each registers itself with a name, a one-line description and — where
// it has CLI-visible knobs — a flag-parsing hook, so the CLI/serve layers
// never name these classes.

#include <memory>
#include <sstream>

#include "builtins.hpp"
#include "codar/astar/astar_router.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/sabre/sabre_router.hpp"

namespace codar::pipeline {

namespace {

const char* on_off(bool b) { return b ? "on" : "off"; }

class CodarPass final : public RoutingPass {
 public:
  CodarPass(const arch::Device& device, const RoutingSpec& spec)
      : router_(device, spec.codar) {}

  std::string_view name() const override { return "codar"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const core::CodarConfig& c = router_.config();
    std::ostringstream out;
    out << "context=" << on_off(c.context_aware)
        << " duration=" << on_off(c.duration_aware)
        << " commutativity=" << on_off(c.commutativity_aware)
        << " fine-priority=" << on_off(c.fine_priority)
        << " window=" << c.front_window
        << " stagnation=" << c.stagnation_threshold;
    return out.str();
  }

 private:
  core::CodarRouter router_;
};

class SabrePass final : public RoutingPass {
 public:
  SabrePass(const arch::Device& device, const RoutingSpec&)
      : router_(device) {}

  std::string_view name() const override { return "sabre"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const sabre::SabreConfig& c = router_.config();
    std::ostringstream out;
    out << "extended-weight=" << c.extended_weight
        << " extended-set=" << c.extended_set_size
        << " decay-delta=" << c.decay_delta
        << " decay-reset=" << c.decay_reset_interval
        << " stagnation=" << c.stagnation_threshold;
    return out.str();
  }

 private:
  sabre::SabreRouter router_;
};

class AstarPass final : public RoutingPass {
 public:
  AstarPass(const arch::Device& device, const RoutingSpec&)
      : router_(device) {}

  std::string_view name() const override { return "astar"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const astar::AstarConfig& c = router_.config();
    std::ostringstream out;
    out << "max-expansions=" << c.max_expansions
        << " heuristic-weight=" << c.heuristic_weight;
    return out.str();
  }

 private:
  astar::AstarRouter router_;
};

/// The CODAR ablation knobs (previously inlined in parse_routing_flag).
bool parse_codar_flag(RoutingSpec& spec, const std::string& flag,
                      const FlagValue& value) {
  if (flag == "--no-context") {
    spec.codar.context_aware = false;
  } else if (flag == "--no-duration") {
    spec.codar.duration_aware = false;
  } else if (flag == "--no-commutativity") {
    spec.codar.commutativity_aware = false;
  } else if (flag == "--no-fine-priority") {
    spec.codar.fine_priority = false;
  } else if (flag == "--window") {
    spec.codar.front_window = static_cast<int>(knob_int(flag, value()));
  } else if (flag == "--stagnation") {
    spec.codar.stagnation_threshold =
        static_cast<int>(knob_int(flag, value()));
    if (spec.codar.stagnation_threshold < 1) {
      throw UsageError("--stagnation must be >= 1");
    }
  } else {
    return false;
  }
  return true;
}

}  // namespace

namespace detail {

void register_builtin_routers(RouterRegistry& registry) {
  registry.add(
      {"codar",
       "contextual duration-aware remapper (the paper's router, DAC 2020)",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new CodarPass(d, s));
       },
       parse_codar_flag});
  registry.add(
      {"sabre",
       "SWAP-based bidirectional heuristic baseline (ASPLOS 2019), "
       "duration-blind",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new SabrePass(d, s));
       },
       nullptr});
  registry.add(
      {"astar",
       "layered A*-search baseline (TCAD 2019), duration-blind",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new AstarPass(d, s));
       },
       nullptr});
}

}  // namespace detail

}  // namespace codar::pipeline

// The three built-in routing passes as RoutingPass adapters: CODAR
// (src/core), SABRE (src/sabre) and the layered A* baseline (src/astar).
// Each registers itself with a name, a one-line description and — where
// it has CLI-visible knobs — a flag-parsing hook, so the CLI/serve layers
// never name these classes.

#include <memory>
#include <sstream>

#include "builtins.hpp"
#include "codar/astar/astar_router.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/cost/swap_cost.hpp"
#include "codar/sabre/sabre_router.hpp"

namespace codar::pipeline {

namespace {

const char* on_off(bool b) { return b ? "on" : "off"; }

class CodarPass final : public RoutingPass {
 public:
  CodarPass(const arch::Device& device, const RoutingSpec& spec)
      : router_(device, spec.codar) {}

  std::string_view name() const override { return "codar"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const core::CodarConfig& c = router_.config();
    std::ostringstream out;
    out << "context=" << on_off(c.context_aware)
        << " duration=" << on_off(c.duration_aware)
        << " commutativity=" << on_off(c.commutativity_aware)
        << " fine-priority=" << on_off(c.fine_priority)
        << " window=" << c.front_window
        << " stagnation=" << c.stagnation_threshold;
    return out.str();
  }

 private:
  core::CodarRouter router_;
};

/// CODAR with fidelity-aware SWAP scoring: the same event-driven core,
/// candidates priced by alpha·H_basic + beta·ln F_swap − gamma·decoherence
/// (cost::SwapCost). With beta = gamma = 0 no cost model is installed at
/// all, so the pass runs the literal codar code path — byte-identical
/// output by construction, not by numerical accident.
class CodarFidPass final : public RoutingPass {
 public:
  CodarFidPass(const arch::Device& device, const RoutingSpec& spec)
      : router_(device, configure(device, spec)) {}

  std::string_view name() const override { return "codar-fid"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const core::CodarConfig& c = router_.config();
    std::ostringstream out;
    out << "alpha=" << weights_.alpha << " beta=" << weights_.beta
        << " gamma=" << weights_.gamma
        << " context=" << on_off(c.context_aware)
        << " duration=" << on_off(c.duration_aware)
        << " commutativity=" << on_off(c.commutativity_aware)
        << " fine-priority=" << on_off(c.fine_priority)
        << " window=" << c.front_window
        << " stagnation=" << c.stagnation_threshold;
    return out.str();
  }

 private:
  core::CodarConfig configure(const arch::Device& device,
                              const RoutingSpec& spec) {
    weights_ = spec.fid;
    if (weights_.beta < 0.0 || weights_.gamma < 0.0) {
      throw UsageError("--beta/--gamma must be >= 0");
    }
    core::CodarConfig config = spec.codar;
    config.alpha = weights_.alpha;
    if (weights_.beta != 0.0 || weights_.gamma != 0.0) {
      config.swap_cost = std::make_shared<const cost::SwapCost>(
          device, weights_.beta, weights_.gamma);
    }
    return config;
  }

  RoutingSpec::FidWeights weights_;
  core::CodarRouter router_;
};

class SabrePass final : public RoutingPass {
 public:
  SabrePass(const arch::Device& device, const RoutingSpec&)
      : router_(device) {}

  std::string_view name() const override { return "sabre"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const sabre::SabreConfig& c = router_.config();
    std::ostringstream out;
    out << "extended-weight=" << c.extended_weight
        << " extended-set=" << c.extended_set_size
        << " decay-delta=" << c.decay_delta
        << " decay-reset=" << c.decay_reset_interval
        << " stagnation=" << c.stagnation_threshold;
    return out.str();
  }

 private:
  sabre::SabreRouter router_;
};

class AstarPass final : public RoutingPass {
 public:
  AstarPass(const arch::Device& device, const RoutingSpec&)
      : router_(device) {}

  std::string_view name() const override { return "astar"; }

  core::RoutingResult route(const ir::Circuit& circuit,
                            const layout::Layout& initial) const override {
    return router_.route(circuit, initial);
  }

  std::string describe_config() const override {
    const astar::AstarConfig& c = router_.config();
    std::ostringstream out;
    out << "max-expansions=" << c.max_expansions
        << " heuristic-weight=" << c.heuristic_weight;
    return out.str();
  }

 private:
  astar::AstarRouter router_;
};

/// The CODAR ablation knobs (previously inlined in parse_routing_flag).
bool parse_codar_flag(RoutingSpec& spec, const std::string& flag,
                      const FlagValue& value) {
  if (flag == "--no-context") {
    spec.codar.context_aware = false;
  } else if (flag == "--no-duration") {
    spec.codar.duration_aware = false;
  } else if (flag == "--no-commutativity") {
    spec.codar.commutativity_aware = false;
  } else if (flag == "--no-fine-priority") {
    spec.codar.fine_priority = false;
  } else if (flag == "--window") {
    spec.codar.front_window = static_cast<int>(knob_int(flag, value()));
  } else if (flag == "--stagnation") {
    spec.codar.stagnation_threshold =
        static_cast<int>(knob_int(flag, value()));
    if (spec.codar.stagnation_threshold < 1) {
      throw UsageError("--stagnation must be >= 1");
    }
  } else {
    return false;
  }
  return true;
}

/// The codar-fid objective weights. The CODAR ablation knobs also apply to
/// codar-fid (same core), but are claimed by parse_codar_flag above —
/// registries offer each flag to every hook.
bool parse_fid_flag(RoutingSpec& spec, const std::string& flag,
                    const FlagValue& value) {
  if (flag == "--alpha") {
    spec.fid.alpha = knob_double(flag, value());
  } else if (flag == "--beta") {
    spec.fid.beta = knob_double(flag, value());
  } else if (flag == "--gamma") {
    spec.fid.gamma = knob_double(flag, value());
  } else {
    return false;
  }
  if (spec.fid.beta < 0.0 || spec.fid.gamma < 0.0) {
    throw UsageError(flag + " must be >= 0");
  }
  return true;
}

}  // namespace

namespace detail {

void register_builtin_routers(RouterRegistry& registry) {
  registry.add(
      {"codar",
       "contextual duration-aware remapper (the paper's router, DAC 2020)",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new CodarPass(d, s));
       },
       parse_codar_flag});
  registry.add(
      {"codar-fid",
       "codar with fidelity-aware SWAP scoring "
       "(alpha*distance + beta*log-fidelity + gamma*decoherence)",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new CodarFidPass(d, s));
       },
       parse_fid_flag});
  registry.add(
      {"sabre",
       "SWAP-based bidirectional heuristic baseline (ASPLOS 2019), "
       "duration-blind",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new SabrePass(d, s));
       },
       nullptr});
  registry.add(
      {"astar",
       "layered A*-search baseline (TCAD 2019), duration-blind",
       [](const arch::Device& d, const RoutingSpec& s) {
         return std::unique_ptr<RoutingPass>(new AstarPass(d, s));
       },
       nullptr});
}

}  // namespace detail

}  // namespace codar::pipeline

#include "codar/pipeline/pipeline.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "codar/core/verify.hpp"
#include "codar/cost/fidelity_model.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/ir/peephole.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::pipeline {

namespace {

/// Shrinks a circuit whose declared register is wider than the device down
/// to its used qubits (QASM files routinely over-declare).
ir::Circuit fit_register(const ir::Circuit& circuit, int device_qubits) {
  if (circuit.num_qubits() <= device_qubits) return circuit;
  const int used = circuit.used_qubit_count();
  if (used > device_qubits) {
    throw std::runtime_error("circuit uses " + std::to_string(used) +
                             " qubits but the device has only " +
                             std::to_string(device_qubits));
  }
  std::vector<ir::Qubit> identity(
      static_cast<std::size_t>(circuit.num_qubits()));
  for (std::size_t q = 0; q < identity.size(); ++q) {
    identity[q] = static_cast<ir::Qubit>(q);
  }
  return circuit.remapped(identity, used);
}

/// Runs one named stage, recording its wall time on the report.
template <typename Fn>
void timed_stage(RouteReport& report, const char* stage, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  report.stage_us.push_back(
      {stage, static_cast<std::size_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count())});
}

}  // namespace

Pipeline::Pipeline(const arch::Device& device, const RoutingSpec& spec)
    : device_(&device),
      spec_(spec),
      router_(RouterRegistry::instance().at(spec.router).make(device, spec)),
      mapping_(MappingRegistry::instance().at(spec.mapping).make(spec)) {}

RouteReport Pipeline::run(const ir::Circuit& circuit, bool keep_qasm) const {
  RouteReport report;
  report.name = circuit.name();
  try {
    // Stage "lower": Toffoli decomposition plus register fitting, so every
    // downstream stage sees a <=2-qubit circuit that fits the device.
    ir::Circuit lowered(0);
    timed_stage(report, "lower", [&] {
      lowered = fit_register(ir::decompose_toffoli(circuit),
                             device_->graph.num_qubits());
    });
    if (spec_.peephole) {
      timed_stage(report, "peephole",
                  [&] { lowered = ir::peephole_optimize(lowered); });
    }
    report.qubits = lowered.used_qubit_count();
    report.gates_in = lowered.size();
    report.depth_in = schedule::weighted_depth(lowered, device_->durations);

    // Stage "initial": the mapping pass chooses π.
    std::optional<layout::Layout> initial;
    timed_stage(report, "initial",
                [&] { initial = mapping_->choose(lowered, *device_); });

    // Stage "route": exactly the routing pass — route_us keeps its
    // historical meaning of pure route() wall time.
    std::optional<core::RoutingResult> result;
    timed_stage(report, "route",
                [&] { result = router_->route(lowered, *initial); });
    report.route_us = report.stage_us.back().us;

    // Stage "report": fold the router's stats into the report. Runs before
    // verification so a failed verify still reports what was produced.
    timed_stage(report, "report", [&] {
      report.gates_out = result->circuit.size();
      report.gates_routed = result->stats.gates_routed;
      report.barriers = result->stats.barriers;
      report.swaps = result->stats.swaps_inserted;
      report.forced_swaps = result->stats.forced_swaps;
      report.escape_swaps = result->stats.escape_swaps;
      report.cycles = result->stats.cycles_simulated;
      report.makespan = result->stats.router_makespan;
      // The routed circuit's indices are physical, so the device overload
      // resolves calibration; depth_in above is a *logical* circuit and
      // deliberately stays on the kind-level durations. One schedule
      // feeds both the weighted depth and the ESP estimate.
      const schedule::Schedule asap =
          schedule::asap_schedule(result->circuit, *device_);
      report.depth_out = asap.makespan;
      report.log_esp =
          cost::FidelityModel(*device_).estimate(result->circuit, asap)
              .log_esp();
    });

    if (spec_.verify) {
      core::VerifyOutcome outcome;
      timed_stage(report, "verify", [&] {
        outcome = core::verify_routing(lowered, *result, device_->graph);
      });
      report.verified = outcome.valid;
      if (!outcome.valid) {
        report.error = "verification failed: " + outcome.reason;
        return report;
      }
    } else {
      report.verify_skipped = true;
    }

    if (keep_qasm) {
      timed_stage(report, "render",
                  [&] { report.routed_qasm = qasm::to_qasm(result->circuit); });
    }
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

}  // namespace codar::pipeline

#include "codar/pipeline/device_registry.hpp"

#include <stdexcept>

#include "builtins.hpp"

namespace codar::pipeline {

void DeviceRegistry::add(DeviceEntry entry) {
  if (entry.name.empty() || !entry.make) {
    throw std::logic_error("device registration needs a name and a factory");
  }
  if (find(entry.name) != nullptr) {
    throw std::logic_error("duplicate device '" + entry.name + "'");
  }
  for (const std::string& alias : entry.aliases) {
    if (find(alias) != nullptr) {
      throw std::logic_error("duplicate device alias '" + alias + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

const DeviceEntry* DeviceRegistry::find(std::string_view name) const {
  for (const DeviceEntry& e : entries_) {
    if (e.name == name) return &e;
    for (const std::string& alias : e.aliases) {
      if (alias == name) return &e;
    }
  }
  return nullptr;
}

const DeviceEntry* DeviceRegistry::resolve(const std::string& spec) const {
  return find(std::string_view(spec).substr(0, spec.find(':')));
}

arch::Device DeviceRegistry::make(const std::string& spec) const {
  const std::size_t colon = spec.find(':');
  const std::string head =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  const DeviceEntry* entry = resolve(spec);
  if (entry == nullptr) {
    throw UsageError("unknown device '" + spec + "' (expected " + specs() +
                     ")");
  }
  if (entry->takes_arg && arg.empty()) {
    throw UsageError("device '" + head + "' expects " + entry->spec +
                     ", got '" + spec + "'");
  }
  if (!entry->takes_arg && colon != std::string::npos) {
    throw UsageError("device '" + head + "' takes no parameter (expected " +
                     entry->spec + "), got '" + spec + "'");
  }
  return entry->make(spec, arg);
}

std::string DeviceRegistry::specs() const {
  std::string out;
  for (const DeviceEntry& e : entries_) {
    if (!out.empty()) out += '|';
    out += e.spec;
  }
  return out;
}

DeviceRegistry& DeviceRegistry::instance() {
  // Magic static: built (and the builtins registered) exactly once, in a
  // thread-safe way, on first use — same pattern as RouterRegistry.
  static DeviceRegistry& reg = *[] {
    auto* r = new DeviceRegistry();
    detail::register_builtin_devices(*r);
    return r;
  }();
  return reg;
}

}  // namespace codar::pipeline

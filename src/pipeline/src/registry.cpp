#include "codar/pipeline/registry.hpp"

#include <charconv>
#include <cmath>

#include "builtins.hpp"

namespace codar::pipeline {

RouterRegistry& RouterRegistry::instance() {
  // Magic static: built (and the builtins registered) exactly once, in a
  // thread-safe way, on first use.
  static RouterRegistry& reg = *[] {
    auto* r = new RouterRegistry();
    detail::register_builtin_routers(*r);
    return r;
  }();
  return reg;
}

MappingRegistry& MappingRegistry::instance() {
  static MappingRegistry& reg = *[] {
    auto* r = new MappingRegistry();
    detail::register_builtin_mappings(*r);
    return r;
  }();
  return reg;
}

long long knob_int(const std::string& flag, const std::string& value) {
  long long result = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw UsageError(flag + " expects an integer, got '" + value + "'");
  }
  return result;
}

double knob_double(const std::string& flag, const std::string& value) {
  double result = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  // from_chars accepts "inf"/"nan" spellings; weight knobs must be real
  // numbers (their bit patterns feed the options fingerprint).
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      !std::isfinite(result)) {
    throw UsageError(flag + " expects a finite number, got '" + value + "'");
  }
  return result;
}

}  // namespace codar::pipeline

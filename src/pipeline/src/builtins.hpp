#pragma once

// Internal wiring between the registry singletons and the built-in pass
// adapters. Each builtin_*.cpp file registers its own passes through one
// of these hooks; RouterRegistry/MappingRegistry::instance() calls them
// exactly once. Keeping the calls explicit (instead of file-scope
// registrar statics) makes registration order deterministic and immune to
// static-library dead-stripping.

#include "codar/pipeline/device_registry.hpp"
#include "codar/pipeline/registry.hpp"

namespace codar::pipeline::detail {

void register_builtin_routers(RouterRegistry& registry);
void register_builtin_mappings(MappingRegistry& registry);
void register_builtin_devices(DeviceRegistry& registry);

}  // namespace codar::pipeline::detail

#pragma once

// String-keyed factory registries for routing passes and initial-mapping
// strategies. Each entry carries a name, a one-line description, a factory
// and an optional knob-parsing hook, so adding a pass means registering
// one entry — the CLI (`--router`, `--list-routers`, knob flags), the
// serve protocol and the JSON stats all pick it up without edits.
//
// The built-in passes self-register the first time a registry is used
// (instance() runs their registration exactly once, thread-safely); user
// code may add() further entries at startup, before concurrent use.
//
// Concurrency contract: registries are write-at-startup, read-after.
// add() is NOT synchronized against concurrent resolve()/names() — the
// serve worker pool and parallel batch driver assume the entry tables are
// frozen by the time they fan out (which the magic-static registration
// guarantees for the built-ins). Registering passes from a running worker
// is a data race by contract, not a supported operation; DESIGN.md §11
// lists the state that IS lock-protected.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "codar/pipeline/routing_pass.hpp"
#include "codar/pipeline/spec.hpp"

namespace codar::pipeline {

/// Yields the argument of the flag currently being parsed. May throw
/// UsageError when the command line has no value left.
using FlagValue = std::function<std::string()>;

/// Tries to consume one pass-specific flag (CLI spelling, e.g. "--window")
/// into `spec`. Returns false when the flag does not belong to this pass;
/// throws UsageError on a malformed value.
using KnobParser = std::function<bool(RoutingSpec& spec,
                                      const std::string& flag,
                                      const FlagValue& value)>;

/// One registered routing pass.
struct RouterEntry {
  std::string name;         ///< Registry key, also the JSON stats name.
  std::string description;  ///< One line for --list-routers.
  /// Builds the pass for a device + spec. The device reference only needs
  /// to outlive the call (built-in passes copy their device model).
  std::function<std::unique_ptr<RoutingPass>(const arch::Device&,
                                             const RoutingSpec&)>
      make;
  KnobParser parse_flag;  ///< May be null: pass has no knob flags.
};

/// One registered initial-mapping strategy.
struct MappingEntry {
  std::string name;         ///< Registry key, also the JSON stats name.
  std::string description;  ///< One line for --list-mappings.
  std::function<std::unique_ptr<MappingPass>(const RoutingSpec&)> make;
  KnobParser parse_flag;  ///< May be null: strategy has no knob flags.
};

/// Ordered name → entry map; registration order is listing order.
template <typename Entry>
class PassRegistry {
 public:
  /// `kind` is the human-readable noun used in error messages
  /// ("router", "initial mapping").
  explicit PassRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers an entry. Throws std::logic_error on a duplicate name or
  /// a missing factory.
  void add(Entry entry) {
    if (entry.name.empty() || !entry.make) {
      throw std::logic_error(kind_ + " registration needs a name and a "
                                     "factory");
    }
    if (find(entry.name) != nullptr) {
      throw std::logic_error("duplicate " + kind_ + " '" + entry.name + "'");
    }
    entries_.push_back(std::move(entry));
  }

  /// Entry for `name`, or nullptr when unregistered.
  const Entry* find(std::string_view name) const {
    for (const Entry& e : entries_) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  /// Entry for `name`; throws UsageError listing the registered names.
  const Entry& at(const std::string& name) const {
    if (const Entry* e = find(name)) return *e;
    throw UsageError("unknown " + kind_ + " '" + name + "' (expected " +
                     names() + ")");
  }

  /// All entries in registration order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// "a|b|c" over the registered names, in registration order.
  std::string names() const {
    std::string out;
    for (const Entry& e : entries_) {
      if (!out.empty()) out += '|';
      out += e.name;
    }
    return out;
  }

  /// Offers one flag to every registered knob-parsing hook. Returns true
  /// as soon as a pass claims it.
  bool parse_knob(RoutingSpec& spec, const std::string& flag,
                  const FlagValue& value) const {
    for (const Entry& e : entries_) {
      if (e.parse_flag && e.parse_flag(spec, flag, value)) return true;
    }
    return false;
  }

 private:
  std::string kind_;
  std::vector<Entry> entries_;
};

/// The process-wide routing-pass registry (codar, sabre, astar built in).
class RouterRegistry : public PassRegistry<RouterEntry> {
 public:
  RouterRegistry() : PassRegistry("router") {}
  static RouterRegistry& instance();
};

/// The process-wide initial-mapping registry (identity, greedy, sabre).
class MappingRegistry : public PassRegistry<MappingEntry> {
 public:
  MappingRegistry() : PassRegistry("initial mapping") {}
  static MappingRegistry& instance();
};

/// Shared helper for knob hooks: parses a mandatory integral flag value,
/// throwing UsageError on garbage.
long long knob_int(const std::string& flag, const std::string& value);

/// Shared helper for knob hooks: parses a mandatory finite floating-point
/// flag value, throwing UsageError on garbage (inf/nan included).
double knob_double(const std::string& flag, const std::string& value);

}  // namespace codar::pipeline

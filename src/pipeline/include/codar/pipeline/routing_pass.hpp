#pragma once

// The polymorphic pass interfaces behind every codar entry point. A
// RoutingPass turns a lowered logical circuit plus an initial layout into
// a hardware-compliant RoutingResult; a MappingPass chooses that initial
// layout. The built-in passes (CODAR, SABRE, layered A*; identity/greedy/
// SABRE mappings) are thin adapters over the core/sabre/astar/layout
// modules and reach callers through the registries in registry.hpp —
// the CLI, the serve service, benches and tests never name a concrete
// router class.

#include <string>
#include <string_view>

#include "codar/arch/device.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/layout/layout.hpp"

namespace codar::pipeline {

/// One qubit-routing pass, constructed for a fixed device and
/// configuration. Implementations must be safe to call concurrently from
/// multiple threads (route() is const and the built-in routers keep no
/// mutable state between calls).
class RoutingPass {
 public:
  virtual ~RoutingPass() = default;

  /// The registry name this pass was registered under (e.g. "codar").
  virtual std::string_view name() const = 0;

  /// Routes `circuit` (lowered to <=2-qubit gates, used qubits fitting the
  /// device) starting from `initial`.
  virtual core::RoutingResult route(const ir::Circuit& circuit,
                                    const layout::Layout& initial) const = 0;

  /// One-line human-readable summary of the knobs this instance was built
  /// with (for logs and diagnostics; never part of the JSON stats).
  virtual std::string describe_config() const = 0;
};

/// One initial-mapping strategy. `choose` may inspect the device freely;
/// strategies needing randomness or iteration counts capture them from the
/// RoutingSpec at construction.
class MappingPass {
 public:
  virtual ~MappingPass() = default;

  /// The registry name this strategy was registered under (e.g. "greedy").
  virtual std::string_view name() const = 0;

  /// Chooses the initial layout π for `circuit` on `device`.
  virtual layout::Layout choose(const ir::Circuit& circuit,
                                const arch::Device& device) const = 0;

  /// One-line human-readable summary of this instance's knobs.
  virtual std::string describe_config() const = 0;
};

}  // namespace codar::pipeline

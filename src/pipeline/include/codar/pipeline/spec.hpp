#pragma once

// The device-independent description of one compilation: which routing
// pass and initial-mapping strategy to run (by registry name — see
// registry.hpp) plus every knob that can change a routed result. This is
// the library-level core of the CLI's Options struct; `codar` and
// `codar serve` both overlay their I/O and presentation fields on top of
// it (cli::Options derives from RoutingSpec).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "codar/core/codar_router.hpp"

namespace codar::pipeline {

/// Raised on malformed spec values: unknown router/mapping names and
/// out-of-range or unparseable knob values. The CLI layer treats it as a
/// usage error (`what()` is the message to print); `codar serve` rewraps
/// it into a ProtocolError for per-request failures.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything a Pipeline needs to know besides the device and the circuit.
/// Router and mapping are registry names, validated when the Pipeline is
/// built (or eagerly by the flag/request parsers).
struct RoutingSpec {
  std::string router = "codar";    ///< RouterRegistry name.
  std::string mapping = "sabre";   ///< MappingRegistry name.
  core::CodarConfig codar;         ///< CODAR feature toggles / ablations.
  std::uint64_t seed = 17;         ///< Initial-mapping RNG seed.
  int mapping_rounds = 3;          ///< SABRE reverse-traversal rounds.
  bool verify = true;              ///< Run verify_routing after routing.
  bool peephole = false;           ///< Pre-routing peephole cleanup stage.

  /// Objective weights of the codar-fid pass (--alpha/--beta/--gamma, or
  /// the same-named serve options): distance, log-fidelity, decoherence.
  /// Ignored by every other router; with beta = gamma = 0 codar-fid is
  /// byte-identical to codar. Cache-key relevant (the serve options
  /// fingerprint folds all three).
  struct FidWeights {
    double alpha = 1.0;  ///< Weight of the H_basic distance term.
    double beta = 5.0;   ///< Weight of ln F_swap per candidate edge.
    double gamma = 1.0;  ///< Weight of the SWAP-duration decoherence term.
  };
  FidWeights fid;

  /// Free-form knobs for externally registered passes, which have no
  /// dedicated field above: their factories read values from here. Fed by
  /// `--set KEY=VALUE` on the CLI and the `"extras"` object in serve
  /// requests, and folded into the route-cache options fingerprint — so a
  /// third-party knob is cache-correct without touching either front end.
  /// Kept sorted by key (set_extra) so the fingerprint is canonical.
  std::vector<std::pair<std::string, std::string>> extras;

  /// Inserts or replaces `key`, keeping `extras` sorted.
  void set_extra(const std::string& key, std::string value) {
    for (auto it = extras.begin(); it != extras.end(); ++it) {
      if (it->first == key) {
        it->second = std::move(value);
        return;
      }
      if (it->first > key) {
        extras.insert(it, {key, std::move(value)});
        return;
      }
    }
    extras.emplace_back(key, std::move(value));
  }

  /// Value for `key`, or nullptr when unset.
  const std::string* extra(const std::string& key) const {
    for (const auto& [k, v] : extras) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

}  // namespace codar::pipeline

#pragma once

// The composable compilation pipeline behind every codar entry point:
// lower Toffolis → optional peephole → initial mapping → route → report →
// verify → render, with per-stage wall-time instrumentation. One circuit
// in, one RouteReport out; the batch driver, the single-file CLI path and
// the `codar serve` service all run exactly this sequence, which is what
// keeps their outputs byte-identical (the serve differential test locks
// the JSON rendering of these reports against batch output).

#include <memory>
#include <string>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/pipeline/registry.hpp"
#include "codar/pipeline/routing_pass.hpp"
#include "codar/pipeline/spec.hpp"

namespace codar::pipeline {

/// Wall time of one pipeline stage, microseconds. Nondeterministic by
/// nature: the JSON rendering only includes stage timings when the caller
/// opted in (--timing), so default stats stay bit-identical across runs
/// and thread counts.
struct StageTiming {
  std::string stage;
  std::size_t us = 0;
};

/// Everything the pipeline reports about one routed circuit. All counters
/// are integers so the JSON rendering is bit-exact across runs and thread
/// counts.
struct RouteReport {
  std::string name;
  std::string error;         ///< Nonempty = the job failed; other fields stale.
  bool verified = false;     ///< verify_routing passed (false if skipped).
  bool verify_skipped = false;
  int qubits = 0;            ///< Logical qubits used by the input.
  std::size_t gates_in = 0;
  std::size_t gates_out = 0; ///< Routed gates incl. SWAPs.
  std::size_t gates_routed = 0;  ///< Real (non-barrier) input gates routed.
  std::size_t barriers = 0;      ///< Barrier fences carried through.
  std::size_t swaps = 0;
  std::size_t forced_swaps = 0;
  std::size_t escape_swaps = 0;
  std::size_t cycles = 0;        ///< Distinct simulated timestamps (CODAR).
  std::size_t route_us = 0;      ///< "route" stage wall time, microseconds.
  arch::Duration makespan = 0;   ///< Router's own timeline length.
  arch::Duration depth_in = 0;   ///< Duration-weighted depth before routing.
  arch::Duration depth_out = 0;  ///< ... and after (the paper's metric).
  /// Estimated success probability of the routed circuit under the
  /// device's calibrated fidelities + coherence (cost::FidelityModel).
  /// Log-space is the primary value (ESP underflows double for deep
  /// circuits); est_success_probability = exp(log_esp). Unlike the
  /// integer counters these are doubles — deterministic for a fixed
  /// platform, but the JSON rendering rounds-trips them exactly, so
  /// cross-platform comparisons should allow ulp-level slack.
  double log_esp = 0.0;
  std::string routed_qasm;       ///< Empty unless rendering was requested.
  /// Per-stage wall times in execution order; presentation-only (see
  /// StageTiming).
  std::vector<StageTiming> stage_us;

  bool ok() const { return error.empty() && (verified || verify_skipped); }
};

/// A resolved compilation pipeline: the router and initial-mapping passes
/// named by the spec, looked up in the registries and constructed for one
/// device. Construction validates the names (UsageError lists the
/// registered ones). run() is const and share-nothing per call, so one
/// Pipeline may serve many threads — the batch driver builds one per job
/// instead only because that is what the pre-registry code did.
class Pipeline {
 public:
  /// `device` must outlive the Pipeline (passes copy their own device
  /// model, but the pipeline reads graph/durations per run).
  Pipeline(const arch::Device& device, const RoutingSpec& spec);

  /// Runs the full stage sequence on one circuit. Never throws for
  /// routing/verification problems — failures land in `error`.
  /// `keep_qasm` enables the final render stage (report.routed_qasm).
  RouteReport run(const ir::Circuit& circuit, bool keep_qasm = false) const;

  const RoutingPass& router() const { return *router_; }
  const MappingPass& mapping() const { return *mapping_; }
  const RoutingSpec& spec() const { return spec_; }

 private:
  const arch::Device* device_;
  RoutingSpec spec_;
  std::unique_ptr<RoutingPass> router_;
  std::unique_ptr<MappingPass> mapping_;
};

}  // namespace codar::pipeline

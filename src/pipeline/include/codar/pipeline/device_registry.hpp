#pragma once

// String-keyed device factory registry, the device-side sibling of
// RouterRegistry/MappingRegistry: each entry carries a name, a display
// spec, a one-line description and a factory, so adding a device means
// registering one entry — the CLI (`--device`, `--list-devices`), the
// serve protocol and the batch driver all pick it up without edits.
//
// Specs are either a bare name (`tokyo`, with aliases like `q20`) or a
// parameterized `name:ARG` form (`grid:4x5`, `linear:16`,
// `file:devices/tokyo.json`); the text before the first ':' selects the
// entry, the rest is handed to its factory. Unknown specs throw
// UsageError listing every registered spec, exactly as unknown routers
// and mappings do.
//
// The built-in devices self-register the first time the registry is used
// (instance() runs their registration exactly once, thread-safely); user
// code may add() further entries at startup, before concurrent use.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/pipeline/spec.hpp"

namespace codar::pipeline {

/// One registered device or device family.
struct DeviceEntry {
  std::string name;         ///< Registry key: the spec text before ':'.
  std::string spec;         ///< Display form, e.g. "q16" or "grid:RxC".
  std::string description;  ///< One line for --list-devices.
  /// Extra exact names the entry answers to (e.g. "q20" for "tokyo").
  std::vector<std::string> aliases;
  /// Builds the device. `spec` is the full user-given spec (for error
  /// messages); `arg` the text after ':' (empty for bare names). Throws
  /// UsageError on a malformed arg.
  std::function<arch::Device(const std::string& spec,
                             const std::string& arg)>
      make;
  bool takes_arg = false;  ///< Parameterized entry: requires "name:ARG".
  /// The factory touches the local filesystem (the `file:` loader).
  /// Remote entry points — `codar serve` request lines — refuse such
  /// specs: an untrusted client must not be able to make the server read
  /// arbitrary paths. Inline device objects are the remote alternative.
  bool local_only = false;
};

/// Ordered name → entry map; registration order is listing order.
class DeviceRegistry {
 public:
  /// Registers an entry. Throws std::logic_error on a duplicate name or
  /// alias, or a missing factory.
  void add(DeviceEntry entry);

  /// Entry whose name or alias is `name`, or nullptr when unregistered.
  const DeviceEntry* find(std::string_view name) const;

  /// Entry a *full* spec ("tokyo", "grid:4x5") resolves to — the one
  /// spec-to-entry rule, shared by make() and by trust-boundary checks
  /// (the serve protocol refuses local_only entries) so the two can
  /// never drift apart. nullptr when unregistered.
  const DeviceEntry* resolve(const std::string& spec) const;

  /// Builds the device for a full spec ("tokyo", "grid:4x5",
  /// "file:dev.json"). Throws UsageError for an unknown name — the
  /// message lists every registered spec — or a malformed parameter.
  arch::Device make(const std::string& spec) const;

  /// All entries in registration order.
  const std::vector<DeviceEntry>& entries() const { return entries_; }

  /// "q16|tokyo|...|grid:RxC|file:PATH.json" over the registered specs,
  /// in registration order (used in the unknown-device error).
  std::string specs() const;

  /// The process-wide registry (all presets, lattice generators and the
  /// `file:` JSON loader built in).
  static DeviceRegistry& instance();

 private:
  std::vector<DeviceEntry> entries_;
};

}  // namespace codar::pipeline

#include "codar/cost/swap_cost.hpp"

#include <algorithm>
#include <cmath>

#include "codar/common/expects.hpp"

namespace codar::cost {

namespace {

/// Snaps a bonus onto the 1/65536 grid. ln() is not correctly rounded on
/// every libm; without this, two platforms could order equal-fidelity
/// candidates differently and routing would stop being bit-reproducible.
double quantize(double x) { return std::nearbyint(x * 65536.0) / 65536.0; }

double rate(const arch::Coherence& c) {
  double r = 0.0;
  if (std::isfinite(c.t1)) r += 1.0 / c.t1;
  if (std::isfinite(c.t2)) r += 1.0 / c.t2;
  return r;
}

}  // namespace

SwapCost::SwapCost(const arch::Device& device, double beta, double gamma) {
  CODAR_EXPECTS(std::isfinite(beta) && beta >= 0.0);
  CODAR_EXPECTS(std::isfinite(gamma) && gamma >= 0.0);
  const double lambda = rate(device.coherence);
  for (const auto& [ea, eb] : device.graph.edges()) {
    const ir::Qubit a = std::min(ea, eb);
    const ir::Qubit b = std::max(ea, eb);
    const ir::Qubit phys[] = {a, b};
    const double f = device.fidelity(ir::GateKind::kSwap, phys);
    CODAR_EXPECTS(f > 0.0);
    const double dur =
        static_cast<double>(device.duration(ir::GateKind::kSwap, phys));
    bonus_by_edge_[{a, b}] =
        quantize(beta * std::log(f) - gamma * dur * lambda);
  }
}

double SwapCost::bonus(ir::Qubit a, ir::Qubit b) const {
  const auto it = bonus_by_edge_.find({std::min(a, b), std::max(a, b)});
  CODAR_EXPECTS(it != bonus_by_edge_.end());
  return it->second;
}

}  // namespace codar::cost

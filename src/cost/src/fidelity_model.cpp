#include "codar/cost/fidelity_model.hpp"

#include <limits>

#include "codar/common/expects.hpp"

namespace codar::cost {

namespace {

/// Combined decoherence rate 1/T1 + 1/T2; each infinite channel
/// contributes 0, so an ideal device decoheres at rate 0 exactly.
double decoherence_rate(const arch::Coherence& c) {
  double rate = 0.0;
  if (std::isfinite(c.t1)) rate += 1.0 / c.t1;
  if (std::isfinite(c.t2)) rate += 1.0 / c.t2;
  return rate;
}

}  // namespace

EspEstimate FidelityModel::estimate(const ir::Circuit& routed) const {
  return estimate(routed, schedule::asap_schedule(routed, device_));
}

EspEstimate FidelityModel::estimate(
    const ir::Circuit& routed, const schedule::Schedule& schedule) const {
  CODAR_EXPECTS(schedule.gates.size() == routed.size());
  EspEstimate out;
  out.gate_success.reserve(routed.size());

  const std::size_t n = static_cast<std::size_t>(routed.num_qubits());
  std::vector<char> used(n, 0);
  std::vector<char> measured(n, 0);
  for (const ir::Gate& g : routed.gates()) {
    const double f = device_.fidelity(g, g.qubits());
    CODAR_EXPECTS(f > 0.0);
    out.gate_success.push_back(f);
    for (const ir::Qubit q : g.qubits()) {
      used[static_cast<std::size_t>(q)] = 1;
    }
    if (g.kind() == ir::GateKind::kMeasure) {
      // Explicit measures land in the readout term (they *are* the
      // readout of that qubit), never double-counted below.
      measured[static_cast<std::size_t>(g.qubit(0))] = 1;
      out.log_readout += std::log(f);
    } else {
      out.log_gate += std::log(f);
    }
  }

  // Every used qubit is read out at the end of a real run; charge the
  // ones the circuit does not measure explicitly.
  for (ir::Qubit q = 0; q < routed.num_qubits(); ++q) {
    const std::size_t i = static_cast<std::size_t>(q);
    if (!used[i] || measured[i]) continue;
    const ir::Qubit phys[] = {q};
    const double f = device_.fidelity(ir::GateKind::kMeasure, phys);
    CODAR_EXPECTS(f > 0.0);
    out.log_readout += std::log(f);
  }

  const double rate = decoherence_rate(device_.coherence);
  if (rate > 0.0) {
    // Per-qubit idle time: lifetime window minus busy time. Gates on one
    // qubit never overlap (qubit exclusivity), so busy <= window.
    constexpr auto kNoStart = std::numeric_limits<arch::Duration>::max();
    std::vector<arch::Duration> first_start(n, kNoStart);
    std::vector<arch::Duration> last_finish(n, 0);
    std::vector<arch::Duration> busy(n, 0);
    for (const schedule::ScheduledGate& sg : schedule.gates) {
      const ir::Gate& g = routed.gate(sg.gate_index);
      for (const ir::Qubit q : g.qubits()) {
        const std::size_t i = static_cast<std::size_t>(q);
        first_start[i] = std::min(first_start[i], sg.start);
        last_finish[i] = std::max(last_finish[i], sg.finish);
        busy[i] += sg.finish - sg.start;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (first_start[i] == kNoStart) continue;
      const arch::Duration idle =
          (last_finish[i] - first_start[i]) - busy[i];
      out.log_decoherence -= static_cast<double>(idle) * rate;
    }
  }
  return out;
}

}  // namespace codar::cost

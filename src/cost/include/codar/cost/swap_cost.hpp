#pragma once

// The production SwapCostModel: prices every coupler of a device once at
// construction as
//
//   bonus(a, b) = beta * ln F_swap(a, b) − gamma * dur_swap(a, b) · λ
//
// where F_swap/dur_swap resolve through Device::fidelity()/duration()
// (so SWAP = edge-2q³ and per-edge calibration apply) and λ = 1/T1 + 1/T2
// is the device's decoherence rate (0 on an ideal device). Both terms are
// <= 0: a SWAP always costs fidelity and time; beta/gamma express how many
// H_basic distance steps one nat of log-fidelity / one unit of
// decoherence exposure is worth.
//
// Bonuses are quantized to a 1/65536 grid so the router's candidate
// ordering cannot depend on sub-ulp ln() differences between libm
// implementations — routing stays bit-reproducible across platforms.

#include <map>
#include <utility>

#include "codar/arch/device.hpp"
#include "codar/core/swap_cost.hpp"

namespace codar::cost {

/// Calibrated log-fidelity + decoherence SWAP pricing over one device.
/// All couplers are priced eagerly, so the model keeps no device
/// reference and can outlive it (the router holds it by shared_ptr).
class SwapCost final : public core::SwapCostModel {
 public:
  /// beta weighs ln F_swap, gamma weighs the decoherence exposure of the
  /// SWAP's duration. Both must be finite and >= 0.
  SwapCost(const arch::Device& device, double beta, double gamma);

  /// (a, b) must be a coupler of the device the model was built from.
  double bonus(ir::Qubit a, ir::Qubit b) const override;

 private:
  std::map<std::pair<ir::Qubit, ir::Qubit>, double> bonus_by_edge_;
};

}  // namespace codar::cost

#pragma once

// The calibrated fidelity cost model: maps a (routed circuit, device,
// schedule) triple to per-gate success probabilities and an aggregate
// estimated success probability (ESP). Unlike schedule::estimate_success
// (kind-level fidelities, one global coherence time), this model resolves
// every gate through Device::fidelity() — so per-qubit/per-edge
// calibration and the SWAP = edge-2q³ convention shape the estimate — and
// charges decoherence only over each qubit's *idle* windows of the ASAP
// schedule (time spent inside a gate is already priced into that gate's
// calibrated fidelity).
//
// The estimate is kept in log-space:
//
//   log ESP = Σ_gates ln F(gate)                        (gate term)
//           + Σ_{q used} ln F_readout(q)                (readout term)
//           + Σ_{q used} −idle_q · (1/T1 + 1/T2)        (decoherence term)
//
// where idle_q = (last_finish_q − first_start_q) − Σ busy_q over the ASAP
// schedule, and an infinite coherence channel contributes rate 0. Explicit
// measure gates in the circuit are counted in the readout term (not the
// gate term); qubits without one are still read out once — every used
// qubit is measured at the end of a real run.

#include <cmath>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/schedule/scheduler.hpp"

namespace codar::cost {

/// Log-space ESP breakdown plus the per-gate success probabilities (one
/// entry per circuit gate, in program order; barriers are 1.0).
struct EspEstimate {
  std::vector<double> gate_success;  ///< Resolved per-gate fidelity.
  double log_gate = 0.0;         ///< Σ ln F over non-measure gates.
  double log_readout = 0.0;      ///< Σ ln F_readout over used qubits.
  double log_decoherence = 0.0;  ///< −Σ idle_q · (1/T1 + 1/T2).

  double log_esp() const { return log_gate + log_readout + log_decoherence; }
  double esp() const { return std::exp(log_esp()); }
};

/// The estimator. Holds a reference to the device: the model is a
/// transient view, constructed next to the device it prices (the device
/// must outlive it).
class FidelityModel {
 public:
  explicit FidelityModel(const arch::Device& device) : device_(device) {}

  /// Prices a *routed* circuit (physical qubit indices) against the
  /// device's calibrated fidelities and an internally computed
  /// device-resolved ASAP schedule.
  EspEstimate estimate(const ir::Circuit& routed) const;

  /// Same, against a caller-provided schedule of exactly this circuit
  /// (when one is already computed — the report stage schedules anyway).
  EspEstimate estimate(const ir::Circuit& routed,
                       const schedule::Schedule& schedule) const;

 private:
  const arch::Device& device_;
};

}  // namespace codar::cost

#include "codar/workloads/suite.hpp"

#include <algorithm>

#include "codar/ir/decompose.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::workloads {

namespace {

void add(std::vector<BenchmarkSpec>& suite, ir::Circuit circuit) {
  ir::Circuit lowered = ir::decompose_toffoli(circuit);
  lowered.set_name(circuit.name());
  suite.push_back(BenchmarkSpec{circuit.name(), std::move(lowered)});
}

}  // namespace

std::vector<BenchmarkSpec> benchmark_suite() {
  std::vector<BenchmarkSpec> suite;
  suite.reserve(71);

  // GHZ ladders (5).
  for (const int n : {3, 5, 8, 12, 16}) add(suite, ghz(n));
  // QFT kernels (6).
  for (const int n : {4, 6, 8, 10, 13, 16}) add(suite, qft(n));
  // Bernstein-Vazirani with dense secrets (5).
  for (const int n : {3, 6, 9, 12, 15}) {
    add(suite, bernstein_vazirani(n, (std::uint64_t{1} << n) - 1));
  }
  // Deutsch-Jozsa, balanced and constant (4).
  add(suite, deutsch_jozsa(5, true));
  add(suite, deutsch_jozsa(5, false));
  add(suite, deutsch_jozsa(11, true));
  add(suite, deutsch_jozsa(11, false));
  // Simon (5).
  for (const int n : {2, 3, 4, 6, 8}) {
    add(suite, simon(n, (std::uint64_t{1} << n) - 1));
  }
  // W states (5).
  for (const int n : {4, 7, 10, 13, 16}) add(suite, w_state(n));
  // Grover search (5).
  add(suite, grover(3, 1));
  add(suite, grover(4, 2));
  add(suite, grover(5, 2));
  add(suite, grover(6, 3));
  add(suite, grover(8, 4));
  // Cuccaro ripple-carry adders, 2*bits + 2 qubits (6).
  for (const int bits : {2, 3, 4, 5, 6, 7}) add(suite, cuccaro_adder(bits));
  // Draper QFT adders, 2*bits qubits (6).
  for (const int bits : {2, 3, 4, 5, 6, 8}) add(suite, draper_adder(bits));
  // QAOA MaxCut (4).
  add(suite, qaoa_maxcut(6, 2, 11));
  add(suite, qaoa_maxcut(9, 2, 12));
  add(suite, qaoa_maxcut(12, 3, 13));
  add(suite, qaoa_maxcut(16, 3, 14));
  // Hardware-efficient ansatz (4).
  add(suite, hardware_efficient_ansatz(5, 4, 21));
  add(suite, hardware_efficient_ansatz(9, 6, 22));
  add(suite, hardware_efficient_ansatz(13, 8, 23));
  add(suite, hardware_efficient_ansatz(16, 8, 24));
  // Ising Trotter chains (4).
  add(suite, ising_trotter(6, 8));
  add(suite, ising_trotter(10, 10));
  add(suite, ising_trotter(14, 12));
  add(suite, ising_trotter(16, 16));
  // Toffoli chains (3).
  add(suite, toffoli_chain(5, 4));
  add(suite, toffoli_chain(9, 6));
  add(suite, toffoli_chain(13, 8));
  // Random circuits, including a large one near the paper's ~30k-gate
  // upper end (6).
  add(suite, random_circuit(5, 120, 0.4, 31));
  add(suite, random_circuit(8, 300, 0.4, 32));
  add(suite, random_circuit(11, 700, 0.45, 33));
  add(suite, random_circuit(14, 1500, 0.45, 34));
  add(suite, random_circuit(16, 4000, 0.5, 35));
  add(suite, random_circuit(16, 20000, 0.5, 36));

  // The three 36-qubit programs (Sycamore-only, as in the paper) (3).
  add(suite, qft(36));
  add(suite, qaoa_maxcut(36, 2, 41));
  add(suite, random_circuit(36, 4000, 0.5, 42));

  CODAR_ENSURES(suite.size() == 71);
  std::stable_sort(suite.begin(), suite.end(),
                   [](const BenchmarkSpec& a, const BenchmarkSpec& b) {
                     return a.circuit.num_qubits() < b.circuit.num_qubits();
                   });
  return suite;
}

std::vector<BenchmarkSpec> famous_algorithms() {
  std::vector<BenchmarkSpec> algos;
  add(algos, bernstein_vazirani(4, 0b1011));
  add(algos, qft(5));
  add(algos, ghz(6));
  add(algos, grover(3, 1));
  add(algos, deutsch_jozsa(4, true));
  add(algos, simon(3, 0b101));
  add(algos, w_state(5));
  CODAR_ENSURES(algos.size() == 7);
  return algos;
}

}  // namespace codar::workloads

#include "codar/workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <vector>

#include "codar/common/rng.hpp"

namespace codar::workloads {

namespace {

using std::numbers::pi;

/// Controlled-RY via the standard two-CX decomposition.
void cry(Circuit& c, double theta, Qubit control, Qubit target) {
  c.ry(target, theta / 2.0);
  c.cx(control, target);
  c.ry(target, -theta / 2.0);
  c.cx(control, target);
}

/// Multi-controlled X via the CCX cascade; needs controls.size() - 2
/// ancillas starting at `ancilla_base` (untouched when <= 2 controls).
void mcx(Circuit& c, const std::vector<Qubit>& controls, Qubit target,
         Qubit ancilla_base) {
  const std::size_t k = controls.size();
  CODAR_EXPECTS(k >= 1);
  if (k == 1) {
    c.cx(controls[0], target);
    return;
  }
  if (k == 2) {
    c.ccx(controls[0], controls[1], target);
    return;
  }
  // Compute ancilla chain, hit the target, then uncompute.
  std::vector<Qubit> anc;
  c.ccx(controls[0], controls[1], ancilla_base);
  anc.push_back(ancilla_base);
  for (std::size_t i = 2; i + 1 < k; ++i) {
    const Qubit next = ancilla_base + static_cast<Qubit>(anc.size());
    c.ccx(controls[i], anc.back(), next);
    anc.push_back(next);
  }
  c.ccx(controls[k - 1], anc.back(), target);
  for (std::size_t i = anc.size(); i-- > 1;) {
    c.ccx(controls[i + 1], anc[i - 1], anc[i]);
  }
  c.ccx(controls[0], controls[1], ancilla_base);
}

}  // namespace

Circuit qft(int n, bool with_final_swaps) {
  CODAR_EXPECTS(n >= 1);
  Circuit c(n, "qft_" + std::to_string(n));
  for (Qubit i = 0; i < n; ++i) {
    c.h(i);
    for (Qubit j = i + 1; j < n; ++j) {
      c.cu1(j, i, pi / std::pow(2.0, j - i));
    }
  }
  if (with_final_swaps) {
    for (Qubit i = 0; i < n / 2; ++i) c.swap(i, n - 1 - i);
  }
  return c;
}

Circuit inverse_qft(int n, bool with_initial_swaps) {
  CODAR_EXPECTS(n >= 1);
  Circuit c(n, "iqft_" + std::to_string(n));
  if (with_initial_swaps) {
    for (Qubit i = 0; i < n / 2; ++i) c.swap(i, n - 1 - i);
  }
  for (Qubit i = static_cast<Qubit>(n) - 1; i >= 0; --i) {
    for (Qubit j = static_cast<Qubit>(n) - 1; j > i; --j) {
      c.cu1(j, i, -pi / std::pow(2.0, j - i));
    }
    c.h(i);
  }
  return c;
}

Circuit ghz(int n) {
  CODAR_EXPECTS(n >= 2);
  Circuit c(n, "ghz_" + std::to_string(n));
  c.h(0);
  for (Qubit i = 0; i + 1 < n; ++i) c.cx(i, i + 1);
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit w_state(int n) {
  CODAR_EXPECTS(n >= 2);
  Circuit c(n, "wstate_" + std::to_string(n));
  c.x(0);
  for (Qubit i = 0; i + 1 < n; ++i) {
    // Split amplitude so each |1> position ends up with weight 1/n.
    const double theta =
        2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(n - i)));
    cry(c, theta, i, i + 1);
    c.cx(i + 1, i);
  }
  return c;
}

Circuit bernstein_vazirani(int n, std::uint64_t secret) {
  CODAR_EXPECTS(n >= 1 && n < 63);
  Circuit c(n + 1, "bv_" + std::to_string(n));
  const Qubit anc = static_cast<Qubit>(n);
  c.x(anc);
  c.h(anc);
  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (Qubit i = 0; i < n; ++i) {
    if ((secret >> i) & 1U) c.cx(i, anc);
  }
  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit deutsch_jozsa(int n, bool balanced) {
  CODAR_EXPECTS(n >= 1);
  Circuit c(n + 1, std::string("dj_") + (balanced ? "b_" : "c_") +
                       std::to_string(n));
  const Qubit anc = static_cast<Qubit>(n);
  c.x(anc);
  c.h(anc);
  for (Qubit i = 0; i < n; ++i) c.h(i);
  if (balanced) {
    // f(x) = parity of all inputs — a maximally balanced oracle.
    for (Qubit i = 0; i < n; ++i) c.cx(i, anc);
  }
  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit simon(int n, std::uint64_t secret) {
  CODAR_EXPECTS(n >= 2 && n < 32);
  CODAR_EXPECTS(secret != 0 && secret < (std::uint64_t{1} << n));
  Circuit c(2 * n, "simon_" + std::to_string(n));
  for (Qubit i = 0; i < n; ++i) c.h(i);
  // Oracle: f(x) = x XOR (x_j ? s : 0) where j = lowest set bit of s;
  // satisfies f(x) = f(x XOR s), the Simon promise.
  for (Qubit i = 0; i < n; ++i) c.cx(i, static_cast<Qubit>(n) + i);
  Qubit j = 0;
  while (((secret >> j) & 1U) == 0) ++j;
  for (Qubit k = 0; k < n; ++k) {
    if ((secret >> k) & 1U) c.cx(j, static_cast<Qubit>(n) + k);
  }
  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit grover(int n, int iterations) {
  CODAR_EXPECTS(n >= 2);
  CODAR_EXPECTS(iterations >= 1);
  const int ancillas = std::max(0, n - 3);
  Circuit c(n + ancillas, "grover_" + std::to_string(n));
  const Qubit ancilla_base = static_cast<Qubit>(n);
  std::vector<Qubit> all_but_last;
  for (Qubit i = 0; i + 1 < n; ++i) all_but_last.push_back(i);
  const Qubit last = static_cast<Qubit>(n) - 1;

  // Multi-controlled Z across the full register, via H-MCX-H on the last
  // qubit.
  auto mcz_full = [&]() {
    c.h(last);
    mcx(c, all_but_last, last, ancilla_base);
    c.h(last);
  };

  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (int it = 0; it < iterations; ++it) {
    // Oracle: phase-flip |1...1>.
    mcz_full();
    // Diffusion.
    for (Qubit i = 0; i < n; ++i) c.h(i);
    for (Qubit i = 0; i < n; ++i) c.x(i);
    mcz_full();
    for (Qubit i = 0; i < n; ++i) c.x(i);
    for (Qubit i = 0; i < n; ++i) c.h(i);
  }
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit cuccaro_adder(int bits) {
  CODAR_EXPECTS(bits >= 1);
  // Register layout: c_in = 0, a_i = 1 + 2i, b_i = 2 + 2i, c_out = 2b + 1.
  const int n = 2 * bits + 2;
  Circuit c(n, "cuccaro_" + std::to_string(bits));
  auto a = [&](int i) { return static_cast<Qubit>(1 + 2 * i); };
  auto b = [&](int i) { return static_cast<Qubit>(2 + 2 * i); };
  const Qubit cin = 0;
  const Qubit cout = static_cast<Qubit>(n - 1);

  auto maj = [&](Qubit x, Qubit y, Qubit z) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
  };
  auto uma = [&](Qubit x, Qubit y, Qubit z) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
  };

  maj(cin, b(0), a(0));
  for (int i = 1; i < bits; ++i) maj(a(i - 1), b(i), a(i));
  c.cx(a(bits - 1), cout);
  for (int i = bits - 1; i >= 1; --i) uma(a(i - 1), b(i), a(i));
  uma(cin, b(0), a(0));
  for (int i = 0; i < bits; ++i) c.measure(b(i));
  c.measure(cout);
  return c;
}

Circuit draper_adder(int bits) {
  CODAR_EXPECTS(bits >= 1);
  // Registers: a = qubits [0, bits), b = qubits [bits, 2*bits).
  const int n = 2 * bits;
  Circuit c(n, "draper_" + std::to_string(bits));
  // QFT over b in descending qubit order, so Fourier position p holds
  // b_{bits-1-p} and the encoded fraction is b / 2^bits (most-significant
  // bit first); with that convention the phase block below adds a.
  auto b_at = [&](int p) {
    return static_cast<Qubit>(bits + (bits - 1 - p));
  };
  for (int p = 0; p < bits; ++p) {
    c.h(b_at(p));
    for (int q = p + 1; q < bits; ++q) {
      c.cu1(b_at(q), b_at(p), pi / std::pow(2.0, q - p));
    }
  }
  // Controlled phase rotations from a onto b (all mutually commuting):
  // target b_j accumulates pi/2^(j-k) from every control a_k with k <= j;
  // lower-order pairs would only contribute multiples of 2*pi.
  for (Qubit j = 0; j < bits; ++j) {
    for (Qubit k = 0; k <= j; ++k) {
      c.cu1(k, static_cast<Qubit>(bits) + j, pi / std::pow(2.0, j - k));
    }
  }
  // Inverse QFT over b, mirroring the forward pass.
  for (int p = bits - 1; p >= 0; --p) {
    for (int q = bits - 1; q > p; --q) {
      c.cu1(b_at(q), b_at(p), -pi / std::pow(2.0, q - p));
    }
    c.h(b_at(p));
  }
  return c;
}

Circuit toffoli_chain(int n, int layers) {
  CODAR_EXPECTS(n >= 3);
  CODAR_EXPECTS(layers >= 1);
  Circuit c(n, "tofchain_" + std::to_string(n) + "_" +
                   std::to_string(layers));
  for (int layer = 0; layer < layers; ++layer) {
    for (Qubit i = 0; i + 2 < n; ++i) {
      c.ccx(i, i + 1, i + 2);
    }
  }
  return c;
}

Circuit random_circuit(int n, int num_gates, double two_qubit_fraction,
                       std::uint64_t seed) {
  CODAR_EXPECTS(n >= 2);
  CODAR_EXPECTS(num_gates >= 0);
  CODAR_EXPECTS(two_qubit_fraction >= 0.0 && two_qubit_fraction <= 1.0);
  Circuit c(n, "random_" + std::to_string(n) + "_" +
                   std::to_string(num_gates));
  Rng rng(seed);
  for (int g = 0; g < num_gates; ++g) {
    if (rng.uniform() < two_qubit_fraction) {
      const Qubit q1 = static_cast<Qubit>(rng.index(
          static_cast<std::size_t>(n)));
      Qubit q2 = q1;
      while (q2 == q1) {
        q2 = static_cast<Qubit>(rng.index(static_cast<std::size_t>(n)));
      }
      c.cx(q1, q2);
    } else {
      const Qubit q = static_cast<Qubit>(rng.index(
          static_cast<std::size_t>(n)));
      switch (rng.uniform_int(0, 5)) {
        case 0: c.h(q); break;
        case 1: c.x(q); break;
        case 2: c.t(q); break;
        case 3: c.tdg(q); break;
        case 4: c.s(q); break;
        default: c.rz(q, rng.uniform(0.0, 2.0 * pi)); break;
      }
    }
  }
  return c;
}

Circuit qaoa_maxcut(int n, int layers, std::uint64_t seed) {
  CODAR_EXPECTS(n >= 3);
  CODAR_EXPECTS(layers >= 1);
  Circuit c(n, "qaoa_" + std::to_string(n) + "_" + std::to_string(layers));
  Rng rng(seed);
  // Random graph, edge probability 3/n (sparse, connected-ish); always
  // include the ring so the instance is nontrivial.
  std::vector<std::pair<Qubit, Qubit>> graph_edges;
  for (Qubit i = 0; i < n; ++i) {
    graph_edges.emplace_back(i, (i + 1) % n);
  }
  for (Qubit i = 0; i < n; ++i) {
    for (Qubit j = i + 2; j < n; ++j) {
      if ((i == 0 && j == n - 1)) continue;  // already in the ring
      if (rng.uniform() < 3.0 / n) graph_edges.emplace_back(i, j);
    }
  }
  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (int layer = 0; layer < layers; ++layer) {
    const double gamma = rng.uniform(0.1, pi);
    const double beta = rng.uniform(0.1, pi / 2.0);
    for (const auto& [u, v] : graph_edges) c.rzz(u, v, gamma);
    for (Qubit i = 0; i < n; ++i) c.rx(i, 2.0 * beta);
  }
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit hardware_efficient_ansatz(int n, int layers, std::uint64_t seed) {
  CODAR_EXPECTS(n >= 2);
  CODAR_EXPECTS(layers >= 1);
  Circuit c(n, "ansatz_" + std::to_string(n) + "_" + std::to_string(layers));
  Rng rng(seed);
  for (int layer = 0; layer < layers; ++layer) {
    for (Qubit i = 0; i < n; ++i) c.ry(i, rng.uniform(0.0, 2.0 * pi));
    for (Qubit i = 0; i + 1 < n; ++i) c.cz(i, i + 1);
  }
  for (Qubit i = 0; i < n; ++i) c.ry(i, rng.uniform(0.0, 2.0 * pi));
  return c;
}

Circuit ising_trotter(int n, int steps) {
  CODAR_EXPECTS(n >= 2);
  CODAR_EXPECTS(steps >= 1);
  Circuit c(n, "ising_" + std::to_string(n) + "_" + std::to_string(steps));
  const double dt = 0.1;
  for (int s = 0; s < steps; ++s) {
    for (Qubit i = 0; i + 1 < n; ++i) c.rzz(i, i + 1, 2.0 * dt);
    for (Qubit i = 0; i < n; ++i) c.rx(i, 2.0 * dt);
  }
  return c;
}

Circuit qpe(int counting, double theta) {
  CODAR_EXPECTS(counting >= 1 && counting <= 24);
  // Qubits [0, counting) hold the phase estimate; qubit `counting` holds
  // the U1 eigenstate |1>.
  Circuit c(counting + 1, "qpe_" + std::to_string(counting));
  const Qubit target = static_cast<Qubit>(counting);
  c.x(target);
  for (Qubit i = 0; i < counting; ++i) c.h(i);
  // Counting qubit i picks up phase 2*pi*theta*2^(counting-1-i) — all
  // mutually commuting CU1s. With the descending-order inverse QFT below
  // (the convention that decodes the fraction directly, as in
  // draper_adder), bit i of the estimate lands on qubit i.
  for (Qubit i = 0; i < counting; ++i) {
    c.cu1(i, target,
          2.0 * pi * theta * std::pow(2.0, counting - 1 - i));
  }
  auto at = [&](int p) { return static_cast<Qubit>(counting - 1 - p); };
  for (int p = counting - 1; p >= 0; --p) {
    for (int q = counting - 1; q > p; --q) {
      c.cu1(at(q), at(p), -pi / std::pow(2.0, q - p));
    }
    c.h(at(p));
  }
  for (Qubit i = 0; i < counting; ++i) c.measure(i);
  return c;
}

Circuit hidden_shift(int n, std::uint64_t shift) {
  CODAR_EXPECTS(n >= 2 && n % 2 == 0 && n < 63);
  CODAR_EXPECTS(shift < (std::uint64_t{1} << n));
  Circuit c(n, "hshift_" + std::to_string(n));
  const int half = n / 2;
  auto cz_wall = [&]() {
    for (Qubit i = 0; i < half; ++i) c.cz(i, i + half);
  };
  auto x_shift = [&]() {
    for (Qubit i = 0; i < n; ++i) {
      if ((shift >> i) & 1U) c.x(i);
    }
  };
  for (Qubit i = 0; i < n; ++i) c.h(i);
  x_shift();
  cz_wall();  // oracle of the shifted function
  x_shift();
  for (Qubit i = 0; i < n; ++i) c.h(i);
  cz_wall();  // oracle of the dual bent function
  for (Qubit i = 0; i < n; ++i) c.h(i);
  for (Qubit i = 0; i < n; ++i) c.measure(i);
  return c;
}

Circuit quantum_volume(int n, int depth, std::uint64_t seed) {
  CODAR_EXPECTS(n >= 2);
  CODAR_EXPECTS(depth >= 1);
  Circuit c(n, "qv_" + std::to_string(n) + "_" + std::to_string(depth));
  Rng rng(seed);
  std::vector<Qubit> order(static_cast<std::size_t>(n));
  for (Qubit i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  auto random_u3 = [&](Qubit q) {
    c.u3(q, rng.uniform(0.0, pi), rng.uniform(0.0, 2.0 * pi),
         rng.uniform(0.0, 2.0 * pi));
  };
  for (int layer = 0; layer < depth; ++layer) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (int k = 0; k + 1 < n; k += 2) {
      const Qubit a = order[static_cast<std::size_t>(k)];
      const Qubit b = order[static_cast<std::size_t>(k + 1)];
      random_u3(a);
      random_u3(b);
      c.cx(a, b);
      random_u3(a);
      random_u3(b);
      c.cx(b, a);
      random_u3(a);
      random_u3(b);
    }
  }
  return c;
}

}  // namespace codar::workloads

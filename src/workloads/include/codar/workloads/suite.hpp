#pragma once

// The evaluation suite: 71 benchmark instances standing in for the paper's
// collection (IBM Qiskit + RevLib + ScaffCC + Quipper programs), matching
// its shape: 68 programs using 3..16 qubits plus three 36-qubit programs,
// from arithmetic / textbook-algorithm / QFT / variational / random
// families, up to tens of thousands of gates. All circuits are lowered to
// <= 2-qubit gates (Toffolis decomposed), ready for routing.

#include <string>
#include <vector>

#include "codar/ir/circuit.hpp"

namespace codar::workloads {

/// One suite entry.
struct BenchmarkSpec {
  std::string name;
  ir::Circuit circuit;  ///< Lowered to <=2-qubit gates.
};

/// The full 71-entry suite, ordered by qubit count (ascending), as the
/// paper's Fig. 8 lists its benchmarks.
std::vector<BenchmarkSpec> benchmark_suite();

/// The "7 famous quantum algorithms" of the paper's Fig. 9 fidelity study,
/// sized for a 9-qubit (3×3 lattice) device.
std::vector<BenchmarkSpec> famous_algorithms();

}  // namespace codar::workloads

#pragma once

// Benchmark circuit generators covering the families of the paper's
// 71-benchmark collection (RevLib-style reversible arithmetic, textbook
// algorithms compiled the ScaffCC/Quipper way, QFT-based kernels, random
// circuits). Every generator is deterministic given its arguments.

#include <cstdint>

#include "codar/ir/circuit.hpp"

namespace codar::workloads {

using ir::Circuit;
using ir::Qubit;

/// n-qubit Quantum Fourier Transform (H + controlled-phase ladder);
/// `with_final_swaps` appends the bit-reversal SWAP network.
Circuit qft(int n, bool with_final_swaps = false);

/// Inverse QFT.
Circuit inverse_qft(int n, bool with_initial_swaps = false);

/// GHZ state preparation: H then a CX chain. n >= 2.
Circuit ghz(int n);

/// W-state preparation (Diker's deterministic construction: X, then a
/// cascade of controlled-RY + CX). n >= 2.
Circuit w_state(int n);

/// Bernstein-Vazirani over an n-bit secret (uses n + 1 qubits).
Circuit bernstein_vazirani(int n, std::uint64_t secret);

/// Deutsch-Jozsa over n inputs + 1 ancilla; balanced or constant oracle.
Circuit deutsch_jozsa(int n, bool balanced);

/// Simon's algorithm for an n-bit secret s != 0 (uses 2n qubits).
Circuit simon(int n, std::uint64_t secret);

/// Grover search marking |1...1> over an n-qubit register, with the given
/// number of iterations. Uses n + max(0, n - 3) qubits (CCX-cascade
/// ancillas for the multi-controlled Z).
Circuit grover(int n, int iterations);

/// Cuccaro ripple-carry adder on two `bits`-bit registers
/// (2*bits + 2 qubits: carry-in ancilla, a, b, carry-out).
Circuit cuccaro_adder(int bits);

/// Draper QFT adder |a>|b> -> |a>|a+b> (2*bits qubits; CU1-heavy, a
/// commutativity showcase).
Circuit draper_adder(int bits);

/// `layers` layers of overlapping Toffoli gates on n >= 3 qubits.
Circuit toffoli_chain(int n, int layers);

/// Random circuit: `num_gates` gates, a `two_qubit_fraction` of which are
/// CX on random distinct pairs; the rest draw from {H, X, T, Tdg, S, RZ}.
Circuit random_circuit(int n, int num_gates, double two_qubit_fraction,
                       std::uint64_t seed);

/// QAOA MaxCut ansatz on a random graph with edge probability 3/n:
/// `layers` alternations of RZZ cost and RX mixer layers.
Circuit qaoa_maxcut(int n, int layers, std::uint64_t seed);

/// Hardware-efficient variational ansatz: RY layers + CZ entangler chain.
Circuit hardware_efficient_ansatz(int n, int layers, std::uint64_t seed);

/// First-order Trotterized transverse-field Ising evolution on a chain.
Circuit ising_trotter(int n, int steps);

/// Quantum phase estimation of the phase gate U1(2*pi*theta) with
/// `counting` counting qubits plus one eigenstate qubit. For theta =
/// j / 2^counting the counting register reads exactly j. CU1-heavy, so a
/// strong commutativity workload.
Circuit qpe(int counting, double theta);

/// Roetteler's hidden-shift algorithm for the bent function
/// f(x) = x_left . x_right on n qubits (n even, >= 2): deterministically
/// outputs `shift`. CZ-heavy with three Hadamard walls.
Circuit hidden_shift(int n, std::uint64_t shift);

/// Quantum-volume-style circuit: `depth` layers, each a random qubit
/// pairing with a randomized SU(4)-like block (u3/cx/u3/cx/u3) per pair.
Circuit quantum_volume(int n, int depth, std::uint64_t seed);

}  // namespace codar::workloads

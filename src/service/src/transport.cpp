#include "codar/service/transport.hpp"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace codar::service {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Owns one fd; closes on destruction. -1 = empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// Renders the numeric host:port of a socket address.
std::string address_label(const sockaddr* addr, socklen_t len) {
  if (addr->sa_family == AF_UNIX) {
    const auto* un = reinterpret_cast<const sockaddr_un*>(addr);
    // An unbound client end has an empty (or abstract) path.
    return un->sun_path[0] != '\0' ? std::string("unix:") + un->sun_path
                                   : std::string("unix:");
  }
  char host[NI_MAXHOST];
  char port[NI_MAXSERV];
  if (getnameinfo(addr, len, host, sizeof host, port, sizeof port,
                  NI_NUMERICHOST | NI_NUMERICSERV) != 0) {
    return "tcp:?";
  }
  return std::string("tcp:") + host + ":" + port;
}

/// Full-duplex stream over one connected socket fd. Reads poll first so
/// callers get timeout slices; writes loop until complete and use
/// MSG_NOSIGNAL so a vanished peer is an error return, not SIGPIPE.
class SocketConnection final : public Connection {
 public:
  SocketConnection(Fd fd, std::string peer)
      : fd_(std::move(fd)), peer_(std::move(peer)) {}

  ReadStatus read_some(char* buf, std::size_t cap, std::size_t* n,
                       int timeout_ms) override {
    *n = 0;
    pollfd p{fd_.get(), POLLIN, 0};
    for (;;) {
      const int ready = ::poll(&p, 1, timeout_ms);
      if (ready == 0) return ReadStatus::kTimeout;
      if (ready < 0) {
        if (errno == EINTR) continue;  // retry with the full slice
        return ReadStatus::kError;
      }
      break;
    }
    for (;;) {
      const ssize_t got = ::recv(fd_.get(), buf, cap, 0);
      if (got > 0) {
        *n = static_cast<std::size_t>(got);
        return ReadStatus::kData;
      }
      if (got == 0) return ReadStatus::kEof;
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
  }

  bool write_all(std::string_view data) override {
    if (broken_) return false;
    while (!data.empty()) {
      const ssize_t put =
          ::send(fd_.get(), data.data(), data.size(), MSG_NOSIGNAL);
      if (put < 0) {
        if (errno == EINTR) continue;
        broken_ = true;
        return false;
      }
      data.remove_prefix(static_cast<std::size_t>(put));
    }
    return true;
  }

  std::string peer() const override { return peer_; }

 private:
  Fd fd_;
  std::string peer_;
  bool broken_ = false;
};

/// Shared accept loop over one listening fd, woken by a self-pipe. The
/// pipe (not closing the fd) is the shutdown signal so close() from
/// another thread never races a concurrent accept() on a recycled fd.
class SocketListener final : public Listener {
 public:
  SocketListener(Fd fd, std::string endpoint, std::string unlink_path)
      : fd_(std::move(fd)),
        endpoint_(std::move(endpoint)),
        unlink_path_(std::move(unlink_path)) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) fail_errno("pipe");
    wake_rd_ = Fd(pipe_fds[0]);
    wake_wr_ = Fd(pipe_fds[1]);
  }

  ~SocketListener() override {
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
  }

  std::unique_ptr<Connection> accept() override {
    for (;;) {
      pollfd fds[2] = {{fd_.get(), POLLIN, 0}, {wake_rd_.get(), POLLIN, 0}};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return nullptr;
      }
      if ((fds[1].revents & POLLIN) != 0) return nullptr;  // close()d
      if ((fds[0].revents & POLLIN) == 0) continue;
      sockaddr_storage addr{};
      socklen_t len = sizeof addr;
      const int client =
          ::accept(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len);
      if (client < 0) continue;  // transient (ECONNABORTED, EMFILE, ...)
      return std::make_unique<SocketConnection>(
          Fd(client),
          address_label(reinterpret_cast<sockaddr*>(&addr), len));
    }
  }

  void close() override {
    // One byte is enough; accept() never drains the pipe, so the wakeup
    // is sticky and close() stays idempotent.
    const std::lock_guard<std::mutex> lock(close_mutex_);
    if (closed_) return;
    closed_ = true;
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_.get(), &byte, 1);
  }

  std::string endpoint() const override { return endpoint_; }

 private:
  Fd fd_;
  Fd wake_rd_;
  Fd wake_wr_;
  std::string endpoint_;
  std::string unlink_path_;  ///< Unix socket file to remove on teardown.
  std::mutex close_mutex_;
  bool closed_ = false;
};

Fd tcp_listen_fd(const ListenSpec& spec, std::string* endpoint) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(spec.port);
  const int rc = ::getaddrinfo(spec.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve '" + spec.host +
                             "': " + gai_strerror(rc));
  }
  Fd fd;
  std::string error = "no usable address for '" + spec.host + "'";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) continue;
    const int one = 1;
    ::setsockopt(candidate.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(candidate.get(), ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(candidate.get(), SOMAXCONN) != 0) {
      error = std::string("cannot bind ") + to_string(spec) + ": " +
              std::strerror(errno);
      continue;
    }
    fd = std::move(candidate);
    break;
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) throw std::runtime_error(error);

  // Report the kernel-resolved address, so `tcp:127.0.0.1:0` comes back
  // as a connectable endpoint with the real port.
  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    *endpoint = address_label(reinterpret_cast<sockaddr*>(&bound), len);
  } else {
    *endpoint = to_string(spec);
  }
  return fd;
}

Fd unix_listen_fd(const ListenSpec& spec) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, spec.path.c_str(), spec.path.size() + 1);
  // A stale socket file from a dead server would make bind fail with
  // EADDRINUSE even though nobody is listening; remove it first. A *live*
  // server's file is also removed — two servers on one path is an
  // operator error this transport does not arbitrate.
  ::unlink(spec.path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd.get(), SOMAXCONN) != 0) {
    fail_errno("cannot bind " + to_string(spec));
  }
  return fd;
}

/// stdio transport: blocking stream reads (get() for the first byte,
/// readsome() to drain whatever the streambuf already holds, so pipelined
/// lines arrive in one chunk). Timeout slices are ignored — see the
/// header contract.
class StreamConnection final : public Connection {
 public:
  StreamConnection(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  ReadStatus read_some(char* buf, std::size_t cap, std::size_t* n,
                       int /*timeout_ms*/) override {
    *n = 0;
    if (cap == 0) return ReadStatus::kData;
    const int first = in_.get();
    if (first == std::char_traits<char>::eof()) {
      return in_.bad() ? ReadStatus::kError : ReadStatus::kEof;
    }
    buf[0] = static_cast<char>(first);
    const std::streamsize more =
        in_.readsome(buf + 1, static_cast<std::streamsize>(cap - 1));
    *n = 1 + static_cast<std::size_t>(more > 0 ? more : 0);
    return ReadStatus::kData;
  }

  bool write_all(std::string_view data) override {
    out_.write(data.data(), static_cast<std::streamsize>(data.size()));
    out_.flush();
    return out_.good();
  }

  std::string peer() const override { return "stdio"; }

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace

ListenSpec parse_listen_spec(const std::string& spec) {
  ListenSpec out;
  if (spec == "stdio") {
    out.kind = ListenSpec::Kind::kStdio;
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("tcp listen spec must be tcp:HOST:PORT, "
                                  "got '" + spec + "'");
    }
    out.kind = ListenSpec::Kind::kTcp;
    out.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(port.data(), port.data() + port.size(), value);
    if (ec != std::errc() || ptr != port.data() + port.size() ||
        value > 65535) {
      throw std::invalid_argument("tcp port must be an integer in "
                                  "[0, 65535], got '" + port + "'");
    }
    out.port = static_cast<std::uint16_t>(value);
    return out;
  }
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = ListenSpec::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      throw std::invalid_argument("unix listen spec must be unix:PATH");
    }
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::invalid_argument(
          "unix socket path exceeds " +
          std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) + " bytes: '" +
          out.path + "'");
    }
    return out;
  }
  throw std::invalid_argument(
      "listen spec must be tcp:HOST:PORT, unix:PATH or stdio, got '" + spec +
      "'");
}

std::string to_string(const ListenSpec& spec) {
  switch (spec.kind) {
    case ListenSpec::Kind::kStdio:
      return "stdio";
    case ListenSpec::Kind::kTcp:
      return "tcp:" + spec.host + ":" + std::to_string(spec.port);
    case ListenSpec::Kind::kUnix:
      return "unix:" + spec.path;
  }
  return "stdio";  // unreachable; keeps GCC's -Wreturn-type quiet
}

std::unique_ptr<Listener> make_listener(const ListenSpec& spec) {
  switch (spec.kind) {
    case ListenSpec::Kind::kTcp: {
      std::string endpoint;
      Fd fd = tcp_listen_fd(spec, &endpoint);
      return std::make_unique<SocketListener>(std::move(fd),
                                              std::move(endpoint), "");
    }
    case ListenSpec::Kind::kUnix: {
      Fd fd = unix_listen_fd(spec);
      return std::make_unique<SocketListener>(std::move(fd), to_string(spec),
                                              spec.path);
    }
    case ListenSpec::Kind::kStdio:
      break;
  }
  throw std::invalid_argument("stdio is served inline, not via a listener");
}

std::unique_ptr<Connection> connect_endpoint(const std::string& spec,
                                             int timeout_ms) {
  const ListenSpec parsed = parse_listen_spec(spec);
  if (parsed.kind == ListenSpec::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) fail_errno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) != 0) {
      fail_errno("cannot connect to " + spec);
    }
    return std::make_unique<SocketConnection>(std::move(fd), spec);
  }
  if (parsed.kind != ListenSpec::Kind::kTcp) {
    throw std::invalid_argument("cannot connect to '" + spec + "'");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(parsed.port);
  const int rc =
      ::getaddrinfo(parsed.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve '" + parsed.host +
                             "': " + gai_strerror(rc));
  }
  Fd fd;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) continue;
    if (timeout_ms >= 0) {
      // Nonblocking connect + poll gives the caller a bounded wait; the
      // socket goes back to blocking mode for the NDJSON conversation.
      const int flags = ::fcntl(candidate.get(), F_GETFL, 0);
      ::fcntl(candidate.get(), F_SETFL, flags | O_NONBLOCK);
      const int c = ::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen);
      if (c != 0 && errno != EINPROGRESS) continue;
      if (c != 0) {
        pollfd p{candidate.get(), POLLOUT, 0};
        if (::poll(&p, 1, timeout_ms) <= 0) continue;
        int soerr = 0;
        socklen_t len = sizeof soerr;
        if (::getsockopt(candidate.get(), SOL_SOCKET, SO_ERROR, &soerr,
                         &len) != 0 ||
            soerr != 0) {
          continue;
        }
      }
      ::fcntl(candidate.get(), F_SETFL, flags);
    } else if (::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) !=
               0) {
      continue;
    }
    fd = std::move(candidate);
    break;
  }
  ::freeaddrinfo(res);
  if (!fd.valid()) {
    throw std::runtime_error("cannot connect to " + spec + ": " +
                             std::strerror(errno));
  }
  return std::make_unique<SocketConnection>(std::move(fd), spec);
}

std::unique_ptr<Connection> make_stream_connection(std::istream& in,
                                                   std::ostream& out) {
  return std::make_unique<StreamConnection>(in, out);
}

}  // namespace codar::service

#include "codar/service/protocol.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "codar/arch/device_json.hpp"
#include "codar/common/fnv.hpp"
#include "codar/pipeline/device_registry.hpp"
#include "codar/pipeline/registry.hpp"
#include "codar/service/json.hpp"

namespace codar::service {

namespace {

[[noreturn]] void bad(const std::string& what) { throw ProtocolError(what); }

const std::string& require_string(const Json& v, const char* key) {
  if (!v.is_string()) bad(std::string("'") + key + "' must be a string");
  return v.as_string();
}

bool require_bool(const Json& v, const char* key) {
  if (!v.is_bool()) bad(std::string("'") + key + "' must be a boolean");
  return v.as_bool();
}

long long require_int(const Json& v, const char* key) {
  if (!v.is_number()) bad(std::string("'") + key + "' must be an integer");
  const double d = v.as_number();
  if (d != std::floor(d) || std::abs(d) > 9.0e15) {
    bad(std::string("'") + key + "' must be an integer");
  }
  return static_cast<long long>(d);
}

double require_finite(const Json& v, const char* key) {
  if (!v.is_number()) bad(std::string("'") + key + "' must be a number");
  const double d = v.as_number();
  if (!std::isfinite(d)) {
    bad(std::string("'") + key + "' must be a finite number");
  }
  return d;
}

/// Resolves a router/mapping name against its registry, rewrapping the
/// registry's UsageError (which lists the registered names) as a
/// ProtocolError.
template <typename Registry>
const std::string& registered_name(const Registry& registry,
                                   const std::string& name) {
  try {
    return registry.at(name).name;
  } catch (const pipeline::UsageError& e) {
    throw ProtocolError(e.what());
  }
}

/// Applies one member of the request's "options" object. Mirrors the CLI
/// flags one-to-one (see parse_routing_flag); key names use underscores.
void apply_option(cli::Options& opts, const std::string& key,
                  const Json& v) {
  if (key == "initial") {
    opts.mapping = registered_name(pipeline::MappingRegistry::instance(),
                                   require_string(v, "initial"));
  } else if (key == "seed") {
    opts.seed = static_cast<std::uint64_t>(require_int(v, "seed"));
  } else if (key == "mapping_rounds") {
    const long long n = require_int(v, "mapping_rounds");
    if (n < 0) bad("'mapping_rounds' must be >= 0");
    opts.mapping_rounds = static_cast<int>(n);
  } else if (key == "peephole") {
    opts.peephole = require_bool(v, "peephole");
  } else if (key == "verify") {
    opts.verify = require_bool(v, "verify");
  } else if (key == "timing") {
    opts.timing = require_bool(v, "timing");
  } else if (key == "context") {
    opts.codar.context_aware = require_bool(v, "context");
  } else if (key == "duration") {
    opts.codar.duration_aware = require_bool(v, "duration");
  } else if (key == "commutativity") {
    opts.codar.commutativity_aware = require_bool(v, "commutativity");
  } else if (key == "fine_priority") {
    opts.codar.fine_priority = require_bool(v, "fine_priority");
  } else if (key == "window") {
    opts.codar.front_window = static_cast<int>(require_int(v, "window"));
  } else if (key == "stagnation") {
    const long long n = require_int(v, "stagnation");
    if (n < 1) bad("'stagnation' must be >= 1");
    opts.codar.stagnation_threshold = static_cast<int>(n);
  } else if (key == "alpha") {
    opts.fid.alpha = require_finite(v, "alpha");
  } else if (key == "beta") {
    opts.fid.beta = require_finite(v, "beta");
    if (opts.fid.beta < 0.0) bad("'beta' must be >= 0");
  } else if (key == "gamma") {
    opts.fid.gamma = require_finite(v, "gamma");
    if (opts.fid.gamma < 0.0) bad("'gamma' must be >= 0");
  } else if (key == "extras") {
    // Free-form knobs for externally registered passes, mirroring the
    // CLI's --set KEY=VALUE (see RoutingSpec::extras). String values
    // only, so the fingerprinted representation is unambiguous. The
    // request's object *replaces* the serve-line defaults wholesale —
    // per-key merging would leave no way to unset a default knob.
    if (!v.is_object()) bad("'extras' must be an object");
    opts.extras.clear();
    for (const auto& [k, member] : v.members()) {
      opts.set_extra(k, require_string(member, "extras value"));
    }
  } else {
    bad("unknown option '" + key + "'");
  }
}

}  // namespace

ServeRequest parse_request(const std::string& line,
                           const cli::Options& defaults) {
  Json doc = [&] {
    try {
      return Json::parse(line);
    } catch (const JsonError& e) {
      throw ProtocolError(e.what());
    }
  }();
  if (!doc.is_object()) bad("request must be a JSON object");
  // Strict schema: a typo'd key (e.g. "devics") must error, not silently
  // route with server defaults — same policy as inside "options". Same
  // for duplicates, where find() would silently drop all but the first.
  for (std::size_t i = 0; i < doc.members().size(); ++i) {
    const std::string& key = doc.members()[i].first;
    if (key != "id" && key != "cmd" && key != "qasm" &&
        key != "suite_name" && key != "name" && key != "device" &&
        key != "router" && key != "options") {
      bad("unknown request key '" + key + "'");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (doc.members()[j].first == key) {
        bad("duplicate request key '" + key + "'");
      }
    }
  }

  ServeRequest req;
  req.opts = defaults;
  if (const Json* id = doc.find("id")) {
    if (id->is_number()) {
      req.id_json = id->raw_number();
    } else if (id->is_string()) {
      req.id_json = json_quote(id->as_string());
    } else if (!id->is_null()) {
      bad("'id' must be a number or string");
    }
  }

  if (const Json* cmd = doc.find("cmd")) {
    const std::string& name = require_string(*cmd, "cmd");
    if (name != "stats") bad("unknown cmd '" + name + "'");
    // Same strict-schema policy as route requests: a control line
    // carrying route payload is a client bug, not something to drop.
    for (const char* key : {"qasm", "suite_name", "name", "device",
                            "router", "options"}) {
      if (doc.find(key)) {
        bad(std::string("'") + key + "' is not valid in a control request");
      }
    }
    req.kind = ServeRequest::Kind::kStats;
    return req;
  }

  const Json* qasm = doc.find("qasm");
  const Json* suite = doc.find("suite_name");
  if ((qasm != nullptr) == (suite != nullptr)) {
    bad("route requests need exactly one of 'qasm' or 'suite_name'");
  }
  if (qasm) req.qasm = require_string(*qasm, "qasm");
  if (suite) req.suite_name = require_string(*suite, "suite_name");

  if (const Json* name = doc.find("name")) {
    req.name = require_string(*name, "name");
  }
  if (const Json* device = doc.find("device")) {
    if (device->is_string()) {
      // Trust boundary: request lines are untrusted, and some registry
      // entries (the `file:` JSON loader) read the server's filesystem.
      // Refuse those here — the serve *command line* may still use them,
      // and remote clients ship inline device objects instead.
      const std::string& spec = device->as_string();
      if (const pipeline::DeviceEntry* entry =
              pipeline::DeviceRegistry::instance().resolve(spec)) {
        if (entry->local_only) {
          bad("device spec '" + spec + "' reads the server filesystem and "
              "is not allowed in requests; send an inline device object "
              "instead");
        }
      }
      req.opts.device = spec;
    } else if (device->is_object()) {
      // Inline device description, same schema as `--device file:`. Parse
      // errors become per-request protocol errors.
      try {
        auto parsed = std::make_shared<const arch::Device>(
            arch::device_from_json(*device));
        req.opts.device = parsed->name;  // display-only (not cache-keyed)
        req.inline_device = std::move(parsed);
      } catch (const std::invalid_argument& e) {
        bad(e.what());
      }
    } else {
      bad("'device' must be a spec string or a device object");
    }
  }
  if (const Json* router = doc.find("router")) {
    req.opts.router = registered_name(pipeline::RouterRegistry::instance(),
                                      require_string(*router, "router"));
  }
  if (const Json* options = doc.find("options")) {
    if (!options->is_object()) bad("'options' must be an object");
    for (const auto& [key, value] : options->members()) {
      apply_option(req.opts, key, value);
    }
  }
  return req;
}

std::uint64_t options_fingerprint(const cli::Options& opts) {
  common::Fnv1a h;
  h.u64(3);  // fingerprint schema version (3: + codar-fid objective weights)
  h.str(opts.router);
  h.str(opts.mapping);
  h.u64(opts.seed);
  h.i64(opts.mapping_rounds);
  h.byte(opts.peephole ? 1 : 0);
  h.byte(opts.verify ? 1 : 0);
  h.byte(opts.codar.context_aware ? 1 : 0);
  h.byte(opts.codar.duration_aware ? 1 : 0);
  h.byte(opts.codar.commutativity_aware ? 1 : 0);
  h.byte(opts.codar.fine_priority ? 1 : 0);
  h.i64(opts.codar.front_window);
  h.i64(opts.codar.stagnation_threshold);
  // Objective weights change routed output for codar-fid, so they are
  // cache-key relevant. Folded unconditionally (also under codar/sabre,
  // where they are inert): conditioning on the router name would make two
  // requests that differ only in an ignored knob alias — harmless — but
  // cost a router-name comparison on every lookup for no correctness win.
  h.f64(opts.fid.alpha);
  h.f64(opts.fid.beta);
  h.f64(opts.fid.gamma);
  // extras is kept sorted by set_extra, so this is canonical; str() is
  // length-prefixed, so keys and values cannot alias.
  h.u64(opts.extras.size());
  for (const auto& [key, value] : opts.extras) {
    h.str(key);
    h.str(value);
  }
  return h.value();
}

}  // namespace codar::service

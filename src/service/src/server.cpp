#include "codar/service/server.hpp"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include <unistd.h>

#include "codar/cli/device_registry.hpp"
#include "codar/common/thread_annotations.hpp"
#include "codar/cli/report.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/service/json.hpp"
#include "codar/service/protocol.hpp"
#include "codar/service/route_cache.hpp"
#include "codar/service/transport.hpp"
#include "codar/store/log_store.hpp"
#include "codar/store/report_codec.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::service {

namespace {

std::size_t parse_size(const std::string& flag, const std::string& value) {
  std::size_t result = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw cli::UsageError(flag + " expects a non-negative integer, got '" +
                          value + "'");
  }
  return result;
}

/// Reader-side poll slice: the longest a reader blocks in one read call
/// before re-checking the shutdown flag and its idle budget.
constexpr int kReadSliceMs = 200;

/// Splits a Connection's byte stream into NDJSON lines, enforcing the
/// oversized-frame cap and the idle timeout, and noticing shutdown between
/// read slices. A final unterminated line before EOF is still yielded
/// (matching std::getline on the old stdio loop).
class LineReader {
 public:
  enum class Status {
    kLine,       ///< `*line` holds one request line (no terminator).
    kEof,        ///< Peer closed; no more lines.
    kShutdown,   ///< Server shutdown observed between reads.
    kIdle,       ///< Idle timeout expired with no data.
    kOversized,  ///< A line exceeded max_line_bytes; framing untrusted.
    kError,      ///< Transport error.
  };

  LineReader(Connection& io, std::size_t max_line_bytes, int idle_timeout_ms,
             const std::atomic<bool>& shutdown)
      : io_(io),
        max_line_bytes_(max_line_bytes),
        idle_timeout_ms_(idle_timeout_ms),
        shutdown_(shutdown) {}

  Status next(std::string* line) {
    int idle_elapsed_ms = 0;
    for (;;) {
      // A complete buffered line is served before any further I/O, so
      // pipelined requests that arrived in one chunk never wait.
      const std::size_t nl = buffer_.find('\n', scan_from_);
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_.erase(0, nl + 1);
        scan_from_ = 0;
        return Status::kLine;
      }
      scan_from_ = buffer_.size();
      if (buffer_.size() > max_line_bytes_) return Status::kOversized;
      if (eof_) {
        if (buffer_.empty()) return Status::kEof;
        line->assign(std::move(buffer_));  // final unterminated line
        buffer_.clear();
        scan_from_ = 0;
        return Status::kLine;
      }
      if (shutdown_.load(std::memory_order_relaxed)) {
        return Status::kShutdown;
      }
      char chunk[16 * 1024];
      std::size_t got = 0;
      switch (io_.read_some(chunk, sizeof chunk, &got, kReadSliceMs)) {
        case ReadStatus::kData:
          idle_elapsed_ms = 0;
          buffer_.append(chunk, got);
          break;
        case ReadStatus::kEof:
          eof_ = true;
          break;
        case ReadStatus::kTimeout:
          idle_elapsed_ms += kReadSliceMs;
          if (idle_timeout_ms_ > 0 && idle_elapsed_ms >= idle_timeout_ms_) {
            return Status::kIdle;
          }
          break;
        case ReadStatus::kError:
          return Status::kError;
      }
    }
  }

 private:
  Connection& io_;
  std::size_t max_line_bytes_;
  int idle_timeout_ms_;
  const std::atomic<bool>& shutdown_;
  std::string buffer_;
  std::size_t scan_from_ = 0;  ///< '\n' cannot be before here.
  bool eof_ = false;
};

/// Everything one serve session owns: worker pool, request queue, route
/// cache, the device / suite memos shared across workers, and the set of
/// live client connections.
class Server {
 public:
  /// A memoized device plus its content fingerprint (so the per-request
  /// cache-key computation is a map lookup, not an O(edges) rehash).
  struct DeviceEntry {
    std::shared_ptr<const arch::Device> device;
    std::uint64_t fingerprint = 0;
  };

  /// A memoized suite benchmark plus its content fingerprint.
  struct SuiteEntry {
    ir::Circuit circuit;
    std::uint64_t fingerprint = 0;
  };

  /// One client connection. The write side is a bounded queue drained by
  /// at most one thread at a time (whoever enqueues into an idle queue
  /// becomes the drainer), so a slow client occupies at most one worker.
  /// `inflight` counts responses owed but not yet written — route
  /// requests from acceptance, reader-generated error/stats lines from
  /// enqueue — and is the backpressure quantity: the reader stops reading
  /// at max_inflight.
  struct ClientConn {
    explicit ClientConn(std::unique_ptr<Connection> io_)
        : io(std::move(io_)) {}

    std::unique_ptr<Connection> io;
    common::Mutex m;
    /// Signaled on every inflight decrement and on death, for the
    /// reader's backpressure / barrier / drain waits.
    std::condition_variable_any cv;
    std::deque<std::string> write_queue CODAR_GUARDED_BY(m);
    std::size_t inflight CODAR_GUARDED_BY(m) = 0;
    bool writing CODAR_GUARDED_BY(m) = false;  ///< A drainer is active.
    bool dead CODAR_GUARDED_BY(m) = false;     ///< Write side broken.
  };

  /// One unit of routing work bound for one connection.
  struct Job {
    ServeRequest req;
    std::shared_ptr<ClientConn> conn;
  };

  /// `err` receives the persistent-cache startup note and asynchronous
  /// store warnings (corruption recovery, compaction); nullptr routes
  /// warnings to std::cerr and suppresses the note. Opening an unusable
  /// or locked --cache-dir throws std::runtime_error.
  explicit Server(const ServeOptions& opts, std::ostream* err = nullptr)
      : opts_(opts), err_(err), cache_(opts.cache_bytes, opts.cache_shards) {
    if (opts.cache_dir.empty() || opts.cache_bytes == 0) return;
    store::LogStoreOptions store_opts;
    store_opts.max_total_bytes = opts.cache_disk_bytes;
    // Warnings may fire from any worker (CRC mismatch on a read, a
    // compaction pass); serialize them onto the err stream.
    store_opts.log = [this](const std::string& msg) { log_warning(msg); };
    store_ = store::LogStore::open(opts.cache_dir, std::move(store_opts));
    cache_.attach_store(store_.get());
    std::size_t preloaded = 0;
    if (opts.warm_start > 0) {
      for (const auto& [fp, payload] :
           store_->recent_entries(opts.warm_start)) {
        cli::RouteReport report;
        // Undecodable payloads (format-version bump) are simply not
        // preloaded; lookups fall back to routing them.
        if (!store::decode_report(payload, &report)) continue;
        cache_.preload(CacheKey{fp.circuit, fp.device, fp.options}, report);
        ++preloaded;
      }
    }
    if (err_ != nullptr) {
      *err_ << "route cache dir " << store_->dir() << ": "
            << store_->stats().entries << " persisted entries, " << preloaded
            << " preloaded\n";
    }
  }

  /// stdio mode: serve exactly one connection over `in`/`out` on the
  /// calling thread until EOF, then drain and stop.
  void run_stream(std::istream& in, std::ostream& out) {
    start_workers();
    auto conn =
        std::make_shared<ClientConn>(make_stream_connection(in, out));
    reader_loop(conn);
    stop_workers();
  }

  /// Socket mode: accept until the listener is close()d (the handle's
  /// shutdown does that), a reader thread per client.
  void run_listener(Listener& listener) {
    start_workers();
    for (;;) {
      std::unique_ptr<Connection> io = listener.accept();
      if (io == nullptr) break;  // close()d by shutdown
      auto conn = std::make_shared<ClientConn>(std::move(io));
      const common::MutexLock lock(conns_mutex_);
      conns_.push_back(conn);
      reader_threads_.emplace_back(
          [this, conn = std::move(conn)] { reader_loop(conn); });
    }
    // Drain: readers stop reading (shutdown flag), wait out their
    // accepted requests, flush and close; workers then run the queue dry.
    std::vector<std::thread> readers;
    {
      const common::MutexLock lock(conns_mutex_);
      readers.swap(reader_threads_);
    }
    for (std::thread& t : readers) t.join();
    stop_workers();
  }

  /// Stops readers at their next slice; the caller also close()s the
  /// listener (the handle owns it, so there is no ordering race with
  /// run_listener starting up). Safe from any thread, idempotent.
  void shutdown() { shutting_down_.store(true, std::memory_order_relaxed); }

 private:
  void start_workers() {
    int threads = opts_.defaults.threads > 0
                      ? opts_.defaults.threads
                      : static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {
    {
      const common::MutexLock lock(queue_mutex_);
      done_ = true;
    }
    queue_ready_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  /// Reads one connection until EOF / timeout / shutdown, then waits for
  /// every owed response to hit the wire before closing.
  void reader_loop(const std::shared_ptr<ClientConn>& conn) {
    LineReader lines(*conn->io, opts_.max_line_bytes, opts_.idle_timeout_ms,
                     shutting_down_);
    std::string line;
    bool reading = true;
    while (reading) {
      switch (lines.next(&line)) {
        case LineReader::Status::kLine:
          if (line.find_first_not_of(" \t\r") != std::string::npos) {
            handle_line(conn, line);
          }
          break;
        case LineReader::Status::kOversized:
          // The stream position after a dropped over-cap line is
          // untrusted; answer structurally, then close.
          ++errors_;
          respond(conn,
                  "{\"id\": null, \"error\": \"request line exceeds " +
                      std::to_string(opts_.max_line_bytes) +
                      " bytes\"}");
          reading = false;
          break;
        case LineReader::Status::kIdle:
          respond(conn,
                  "{\"id\": null, \"error\": \"idle timeout after " +
                      std::to_string(opts_.idle_timeout_ms) + " ms\"}");
          reading = false;
          break;
        case LineReader::Status::kEof:
        case LineReader::Status::kShutdown:
        case LineReader::Status::kError:
          reading = false;
          break;
      }
    }
    // Drain before close: every accepted request still gets its response
    // (unless the write side already broke, which zeroes inflight).
    {
      const common::MutexLock lock(conn->m);
      while (conn->inflight != 0) conn->cv.wait(conn->m);
    }
    const common::MutexLock lock(conns_mutex_);
    std::erase(conns_, conn);
  }

  void handle_line(const std::shared_ptr<ClientConn>& conn,
                   const std::string& line) {
    ServeRequest req;
    try {
      req = parse_request(line, opts_.defaults);
    } catch (const ProtocolError& e) {
      ++errors_;
      respond(conn, "{\"id\": " + best_effort_id(line) + ", \"error\": " +
                        json_quote(e.what()) + "}");
      return;
    }
    if (req.kind == ServeRequest::Kind::kStats) {
      {
        // Per-connection barrier: a stats request reports on everything
        // this connection enqueued before it, so wait until every owed
        // response is written. (Explicit wait loop, not a predicate
        // lambda: the thread-safety analysis sees the guarded reads in
        // this scope, where the lock is held.)
        const common::MutexLock lock(conn->m);
        while (conn->inflight != 0 && !conn->dead) conn->cv.wait(conn->m);
      }
      respond(conn, stats_response(req));
      return;
    }
    {
      // Backpressure: at max_inflight accepted-but-unwritten requests the
      // reader parks here — this connection's bytes stay in the socket
      // buffer (and eventually push back on the client) instead of
      // ballooning the server queue. Shutdown does not break the wait:
      // workers keep draining during shutdown, and a parsed request is
      // owed a response.
      const common::MutexLock lock(conn->m);
      while (conn->inflight >= opts_.max_inflight && !conn->dead) {
        conn->cv.wait(conn->m);
      }
      if (conn->dead) return;  // peer gone; drop silently
      ++conn->inflight;
    }
    ++requests_;
    {
      const common::MutexLock lock(queue_mutex_);
      queue_.push_back(Job{std::move(req), conn});
    }
    queue_ready_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        const common::MutexLock lock(queue_mutex_);
        while (queue_.empty() && !done_) queue_ready_.wait(queue_mutex_);
        if (queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      deliver(*job.conn, process(job.req));
    }
  }

  /// Reader-side responses (errors, stats): take one inflight unit, then
  /// enqueue. Route responses took their unit at acceptance.
  void respond(const std::shared_ptr<ClientConn>& conn,
               const std::string& line) {
    {
      const common::MutexLock lock(conn->m);
      ++conn->inflight;
    }
    deliver(*conn, line);
  }

  /// Hands one response line (owning one inflight unit) to `c`'s write
  /// queue and drains the queue unless another thread already is. The
  /// unit is released when the line reaches the wire — or is dropped
  /// because the peer vanished — so backpressure tracks the client's
  /// consumption, not just routing completion.
  void deliver(ClientConn& c, const std::string& line) CODAR_EXCLUDES(c.m) {
    c.m.lock();
    if (c.dead) {
      --c.inflight;
      c.cv.notify_all();
      c.m.unlock();
      return;
    }
    c.write_queue.push_back(line + "\n");
    if (c.writing) {
      // The active drainer will pick this entry up before it finishes.
      c.m.unlock();
      return;
    }
    c.writing = true;
    while (!c.write_queue.empty()) {
      const std::string chunk = std::move(c.write_queue.front());
      c.write_queue.pop_front();
      c.m.unlock();
      const bool ok = c.io->write_all(chunk);
      c.m.lock();
      --c.inflight;
      if (!ok) {
        // Client disconnected with responses pending: drop what it will
        // never read and release those units so routing work already in
        // flight unwinds instead of waiting on a dead socket.
        c.dead = true;
        c.inflight -= c.write_queue.size();
        c.write_queue.clear();
      }
      c.cv.notify_all();
    }
    c.writing = false;
    c.m.unlock();
  }

  std::string process(const ServeRequest& req) {
    cli::RouteReport report;
    bool cached = false;
    // Resolved before the try block so error responses carry the same
    // name a successful route would (the qasm-parsed name is refined
    // below once parsing has succeeded).
    std::string display_name =
        !req.name.empty() ? req.name : req.suite_name;
    try {
      const DeviceEntry device = req.inline_device
                                     ? inline_device_for(req.inline_device)
                                     : device_for(req.opts.device);
      // Resolve the circuit source. Suite entries are memoized together
      // with their fingerprints, so the cache-hit fast path never copies
      // a circuit or rehashes its gates; inline QASM has to be parsed
      // (and therefore fingerprinted) fresh each time.
      const ir::Circuit* circuit = nullptr;
      ir::Circuit parsed(0);  // placeholder until a qasm request fills it
      std::uint64_t circuit_fp = 0;
      if (!req.suite_name.empty()) {
        const SuiteEntry& entry = suite_entry(req.suite_name);
        circuit = &entry.circuit;
        circuit_fp = entry.fingerprint;
      } else {
        parsed = qasm::parse(req.qasm);
        circuit = &parsed;
        circuit_fp = parsed.fingerprint();
        if (display_name.empty()) display_name = parsed.name();
      }

      const CacheKey key{circuit_fp, device.fingerprint,
                         options_fingerprint(req.opts)};
      report = cache_.get_or_route(
          key,
          [&] {
            return cli::route_circuit(*circuit, *device.device, req.opts,
                                      /*keep_qasm=*/false);
          },
          &cached);
      if (!cached) ++routed_;
      // The cache is content-addressed (names excluded from the circuit
      // fingerprint), so a hit may carry another requester's label.
      report.name = display_name;
    } catch (const std::exception& e) {
      report.name = display_name;
      report.error = e.what();
    }
    return "{\"id\": " + req.id_json +
           ", \"cached\": " + (cached ? "true" : "false") +
           ", \"result\": " + cli::to_json(report, req.opts) + "}";
  }

  std::string stats_response(const ServeRequest& req) const {
    const CacheCounters c = cache_.counters();
    std::ostringstream out;
    out << "{\"id\": " << req.id_json << ", \"requests\": " << requests_
        << ", \"routed\": " << routed_ << ", \"errors\": " << errors_
        << ", \"cache\": {\"entries\": " << c.entries
        << ", \"bytes\": " << c.bytes << ", \"budget\": " << opts_.cache_bytes
        << ", \"hits\": " << c.hits() << ", \"mem_hits\": " << c.mem_hits
        << ", \"disk_hits\": " << c.disk_hits << ", \"misses\": " << c.misses
        << ", \"evictions\": " << c.evictions
        << ", \"disk\": {\"enabled\": " << (store_ ? "true" : "false")
        << ", \"entries\": " << c.disk_entries
        << ", \"bytes\": " << c.disk_bytes
        << ", \"file_bytes\": " << c.disk_file_bytes
        << ", \"budget\": " << (store_ ? opts_.cache_disk_bytes : 0)
        << ", \"evictions\": " << c.disk_evictions << "}}}";
    return out.str();
  }

  /// Pulls the id out of a request line that failed validation, so even
  /// error responses can be correlated. Falls back to null.
  static std::string best_effort_id(const std::string& line) {
    try {
      const Json doc = Json::parse(line);
      if (const Json* id = doc.find("id")) {
        if (id->is_number()) return id->raw_number();
        if (id->is_string()) return json_quote(id->as_string());
      }
    } catch (const JsonError&) {
      // The line as a whole is not JSON (the usual reason we are here).
      // Scan for an `"id"` member by hand so even a half-garbled request
      // still correlates: accept a number or a string value, nothing else.
      const std::size_t key = line.find("\"id\"");
      if (key == std::string::npos) return "null";
      std::size_t pos = line.find_first_not_of(" \t", key + 4);
      if (pos == std::string::npos || line[pos] != ':') return "null";
      pos = line.find_first_not_of(" \t", pos + 1);
      if (pos == std::string::npos) return "null";
      if (line[pos] == '"') {
        const std::size_t end = line.find('"', pos + 1);
        if (end == std::string::npos) return "null";
        // Re-quote rather than echoing raw bytes back into our JSON.
        return json_quote(line.substr(pos + 1, end - pos - 1));
      }
      const std::size_t end = line.find_first_not_of("-+.0123456789eE", pos);
      const std::string token =
          line.substr(pos, end == std::string::npos ? end : end - pos);
      try {
        return Json::parse(token).raw_number();
      } catch (const JsonError&) {
        return "null";
      }
    }
    return "null";
  }

  /// Spec-string devices, memoized by spec for the server's lifetime.
  /// Requests can only name immutable presets/generators (the protocol
  /// refuses local_only specs like `file:`); a `file:` *default* given on
  /// the serve command line is read once at first use, like any resident
  /// service config.
  DeviceEntry device_for(const std::string& spec) CODAR_EXCLUDES(devices_mutex_) {
    {
      const common::MutexLock lock(devices_mutex_);
      if (const auto it = devices_.find(spec); it != devices_.end()) {
        return it->second;
      }
    }
    // Construction (including the distance-oracle pre-warm) runs outside
    // the lock so a cold lookup never stalls other workers. Two racing
    // cold lookups both build; emplace keeps the first, the loser's copy
    // is discarded — cheaper than single-flighting device construction.
    auto device =
        std::make_shared<const arch::Device>(cli::make_device(spec));
    // Build the lazily constructed distance oracle now, while this thread
    // holds the only reference — workers then only ever read it.
    device->graph.prepare();
    DeviceEntry entry{device, device->fingerprint()};
    const common::MutexLock lock(devices_mutex_);
    return devices_.emplace(spec, std::move(entry)).first->second;
  }

  /// Inline `device` objects are memoized by *content fingerprint* (the
  /// route-cache key), so repeated requests shipping the same calibrated
  /// device share one pre-warmed model instead of rebuilding the distance
  /// oracle per request. A recalibrated device fingerprints differently and
  /// gets its own entry — it can never alias its homogeneous twin.
  DeviceEntry inline_device_for(const std::shared_ptr<const arch::Device>&
                                    device) CODAR_EXCLUDES(devices_mutex_) {
    const std::uint64_t fp = device->fingerprint();
    {
      const common::MutexLock lock(devices_mutex_);
      if (const auto it = inline_devices_.find(fp);
          it != inline_devices_.end()) {
        return it->second;
      }
    }
    // Warm outside the lock: the parser built this object for this request
    // alone, so this thread still holds the only reference.
    device->graph.prepare();
    DeviceEntry entry{device, fp};
    // The dominant cost of a warmed device is its distance backend; the
    // oracle reports its own steady-state bound (dense: the V^2 matrix;
    // on-demand: CSR + row-cache budget).
    const std::size_t bytes = device->graph.distance_footprint_bytes();
    const common::MutexLock lock(devices_mutex_);
    if (inline_devices_.size() >= kMaxInlineDevices ||
        inline_device_bytes_ + bytes > kMaxInlineDeviceBytes) {
      // Memo full (a client churning through distinct calibrations): the
      // request still routes correctly on its own copy; only the
      // cross-request sharing is lost.
      return entry;
    }
    // Count only an actual insertion: a racing worker may have memoized
    // the same fingerprint between the two critical sections.
    const auto [it, inserted] = inline_devices_.emplace(fp, std::move(entry));
    if (inserted) inline_device_bytes_ += bytes;
    return it->second;
  }

  const SuiteEntry& suite_entry(const std::string& name) {
    // Built exactly once; immutable afterwards, so lookups run lock-free
    // and returned references stay valid for the server's lifetime.
    std::call_once(suite_once_, [this] {
      for (workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
        const std::uint64_t fp = spec.circuit.fingerprint();
        suite_index_.emplace(spec.name,
                             SuiteEntry{std::move(spec.circuit), fp});
      }
    });
    const auto it = suite_index_.find(name);
    if (it == suite_index_.end()) {
      throw ProtocolError("unknown suite benchmark '" + name + "'");
    }
    return it->second;
  }

  /// Serializes store warnings onto the err stream (workers may warn
  /// concurrently — a corrupt record noticed on read, a compaction note).
  void log_warning(const std::string& msg) CODAR_EXCLUDES(err_mutex_) {
    const common::MutexLock lock(err_mutex_);
    std::ostream& out = err_ != nullptr ? *err_ : std::cerr;
    out << "warning: " << msg << "\n";
  }

  const ServeOptions& opts_;
  std::ostream* err_;
  common::Mutex err_mutex_;
  /// Optional persistent tier; declared before cache_ so the cache (which
  /// borrows the pointer) is destroyed first.
  std::unique_ptr<store::LogStore> store_;
  RouteCache cache_;

  /// Set once by shutdown(); readers poll it between read slices.
  std::atomic<bool> shutting_down_{false};

  common::Mutex queue_mutex_;
  // condition_variable_any waits on the annotated Mutex directly; wait()
  // releases and reacquires it internally, so the capability is held on
  // both sides of the call and the analysis stays consistent.
  std::condition_variable_any queue_ready_;
  std::deque<Job> queue_ CODAR_GUARDED_BY(queue_mutex_);
  bool done_ CODAR_GUARDED_BY(queue_mutex_) = false;

  common::Mutex conns_mutex_;
  std::vector<std::shared_ptr<ClientConn>> conns_
      CODAR_GUARDED_BY(conns_mutex_);
  std::vector<std::thread> reader_threads_ CODAR_GUARDED_BY(conns_mutex_);

  std::vector<std::thread> workers_;

  /// Inline-device memo bounds. The distance oracle bounds *one* device's
  /// warmed footprint (dense matrices cap at 4 MiB under the kAuto
  /// threshold; larger devices get the byte-budgeted on-demand backend);
  /// these bound their *sum*, so untrusted clients churning through
  /// distinct calibrated devices cannot pin memory for the server's
  /// lifetime — entries for the many-tiny-devices case, bytes for the
  /// few-huge-devices case.
  static constexpr std::size_t kMaxInlineDevices = 1024;
  static constexpr std::size_t kMaxInlineDeviceBytes = 256u << 20;

  common::Mutex devices_mutex_;
  std::unordered_map<std::string, DeviceEntry> devices_
      CODAR_GUARDED_BY(devices_mutex_);
  std::unordered_map<std::uint64_t, DeviceEntry> inline_devices_
      CODAR_GUARDED_BY(devices_mutex_);
  /// Memoized oracle footprint bytes.
  std::size_t inline_device_bytes_ CODAR_GUARDED_BY(devices_mutex_) = 0;

  std::once_flag suite_once_;
  std::unordered_map<std::string, SuiteEntry> suite_index_;

  std::atomic<std::size_t> requests_{0};  ///< Route requests accepted.
  std::atomic<std::size_t> routed_{0};    ///< Requests actually routed.
  std::atomic<std::size_t> errors_{0};    ///< Malformed request lines.
};

/// The socket-mode handle: owns the server, its listener and the thread
/// running the accept loop.
class ServerHandleImpl final : public ServerHandle {
 public:
  ServerHandleImpl(const ServeOptions& opts, std::unique_ptr<Listener> listener)
      : opts_(opts),
        server_(std::make_unique<Server>(opts_)),
        listener_(std::move(listener)),
        thread_([this] { server_->run_listener(*listener_); }) {}

  ~ServerHandleImpl() override {
    shutdown();
    join();
  }

  std::string endpoint() const override { return listener_->endpoint(); }

  void shutdown() override {
    server_->shutdown();
    listener_->close();  // wakes a blocked accept; idempotent
  }

  int join() override {
    if (thread_.joinable()) thread_.join();
    return 0;
  }

 private:
  ServeOptions opts_;  ///< Owned copy; the server holds a reference.
  std::unique_ptr<Server> server_;
  std::unique_ptr<Listener> listener_;
  std::thread thread_;
};

/// SIGTERM/SIGINT → drain shutdown, via the self-pipe trick: the handler
/// may only do async-signal-safe work, so it writes one byte; a watcher
/// thread turns that byte into ServerHandle::shutdown().
std::atomic<int> g_signal_pipe_wr{-1};

void serve_signal_handler(int /*signum*/) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

int run_serve_socket(const ServeOptions& opts, std::ostream& err) {
  std::unique_ptr<ServerHandle> handle;
  try {
    handle = start_serve(opts);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  err << "listening on " << handle->endpoint() << " (SIGTERM drains)\n";

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    err << "error: cannot create signal pipe\n";
    return 2;
  }
  g_signal_pipe_wr.store(pipe_fds[1], std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = serve_signal_handler;
  sigemptyset(&action.sa_mask);
  struct sigaction old_term {};
  struct sigaction old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  std::thread watcher([&handle, rd = pipe_fds[0]] {
    char byte = 0;
    ssize_t n;
    do {
      n = ::read(rd, &byte, 1);
    } while (n < 0 && errno == EINTR);
    handle->shutdown();
  });

  const int rc = handle->join();

  // The server stopped (signal or otherwise); restore handlers and make
  // sure the watcher wakes even when no signal ever arrived.
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  serve_signal_handler(0);
  watcher.join();
  g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  err << "drained, shutting down\n";
  return rc;
}

}  // namespace

ServeOptions parse_serve_args(const std::vector<std::string>& args) {
  ServeOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw cli::UsageError(arg + " expects a value");
      }
      return args[++i];
    };
    if (cli::parse_routing_flag(opts.defaults, arg, value)) {
      continue;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--cache-bytes") {
      opts.cache_bytes = parse_size(arg, value());
    } else if (arg == "--cache-shards") {
      const std::size_t shards = parse_size(arg, value());
      // Upper bound before the int cast: 2^32 would truncate to 0 and
      // blow past RouteCache's num_shards >= 1 contract.
      if (shards < 1 || shards > 4096) {
        throw cli::UsageError("--cache-shards must be in [1, 4096]");
      }
      opts.cache_shards = static_cast<int>(shards);
    } else if (arg == "--cache-dir") {
      opts.cache_dir = value();
      if (opts.cache_dir.empty()) {
        throw cli::UsageError("--cache-dir expects a directory path");
      }
    } else if (arg == "--cache-disk-bytes") {
      opts.cache_disk_bytes = parse_size(arg, value());
    } else if (arg == "--warm-start") {
      opts.warm_start = parse_size(arg, value());
    } else if (arg == "--listen") {
      opts.listen = value();
      try {
        parse_listen_spec(opts.listen);  // validate now, fail at parse time
      } catch (const std::invalid_argument& e) {
        throw cli::UsageError(e.what());
      }
    } else if (arg == "--max-inflight") {
      const std::size_t n = parse_size(arg, value());
      if (n < 1 || n > (1u << 20)) {
        throw cli::UsageError("--max-inflight must be in [1, 1048576]");
      }
      opts.max_inflight = n;
    } else if (arg == "--idle-timeout-ms") {
      const std::size_t ms = parse_size(arg, value());
      if (ms > 86400000) {
        throw cli::UsageError("--idle-timeout-ms must be <= 86400000");
      }
      opts.idle_timeout_ms = static_cast<int>(ms);
    } else if (arg == "--max-line-bytes") {
      const std::size_t n = parse_size(arg, value());
      if (n < 1024) {
        throw cli::UsageError("--max-line-bytes must be >= 1024");
      }
      opts.max_line_bytes = n;
    } else {
      throw cli::UsageError("unknown serve flag '" + arg + "'");
    }
  }
  return opts;
}

std::string serve_usage() {
  return R"(codar serve — resident NDJSON routing service with a route cache

usage:
  codar serve [options]                    read requests from stdin until EOF
  codar serve --listen tcp:HOST:PORT       serve TCP clients until SIGTERM
  codar serve --listen unix:PATH           serve Unix-socket clients

Requests are newline-delimited JSON objects:
  {"id": 1, "qasm": "OPENQASM 2.0; ...", "device": "tokyo",
   "router": "codar", "options": {"initial": "sabre", "seed": 17}}
  {"id": 2, "suite_name": "qft_8"}       route a built-in suite benchmark
  {"id": 3, "cmd": "stats"}              barrier + cache/request counters

"device" is a registry spec string ("tokyo", "grid:4x5") or an inline
JSON device description object (same schema as --device file:; see
README "Device files") for calibrated devices the server has never
seen. Inline devices are cached by content fingerprint. file:PATH specs
are refused on request lines (untrusted clients must not read server
paths) but remain valid serve-command-line defaults.

Each response is one JSON line: {"id", "cached", "result"} where "result"
is byte-identical to the batch driver's stats object for the same inputs.
Identical (circuit, device, options) requests are served from a sharded
LRU route cache; concurrent duplicates route once.

Socket transports accept any number of concurrent clients, each free to
pipeline requests; responses stream back in completion order tagged with
the client's request ids. Per connection at most --max-inflight requests
may be accepted but unanswered — past that the server stops reading that
connection until responses drain (backpressure). SIGTERM/SIGINT drain:
accepted requests finish, responses flush, then the process exits.

service options:
      --listen SPEC     transport endpoint: stdio (default),
                        tcp:HOST:PORT (port 0 = kernel-chosen) or
                        unix:PATH
      --max-inflight N  per-connection pipelining cap (default 64)
      --idle-timeout-ms N
                        close connections quiet for N ms (default 0 =
                        never; socket transports only)
      --max-line-bytes N
                        oversized-frame cap per request line (default
                        8388608)
      --cache-bytes N   route-cache byte budget (default 268435456; 0
                        disables caching, including the disk tier)
      --cache-shards N  number of independently locked shards (default 8)
      --cache-dir PATH  persistent route-cache directory (crash-safe
                        append-only log; created if absent). A restarted
                        server serves its history as disk hits instead of
                        re-routing. Default: memory-only cache.
      --cache-disk-bytes N
                        disk-tier live-byte budget (default 1073741824;
                        0 = unbounded); oldest entries evicted past it
      --warm-start N    preload the N most recent disk entries into the
                        memory tier at boot (default 0)
      --threads, -j N   worker threads (0 = hardware concurrency)
      --distance-oracle MODE
                        process-wide distance backend (auto | dense |
                        on-demand | landmark); command-line only, never
                        settable from request lines

request defaults (overridable per request; same meaning as in batch mode):
  -d, --device SPEC  -r, --router NAME  --initial NAME  --seed N
      --mapping-rounds N  --peephole  --no-verify  --timing
      --no-context --no-duration --no-commutativity --no-fine-priority
      --window N --stagnation N --set KEY=VALUE
)";
}

std::unique_ptr<ServerHandle> start_serve(const ServeOptions& opts) {
  // Fail fast on an unknown default device instead of erroring every
  // request.
  cli::make_device(opts.defaults.device);
  const ListenSpec spec = parse_listen_spec(opts.listen);
  if (spec.kind == ListenSpec::Kind::kStdio) {
    throw std::invalid_argument(
        "start_serve needs a socket listen spec (tcp:/unix:), not stdio");
  }
  return std::make_unique<ServerHandleImpl>(opts, make_listener(spec));
}

int run_serve(const ServeOptions& opts, std::istream& in, std::ostream& out,
              std::ostream& err) {
  ListenSpec spec;
  try {
    spec = parse_listen_spec(opts.listen);
    // Fail fast on an unknown default device instead of erroring every
    // request.
    cli::make_device(opts.defaults.device);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  if (spec.kind != ListenSpec::Kind::kStdio) {
    return run_serve_socket(opts, err);
  }
  try {
    // Construction opens --cache-dir (recovery scan + lock); an unusable
    // or already-locked directory is a startup error, like a bad device.
    Server server(opts, &err);
    server.run_stream(in, out);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err) {
  ServeOptions opts;
  try {
    opts = parse_serve_args(args);
  } catch (const cli::UsageError& e) {
    err << "error: " << e.what() << "\n\n" << serve_usage();
    return 2;
  }
  if (opts.help) {
    out << serve_usage();
    return 0;
  }
  return run_serve(opts, in, out, err);
}

}  // namespace codar::service

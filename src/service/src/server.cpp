#include "codar/service/server.hpp"

#include <atomic>
#include <charconv>
#include <condition_variable>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "codar/cli/device_registry.hpp"
#include "codar/common/thread_annotations.hpp"
#include "codar/cli/report.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/service/json.hpp"
#include "codar/service/protocol.hpp"
#include "codar/service/route_cache.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::service {

namespace {

std::size_t parse_size(const std::string& flag, const std::string& value) {
  std::size_t result = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw cli::UsageError(flag + " expects a non-negative integer, got '" +
                          value + "'");
  }
  return result;
}

/// Everything one serve session owns: worker pool, request queue, route
/// cache, and the device / suite memos shared across workers.
class Server {
 public:
  /// A memoized device plus its content fingerprint (so the per-request
  /// cache-key computation is a map lookup, not an O(edges) rehash).
  struct DeviceEntry {
    std::shared_ptr<const arch::Device> device;
    std::uint64_t fingerprint = 0;
  };

  /// A memoized suite benchmark plus its content fingerprint.
  struct SuiteEntry {
    ir::Circuit circuit;
    std::uint64_t fingerprint = 0;
  };

  Server(const ServeOptions& opts, std::ostream& out)
      : opts_(opts),
        cache_(opts.cache_bytes, opts.cache_shards),
        out_(out) {}

  void run(std::istream& in) {
    int threads = opts_.defaults.threads > 0
                      ? opts_.defaults.threads
                      : static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([this] { worker_loop(); });
    }

    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      handle_line(line);
    }

    {
      const common::MutexLock lock(queue_mutex_);
      done_ = true;
    }
    queue_ready_.notify_all();
    for (std::thread& t : pool) t.join();
  }

 private:
  void handle_line(const std::string& line) {
    ServeRequest req;
    try {
      req = parse_request(line, opts_.defaults);
    } catch (const ProtocolError& e) {
      ++errors_;
      write_response("{\"id\": " + best_effort_id(line) + ", \"error\": " +
                     json_quote(e.what()) + "}");
      return;
    }
    if (req.kind == ServeRequest::Kind::kStats) {
      {
        // Barrier: a stats request reports on everything enqueued before
        // it, so drain the queue and all in-flight work first. (Explicit
        // wait loop, not a predicate lambda: the thread-safety analysis
        // sees the guarded reads in this scope, where the lock is held.)
        const common::MutexLock lock(queue_mutex_);
        while (pending_ != 0) drained_.wait(queue_mutex_);
      }
      write_response(stats_response(req));
      return;
    }
    ++requests_;
    {
      // Bounded queue: when the workers fall behind, the reader blocks
      // instead of buffering all of stdin in memory.
      const common::MutexLock lock(queue_mutex_);
      while (queue_.size() >= kMaxQueuedRequests) queue_space_.wait(queue_mutex_);
      ++pending_;
      queue_.push_back(std::move(req));
    }
    queue_ready_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      ServeRequest req;
      {
        const common::MutexLock lock(queue_mutex_);
        while (queue_.empty() && !done_) queue_ready_.wait(queue_mutex_);
        if (queue_.empty()) return;
        req = std::move(queue_.front());
        queue_.pop_front();
      }
      queue_space_.notify_one();
      write_response(process(req));
      {
        const common::MutexLock lock(queue_mutex_);
        --pending_;
      }
      drained_.notify_all();
    }
  }

  std::string process(const ServeRequest& req) {
    cli::RouteReport report;
    bool cached = false;
    // Resolved before the try block so error responses carry the same
    // name a successful route would (the qasm-parsed name is refined
    // below once parsing has succeeded).
    std::string display_name =
        !req.name.empty() ? req.name : req.suite_name;
    try {
      const DeviceEntry device = req.inline_device
                                     ? inline_device_for(req.inline_device)
                                     : device_for(req.opts.device);
      // Resolve the circuit source. Suite entries are memoized together
      // with their fingerprints, so the cache-hit fast path never copies
      // a circuit or rehashes its gates; inline QASM has to be parsed
      // (and therefore fingerprinted) fresh each time.
      const ir::Circuit* circuit = nullptr;
      ir::Circuit parsed(0);  // placeholder until a qasm request fills it
      std::uint64_t circuit_fp = 0;
      if (!req.suite_name.empty()) {
        const SuiteEntry& entry = suite_entry(req.suite_name);
        circuit = &entry.circuit;
        circuit_fp = entry.fingerprint;
      } else {
        parsed = qasm::parse(req.qasm);
        circuit = &parsed;
        circuit_fp = parsed.fingerprint();
        if (display_name.empty()) display_name = parsed.name();
      }

      const CacheKey key{circuit_fp, device.fingerprint,
                         options_fingerprint(req.opts)};
      report = cache_.get_or_route(
          key,
          [&] {
            return cli::route_circuit(*circuit, *device.device, req.opts,
                                      /*keep_qasm=*/false);
          },
          &cached);
      if (!cached) ++routed_;
      // The cache is content-addressed (names excluded from the circuit
      // fingerprint), so a hit may carry another requester's label.
      report.name = display_name;
    } catch (const std::exception& e) {
      report.name = display_name;
      report.error = e.what();
    }
    return "{\"id\": " + req.id_json +
           ", \"cached\": " + (cached ? "true" : "false") +
           ", \"result\": " + cli::to_json(report, req.opts) + "}";
  }

  std::string stats_response(const ServeRequest& req) const {
    const CacheCounters c = cache_.counters();
    std::ostringstream out;
    out << "{\"id\": " << req.id_json << ", \"requests\": " << requests_
        << ", \"routed\": " << routed_ << ", \"errors\": " << errors_
        << ", \"cache\": {\"entries\": " << c.entries
        << ", \"bytes\": " << c.bytes << ", \"budget\": " << opts_.cache_bytes
        << ", \"hits\": " << c.hits << ", \"misses\": " << c.misses
        << ", \"evictions\": " << c.evictions << "}}";
    return out.str();
  }

  /// Pulls the id out of a request line that failed validation, so even
  /// error responses can be correlated. Falls back to null.
  static std::string best_effort_id(const std::string& line) {
    try {
      const Json doc = Json::parse(line);
      if (const Json* id = doc.find("id")) {
        if (id->is_number()) return id->raw_number();
        if (id->is_string()) return json_quote(id->as_string());
      }
    } catch (const JsonError&) {
    }
    return "null";
  }

  /// Spec-string devices, memoized by spec for the server's lifetime.
  /// Requests can only name immutable presets/generators (the protocol
  /// refuses local_only specs like `file:`); a `file:` *default* given on
  /// the serve command line is read once at first use, like any resident
  /// service config.
  DeviceEntry device_for(const std::string& spec) CODAR_EXCLUDES(devices_mutex_) {
    {
      const common::MutexLock lock(devices_mutex_);
      if (const auto it = devices_.find(spec); it != devices_.end()) {
        return it->second;
      }
    }
    // Construction (including the distance-oracle pre-warm) runs outside
    // the lock so a cold lookup never stalls other workers. Two racing
    // cold lookups both build; emplace keeps the first, the loser's copy
    // is discarded — cheaper than single-flighting device construction.
    auto device =
        std::make_shared<const arch::Device>(cli::make_device(spec));
    // Build the lazily constructed distance oracle now, while this thread
    // holds the only reference — workers then only ever read it.
    device->graph.prepare();
    DeviceEntry entry{device, device->fingerprint()};
    const common::MutexLock lock(devices_mutex_);
    return devices_.emplace(spec, std::move(entry)).first->second;
  }

  /// Inline `device` objects are memoized by *content fingerprint* (the
  /// route-cache key), so repeated requests shipping the same calibrated
  /// device share one pre-warmed model instead of rebuilding the distance
  /// oracle per request. A recalibrated device fingerprints differently and
  /// gets its own entry — it can never alias its homogeneous twin.
  DeviceEntry inline_device_for(const std::shared_ptr<const arch::Device>&
                                    device) CODAR_EXCLUDES(devices_mutex_) {
    const std::uint64_t fp = device->fingerprint();
    {
      const common::MutexLock lock(devices_mutex_);
      if (const auto it = inline_devices_.find(fp);
          it != inline_devices_.end()) {
        return it->second;
      }
    }
    // Warm outside the lock: the parser built this object for this request
    // alone, so this thread still holds the only reference.
    device->graph.prepare();
    DeviceEntry entry{device, fp};
    // The dominant cost of a warmed device is its distance backend; the
    // oracle reports its own steady-state bound (dense: the V^2 matrix;
    // on-demand: CSR + row-cache budget).
    const std::size_t bytes = device->graph.distance_footprint_bytes();
    const common::MutexLock lock(devices_mutex_);
    if (inline_devices_.size() >= kMaxInlineDevices ||
        inline_device_bytes_ + bytes > kMaxInlineDeviceBytes) {
      // Memo full (a client churning through distinct calibrations): the
      // request still routes correctly on its own copy; only the
      // cross-request sharing is lost.
      return entry;
    }
    // Count only an actual insertion: a racing worker may have memoized
    // the same fingerprint between the two critical sections.
    const auto [it, inserted] = inline_devices_.emplace(fp, std::move(entry));
    if (inserted) inline_device_bytes_ += bytes;
    return it->second;
  }

  const SuiteEntry& suite_entry(const std::string& name) {
    // Built exactly once; immutable afterwards, so lookups run lock-free
    // and returned references stay valid for the server's lifetime.
    std::call_once(suite_once_, [this] {
      for (workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
        const std::uint64_t fp = spec.circuit.fingerprint();
        suite_index_.emplace(spec.name,
                             SuiteEntry{std::move(spec.circuit), fp});
      }
    });
    const auto it = suite_index_.find(name);
    if (it == suite_index_.end()) {
      throw ProtocolError("unknown suite benchmark '" + name + "'");
    }
    return it->second;
  }

  void write_response(const std::string& line) CODAR_EXCLUDES(out_mutex_) {
    const common::MutexLock lock(out_mutex_);
    out_ << line << '\n' << std::flush;
  }

  const ServeOptions& opts_;
  RouteCache cache_;

  std::ostream& out_;
  /// Serializes whole response lines onto out_ (NDJSON must never
  /// interleave). The stream itself is a reference, so the capability
  /// covers its *use sites* rather than a guarded member.
  common::Mutex out_mutex_;

  /// Backpressure bound: the reader stops ahead of the workers here.
  static constexpr std::size_t kMaxQueuedRequests = 1024;

  common::Mutex queue_mutex_;
  // condition_variable_any waits on the annotated Mutex directly; wait()
  // releases and reacquires it internally, so the capability is held on
  // both sides of the call and the analysis stays consistent.
  std::condition_variable_any queue_ready_;
  std::condition_variable_any queue_space_;
  std::condition_variable_any drained_;
  std::deque<ServeRequest> queue_ CODAR_GUARDED_BY(queue_mutex_);
  /// Enqueued but not yet responded to.
  std::size_t pending_ CODAR_GUARDED_BY(queue_mutex_) = 0;
  bool done_ CODAR_GUARDED_BY(queue_mutex_) = false;

  /// Inline-device memo bounds. The distance oracle bounds *one* device's
  /// warmed footprint (dense matrices cap at 4 MiB under the kAuto
  /// threshold; larger devices get the byte-budgeted on-demand backend);
  /// these bound their *sum*, so untrusted clients churning through
  /// distinct calibrated devices cannot pin memory for the server's
  /// lifetime — entries for the many-tiny-devices case, bytes for the
  /// few-huge-devices case.
  static constexpr std::size_t kMaxInlineDevices = 1024;
  static constexpr std::size_t kMaxInlineDeviceBytes = 256u << 20;

  common::Mutex devices_mutex_;
  std::unordered_map<std::string, DeviceEntry> devices_
      CODAR_GUARDED_BY(devices_mutex_);
  std::unordered_map<std::uint64_t, DeviceEntry> inline_devices_
      CODAR_GUARDED_BY(devices_mutex_);
  /// Memoized oracle footprint bytes.
  std::size_t inline_device_bytes_ CODAR_GUARDED_BY(devices_mutex_) = 0;

  std::once_flag suite_once_;
  std::unordered_map<std::string, SuiteEntry> suite_index_;

  std::atomic<std::size_t> requests_{0};  ///< Route requests accepted.
  std::atomic<std::size_t> routed_{0};    ///< Requests actually routed.
  std::atomic<std::size_t> errors_{0};    ///< Malformed request lines.
};

}  // namespace

ServeOptions parse_serve_args(const std::vector<std::string>& args) {
  ServeOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw cli::UsageError(arg + " expects a value");
      }
      return args[++i];
    };
    if (cli::parse_routing_flag(opts.defaults, arg, value)) {
      continue;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--cache-bytes") {
      opts.cache_bytes = parse_size(arg, value());
    } else if (arg == "--cache-shards") {
      const std::size_t shards = parse_size(arg, value());
      // Upper bound before the int cast: 2^32 would truncate to 0 and
      // blow past RouteCache's num_shards >= 1 contract.
      if (shards < 1 || shards > 4096) {
        throw cli::UsageError("--cache-shards must be in [1, 4096]");
      }
      opts.cache_shards = static_cast<int>(shards);
    } else {
      throw cli::UsageError("unknown serve flag '" + arg + "'");
    }
  }
  return opts;
}

std::string serve_usage() {
  return R"(codar serve — resident NDJSON routing service with a route cache

usage:
  codar serve [options]        read requests from stdin until EOF

Requests are newline-delimited JSON objects:
  {"id": 1, "qasm": "OPENQASM 2.0; ...", "device": "tokyo",
   "router": "codar", "options": {"initial": "sabre", "seed": 17}}
  {"id": 2, "suite_name": "qft_8"}       route a built-in suite benchmark
  {"id": 3, "cmd": "stats"}              barrier + cache/request counters

"device" is a registry spec string ("tokyo", "grid:4x5") or an inline
JSON device description object (same schema as --device file:; see
README "Device files") for calibrated devices the server has never
seen. Inline devices are cached by content fingerprint. file:PATH specs
are refused on request lines (untrusted clients must not read server
paths) but remain valid serve-command-line defaults.

Each response is one JSON line: {"id", "cached", "result"} where "result"
is byte-identical to the batch driver's stats object for the same inputs.
Identical (circuit, device, options) requests are served from a sharded
LRU route cache; concurrent duplicates route once.

service options:
      --cache-bytes N   route-cache byte budget (default 268435456; 0
                        disables caching)
      --cache-shards N  number of independently locked shards (default 8)
      --threads, -j N   worker threads (0 = hardware concurrency)
      --distance-oracle MODE
                        process-wide distance backend (auto | dense |
                        on-demand | landmark); command-line only, never
                        settable from request lines

request defaults (overridable per request; same meaning as in batch mode):
  -d, --device SPEC  -r, --router NAME  --initial NAME  --seed N
      --mapping-rounds N  --peephole  --no-verify  --timing
      --no-context --no-duration --no-commutativity --no-fine-priority
      --window N --stagnation N --set KEY=VALUE
)";
}

int run_serve(const ServeOptions& opts, std::istream& in, std::ostream& out,
              std::ostream& err) {
  try {
    // Fail fast on an unknown default device instead of erroring every
    // request.
    cli::make_device(opts.defaults.device);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  Server server(opts, out);
  server.run(in);
  return 0;
}

int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err) {
  ServeOptions opts;
  try {
    opts = parse_serve_args(args);
  } catch (const cli::UsageError& e) {
    err << "error: " << e.what() << "\n\n" << serve_usage();
    return 2;
  }
  if (opts.help) {
    out << serve_usage();
    return 0;
  }
  return run_serve(opts, in, out, err);
}

}  // namespace codar::service

#include "codar/service/route_cache.hpp"

#include "codar/common/expects.hpp"
#include "codar/common/fnv.hpp"
#include "codar/store/report_codec.hpp"

namespace codar::service {

namespace {

store::Fingerprint to_fingerprint(const CacheKey& key) {
  return store::Fingerprint{key.circuit, key.device, key.options};
}

}  // namespace

std::size_t RouteCache::KeyHash::operator()(const CacheKey& k) const {
  common::Fnv1a h;
  h.u64(k.circuit);
  h.u64(k.device);
  h.u64(k.options);
  return static_cast<std::size_t>(h.value());
}

RouteCache::RouteCache(std::size_t byte_budget, int num_shards)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / static_cast<std::size_t>(
                                      num_shards > 0 ? num_shards : 1)),
      shards_(static_cast<std::size_t>(num_shards)) {
  CODAR_EXPECTS(num_shards >= 1);
}

RouteCache::Shard& RouteCache::shard_for(const CacheKey& key) {
  return shards_[static_cast<std::size_t>(KeyHash{}(key)) % shards_.size()];
}

const RouteCache::Shard& RouteCache::shard_for(const CacheKey& key) const {
  return shards_[static_cast<std::size_t>(KeyHash{}(key)) % shards_.size()];
}

std::size_t RouteCache::report_bytes(const cli::RouteReport& report) {
  std::size_t bytes = sizeof(cli::RouteReport) + report.name.capacity() +
                      report.error.capacity() + report.routed_qasm.capacity();
  bytes += report.stage_us.capacity() * sizeof(pipeline::StageTiming);
  for (const pipeline::StageTiming& t : report.stage_us) {
    bytes += t.stage.capacity();
  }
  return bytes;
}

void RouteCache::insert_locked(Shard& shard, const CacheKey& key,
                               const cli::RouteReport& report) {
  Entry entry{key, report, report_bytes(report), /*hits=*/0};
  // An entry that alone exceeds the shard budget is rejected up front
  // (counted as an eviction): admitting it first would flush every warm
  // resident entry before the oversized one got dropped anyway.
  if (entry.bytes > shard_budget_) {
    ++shard.evictions;
    return;
  }
  shard.bytes += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  // Evict from the cold end until back under budget.
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void RouteCache::preload(const CacheKey& key, const cli::RouteReport& report) {
  if (byte_budget_ == 0) return;
  Shard& shard = shard_for(key);
  const common::MutexLock lock(shard.m);
  if (shard.index.contains(key)) return;  // already resident
  insert_locked(shard, key, report);
}

cli::RouteReport RouteCache::get_or_route(
    const CacheKey& key, const std::function<cli::RouteReport()>& route,
    bool* hit) {
  if (byte_budget_ == 0) {
    Shard& shard = shard_for(key);
    {
      const common::MutexLock lock(shard.m);
      ++shard.misses;
    }
    if (hit) *hit = false;
    return route();
  }

  Shard& shard = shard_for(key);
  std::shared_ptr<Inflight> flight;
  bool owner = false;
  {
    const common::MutexLock lock(shard.m);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      ++shard.mem_hits;
      ++it->second->hits;
      // Refresh LRU position.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (hit) *hit = true;
      return it->second->report;
    }
    if (const auto it = shard.inflight.find(key);
        it != shard.inflight.end()) {
      // Someone is already probing disk / routing this key: wait for their
      // result instead of burning a worker on duplicate work.
      flight = it->second;
      ++shard.mem_hits;
    } else {
      flight = std::make_shared<Inflight>();
      shard.inflight.emplace(key, flight);
      // Whether this counts as a disk hit or a miss is decided below,
      // once the disk probe has resolved.
      owner = true;
    }
  }

  if (!owner) {
    const common::MutexLock flight_lock(flight->m);
    while (!flight->ready) flight->cv.wait(flight->m);
    if (hit) *hit = true;
    return flight->report;
  }

  // Single-flight owner: probe the disk tier, then route on a double
  // miss — all outside every shard lock (the store has its own mutex).
  cli::RouteReport report;
  bool from_disk = false;
  if (store_ != nullptr) {
    std::string payload;
    if (store_->get(to_fingerprint(key), &payload)) {
      // An undecodable payload (format-version bump, bit rot caught by
      // the CRC upstream) simply falls through to routing.
      from_disk = store::decode_report(payload, &report);
    }
  }
  if (!from_disk) {
    try {
      report = route();
    } catch (const std::exception& e) {
      report.error = e.what();
    }
    // Persist fresh successful routes; error reports are transient (a
    // bad request re-fails cheaply, and must not shadow a later fix).
    if (store_ != nullptr && report.error.empty()) {
      store_->put(to_fingerprint(key), store::encode_report(report));
    }
  }
  {
    const common::MutexLock lock(shard.m);
    insert_locked(shard, key, report);
    if (from_disk) {
      ++shard.disk_hits;
    } else {
      ++shard.misses;
    }
    shard.inflight.erase(key);
  }
  {
    const common::MutexLock flight_lock(flight->m);
    flight->report = report;
    flight->ready = true;
  }
  flight->cv.notify_all();
  if (hit) *hit = from_disk;
  return report;
}

CacheCounters RouteCache::counters() const {
  CacheCounters total;
  for (const Shard& shard : shards_) {
    const common::MutexLock lock(shard.m);
    total.entries += shard.lru.size();
    total.bytes += shard.bytes;
    total.mem_hits += shard.mem_hits;
    total.disk_hits += shard.disk_hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
  }
  if (store_ != nullptr) {
    const store::StoreStats s = store_->stats();
    total.disk_entries = s.entries;
    total.disk_bytes = s.live_bytes;
    total.disk_file_bytes = s.file_bytes;
    total.disk_evictions = s.evictions;
  }
  return total;
}

std::size_t RouteCache::entry_hits(const CacheKey& key) const {
  const Shard& shard = shard_for(key);
  const common::MutexLock lock(shard.m);
  const auto it = shard.index.find(key);
  return it == shard.index.end() ? 0 : it->second->hits;
}

}  // namespace codar::service

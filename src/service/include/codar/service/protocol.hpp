#pragma once

// The `codar serve` NDJSON request protocol. One request per line:
//
//   {"id": 1, "qasm": "OPENQASM 2.0; ...", "device": "tokyo",
//    "router": "codar", "options": {"initial": "sabre", "seed": 17}}
//   {"id": 2, "suite_name": "qft_8"}
//   {"id": 3, "cmd": "stats"}
//
// Route requests carry either inline OpenQASM (`qasm`) or the name of a
// built-in suite benchmark (`suite_name`), plus optional device/router
// selection and an `options` object mirroring the CLI's routing knobs.
// `device` is either a registry spec string ("tokyo", "grid:4x5") or an
// inline JSON device description object (the `--device file:` schema —
// see codar/arch/device_json.hpp), so clients can route against
// calibrated devices the server has never seen; the route cache keys on
// the device's content fingerprint either way. Filesystem-backed specs
// (`file:PATH`) are refused on request lines — requests are untrusted
// and must not make the server read arbitrary paths; they stay available
// on the serve command line.
// Unspecified fields inherit the defaults given on the `codar serve`
// command line. `{"cmd": "stats"}` is a control request: the server drains
// all in-flight work, then reports cache and request counters.

#include <cstdint>
#include <memory>
#include <string>

#include "codar/arch/device.hpp"
#include "codar/cli/options.hpp"

namespace codar::service {

/// Raised on malformed request lines; `what()` goes into the error
/// response verbatim.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed request line.
struct ServeRequest {
  enum class Kind { kRoute, kStats };

  Kind kind = Kind::kRoute;
  /// The request id re-rendered as a JSON token (number verbatim, string
  /// re-quoted, "null" when absent) so responses echo it byte-exactly.
  std::string id_json = "null";
  std::string qasm;        ///< Inline OpenQASM source, or ...
  std::string suite_name;  ///< ... a built-in suite benchmark name.
  std::string name;        ///< Optional display name for the report.
  cli::Options opts;       ///< defaults overlaid with per-request fields.
  /// Set when the request carried an inline `device` object instead of a
  /// spec string; `opts.device` then holds its display name only.
  std::shared_ptr<const arch::Device> inline_device;
};

/// Parses one NDJSON request line on top of the server-wide `defaults`.
/// Throws ProtocolError (malformed JSON, unknown keys/kinds, missing or
/// conflicting circuit source).
ServeRequest parse_request(const std::string& line,
                           const cli::Options& defaults);

/// Fingerprint over every Options field that can change a routed result or
/// its cached report: router, initial mapping, seed, mapping rounds,
/// peephole, verify, the CODAR ablation knobs, and the free-form extras
/// for externally registered passes. Deliberately excludes
/// presentation-only fields (device spec string, timing, threads, paths) —
/// the device is fingerprinted separately from its content.
std::uint64_t options_fingerprint(const cli::Options& opts);

}  // namespace codar::service

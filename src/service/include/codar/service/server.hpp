#pragma once

// The `codar serve` loop: a resident routing service that reads
// newline-delimited JSON requests (see protocol.hpp) over a transport
// (stdio, TCP or Unix-domain sockets — see transport.hpp), fans route
// work out over a worker pool fronted by the content-addressed
// RouteCache, and streams back one NDJSON response per request:
//
//   {"id": 1, "cached": false, "result": { ...batch stats schema... }}
//   {"id": 3, "requests": 2, "routed": 1, "errors": 0, "cache": {...}}
//   {"id": null, "error": "..."}                     (malformed request)
//
// The "result" object is byte-identical to what the one-shot batch driver
// emits for the same circuit/device/options (locked by the serve
// differential test). Responses stream in completion order, tagged with
// the request id the issuing client sent; ids are per-connection, so
// concurrent clients never see each other's traffic. A {"cmd":"stats"}
// request acts as a per-connection barrier — it drains every request this
// connection enqueued before it, then reports the server-wide counters.
//
// Socket mode accepts any number of concurrent clients, each with
// pipelined requests. Per connection, at most --max-inflight requests may
// be accepted-but-unwritten: past that the server stops reading that
// connection (backpressure) until responses drain, so one slow or
// flooding client can neither exhaust memory nor starve the others.
// --idle-timeout-ms closes connections that go quiet; SIGTERM/SIGINT
// stop accepting, drain every accepted request, flush responses and exit.

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "codar/cli/options.hpp"

namespace codar::service {

struct ServeOptions {
  /// Per-request defaults: device, router, initial mapping, CODAR knobs.
  /// `threads` sizes the worker pool (0 = hardware concurrency).
  cli::Options defaults;
  std::size_t cache_bytes = 256u << 20;  ///< Route-cache budget; 0 = off.
  int cache_shards = 8;
  /// Persistent route-cache directory (store::LogStore). Empty = memory
  /// only. With a directory set, every routed report is appended to a
  /// crash-safe on-disk log and a restarted server serves its history as
  /// disk hits instead of re-routing. Requires cache_bytes > 0.
  std::string cache_dir;
  /// Disk-tier byte budget (live record bytes; 0 = unbounded). Oldest
  /// entries are evicted past it.
  std::size_t cache_disk_bytes = 1u << 30;
  /// Preload the N most recently appended disk entries into the memory
  /// tier at boot (0 = off), so a restarted server answers its hot set
  /// from memory immediately.
  std::size_t warm_start = 0;
  /// Transport endpoint: `stdio` (default), `tcp:HOST:PORT` (port 0 =
  /// kernel-chosen) or `unix:PATH`.
  std::string listen = "stdio";
  /// Per-connection pipelining cap: requests accepted but not yet written
  /// back. At the cap the server stops reading that connection.
  std::size_t max_inflight = 64;
  /// Close a connection after this many ms without receiving a byte.
  /// 0 disables the timeout. Socket transports only.
  int idle_timeout_ms = 0;
  /// Oversized-frame cap: a request line longer than this draws a
  /// structured error and a close (the framing can no longer be trusted
  /// cheaply). Large enough for multi-MiB inline QASM by default.
  std::size_t max_line_bytes = 8u << 20;
  bool help = false;
};

/// Parses `codar serve` arguments (everything after the subcommand word).
/// Accepts every routing flag of the batch CLI as a request default, plus
/// --cache-bytes / --cache-shards / --cache-dir / --cache-disk-bytes /
/// --warm-start / --listen / --max-inflight / --idle-timeout-ms /
/// --max-line-bytes. Throws cli::UsageError.
ServeOptions parse_serve_args(const std::vector<std::string>& args);

/// The `codar serve --help` text.
std::string serve_usage();

/// A socket-mode server running on background threads. Destroying the
/// handle shuts the server down (drain semantics) and joins it.
class ServerHandle {
 public:
  virtual ~ServerHandle() = default;

  /// The resolved endpoint clients can connect to — for `tcp:...:0` this
  /// carries the kernel-chosen port.
  virtual std::string endpoint() const = 0;

  /// Initiates drain shutdown: stop accepting, stop reading, finish every
  /// accepted request, flush responses, close. Idempotent, non-blocking.
  virtual void shutdown() = 0;

  /// Blocks until the server has fully stopped. Returns the exit code.
  virtual int join() = 0;
};

/// Starts a socket-mode server for `opts` (opts.listen must be tcp:/unix:)
/// and returns once it is accepting. Throws std::runtime_error when the
/// endpoint cannot be bound, the default device is invalid, or cache_dir
/// is unusable (unwritable, or locked by another server). This is the
/// in-process entry the socket tests and the load bench drive.
std::unique_ptr<ServerHandle> start_serve(const ServeOptions& opts);

/// Runs the service until EOF on `in` (stdio transport) or until
/// SIGTERM/SIGINT (socket transports; `in`/`out` are unused then), writing
/// NDJSON responses to the transport and human-readable startup/shutdown
/// notes to `err`. Returns the process exit code.
int run_serve(const ServeOptions& opts, std::istream& in, std::ostream& out,
              std::ostream& err);

/// CLI wrapper: parse args, then run_serve. Returns the process exit code.
int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err);

}  // namespace codar::service

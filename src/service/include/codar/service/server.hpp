#pragma once

// The `codar serve` loop: a resident routing service that reads
// newline-delimited JSON requests (see protocol.hpp) from an input stream,
// fans route work out over a worker pool fronted by the content-addressed
// RouteCache, and streams back one NDJSON response per request:
//
//   {"id": 1, "cached": false, "result": { ...batch stats schema... }}
//   {"id": 3, "requests": 2, "routed": 1, "errors": 0, "cache": {...}}
//   {"id": null, "error": "..."}                     (malformed request)
//
// The "result" object is byte-identical to what the one-shot batch driver
// emits for the same circuit/device/options (locked by the serve
// differential test). Responses stream in completion order, tagged with
// the request id; a {"cmd":"stats"} request acts as a barrier — it drains
// every request enqueued before it, so its counters are deterministic.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "codar/cli/options.hpp"

namespace codar::service {

struct ServeOptions {
  /// Per-request defaults: device, router, initial mapping, CODAR knobs.
  /// `threads` sizes the worker pool (0 = hardware concurrency).
  cli::Options defaults;
  std::size_t cache_bytes = 256u << 20;  ///< Route-cache budget; 0 = off.
  int cache_shards = 8;
  bool help = false;
};

/// Parses `codar serve` arguments (everything after the subcommand word).
/// Accepts every routing flag of the batch CLI as a request default, plus
/// --cache-bytes / --cache-shards. Throws cli::UsageError.
ServeOptions parse_serve_args(const std::vector<std::string>& args);

/// The `codar serve --help` text.
std::string serve_usage();

/// Runs the service until EOF on `in`, writing NDJSON responses to `out`
/// and human-readable startup/shutdown notes to `err`. Returns the process
/// exit code.
int run_serve(const ServeOptions& opts, std::istream& in, std::ostream& out,
              std::ostream& err);

/// CLI wrapper: parse args, then run_serve. Returns the process exit code.
int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err);

}  // namespace codar::service

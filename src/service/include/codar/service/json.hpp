#pragma once

// Compatibility shim: the JSON parser moved to codar/common/json.hpp in
// PR 5 so the serve protocol and the arch device-description loader share
// one implementation. Existing service code and clients keep working
// through these aliases; new code should include the common header.

#include "codar/common/json.hpp"

namespace codar::service {

using Json = common::Json;
using JsonError = common::JsonError;
using common::json_quote;

}  // namespace codar::service

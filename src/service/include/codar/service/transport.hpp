#pragma once

// The serve transport layer: byte streams the NDJSON server loop speaks
// over, abstracted so `codar serve` runs identically on stdio (one
// implicit client over std::istream/std::ostream), TCP sockets and
// Unix-domain sockets (`--listen tcp:HOST:PORT | unix:PATH | stdio`).
//
// A Connection is one full-duplex byte stream to one client. Reads are
// chunk-oriented with a caller-supplied timeout slice so the server's
// per-connection reader can interleave idle-timeout accounting and
// shutdown checks with blocking I/O; writes are all-or-nothing and
// blocking (the server bounds how much can ever be queued behind them —
// see server.cpp's per-connection write queue). Socket writes use
// MSG_NOSIGNAL, so a client that disconnects with responses pending
// surfaces as a write error, never as SIGPIPE.
//
// A Listener accepts Connections until close(), which wakes a blocked
// accept() from another thread (self-pipe, not fd teardown, so there is
// no close/accept race). TCP listeners support port 0 and report the
// kernel-chosen port through endpoint(), which is how the tests and the
// load bench run servers on ephemeral ports.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

namespace codar::service {

/// A parsed `--listen` spec: `stdio`, `tcp:HOST:PORT` or `unix:PATH`.
struct ListenSpec {
  enum class Kind { kStdio, kTcp, kUnix };

  Kind kind = Kind::kStdio;
  std::string host;         ///< TCP bind/connect host (name or literal).
  std::uint16_t port = 0;   ///< TCP port; 0 asks the kernel for one.
  std::string path;         ///< Unix-domain socket path.
};

/// Parses a `--listen` / connect spec string. Throws std::invalid_argument
/// on malformed specs (unknown scheme, bad port, empty or oversized unix
/// path — sun_path is 108 bytes including the terminator).
ListenSpec parse_listen_spec(const std::string& spec);

/// Renders a spec back to its canonical string form ("tcp:127.0.0.1:7777").
std::string to_string(const ListenSpec& spec);

/// Outcome of one Connection::read_some call.
enum class ReadStatus {
  kData,     ///< >= 1 byte was read into the buffer.
  kEof,      ///< Orderly end of stream (peer closed its write side).
  kTimeout,  ///< No data within the caller's timeout slice.
  kError,    ///< The stream is broken (reset, I/O error).
};

/// One full-duplex byte stream to one client.
class Connection {
 public:
  Connection() = default;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  virtual ~Connection() = default;

  /// Reads up to `cap` bytes into `buf`, blocking at most `timeout_ms`
  /// milliseconds (-1 = indefinitely) for the first byte. On kData, `*n`
  /// is the byte count (>= 1); on any other status `*n` is 0.
  virtual ReadStatus read_some(char* buf, std::size_t cap, std::size_t* n,
                               int timeout_ms) = 0;

  /// Writes all of `data`, blocking as needed. Returns false when the
  /// peer is gone or the stream errored; the connection is then dead for
  /// writing and further calls keep returning false.
  virtual bool write_all(std::string_view data) = 0;

  /// Human-readable peer label for log lines ("tcp:127.0.0.1:52114").
  virtual std::string peer() const = 0;
};

/// A bound, listening transport endpoint producing Connections.
class Listener {
 public:
  Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  virtual ~Listener() = default;

  /// Blocks until a client connects (returns it) or close() is called
  /// (returns nullptr; every subsequent call also returns nullptr).
  /// Transient per-connection accept errors are swallowed and retried.
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Wakes a blocked accept() and makes the listener return nullptr from
  /// then on. Safe to call from another thread, and idempotent.
  virtual void close() = 0;

  /// The canonical resolved endpoint — for TCP with port 0 this carries
  /// the kernel-chosen port, so callers can connect to it.
  virtual std::string endpoint() const = 0;
};

/// Binds a listening socket for a tcp:/unix: spec. For unix: specs a
/// stale socket file left by a dead server is unlinked first; the file is
/// unlinked again when the listener is destroyed. Throws
/// std::runtime_error on bind/listen failure and std::invalid_argument
/// for stdio specs (stdio is served inline, not accepted).
std::unique_ptr<Listener> make_listener(const ListenSpec& spec);

/// Client side: connects to a tcp:/unix: endpoint string, blocking up to
/// `timeout_ms` (-1 = OS default). Throws std::runtime_error when the
/// endpoint is unreachable. Used by the load bench and the socket tests.
std::unique_ptr<Connection> connect_endpoint(const std::string& spec,
                                             int timeout_ms = -1);

/// The stdio transport: one Connection over an istream/ostream pair. The
/// timeout slice is ignored (portable stream reads cannot poll) — idle
/// timeouts are a socket-transport feature. Used for `--listen stdio` and
/// by every in-process serve test.
std::unique_ptr<Connection> make_stream_connection(std::istream& in,
                                                   std::ostream& out);

}  // namespace codar::service

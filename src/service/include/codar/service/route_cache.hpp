#pragma once

// Tiered, content-addressed route cache for `codar serve`. Keys are
// (circuit fingerprint, device fingerprint, options fingerprint) triples —
// all three content-addressed, so the same circuit under a different label
// or a structurally identical device under a different spec string still
// hits. Values are full RouteReports.
//
// Two tiers: a sharded in-memory LRU in front, and (optionally) a
// persistent store::LogStore behind it. A lookup resolves memory first
// (mem_hits), then probes disk (disk_hits — the report is decoded,
// promoted into the memory tier, and served without routing), and only
// routes on a double miss (misses) — after which the report is appended to
// the disk tier, so a restarted server replays its whole history from disk
// instead of re-routing the world.
//
// Concurrency model: keys are spread over N independently locked shards
// (LRU list + hash map each), so workers routing different circuits never
// contend. Within a shard, concurrent requests for the SAME key are
// single-flighted: the first requester probes disk / routes while later
// ones block on the in-flight entry and reuse its result — a burst of
// identical requests probes disk at most once and routes at most once.
// Disk I/O and routing both happen OUTSIDE every shard lock (the store has
// its own internal mutex). Memory eviction is LRU under a global byte
// budget split evenly across shards; the disk tier evicts under its own
// budget (see store::LogStoreOptions).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "codar/cli/report.hpp"
#include "codar/common/thread_annotations.hpp"
#include "codar/store/log_store.hpp"

namespace codar::service {

/// Content-addressed cache key. All three components are fingerprints
/// (ir::Circuit::fingerprint, arch::Device::fingerprint,
/// options_fingerprint).
struct CacheKey {
  std::uint64_t circuit = 0;
  std::uint64_t device = 0;
  std::uint64_t options = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Cache-wide counters (sums over shards, plus the disk tier's gauges
/// when one is attached).
struct CacheCounters {
  std::size_t entries = 0;    ///< Resident memory-tier entries.
  std::size_t bytes = 0;      ///< Approximate resident memory bytes.
  std::size_t mem_hits = 0;   ///< Lookups served by the memory tier
                              ///< (resident entry or coalesced in-flight).
  std::size_t disk_hits = 0;  ///< Lookups served by the disk tier.
  std::size_t misses = 0;     ///< Lookups that had to route.
  std::size_t evictions = 0;  ///< Memory entries dropped by the LRU budget.

  /// Disk tier (all zero when no store is attached).
  std::size_t disk_entries = 0;     ///< Live persisted entries.
  std::size_t disk_bytes = 0;       ///< Live persisted record bytes.
  std::size_t disk_file_bytes = 0;  ///< On-disk segment bytes incl. dead.
  std::size_t disk_evictions = 0;   ///< Entries dropped by the disk budget.

  std::size_t hits() const { return mem_hits + disk_hits; }
};

class RouteCache {
 public:
  /// `byte_budget` caps the total resident report bytes (split evenly
  /// across shards); 0 disables memoization entirely (every lookup routes,
  /// counted as a miss, and the disk tier is bypassed too). `num_shards`
  /// must be >= 1.
  explicit RouteCache(std::size_t byte_budget, int num_shards = 8);

  /// Attaches the persistent disk tier. Not thread-safe: call before the
  /// first get_or_route (serve does this at boot). The store is borrowed,
  /// not owned, and must outlive the cache.
  void attach_store(store::LogStore* log_store) { store_ = log_store; }

  /// Returns the cached report for `key` — from memory, a coalesced
  /// in-flight request, or the disk tier — or invokes `route` to produce
  /// it, stores it (memory + disk) and returns it. Concurrent calls with
  /// the same key do the work once (single-flight). `hit`, when non-null,
  /// is set to true iff the report was produced without invoking `route`.
  cli::RouteReport get_or_route(
      const CacheKey& key, const std::function<cli::RouteReport()>& route,
      bool* hit = nullptr);

  /// Inserts an entry into the memory tier without touching any counter —
  /// warm-start preloading at serve boot. Evictions still count (they are
  /// real budget pressure).
  void preload(const CacheKey& key, const cli::RouteReport& report);

  CacheCounters counters() const;

  /// Times a resident entry was served from the memory tier (its per-entry
  /// hit counter); 0 when absent. Eviction resets it along with the entry.
  std::size_t entry_hits(const CacheKey& key) const;

  std::size_t byte_budget() const { return byte_budget_; }

  /// Approximate resident size of one report (struct + string storage).
  static std::size_t report_bytes(const cli::RouteReport& report);

 private:
  struct Entry {
    CacheKey key;
    cli::RouteReport report;
    std::size_t bytes = 0;
    std::size_t hits = 0;
  };

  /// A disk probe / route in progress; later requesters for the same key
  /// block on cv.
  struct Inflight {
    common::Mutex m;
    std::condition_variable_any cv;
    bool ready CODAR_GUARDED_BY(m) = false;
    cli::RouteReport report CODAR_GUARDED_BY(m);
  };

  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };

  struct Shard {
    mutable common::Mutex m;
    /// Front = most recently used.
    std::list<Entry> lru CODAR_GUARDED_BY(m);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index
        CODAR_GUARDED_BY(m);
    std::unordered_map<CacheKey, std::shared_ptr<Inflight>, KeyHash> inflight
        CODAR_GUARDED_BY(m);
    std::size_t bytes CODAR_GUARDED_BY(m) = 0;
    std::size_t mem_hits CODAR_GUARDED_BY(m) = 0;
    std::size_t disk_hits CODAR_GUARDED_BY(m) = 0;
    std::size_t misses CODAR_GUARDED_BY(m) = 0;
    std::size_t evictions CODAR_GUARDED_BY(m) = 0;
  };

  Shard& shard_for(const CacheKey& key);
  const Shard& shard_for(const CacheKey& key) const;
  /// Inserts under the shard lock, then evicts LRU tails over budget.
  void insert_locked(Shard& shard, const CacheKey& key,
                     const cli::RouteReport& report) CODAR_REQUIRES(shard.m);

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<Shard> shards_;
  store::LogStore* store_ = nullptr;  ///< Optional disk tier (borrowed).
};

}  // namespace codar::service

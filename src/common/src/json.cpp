#include "codar/common/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>

namespace codar::common {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw JsonError("JSON error at byte " + std::to_string(pos) + ": " + what);
}

/// Appends one Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// Single-pass recursive-descent parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after value");
    return v;
  }

 private:
  // Deep enough for any sane request, shallow enough that a hostile line
  // of ten thousand '[' cannot overflow the native stack.
  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    Json v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind_ = Json::Kind::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail(pos_, "invalid literal");
        v.kind_ = Json::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail(pos_, "invalid literal");
        v.kind_ = Json::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail(pos_, "invalid literal");
        v.kind_ = Json::Kind::kNull;
        return v;
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    Json v;
    v.kind_ = Json::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array(int depth) {
    Json v;
    v.kind_ = Json::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail(pos_, "unpaired surrogate");
            }
            pos_ += 2;
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_, "invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_, "unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(pos_ - 1, "invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&]() {
      const std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > before;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail(pos_, "invalid number");
    // RFC 8259: the integer part is "0" or starts with 1-9. Ids echo back
    // verbatim, so a token like 007 would make the *response* invalid JSON.
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      fail(int_start, "leading zeros in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail(pos_, "invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail(pos_, "invalid number");
    }
    Json v;
    v.kind_ = Json::Kind::kNumber;
    v.string_ = std::string(text_.substr(start, pos_ - start));
    const auto [ptr, ec] = std::from_chars(
        v.string_.data(), v.string_.data() + v.string_.size(), v.number_);
    if (ec != std::errc() || ptr != v.string_.data() + v.string_.size()) {
      fail(start, "unrepresentable number");
    }
    return v;
  }
};

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("expected a boolean");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("expected a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("expected a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw JsonError("expected an array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) throw JsonError("expected an object");
  return members_;
}

const std::string& Json::raw_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("expected a number");
  return string_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_quote(std::string_view s) {
  // One escaper for the whole binary: the CLI report writer delegates
  // here, so response envelopes and the embedded "result" objects can
  // never diverge on how the same byte renders.
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace codar::common

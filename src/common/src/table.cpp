#include "codar/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "codar/common/expects.hpp"

namespace codar {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CODAR_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CODAR_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_fixed(double value, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << value;
  return oss.str();
}

}  // namespace codar

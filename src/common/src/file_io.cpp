#include "codar/common/file_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace codar::common {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(errno));
}

std::uint64_t fd_size(int fd) {
  struct stat st {};
  if (::fstat(fd, &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

AppendFile::AppendFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) throw_errno("cannot open for append", path);
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

bool AppendFile::append(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool AppendFile::sync() { return ::fsync(fd_) == 0; }

std::uint64_t AppendFile::size() const { return fd_size(fd_); }

RandomReadFile::RandomReadFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) throw_errno("cannot open for read", path);
}

RandomReadFile::~RandomReadFile() {
  if (fd_ >= 0) ::close(fd_);
}

bool RandomReadFile::read_at(std::uint64_t offset, std::size_t size,
                             void* out) const {
  char* p = static_cast<char*>(out);
  while (size > 0) {
    const ssize_t n =
        ::pread(fd_, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF inside the requested span
    p += n;
    offset += static_cast<std::uint64_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t RandomReadFile::size() const { return fd_size(fd_); }

DirLock::DirLock(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("cannot open lock file", path);
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("store directory '" + dir +
                             "' is locked by another process");
  }
}

DirLock::~DirLock() {
  if (fd_ >= 0) ::close(fd_);  // close releases the flock
}

void ensure_directory(const std::string& dir) {
  // Create each prefix in turn; EEXIST on a directory is fine.
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t next = dir.find('/', pos);
    prefix = next == std::string::npos ? dir : dir.substr(0, next);
    pos = next == std::string::npos ? dir.size() + 1 : next + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) == 0 || errno == EEXIST) continue;
    throw_errno("cannot create directory", prefix);
  }
  struct stat st {};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw std::runtime_error("'" + dir + "' is not a directory");
  }
}

std::vector<std::string> list_files_with_prefix(const std::string& dir,
                                                const std::string& prefix) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) != 0) continue;
    struct stat st {};
    if (::stat((dir + "/" + name).c_str(), &st) != 0 ||
        !S_ISREG(st.st_mode)) {
      continue;
    }
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool truncate_file(const std::string& path, std::uint64_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

bool remove_file(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

std::uint64_t file_size(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace codar::common

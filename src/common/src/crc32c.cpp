#include "codar/common/crc32c.hpp"

#include <array>

namespace codar::common {

namespace {

/// 8 slicing tables for the reflected Castagnoli polynomial, built once at
/// first use (constant-initialized thereafter; immutable, so shared across
/// threads without synchronization).
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& tables() {
  static const Crc32cTables kTables;
  return kTables;
}

}  // namespace

void Crc32c::update(const void* data, std::size_t size) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state_;
  // Slice-by-8 over aligned-length middle; byte-at-a-time head and tail.
  while (size >= 8) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xffu] ^ t[6][(crc >> 8) & 0xffu] ^
          t[5][(crc >> 16) & 0xffu] ^ t[4][crc >> 24] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  state_ = crc;
}

std::uint32_t crc32c(const void* data, std::size_t size) {
  Crc32c c;
  c.update(data, size);
  return c.value();
}

}  // namespace codar::common

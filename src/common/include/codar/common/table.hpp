#pragma once

// Minimal fixed-width table printer used by the benchmark harness to emit
// the rows/series the paper's tables and figures report, plus a CSV dump
// for downstream plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace codar {

/// Accumulates rows of string cells and prints them either as an aligned
/// ASCII table or as CSV. Cells are strings; use the format helpers below.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }

  /// Aligned, human-readable rendering (pads each column to its max width).
  void print(std::ostream& os) const;
  /// Comma-separated rendering (no quoting; cells must not contain commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt_fixed(double value, int decimals);

}  // namespace codar

#pragma once

// Clang thread-safety (capability) analysis support: the annotation macros
// plus the annotated Mutex/MutexLock pair every concurrent structure in the
// tree locks with. Under Clang the clang lanes compile with
// -Wthread-safety -Werror, so a lock-discipline violation — touching a
// CODAR_GUARDED_BY member without its mutex, calling a CODAR_REQUIRES
// function unlocked, leaking a lock out of a scope — is a build break.
// Under GCC/MSVC every macro expands to nothing and Mutex degrades to a
// plain std::mutex wrapper with identical runtime behavior.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// which is why the wrappers exist: the analysis only tracks lock state
// through annotated acquire/release functions. Condition variables use
// std::condition_variable_any waiting on the Mutex directly — wait()
// unlocks and relocks internally, so the capability is held on both sides
// of the call and the analysis (which does not look into system headers)
// stays consistent.
//
// The macro set follows the names in the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed.

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define CODAR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CODAR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define CODAR_CAPABILITY(x) CODAR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor.
#define CODAR_SCOPED_CAPABILITY \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define CODAR_GUARDED_BY(x) CODAR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define CODAR_PT_GUARDED_BY(x) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function that may only be called with the listed capabilities held.
#define CODAR_REQUIRES(...) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define CODAR_ACQUIRE(...) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (held on entry).
#define CODAR_RELEASE(...) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when returning `ret`.
#define CODAR_TRY_ACQUIRE(...) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function that must be called *without* the listed capabilities (it
/// acquires them itself; calling it while holding one would deadlock).
#define CODAR_EXCLUDES(...) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define CODAR_RETURN_CAPABILITY(x) \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch — every use must carry a comment explaining why the
/// analysis cannot see the invariant (e.g. exclusive access by contract).
#define CODAR_NO_THREAD_SAFETY_ANALYSIS \
  CODAR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace codar::common {

/// std::mutex with capability annotations. Satisfies Lockable, so
/// std::condition_variable_any can wait on it directly.
class CODAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CODAR_ACQUIRE() { m_.lock(); }
  void unlock() CODAR_RELEASE() { m_.unlock(); }
  bool try_lock() CODAR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex (the std::lock_guard of this codebase — the
/// standard one is unannotated, so the analysis could not track it).
class CODAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CODAR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CODAR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace codar::common

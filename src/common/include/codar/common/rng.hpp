#pragma once

// Deterministic random-number utilities. All stochastic components of the
// library (random workloads, Monte-Carlo noise trajectories, randomized
// initial mappings) take an explicit seed so every experiment is exactly
// reproducible (C++ Core Guidelines I.2: no hidden global state).

#include <cstdint>
#include <random>

#include "codar/common/expects.hpp"

namespace codar {

/// A small wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    CODAR_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in [0, n-1]. Requires n > 0.
  std::size_t index(std::size_t n) {
    CODAR_EXPECTS(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    CODAR_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) {
    CODAR_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace codar

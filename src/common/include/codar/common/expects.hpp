#pragma once

// Contract-checking helpers (C++ Core Guidelines I.5/I.7: state pre- and
// postconditions). Violations throw codar::ContractViolation so that tests
// can assert on misuse and library users get a diagnosable error instead of
// undefined behaviour.

#include <stdexcept>
#include <string>

namespace codar {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace codar

/// Precondition check: argument validation at public API boundaries.
#define CODAR_EXPECTS(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::codar::detail::contract_fail("precondition", #cond, __FILE__,      \
                                     __LINE__);                            \
  } while (false)

/// Postcondition / internal invariant check.
#define CODAR_ENSURES(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::codar::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                     __LINE__);                            \
  } while (false)

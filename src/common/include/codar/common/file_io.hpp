#pragma once

// Thin POSIX file-I/O helpers for the persistent store (store::LogStore).
// Everything here goes through raw file descriptors on purpose: stdio's
// user-space buffering would make a SIGKILL lose records the caller
// believed written, while a returned ::write reaches the kernel page cache
// — visible to every subsequent open() even if the process dies an instant
// later. (Surviving a *machine* crash additionally needs sync(); the store
// decides when to pay for that.)
//
// Concurrency: AppendFile and RandomReadFile are NOT internally
// synchronized — each instance must be externally serialized, which the
// store does under its own annotated mutex (CODAR_GUARDED_BY in
// log_store.hpp). DirLock IS safe to hold from any thread: it is a kernel
// flock(2) on a lock file, acquired in the constructor and released by
// close/crash, so two processes can never append to the same store
// directory concurrently.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace codar::common {

/// Append-only writer over a POSIX fd (O_CREAT | O_APPEND). Throws
/// std::runtime_error when the file cannot be opened.
class AppendFile {
 public:
  explicit AppendFile(const std::string& path);
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Writes all of `data` (retrying short writes / EINTR). Returns false
  /// on a write error, after which the file's tail is undefined — the
  /// store's CRC framing makes a partial record recoverable.
  bool append(const void* data, std::size_t size);

  /// fsync(2): force appended bytes to stable storage (machine-crash
  /// durability; process-crash durability needs only append()).
  bool sync();

  /// Current file size in bytes (append offset).
  std::uint64_t size() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Positional reader over a POSIX fd (pread, so no seek state and no
/// interference with a concurrent AppendFile on the same path). Throws
/// std::runtime_error when the file cannot be opened.
class RandomReadFile {
 public:
  explicit RandomReadFile(const std::string& path);
  ~RandomReadFile();

  RandomReadFile(const RandomReadFile&) = delete;
  RandomReadFile& operator=(const RandomReadFile&) = delete;

  /// Reads exactly `size` bytes at `offset` into `out`. Returns false on
  /// a short read (EOF inside the span) or an I/O error.
  bool read_at(std::uint64_t offset, std::size_t size, void* out) const;

  std::uint64_t size() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Exclusive advisory lock on `dir/name`, held for the object's lifetime.
/// flock(2)-based: released automatically on close — including abnormal
/// process death — so a crashed server never wedges its store directory.
/// Throws std::runtime_error if the lock is already held elsewhere.
class DirLock {
 public:
  DirLock(const std::string& dir, const std::string& name);
  ~DirLock();

  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

 private:
  int fd_ = -1;
};

/// Creates `dir` (and parents) if absent. Throws std::runtime_error when
/// the path exists as a non-directory or cannot be created.
void ensure_directory(const std::string& dir);

/// Names (not paths) of regular files in `dir` whose name starts with
/// `prefix`, sorted lexicographically. A missing directory yields {}.
std::vector<std::string> list_files_with_prefix(const std::string& dir,
                                                const std::string& prefix);

/// Truncates the file at `path` to `size` bytes. Returns false on error.
bool truncate_file(const std::string& path, std::uint64_t size);

/// Removes the file at `path`. Returns false on error (ENOENT included).
bool remove_file(const std::string& path);

/// Size of the file at `path`, or 0 when it cannot be stat'd.
std::uint64_t file_size(const std::string& path);

}  // namespace codar::common

#pragma once

// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding every record in the persistent route-cache log (store::LogStore).
// Chosen over plain CRC32 for its better error-detection properties on
// storage payloads (it is what RocksDB, LevelDB, ext4 and iSCSI use).
// Software table-driven implementation: ~1 GB/s, deterministic everywhere,
// no SSE4.2 dependency — the store appends at most one record per *routed*
// circuit, so checksum throughput is never on the hot path.
//
// Streaming and one-shot forms. The streaming class is a plain value type
// (no shared state), so concurrent use on distinct instances needs no
// locking; the lookup table is immutable after static initialization.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace codar::common {

class Crc32c {
 public:
  /// Folds `size` bytes at `data` into the running checksum.
  void update(const void* data, std::size_t size);

  void update(std::string_view s) { update(s.data(), s.size()); }

  /// The finalized checksum over everything fed so far. Does not reset;
  /// further update() calls keep extending the same stream.
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience: CRC32C of one contiguous buffer.
std::uint32_t crc32c(const void* data, std::size_t size);

inline std::uint32_t crc32c(std::string_view s) {
  return crc32c(s.data(), s.size());
}

}  // namespace codar::common

#pragma once

// A monotonic bump arena plus a std-compatible allocator over it. Used by
// the CODAR router's per-circuit scratch structures: one thread-local
// arena is reset (not freed) between route() calls, so routing a batch of
// circuits on a large device performs a handful of malloc calls total
// instead of re-growing a dozen vectors per circuit.
//
// Semantics: allocate() bumps within the current block, chaining in a new
// doubled block when full; deallocate() is a no-op — memory is reclaimed
// wholesale by reset(), which retains the blocks for reuse. Containers
// using ArenaAllocator must therefore not outlive the next reset() of
// their arena, and arenas are single-threaded by design (the router keeps
// one per thread).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "codar/common/expects.hpp"

namespace codar::common {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1u << 16)
      : first_block_bytes_(first_block_bytes) {
    CODAR_EXPECTS(first_block_bytes > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two).
  void* allocate(std::size_t bytes, std::size_t alignment) {
    CODAR_EXPECTS(alignment > 0 && (alignment & (alignment - 1)) == 0);
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(block.data.get());
        const std::uintptr_t aligned =
            (base + offset_ + alignment - 1) & ~(alignment - 1);
        const std::size_t new_offset = (aligned - base) + bytes;
        if (new_offset <= block.size) {
          offset_ = new_offset;
          return reinterpret_cast<void*>(aligned);
        }
        // Block exhausted: move on (a retained block from a previous
        // generation may already be big enough).
        ++current_;
        offset_ = 0;
        continue;
      }
      // Need a fresh block: double the last size until the request fits,
      // so any route's worst case costs O(log size) mallocs ever.
      std::size_t size =
          blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
      while (size < bytes + alignment) size *= 2;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
      reserved_ += size;
    }
  }

  /// Makes every byte reusable again without releasing the blocks.
  void reset() {
    current_ = 0;
    offset_ = 0;
  }

  /// Total bytes held across all blocks (diagnostics).
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< Block currently bumped into.
  std::size_t offset_ = 0;   ///< Bump offset within that block.
  std::size_t reserved_ = 0;
};

/// Minimal std::allocator-compatible handle over an Arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_;
};

/// A vector whose storage lives in an Arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace codar::common

#pragma once

// Minimal JSON value + recursive-descent parser, shared by the `codar
// serve` request protocol and the arch device-description loader.
// Dependency-free by design (the container bakes in no JSON library): full
// RFC 8259 value grammar — objects, arrays, strings with \uXXXX escapes
// (surrogate pairs included), numbers, booleans, null — with a
// nesting-depth cap so hostile request lines cannot overflow the parser
// stack. Numbers keep their raw source token alongside the double, so
// request ids round-trip byte-exactly into responses.
//
// Lived in src/service until PR 5; codar/service/json.hpp remains as a
// compatibility shim aliasing these names.

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace codar::common {

/// Raised on malformed JSON; `what()` includes the byte offset.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An immutable parsed JSON value.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON value spanning all of `text` (trailing
  /// whitespace allowed). Throws JsonError otherwise.
  static Json parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError when the kind does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// The verbatim source token of a number (e.g. "17", "-2.5e3").
  const std::string& raw_number() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  ///< String value, or raw number token.
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;

  friend class JsonParser;
};

/// Renders `s` as a JSON string literal (quotes + escapes).
std::string json_quote(std::string_view s);

}  // namespace codar::common

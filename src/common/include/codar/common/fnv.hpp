#pragma once

// 64-bit FNV-1a streaming hasher for the content-addressed fingerprints in
// ir:: and arch::. Deterministic across runs, platforms and build modes:
// everything is folded in as explicit little-endian integer bytes (doubles
// via their IEEE-754 bit pattern), variable-length fields are
// length-prefixed, and callers are expected to feed container contents in a
// canonical order (program order for gates, sorted for edge sets).

#include <cstdint>
#include <cstring>
#include <string_view>

namespace codar::common {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  std::uint64_t value() const { return state_; }

  void byte(std::uint8_t b) {
    state_ ^= b;
    state_ *= kPrime;
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 bit pattern; normalizes -0.0 to +0.0 so equal-comparing
  /// parameter values fingerprint identically.
  void f64(double v) {
    if (v == 0.0) v = 0.0;
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed, so consecutive strings cannot alias each other.
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

}  // namespace codar::common

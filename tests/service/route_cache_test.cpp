// RouteCache unit tests: content-addressed keying, LRU eviction under a
// byte budget, single-flight coalescing, counter correctness under
// concurrent hammering, and the persistent disk tier (store::LogStore
// behind the memory LRU).

#include "codar/service/route_cache.hpp"

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/service/protocol.hpp"
#include "codar/store/report_codec.hpp"

namespace codar::service {
namespace {

cli::RouteReport report_named(const std::string& name, std::size_t swaps) {
  cli::RouteReport r;
  r.name = name;
  r.swaps = swaps;
  r.verified = true;
  return r;
}

CacheKey key_of(std::uint64_t circuit, std::uint64_t device,
                std::uint64_t options) {
  return CacheKey{circuit, device, options};
}

TEST(RouteCache, MissRoutesThenHitsWithoutRouting) {
  RouteCache cache(1 << 20, /*num_shards=*/1);
  int routes = 0;
  const CacheKey key = key_of(1, 2, 3);
  auto route = [&] {
    ++routes;
    return report_named("a", 7);
  };

  bool hit = true;
  cli::RouteReport r = cache.get_or_route(key, route, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(routes, 1);
  EXPECT_EQ(r.swaps, 7u);

  r = cache.get_or_route(key, route, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(routes, 1);  // served from cache, no second route
  EXPECT_EQ(r.swaps, 7u);

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.mem_hits, 1u);
  EXPECT_EQ(c.disk_hits, 0u);  // no store attached
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(cache.entry_hits(key), 1u);
}

TEST(RouteCache, DistinctKeyComponentsNeverCollide) {
  // Any single differing component — circuit, device or options
  // fingerprint — must select a distinct entry.
  RouteCache cache(1 << 20, /*num_shards=*/4);
  int routes = 0;
  auto route = [&] { return report_named("r", static_cast<std::size_t>(++routes)); };

  const std::vector<CacheKey> keys = {
      key_of(1, 1, 1), key_of(2, 1, 1), key_of(1, 2, 1), key_of(1, 1, 2),
  };
  for (const CacheKey& k : keys) cache.get_or_route(k, route);
  EXPECT_EQ(routes, 4);

  // Re-requesting each key returns its own report, not a neighbour's.
  std::size_t expected = 0;
  for (const CacheKey& k : keys) {
    bool hit = false;
    const cli::RouteReport r = cache.get_or_route(k, route, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(r.swaps, ++expected);
  }
  EXPECT_EQ(cache.counters().entries, 4u);
}

TEST(RouteCache, RealFingerprintsGiveDistinctKeys) {
  // Sanity over the real fingerprint functions: different devices and
  // different option sets produce different key components.
  cli::Options base;
  cli::Options sabre = base;
  sabre.router = "sabre";
  cli::Options no_context = base;
  no_context.codar.context_aware = false;
  cli::Options reseeded = base;
  reseeded.seed = base.seed + 1;
  cli::Options with_extra = base;
  with_extra.set_extra("beam", "8");
  cli::Options reweighted = base;
  reweighted.fid.beta = 0.0;  // result-changing for codar-fid
  EXPECT_NE(options_fingerprint(base), options_fingerprint(sabre));
  EXPECT_NE(options_fingerprint(base), options_fingerprint(no_context));
  EXPECT_NE(options_fingerprint(base), options_fingerprint(reseeded));
  EXPECT_NE(options_fingerprint(base), options_fingerprint(with_extra));
  EXPECT_NE(options_fingerprint(base), options_fingerprint(reweighted));

  EXPECT_NE(arch::ibm_q20_tokyo().fingerprint(),
            arch::enfield_6x6().fingerprint());
}

TEST(RouteCache, TimingAndPathsDoNotChangeOptionsFingerprint) {
  // Presentation-only fields must not fragment the cache.
  cli::Options base;
  cli::Options timed = base;
  timed.timing = true;
  timed.threads = 12;
  timed.stats_path = "/tmp/x.json";
  EXPECT_EQ(options_fingerprint(base), options_fingerprint(timed));
}

TEST(RouteCache, LruEvictionUnderByteBudget) {
  // Budget for roughly two entries in one shard; the coldest key must go.
  const cli::RouteReport sample = report_named("x", 0);
  const std::size_t entry_bytes = RouteCache::report_bytes(sample);
  RouteCache cache(2 * entry_bytes + entry_bytes / 2, /*num_shards=*/1);
  auto route = [&] { return sample; };

  cache.get_or_route(key_of(1, 0, 0), route);
  cache.get_or_route(key_of(2, 0, 0), route);
  EXPECT_EQ(cache.counters().entries, 2u);
  EXPECT_EQ(cache.counters().evictions, 0u);

  // Touch key 1 so key 2 is the LRU victim when key 3 arrives.
  bool hit = false;
  cache.get_or_route(key_of(1, 0, 0), route, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_route(key_of(3, 0, 0), route);

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_LE(c.bytes, cache.byte_budget());

  // Keys 1 and 3 are resident; key 2 was the LRU victim and misses again.
  cache.get_or_route(key_of(1, 0, 0), route, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_route(key_of(3, 0, 0), route, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_route(key_of(2, 0, 0), route, &hit);
  EXPECT_FALSE(hit);
}

TEST(RouteCache, OversizedEntryDoesNotPinTheShard) {
  cli::RouteReport huge = report_named("huge", 1);
  huge.routed_qasm.assign(1 << 16, 'q');
  RouteCache cache(256, /*num_shards=*/1);
  cache.get_or_route(key_of(1, 0, 0), [&] { return huge; });
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.entries, 0u);  // rejected straight away
  EXPECT_EQ(c.bytes, 0u);
  EXPECT_EQ(c.evictions, 1u);
}

TEST(RouteCache, OversizedEntryDoesNotFlushWarmEntries) {
  // An over-budget report must be rejected up front, not admitted and
  // then evicted cold-end-first (which would flush the warm entries).
  const cli::RouteReport small = report_named("s", 0);
  const std::size_t entry_bytes = RouteCache::report_bytes(small);
  RouteCache cache(3 * entry_bytes, /*num_shards=*/1);
  auto route_small = [&] { return small; };
  cache.get_or_route(key_of(1, 0, 0), route_small);
  cache.get_or_route(key_of(2, 0, 0), route_small);

  cli::RouteReport huge = report_named("huge", 1);
  huge.routed_qasm.assign(16 * entry_bytes, 'q');
  cache.get_or_route(key_of(3, 0, 0), [&] { return huge; });

  // Both warm entries survived; only the oversized one was dropped.
  bool hit = false;
  cache.get_or_route(key_of(1, 0, 0), route_small, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_route(key_of(2, 0, 0), route_small, &hit);
  EXPECT_TRUE(hit);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
}

TEST(RouteCache, ZeroBudgetDisablesMemoization) {
  RouteCache cache(0, /*num_shards=*/2);
  int routes = 0;
  auto route = [&] {
    ++routes;
    return report_named("a", 1);
  };
  for (int i = 0; i < 3; ++i) {
    bool hit = true;
    cache.get_or_route(key_of(9, 9, 9), route, &hit);
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(routes, 3);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 3u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.entries, 0u);
}

TEST(RouteCache, ConcurrentHitMissCountingIsExact) {
  // N threads x M iterations over K distinct keys. Single-flight
  // guarantees each key routes exactly once; every other lookup must be
  // a hit, and hits + misses must equal total lookups.
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  constexpr std::uint64_t kKeys = 5;

  RouteCache cache(1 << 20, /*num_shards=*/4);
  std::atomic<int> routes{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t k =
            static_cast<std::uint64_t>(t + i) % kKeys;
        const cli::RouteReport r = cache.get_or_route(
            key_of(k, 0, 0), [&] {
              ++routes;
              return report_named("k", static_cast<std::size_t>(k));
            });
        // Every requester gets the right key's report, coalesced or not.
        EXPECT_EQ(r.swaps, static_cast<std::size_t>(k));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(routes.load(), static_cast<int>(kKeys));
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, kKeys);
  EXPECT_EQ(c.hits() + c.misses,
            static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(c.entries, kKeys);
}

// --- Disk tier ------------------------------------------------------------

class TieredRouteCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(testing::TempDir()) /
           ("codar_tiered_cache_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::unique_ptr<store::LogStore> open_store() {
    return store::LogStore::open(dir_.string(), {});
  }

  std::filesystem::path dir_;
};

TEST_F(TieredRouteCacheTest, DiskTierServesAcrossCacheInstances) {
  const CacheKey key = key_of(11, 22, 33);
  {
    auto log = open_store();
    RouteCache cache(1 << 20, /*num_shards=*/1);
    cache.attach_store(log.get());
    bool hit = true;
    cache.get_or_route(key, [] { return report_named("cold", 9); }, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.counters().disk_entries, 1u);
  }
  // A fresh cache over the same directory — the restarted-server shape.
  auto log = open_store();
  RouteCache cache(1 << 20, /*num_shards=*/1);
  cache.attach_store(log.get());
  int routes = 0;
  bool hit = false;
  cli::RouteReport r = cache.get_or_route(
      key,
      [&] {
        ++routes;
        return report_named("never", 0);
      },
      &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(routes, 0);  // served from disk, not re-routed
  EXPECT_EQ(r.swaps, 9u);
  EXPECT_EQ(r.name, "cold");

  // The disk hit promoted the entry; the next lookup is a memory hit.
  cache.get_or_route(key, [&] { return report_named("never", 0); }, &hit);
  EXPECT_TRUE(hit);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.disk_hits, 1u);
  EXPECT_EQ(c.mem_hits, 1u);
  EXPECT_EQ(c.misses, 0u);
}

TEST_F(TieredRouteCacheTest, ErrorReportsAreNotPersisted) {
  const CacheKey key = key_of(1, 2, 3);
  {
    auto log = open_store();
    RouteCache cache(1 << 20, /*num_shards=*/1);
    cache.attach_store(log.get());
    const cli::RouteReport r = cache.get_or_route(
        key, []() -> cli::RouteReport { throw std::runtime_error("boom"); });
    EXPECT_EQ(r.error, "boom");
    EXPECT_EQ(cache.counters().disk_entries, 0u);
  }
  // A later, fixed route for the same key must actually route (the error
  // never made it to disk) and then persist the good report.
  auto log = open_store();
  RouteCache cache(1 << 20, /*num_shards=*/1);
  cache.attach_store(log.get());
  bool hit = true;
  const cli::RouteReport r =
      cache.get_or_route(key, [] { return report_named("fixed", 4); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(r.error.empty());
  EXPECT_EQ(cache.counters().disk_entries, 1u);
}

TEST_F(TieredRouteCacheTest, PreloadServesFromMemoryWithoutCounters) {
  const CacheKey key = key_of(7, 8, 9);
  {
    auto log = open_store();
    RouteCache cache(1 << 20, /*num_shards=*/1);
    cache.attach_store(log.get());
    cache.get_or_route(key, [] { return report_named("warm", 5); });
  }
  auto log = open_store();
  RouteCache cache(1 << 20, /*num_shards=*/1);
  cache.attach_store(log.get());
  // Warm-start: decode the persisted entries and preload them.
  for (const auto& [fp, payload] : log->recent_entries(16)) {
    cli::RouteReport report;
    ASSERT_TRUE(store::decode_report(payload, &report));
    cache.preload(CacheKey{fp.circuit, fp.device, fp.options}, report);
  }
  CacheCounters c = cache.counters();
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.mem_hits, 0u);  // preloading itself counts nothing

  bool hit = false;
  const cli::RouteReport r = cache.get_or_route(
      key, [] { return report_named("never", 0); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(r.swaps, 5u);
  c = cache.counters();
  EXPECT_EQ(c.mem_hits, 1u);  // served by the memory tier, not disk
  EXPECT_EQ(c.disk_hits, 0u);
}

TEST_F(TieredRouteCacheTest, ZeroBudgetBypassesDiskTier) {
  auto log = open_store();
  RouteCache cache(0, /*num_shards=*/1);
  cache.attach_store(log.get());
  int routes = 0;
  for (int i = 0; i < 2; ++i) {
    bool hit = true;
    cache.get_or_route(
        key_of(1, 1, 1),
        [&] {
          ++routes;
          return report_named("x", 1);
        },
        &hit);
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(routes, 2);
  EXPECT_EQ(log->stats().entries, 0u);  // nothing persisted either
}

}  // namespace
}  // namespace codar::service

// End-to-end tests for `codar serve`: the full built-in suite round-trips
// with responses byte-identical to one-shot batch stats, a warm-cache
// rerun routes nothing, counters are exact, and error paths degrade into
// per-request error responses.

#include "codar/service/server.hpp"

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codar/arch/device_json.hpp"
#include "codar/cli/device_registry.hpp"
#include "codar/cli/driver.hpp"
#include "codar/service/json.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::service {
namespace {

/// Feeds `lines` to run_serve and returns the response lines.
std::vector<std::string> serve(const ServeOptions& opts,
                               const std::vector<std::string>& lines) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_serve(opts, in, out, err), 0) << err.str();

  std::vector<std::string> responses;
  std::istringstream splitter(out.str());
  std::string line;
  while (std::getline(splitter, line)) responses.push_back(line);
  return responses;
}

/// Indexes responses by their "id" value (rendered back to a JSON token).
std::map<std::string, std::string> by_id(
    const std::vector<std::string>& responses) {
  std::map<std::string, std::string> index;
  for (const std::string& line : responses) {
    const Json doc = Json::parse(line);
    const Json* id = doc.find("id");
    EXPECT_NE(id, nullptr) << line;
    std::string key = "null";
    if (id->is_number()) key = id->raw_number();
    if (id->is_string()) key = json_quote(id->as_string());
    EXPECT_EQ(index.count(key), 0u) << "duplicate id " << key;
    index[key] = line;
  }
  return index;
}

/// The byte span of the "result" object inside a response envelope.
std::string result_of(const std::string& response) {
  static const std::string marker = ", \"result\": ";
  const std::size_t pos = response.find(marker);
  EXPECT_NE(pos, std::string::npos) << response;
  if (pos == std::string::npos) return "";
  // The envelope's final '}' is the last byte.
  return response.substr(pos + marker.size(),
                         response.size() - pos - marker.size() - 1);
}

bool cached_flag(const std::string& response) {
  return Json::parse(response).find("cached")->as_bool();
}

TEST(Serve, SuiteRoundTripIsByteIdenticalToBatchAndWarmRerunRoutesNothing) {
  // The acceptance lock: serve the whole built-in suite, then serve it
  // again. Every result must equal the batch driver's stats byte-for-byte,
  // and the second pass must route zero circuits.
  ServeOptions sopts;
  sopts.defaults.device = "enfield";
  sopts.defaults.threads = 4;

  const std::vector<workloads::BenchmarkSpec> suite =
      workloads::benchmark_suite();

  std::vector<std::string> lines;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    lines.push_back("{\"id\": " + std::to_string(i) +
                    ", \"suite_name\": " + json_quote(suite[i].name) + "}");
  }
  lines.push_back(R"({"id": "cold", "cmd": "stats"})");
  for (std::size_t i = 0; i < suite.size(); ++i) {
    lines.push_back("{\"id\": " + std::to_string(1000 + i) +
                    ", \"suite_name\": " + json_quote(suite[i].name) + "}");
  }
  lines.push_back(R"({"id": "warm", "cmd": "stats"})");

  const std::vector<std::string> responses = serve(sopts, lines);
  ASSERT_EQ(responses.size(), 2 * suite.size() + 2);
  const std::map<std::string, std::string> index = by_id(responses);

  // Reference: the one-shot batch driver over the same jobs and options.
  const arch::Device device = cli::make_device("enfield");
  const std::vector<cli::RouteReport> reference =
      cli::run_batch(suite, device, sopts.defaults);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const std::string expected = cli::to_json(reference[i], sopts.defaults);
    ASSERT_TRUE(index.count(std::to_string(i))) << suite[i].name;
    ASSERT_TRUE(index.count(std::to_string(1000 + i))) << suite[i].name;
    // Cold and warm responses both carry byte-identical batch stats.
    EXPECT_EQ(result_of(index.at(std::to_string(i))), expected)
        << suite[i].name;
    EXPECT_EQ(result_of(index.at(std::to_string(1000 + i))), expected)
        << suite[i].name;
    // The warm pass is served entirely from the cache.
    EXPECT_TRUE(cached_flag(index.at(std::to_string(1000 + i))))
        << suite[i].name;
  }

  // Counter bookkeeping. Suite entries are keyed by content, so should a
  // pair of benchmarks share a fingerprint the duplicate coalesces into a
  // hit; count unique fingerprints rather than assuming 71.
  std::set<std::uint64_t> unique;
  for (const workloads::BenchmarkSpec& spec : suite) {
    unique.insert(spec.circuit.fingerprint());
  }
  const Json cold = Json::parse(index.at("\"cold\""));
  EXPECT_EQ(cold.find("requests")->as_number(),
            static_cast<double>(suite.size()));
  EXPECT_EQ(cold.find("routed")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(cold.find("cache")->find("misses")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(cold.find("cache")->find("entries")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(cold.find("cache")->find("evictions")->as_number(), 0.0);

  const Json warm = Json::parse(index.at("\"warm\""));
  EXPECT_EQ(warm.find("requests")->as_number(),
            static_cast<double>(2 * suite.size()));
  // The entire second pass hit the cache: routed did not move.
  EXPECT_EQ(warm.find("routed")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(warm.find("cache")->find("misses")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(warm.find("cache")->find("hits")->as_number(),
            static_cast<double>(2 * suite.size() - unique.size()));
}

TEST(Serve, ContentAddressingHitsAcrossDeviceSpecsAndNames) {
  ServeOptions sopts;
  sopts.defaults.threads = 1;  // deterministic request order

  const std::string ghz =
      "OPENQASM 2.0; include \\\"qelib1.inc\\\"; qreg q[3]; "
      "h q[0]; cx q[0],q[1]; cx q[1],q[2];";
  // grid:1x3 and linear:3 are structurally identical devices, and the
  // display name is excluded from the circuit fingerprint — so all three
  // requests share one cache entry.
  const std::vector<std::string> lines = {
      R"({"id": 1, "qasm": ")" + ghz + R"(", "device": "linear:3", "name": "a"})",
      R"({"id": 2, "qasm": ")" + ghz + R"(", "device": "linear:3", "name": "b"})",
      R"({"id": 3, "qasm": ")" + ghz + R"(", "device": "grid:1x3", "name": "a"})",
      R"({"id": 4, "cmd": "stats"})",
  };
  const std::map<std::string, std::string> index = by_id(serve(sopts, lines));

  EXPECT_FALSE(cached_flag(index.at("1")));
  EXPECT_TRUE(cached_flag(index.at("2")));
  EXPECT_TRUE(cached_flag(index.at("3")));

  // Each response still reports its own name and device spec.
  EXPECT_NE(index.at("2").find("\"name\": \"b\""), std::string::npos);
  EXPECT_NE(index.at("3").find("\"device\": \"grid:1x3\""),
            std::string::npos);

  const Json stats = Json::parse(index.at("4"));
  EXPECT_EQ(stats.find("routed")->as_number(), 1.0);
  EXPECT_EQ(stats.find("cache")->find("entries")->as_number(), 1.0);
}

TEST(Serve, DifferentOptionsNeverShareACacheEntry) {
  ServeOptions sopts;
  sopts.defaults.threads = 1;
  const std::vector<std::string> lines = {
      R"({"id": 1, "suite_name": "ghz_3"})",
      R"({"id": 2, "suite_name": "ghz_3", "router": "sabre"})",
      R"({"id": 3, "suite_name": "ghz_3", "options": {"seed": 99}})",
      R"({"id": 4, "suite_name": "ghz_3", "device": "q16"})",
      R"({"id": 5, "cmd": "stats"})",
  };
  const std::map<std::string, std::string> index = by_id(serve(sopts, lines));
  for (const std::string id : {"1", "2", "3", "4"}) {
    EXPECT_FALSE(cached_flag(index.at(id))) << id;
  }
  const Json stats = Json::parse(index.at("5"));
  EXPECT_EQ(stats.find("routed")->as_number(), 4.0);
  EXPECT_EQ(stats.find("cache")->find("entries")->as_number(), 4.0);
}

TEST(Serve, ErrorPathsProduceErrorResponses) {
  ServeOptions sopts;
  sopts.defaults.threads = 1;
  const std::vector<std::string> lines = {
      "this is not json",
      R"({"id": 1, "suite_name": "no_such_benchmark"})",
      R"({"id": 2, "qasm": "OPENQASM 2.0; qreg q[2"})",
      R"({"id": 3, "qasm": "x", "device": "no_such_device"})",
      R"({"id": 5, "suite_name": "ghz_3", "device": "no_such_device"})",
      R"({"id": "weird \"id\""})",
      R"({"id": 4, "cmd": "stats"})",
  };
  const std::vector<std::string> responses = serve(sopts, lines);
  ASSERT_EQ(responses.size(), lines.size());
  const std::map<std::string, std::string> index = by_id(responses);

  // Malformed line: error envelope with a null id.
  EXPECT_NE(index.at("null").find("\"error\""), std::string::npos);
  // Bad id-bearing requests echo the id (escaped correctly).
  EXPECT_NE(index.at("\"weird \\\"id\\\"\"").find("\"error\""),
            std::string::npos);
  // Unknown suite name / QASM parse failure / unknown device: per-request
  // error *results* in the batch schema (error field present).
  for (const std::string id : {"1", "2", "3", "5"}) {
    const std::string& line = index.at(id);
    EXPECT_NE(line.find("\"error\": "), std::string::npos) << line;
    EXPECT_NE(line.find("\"verified\": false"), std::string::npos) << line;
  }
  // Error responses carry the same display name a success would, so
  // failures stay correlatable by benchmark name.
  EXPECT_NE(index.at("5").find("\"name\": \"ghz_3\""), std::string::npos);

  const Json stats = Json::parse(index.at("4"));
  EXPECT_EQ(stats.find("errors")->as_number(), 2.0);   // malformed lines
  EXPECT_EQ(stats.find("requests")->as_number(), 4.0);
  EXPECT_EQ(stats.find("routed")->as_number(), 0.0);
}

TEST(Serve, TimingOptionKeepsCacheKeyButChangesRendering) {
  ServeOptions sopts;
  sopts.defaults.threads = 1;
  const std::vector<std::string> lines = {
      R"({"id": 1, "suite_name": "ghz_3"})",
      R"({"id": 2, "suite_name": "ghz_3", "options": {"timing": true}})",
  };
  const std::map<std::string, std::string> index = by_id(serve(sopts, lines));
  // timing is presentation-only: the second request hits the first's
  // entry, and only its rendering gains route_us.
  EXPECT_TRUE(cached_flag(index.at("2")));
  EXPECT_EQ(index.at("1").find("route_us"), std::string::npos);
  EXPECT_NE(index.at("2").find("route_us"), std::string::npos);
}

TEST(Serve, InlineDeviceObjectsShareTheCacheByContent) {
  ServeOptions sopts;
  sopts.defaults.threads = 1;

  // A request line is one JSON document; flatten the (pretty-printed)
  // device serialization onto it.
  auto one_line = [](std::string text) {
    for (char& c : text) {
      if (c == '\n') c = ' ';
    }
    return text;
  };
  const std::string enfield = one_line(device_to_json(arch::enfield_6x6()));
  arch::Device slow = arch::enfield_6x6();
  slow.calibration.set_duration_2q(0, 1, 16);
  const std::string calibrated = one_line(device_to_json(slow));

  const std::vector<std::string> lines = {
      R"({"id": 1, "suite_name": "qft_8", "device": "enfield"})",
      // Content-identical inline device: must hit the spec-string entry
      // (the cache keys on the device fingerprint, not its spelling).
      R"({"id": 2, "suite_name": "qft_8", "device": )" + enfield + "}",
      // A recalibrated device fingerprints differently: never aliased.
      R"({"id": 3, "suite_name": "qft_8", "device": )" + calibrated + "}",
      R"({"id": 4, "cmd": "stats"})",
  };
  const std::map<std::string, std::string> index = by_id(serve(sopts, lines));
  EXPECT_FALSE(cached_flag(index.at("1")));
  EXPECT_TRUE(cached_flag(index.at("2")));
  EXPECT_FALSE(cached_flag(index.at("3")));
  EXPECT_NE(index.at("3").find("\"verified\": true"), std::string::npos)
      << index.at("3");
  // The inline device's display name lands in the result's device field.
  EXPECT_NE(index.at("2").find("\"device\": \"Enfield 6x6\""),
            std::string::npos)
      << index.at("2");

  const Json stats = Json::parse(index.at("4"));
  EXPECT_EQ(stats.find("requests")->as_number(), 3.0);
  EXPECT_EQ(stats.find("routed")->as_number(), 2.0);
}

TEST(ServeArgs, ParseAndUsage) {
  const ServeOptions opts = parse_serve_args(
      {"--device", "q16", "--threads", "3", "--cache-bytes", "1024",
       "--cache-shards", "2", "--no-verify"});
  EXPECT_EQ(opts.defaults.device, "q16");
  EXPECT_EQ(opts.defaults.threads, 3);
  EXPECT_EQ(opts.cache_bytes, 1024u);
  EXPECT_EQ(opts.cache_shards, 2);
  EXPECT_FALSE(opts.defaults.verify);

  EXPECT_THROW(parse_serve_args({"--cache-bytes"}), cli::UsageError);
  EXPECT_THROW(parse_serve_args({"--cache-bytes", "lots"}), cli::UsageError);
  EXPECT_THROW(parse_serve_args({"--cache-shards", "0"}), cli::UsageError);
  // 2^32 would truncate to int 0 past a naive >= 1 check.
  EXPECT_THROW(parse_serve_args({"--cache-shards", "4294967296"}),
               cli::UsageError);
  EXPECT_THROW(parse_serve_args({"positional.qasm"}), cli::UsageError);

  EXPECT_NE(serve_usage().find("--cache-bytes"), std::string::npos);
}

TEST(ServeCli, HelpAndBadFlagsAndBadDevice) {
  std::istringstream in;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_serve_cli({"--help"}, in, out, err), 0);
  EXPECT_NE(out.str().find("codar serve"), std::string::npos);

  std::ostringstream err2;
  EXPECT_EQ(run_serve_cli({"--wat"}, in, out, err2), 2);
  EXPECT_NE(err2.str().find("unknown serve flag"), std::string::npos);

  std::ostringstream err3;
  EXPECT_EQ(run_serve_cli({"--device", "no_such"}, in, out, err3), 2);
}

}  // namespace
}  // namespace codar::service

// Transport-layer tests: listen-spec parsing, TCP and Unix-domain
// listener/connection round trips, ephemeral-port resolution, read
// timeouts, close() waking accept(), and write-after-disconnect failure.

#include "codar/service/transport.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include <unistd.h>

namespace codar::service {
namespace {

TEST(ListenSpecTest, ParsesStdioTcpAndUnix) {
  EXPECT_EQ(parse_listen_spec("stdio").kind, ListenSpec::Kind::kStdio);

  const ListenSpec tcp = parse_listen_spec("tcp:127.0.0.1:7777");
  EXPECT_EQ(tcp.kind, ListenSpec::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7777);
  EXPECT_EQ(to_string(tcp), "tcp:127.0.0.1:7777");

  // IPv6 literals keep their colons: the port is after the LAST colon.
  const ListenSpec v6 = parse_listen_spec("tcp:::1:80");
  EXPECT_EQ(v6.host, "::1");
  EXPECT_EQ(v6.port, 80);

  const ListenSpec unix_spec = parse_listen_spec("unix:/tmp/codar.sock");
  EXPECT_EQ(unix_spec.kind, ListenSpec::Kind::kUnix);
  EXPECT_EQ(unix_spec.path, "/tmp/codar.sock");
  EXPECT_EQ(to_string(unix_spec), "unix:/tmp/codar.sock");
}

TEST(ListenSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_listen_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("http:localhost:80"),
               std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("tcp:localhost"), std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("tcp::8080"), std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("tcp:localhost:"), std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("tcp:localhost:notaport"),
               std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("tcp:localhost:65536"),
               std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("tcp:localhost:-1"),
               std::invalid_argument);
  EXPECT_THROW(parse_listen_spec("unix:"), std::invalid_argument);
  // sun_path is 108 bytes including the terminator.
  EXPECT_THROW(parse_listen_spec("unix:/" + std::string(200, 'x')),
               std::invalid_argument);
}

TEST(ListenSpecTest, StdioHasNoListener) {
  EXPECT_THROW(make_listener(parse_listen_spec("stdio")),
               std::invalid_argument);
}

/// Reads exactly `n` bytes (blocking, generous timeout) or fails.
std::string read_exact(Connection& conn, std::size_t n) {
  std::string out;
  char buf[4096];
  while (out.size() < n) {
    std::size_t got = 0;
    const ReadStatus status =
        conn.read_some(buf, std::min(sizeof buf, n - out.size()), &got,
                       /*timeout_ms=*/5000);
    if (status != ReadStatus::kData) {
      ADD_FAILURE() << "read_some status " << static_cast<int>(status)
                    << " after " << out.size() << " of " << n << " bytes";
      return out;
    }
    out.append(buf, got);
  }
  return out;
}

void round_trip_over(Listener& listener) {
  // Client connects and speaks first; the server side echoes back.
  std::unique_ptr<Connection> client;
  std::thread connector([&client, endpoint = listener.endpoint()] {
    client = connect_endpoint(endpoint, /*timeout_ms=*/5000);
  });
  std::unique_ptr<Connection> served = listener.accept();
  connector.join();
  ASSERT_NE(served, nullptr);
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(served->peer().empty());

  ASSERT_TRUE(client->write_all("hello over the wire\n"));
  EXPECT_EQ(read_exact(*served, 20), "hello over the wire\n");
  ASSERT_TRUE(served->write_all("echo\n"));
  EXPECT_EQ(read_exact(*client, 5), "echo\n");
}

TEST(TransportTest, TcpEphemeralPortRoundTrip) {
  const auto listener = make_listener(parse_listen_spec("tcp:127.0.0.1:0"));
  // Port 0 must resolve to a real connectable port in endpoint().
  const std::string endpoint = listener->endpoint();
  EXPECT_EQ(endpoint.rfind("tcp:127.0.0.1:", 0), 0u) << endpoint;
  EXPECT_NE(endpoint, "tcp:127.0.0.1:0");
  round_trip_over(*listener);
}

TEST(TransportTest, UnixSocketRoundTripAndStaleFileReuse) {
  const std::string path =
      "/tmp/codar_transport_test_" + std::to_string(::getpid()) + ".sock";
  const ListenSpec spec = parse_listen_spec("unix:" + path);
  {
    const auto listener = make_listener(spec);
    EXPECT_EQ(listener->endpoint(), "unix:" + path);
    round_trip_over(*listener);
  }
  // The socket file is unlinked on teardown, and a stale file (simulated
  // by an earlier bind) never blocks a rebind.
  const auto again = make_listener(spec);
  round_trip_over(*again);
}

TEST(TransportTest, ReadTimesOutOnIdleConnection) {
  const auto listener = make_listener(parse_listen_spec("tcp:127.0.0.1:0"));
  std::unique_ptr<Connection> client;
  std::thread connector([&client, endpoint = listener->endpoint()] {
    client = connect_endpoint(endpoint);
  });
  const std::unique_ptr<Connection> served = listener->accept();
  connector.join();
  ASSERT_NE(served, nullptr);

  char buf[16];
  std::size_t got = 1;
  EXPECT_EQ(served->read_some(buf, sizeof buf, &got, /*timeout_ms=*/50),
            ReadStatus::kTimeout);
  EXPECT_EQ(got, 0u);
}

TEST(TransportTest, CloseWakesBlockedAccept) {
  const auto listener = make_listener(parse_listen_spec("tcp:127.0.0.1:0"));
  std::unique_ptr<Connection> accepted;
  bool returned = false;
  std::thread acceptor([&] {
    accepted = listener->accept();
    returned = true;
  });
  listener->close();
  acceptor.join();
  EXPECT_TRUE(returned);
  EXPECT_EQ(accepted, nullptr);
  // close() is sticky and idempotent.
  listener->close();
  EXPECT_EQ(listener->accept(), nullptr);
}

TEST(TransportTest, WriteToDisconnectedPeerFails) {
  const auto listener = make_listener(parse_listen_spec("tcp:127.0.0.1:0"));
  std::unique_ptr<Connection> client;
  std::thread connector([&client, endpoint = listener->endpoint()] {
    client = connect_endpoint(endpoint);
  });
  std::unique_ptr<Connection> served = listener->accept();
  connector.join();
  ASSERT_NE(served, nullptr);
  client.reset();  // peer disconnects

  // Socket buffering may absorb the first writes, but the failure must
  // surface (as a false return, never SIGPIPE) within a bounded volume,
  // and then stick.
  const std::string chunk(64 * 1024, 'x');
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !served->write_all(chunk);
  }
  EXPECT_TRUE(failed);
  EXPECT_FALSE(served->write_all("more"));
}

TEST(TransportTest, StreamConnectionReadsWritesAndEofs) {
  std::istringstream in("line one\nline two");
  std::ostringstream out;
  const auto conn = make_stream_connection(in, out);
  EXPECT_EQ(conn->peer(), "stdio");

  std::string all;
  char buf[8];  // small on purpose: forces multiple chunked reads
  for (;;) {
    std::size_t got = 0;
    const ReadStatus status = conn->read_some(buf, sizeof buf, &got, -1);
    if (status == ReadStatus::kEof) break;
    ASSERT_EQ(status, ReadStatus::kData);
    ASSERT_GE(got, 1u);
    all.append(buf, got);
  }
  EXPECT_EQ(all, "line one\nline two");

  EXPECT_TRUE(conn->write_all("response\n"));
  EXPECT_EQ(out.str(), "response\n");
}

TEST(TransportTest, ConnectToUnboundEndpointThrows) {
  // A freshly bound-then-destroyed listener leaves a port nobody listens
  // on; connecting must throw, not hang.
  std::string endpoint;
  {
    const auto listener =
        make_listener(parse_listen_spec("tcp:127.0.0.1:0"));
    endpoint = listener->endpoint();
  }
  EXPECT_THROW(connect_endpoint(endpoint, /*timeout_ms=*/2000),
               std::runtime_error);
  EXPECT_THROW(connect_endpoint("unix:/tmp/codar_no_such_socket.sock"),
               std::runtime_error);
}

}  // namespace
}  // namespace codar::service

// Persistent-cache acceptance tests for `codar serve --cache-dir`: a
// server routes the full built-in suite, stops, and a *fresh* server over
// the same directory (the kill-and-restart shape — the store is
// append-only, so a hard stop writes no shutdown ritual the restart could
// depend on) serves every response byte-identically from disk without
// routing anything. Damage scenarios (torn tail, garbage segments) must
// degrade to re-routing exactly the lost records, never abort startup.

#include "codar/service/server.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codar/service/json.hpp"
#include "codar/store/log_store.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::service {
namespace {

namespace fs = std::filesystem;

struct ServeRun {
  int exit_code = 0;
  std::vector<std::string> responses;
  std::string err;
};

ServeRun serve(const ServeOptions& opts,
               const std::vector<std::string>& lines) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  ServeRun run;
  run.exit_code = run_serve(opts, in, out, err);
  run.err = err.str();
  std::istringstream splitter(out.str());
  std::string line;
  while (std::getline(splitter, line)) run.responses.push_back(line);
  return run;
}

std::map<std::string, std::string> by_id(
    const std::vector<std::string>& responses) {
  std::map<std::string, std::string> index;
  for (const std::string& line : responses) {
    const Json doc = Json::parse(line);
    const Json* id = doc.find("id");
    EXPECT_NE(id, nullptr) << line;
    std::string key = "null";
    if (id->is_number()) key = id->raw_number();
    if (id->is_string()) key = json_quote(id->as_string());
    index[key] = line;
  }
  return index;
}

/// The byte span of the "result" object inside a response envelope.
std::string result_of(const std::string& response) {
  static const std::string marker = ", \"result\": ";
  const std::size_t pos = response.find(marker);
  EXPECT_NE(pos, std::string::npos) << response;
  if (pos == std::string::npos) return "";
  return response.substr(pos + marker.size(),
                         response.size() - pos - marker.size() - 1);
}

bool cached_flag(const std::string& response) {
  return Json::parse(response).find("cached")->as_bool();
}

double cache_stat(const Json& stats, const std::string& key) {
  return stats.find("cache")->find(key)->as_number();
}

class ServePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("codar_serve_persist_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ServeOptions persistent_opts() {
    ServeOptions opts;
    opts.defaults.device = "enfield";
    opts.defaults.threads = 4;
    opts.cache_dir = dir_.string();
    return opts;
  }

  std::vector<fs::path> segment_files() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".seg") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
};

TEST_F(ServePersistTest, KillAndRestartServesTheSuiteFromDisk) {
  const std::vector<workloads::BenchmarkSpec> suite =
      workloads::benchmark_suite();
  std::set<std::uint64_t> unique;
  for (const workloads::BenchmarkSpec& spec : suite) {
    unique.insert(spec.circuit.fingerprint());
  }

  std::vector<std::string> lines;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    lines.push_back("{\"id\": " + std::to_string(i) +
                    ", \"suite_name\": " + json_quote(suite[i].name) + "}");
  }
  lines.push_back(R"({"id": "stats", "cmd": "stats"})");

  // Cold server: routes everything, appends everything.
  const ServeRun cold = serve(persistent_opts(), lines);
  ASSERT_EQ(cold.exit_code, 0) << cold.err;
  const std::map<std::string, std::string> cold_index =
      by_id(cold.responses);
  const Json cold_stats = Json::parse(cold_index.at("\"stats\""));
  EXPECT_EQ(Json::parse(cold_index.at("\"stats\"")).find("routed")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(cache_stat(cold_stats, "disk_hits"), 0.0);
  EXPECT_EQ(
      cold_stats.find("cache")->find("disk")->find("entries")->as_number(),
      static_cast<double>(unique.size()));
  EXPECT_NE(cold.err.find("route cache dir"), std::string::npos) << cold.err;

  // Restart on the same directory. The warm server must answer the whole
  // suite from disk: zero routes, every result byte-identical, and
  // disk_hits exactly one per unique fingerprint (single-flight coalesces
  // duplicate-fingerprint benchmarks into memory hits).
  const ServeRun warm = serve(persistent_opts(), lines);
  ASSERT_EQ(warm.exit_code, 0) << warm.err;
  const std::map<std::string, std::string> warm_index =
      by_id(warm.responses);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const std::string& id = std::to_string(i);
    ASSERT_TRUE(warm_index.count(id)) << suite[i].name;
    EXPECT_EQ(result_of(warm_index.at(id)), result_of(cold_index.at(id)))
        << suite[i].name;
    EXPECT_TRUE(cached_flag(warm_index.at(id))) << suite[i].name;
  }
  const Json warm_stats = Json::parse(warm_index.at("\"stats\""));
  EXPECT_EQ(warm_stats.find("routed")->as_number(), 0.0);
  EXPECT_EQ(cache_stat(warm_stats, "misses"), 0.0);
  EXPECT_EQ(cache_stat(warm_stats, "disk_hits"),
            static_cast<double>(unique.size()));
  EXPECT_EQ(cache_stat(warm_stats, "mem_hits"),
            static_cast<double>(suite.size() - unique.size()));
  EXPECT_EQ(cache_stat(warm_stats, "hits"),
            static_cast<double>(suite.size()));
}

TEST_F(ServePersistTest, TornTailReRoutesExactlyTheLostEntry) {
  ServeOptions opts = persistent_opts();
  opts.defaults.threads = 1;  // deterministic append order
  // Three distinct cache keys (same circuit, different seeds) appended in
  // request order.
  const std::vector<std::string> lines = {
      R"({"id": 1, "suite_name": "ghz_3"})",
      R"({"id": 2, "suite_name": "ghz_3", "options": {"seed": 5}})",
      R"({"id": 3, "suite_name": "ghz_3", "options": {"seed": 6}})",
      R"({"id": "stats", "cmd": "stats"})",
  };
  const ServeRun cold = serve(opts, lines);
  ASSERT_EQ(cold.exit_code, 0) << cold.err;
  const std::map<std::string, std::string> cold_index =
      by_id(cold.responses);

  // Power cut mid-append: the last record in the newest segment loses its
  // tail bytes.
  const std::vector<fs::path> files = segment_files();
  ASSERT_FALSE(files.empty());
  const fs::path& newest = files.back();
  fs::resize_file(newest, fs::file_size(newest) - 3);

  const ServeRun warm = serve(opts, lines);
  ASSERT_EQ(warm.exit_code, 0) << warm.err;
  // Startup warned about the truncation instead of refusing to boot.
  EXPECT_NE(warm.err.find("warning"), std::string::npos) << warm.err;
  const std::map<std::string, std::string> warm_index =
      by_id(warm.responses);
  const Json warm_stats = Json::parse(warm_index.at("\"stats\""));
  // Exactly the torn-away entry re-routes; the survivors serve from disk.
  EXPECT_EQ(warm_stats.find("routed")->as_number(), 1.0);
  EXPECT_EQ(cache_stat(warm_stats, "disk_hits"), 2.0);
  EXPECT_EQ(cache_stat(warm_stats, "misses"), 1.0);
  // Determinism makes even the re-routed result byte-identical.
  for (const std::string id : {"1", "2", "3"}) {
    EXPECT_EQ(result_of(warm_index.at(id)), result_of(cold_index.at(id)))
        << id;
  }
}

TEST_F(ServePersistTest, WarmStartServesFromMemoryWithoutDiskProbes) {
  ServeOptions opts = persistent_opts();
  const std::vector<std::string> lines = {
      R"({"id": 1, "suite_name": "ghz_3"})",
      R"({"id": 2, "suite_name": "qft_4"})",
      R"({"id": "stats", "cmd": "stats"})",
  };
  const ServeRun cold = serve(opts, lines);
  ASSERT_EQ(cold.exit_code, 0) << cold.err;

  opts.warm_start = 1000;  // preload everything persisted
  const ServeRun warm = serve(opts, lines);
  ASSERT_EQ(warm.exit_code, 0) << warm.err;
  EXPECT_NE(warm.err.find("2 preloaded"), std::string::npos) << warm.err;
  const std::map<std::string, std::string> warm_index =
      by_id(warm.responses);
  const Json warm_stats = Json::parse(warm_index.at("\"stats\""));
  // Preloaded entries are already resident: the rerun never touches disk.
  EXPECT_EQ(warm_stats.find("routed")->as_number(), 0.0);
  EXPECT_EQ(cache_stat(warm_stats, "mem_hits"), 2.0);
  EXPECT_EQ(cache_stat(warm_stats, "disk_hits"), 0.0);
  EXPECT_EQ(cache_stat(warm_stats, "misses"), 0.0);
  for (const std::string id : {"1", "2"}) {
    EXPECT_EQ(result_of(warm_index.at(id)),
              result_of(by_id(cold.responses).at(id)))
        << id;
  }
}

TEST_F(ServePersistTest, GarbageInTheCacheDirNeverAbortsStartup) {
  fs::create_directories(dir_);
  // Crash debris: an empty segment, a foreign-magic segment, and an
  // unrelated file the scanner must ignore.
  std::ofstream(dir_ / "codar-000000000001.seg").flush();
  std::ofstream(dir_ / "codar-000000000002.seg") << "XXXXXXXX not a segment";
  std::ofstream(dir_ / "README.txt") << "hands off";

  const std::vector<std::string> lines = {
      R"({"id": 1, "suite_name": "ghz_3"})",
      R"({"id": "stats", "cmd": "stats"})",
  };
  const ServeRun run = serve(persistent_opts(), lines);
  ASSERT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.err.find("warning"), std::string::npos) << run.err;
  const std::map<std::string, std::string> index = by_id(run.responses);
  EXPECT_EQ(Json::parse(index.at("\"stats\"")).find("routed")->as_number(),
            1.0);
  // The debris was cleaned up, and the fresh route was persisted.
  const Json stats = Json::parse(index.at("\"stats\""));
  EXPECT_EQ(stats.find("cache")->find("disk")->find("entries")->as_number(),
            1.0);
}

TEST_F(ServePersistTest, LockedCacheDirIsACleanStartupError) {
  // Another live process (here: a directly held store) owns the dir.
  auto holder = store::LogStore::open(dir_.string(), {});
  const ServeRun run =
      serve(persistent_opts(), {R"({"id": 1, "suite_name": "ghz_3"})"});
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.err.find("error:"), std::string::npos) << run.err;
  EXPECT_NE(run.err.find("locked"), std::string::npos) << run.err;
  EXPECT_TRUE(run.responses.empty());
}

TEST_F(ServePersistTest, StatsReportDiskTierGauges) {
  const ServeRun run = serve(persistent_opts(),
                             {R"({"id": 1, "suite_name": "ghz_3"})",
                              R"({"id": "stats", "cmd": "stats"})"});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  const Json stats =
      Json::parse(by_id(run.responses).at("\"stats\""));
  const Json* disk = stats.find("cache")->find("disk");
  ASSERT_NE(disk, nullptr);
  EXPECT_TRUE(disk->find("enabled")->as_bool());
  EXPECT_EQ(disk->find("entries")->as_number(), 1.0);
  EXPECT_GT(disk->find("bytes")->as_number(), 0.0);
  EXPECT_GE(disk->find("file_bytes")->as_number(),
            disk->find("bytes")->as_number());
  EXPECT_EQ(disk->find("budget")->as_number(),
            static_cast<double>(std::size_t{1} << 30));
  EXPECT_EQ(disk->find("evictions")->as_number(), 0.0);
}

}  // namespace
}  // namespace codar::service

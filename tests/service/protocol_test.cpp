// Tests for the serve protocol layer: the dependency-free JSON parser and
// the request-line → Options mapping.

#include "codar/service/protocol.hpp"

#include <gtest/gtest.h>

#include "codar/service/json.hpp"

namespace codar::service {
namespace {

// -- Json -------------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(Json::parse("17").raw_number(), "17");
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": ""})");
  ASSERT_TRUE(doc.is_object());
  const Json* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_EQ(a->items()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(doc.find("d")->find("e")->is_null());
  EXPECT_EQ(doc.find("f")->as_string(), "");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, DecodesUnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("\u00e9")").as_string(), "\xC3\xA9");  // é
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");
  EXPECT_THROW(Json::parse(R"("\ud83d")").as_string(), JsonError);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("01x"), JsonError);
  // RFC 8259 forbids leading zeros; ids echo verbatim so "007" would
  // poison response lines.
  EXPECT_THROW(Json::parse("007"), JsonError);
  EXPECT_THROW(Json::parse("-01"), JsonError);
  EXPECT_EQ(Json::parse("0").raw_number(), "0");
  EXPECT_DOUBLE_EQ(Json::parse("0.5").as_number(), 0.5);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{} extra"), JsonError);
  // Control characters must be escaped.
  EXPECT_THROW(Json::parse("\"a\nb\""), JsonError);
}

TEST(Json, DepthCapStopsHostileNesting) {
  const std::string bomb(10000, '[');
  EXPECT_THROW(Json::parse(bomb), JsonError);
}

TEST(Json, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

// -- parse_request ----------------------------------------------------------

cli::Options defaults() {
  cli::Options opts;
  opts.device = "tokyo";
  return opts;
}

TEST(ParseRequest, MinimalSuiteRequest) {
  const ServeRequest req =
      parse_request(R"({"id": 7, "suite_name": "qft_8"})", defaults());
  EXPECT_EQ(req.kind, ServeRequest::Kind::kRoute);
  EXPECT_EQ(req.id_json, "7");
  EXPECT_EQ(req.suite_name, "qft_8");
  EXPECT_TRUE(req.qasm.empty());
  EXPECT_EQ(req.opts.device, "tokyo");  // inherited default
}

TEST(ParseRequest, ExtrasOptionFillsSpecExtras) {
  const ServeRequest req = parse_request(
      R"({"id": 1, "suite_name": "ghz_3",
          "options": {"extras": {"beam": "8", "alpha": "0.5"}}})",
      defaults());
  ASSERT_NE(req.opts.extra("beam"), nullptr);
  EXPECT_EQ(*req.opts.extra("beam"), "8");
  ASSERT_NE(req.opts.extra("alpha"), nullptr);
  EXPECT_EQ(*req.opts.extra("alpha"), "0.5");
  // A request's extras object replaces the serve-line defaults wholesale,
  // so a client can unset a default knob by omitting it.
  cli::Options seeded = defaults();
  seeded.set_extra("beam", "8");
  const ServeRequest cleared = parse_request(
      R"({"suite_name": "ghz_3", "options": {"extras": {}}})", seeded);
  EXPECT_TRUE(cleared.opts.extras.empty());
  const ServeRequest inherited =
      parse_request(R"({"suite_name": "ghz_3"})", seeded);
  ASSERT_NE(inherited.opts.extra("beam"), nullptr);
  // Strictly strings, strictly an object.
  EXPECT_THROW(parse_request(R"({"suite_name": "ghz_3",
                                 "options": {"extras": {"beam": 8}}})",
                             defaults()),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"suite_name": "ghz_3",
                                 "options": {"extras": "beam=8"}})",
                             defaults()),
               ProtocolError);
}

TEST(ParseRequest, FidWeightOptionsParseAndValidate) {
  const ServeRequest req = parse_request(
      R"({"suite_name": "ghz_3", "router": "codar-fid",
          "options": {"alpha": 1.5, "beta": 0, "gamma": 2.25}})",
      defaults());
  EXPECT_EQ(req.opts.router, "codar-fid");
  EXPECT_EQ(req.opts.fid.alpha, 1.5);
  EXPECT_EQ(req.opts.fid.beta, 0.0);
  EXPECT_EQ(req.opts.fid.gamma, 2.25);
  // Numbers only; beta/gamma must be >= 0.
  EXPECT_THROW(parse_request(R"({"suite_name": "ghz_3",
                                 "options": {"beta": "5"}})",
                             defaults()),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"suite_name": "ghz_3",
                                 "options": {"gamma": -1}})",
                             defaults()),
               ProtocolError);
}

TEST(ParseRequest, FullRouteRequest) {
  const ServeRequest req = parse_request(
      R"({"id": "abc", "qasm": "OPENQASM 2.0;", "device": "linear:5",
          "router": "sabre", "name": "mine",
          "options": {"initial": "greedy", "seed": 3, "verify": false,
                      "window": 42, "context": false}})",
      defaults());
  EXPECT_EQ(req.id_json, "\"abc\"");
  EXPECT_EQ(req.qasm, "OPENQASM 2.0;");
  EXPECT_EQ(req.name, "mine");
  EXPECT_EQ(req.opts.device, "linear:5");
  EXPECT_EQ(req.opts.router, "sabre");
  EXPECT_EQ(req.opts.mapping, "greedy");
  EXPECT_EQ(req.opts.seed, 3u);
  EXPECT_FALSE(req.opts.verify);
  EXPECT_EQ(req.opts.codar.front_window, 42);
  EXPECT_FALSE(req.opts.codar.context_aware);
  EXPECT_TRUE(req.opts.codar.duration_aware);  // untouched default
}

TEST(ParseRequest, InlineDeviceObject) {
  const ServeRequest req = parse_request(
      R"({"id": 4, "suite_name": "ghz_3",
          "device": {"name": "inline pair", "qubits": 2,
                     "edges": [[0, 1]],
                     "calibration": {"edges": [
                       {"edge": [0, 1], "duration_2q": 7}]}}})",
      defaults());
  ASSERT_NE(req.inline_device, nullptr);
  EXPECT_EQ(req.inline_device->graph.num_qubits(), 2);
  EXPECT_EQ(req.inline_device->calibration.duration_2q(0, 1), 7);
  // The device spec string becomes the display name only.
  EXPECT_EQ(req.opts.device, "inline pair");

  // A spec string keeps the old behavior (no inline device).
  const ServeRequest by_name =
      parse_request(R"({"suite_name": "ghz_3", "device": "q16"})",
                    defaults());
  EXPECT_EQ(by_name.inline_device, nullptr);
  EXPECT_EQ(by_name.opts.device, "q16");

  // Filesystem-backed specs are refused on (untrusted) request lines:
  // a client must not be able to make the server read arbitrary paths.
  try {
    parse_request(R"({"suite_name": "ghz_3", "device": "file:/etc/shadow"})",
                  defaults());
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("inline device object"),
              std::string::npos)
        << e.what();
  }

  // Malformed inline devices are per-request protocol errors, with the
  // same strict schema as `--device file:`.
  EXPECT_THROW(
      parse_request(R"({"suite_name": "ghz_3", "device": 7})", defaults()),
      ProtocolError);
  EXPECT_THROW(parse_request(R"({"suite_name": "ghz_3",
                                 "device": {"qubits": 2}})",
                             defaults()),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"suite_name": "ghz_3",
                                 "device": {"qubits": 2, "edges": [[0, 1]],
                                            "wat": 1}})",
                             defaults()),
               ProtocolError);
}

TEST(ParseRequest, StatsCommand) {
  const ServeRequest req =
      parse_request(R"({"id": 1, "cmd": "stats"})", defaults());
  EXPECT_EQ(req.kind, ServeRequest::Kind::kStats);
  EXPECT_EQ(req.id_json, "1");

  // Control requests are just as strictly validated as route requests:
  // stray route payload is a client bug, not something to drop.
  EXPECT_THROW(
      parse_request(R"({"cmd": "stats", "qasm": "garbage"})", defaults()),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"cmd": "stats", "device": "q16"})", defaults()),
      ProtocolError);
}

TEST(ParseRequest, RejectsBadRequests) {
  const cli::Options d = defaults();
  EXPECT_THROW(parse_request("not json", d), ProtocolError);
  EXPECT_THROW(parse_request("[1,2]", d), ProtocolError);
  // Needs exactly one circuit source.
  EXPECT_THROW(parse_request(R"({"id": 1})", d), ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"qasm": "x", "suite_name": "y"})", d),
      ProtocolError);
  EXPECT_THROW(parse_request(R"({"cmd": "reboot"})", d), ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"qasm": "x", "router": "qiskit"})", d),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"qasm": "x", "options": {"wat": 1}})", d),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"qasm": "x", "options": {"seed": "high"}})", d),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"qasm": "x", "options": {"stagnation": 0}})", d),
      ProtocolError);
  EXPECT_THROW(parse_request(R"({"id": [], "qasm": "x"})", d),
               ProtocolError);
  // Strict top-level schema: a typo'd key must not silently fall back to
  // server defaults.
  EXPECT_THROW(
      parse_request(R"({"id": 1, "qasm": "x", "devics": "q16"})", d),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"id": 1, "suite_name": "x", "routers": "sabre"})", d),
      ProtocolError);
  // Duplicate keys are ambiguous (find() would keep only the first).
  EXPECT_THROW(
      parse_request(R"({"id": 1, "qasm": "a", "qasm": "b"})", d),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"id": 1, "id": 2, "suite_name": "x"})", d),
      ProtocolError);
}

}  // namespace
}  // namespace codar::service

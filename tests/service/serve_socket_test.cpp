// Socket-transport tests for `codar serve`: a multi-client pipelined TCP
// storm whose per-request stats are byte-identical to the batch driver,
// Unix-domain sockets, per-connection backpressure liveness, and protocol
// robustness at the transport boundary — oversized frames, split lines,
// malformed JSON mid-pipeline, clients vanishing with responses pending,
// idle timeouts and drain-on-shutdown. The TSan CI lane runs these to put
// real contention on the connection path.

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "codar/cli/device_registry.hpp"
#include "codar/cli/driver.hpp"
#include "codar/cli/report.hpp"
#include "codar/service/json.hpp"
#include "codar/service/server.hpp"
#include "codar/service/transport.hpp"
#include "codar/workloads/suite.hpp"

#include <unistd.h>

namespace codar::service {
namespace {

/// A blocking NDJSON test client over one transport connection.
class Client {
 public:
  explicit Client(const std::string& endpoint)
      : conn_(connect_endpoint(endpoint, /*timeout_ms=*/5000)) {}

  bool send(const std::string& line) { return conn_->write_all(line + "\n"); }
  bool send_raw(const std::string& bytes) { return conn_->write_all(bytes); }

  /// Reads one response line. False on EOF/error/timeout.
  bool read_line(std::string* line, int timeout_ms = 60000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      char chunk[16 * 1024];
      std::size_t got = 0;
      switch (conn_->read_some(chunk, sizeof chunk, &got,
                               static_cast<int>(left.count()))) {
        case ReadStatus::kData:
          buffer_.append(chunk, got);
          break;
        case ReadStatus::kEof:
        case ReadStatus::kTimeout:
        case ReadStatus::kError:
          return false;
      }
    }
  }

  /// True when the server closed the stream. A close with unread client
  /// bytes still queued (e.g. after an oversized frame) surfaces as a
  /// reset rather than EOF — both count as closed, a timeout does not.
  bool closed(int timeout_ms = 5000) {
    if (!buffer_.empty()) return false;
    char chunk[64];
    std::size_t got = 0;
    const ReadStatus status =
        conn_->read_some(chunk, sizeof chunk, &got, timeout_ms);
    return status == ReadStatus::kEof || status == ReadStatus::kError;
  }

  void close() { conn_.reset(); }

 private:
  std::unique_ptr<Connection> conn_;
  std::string buffer_;
};

/// The byte span of the "result" object inside a response envelope.
std::string result_of(const std::string& response) {
  static const std::string marker = ", \"result\": ";
  const std::size_t pos = response.find(marker);
  EXPECT_NE(pos, std::string::npos) << response;
  if (pos == std::string::npos) return "";
  return response.substr(pos + marker.size(),
                         response.size() - pos - marker.size() - 1);
}

ServeOptions tcp_options() {
  ServeOptions opts;
  opts.defaults.device = "enfield";
  opts.defaults.threads = 4;
  opts.listen = "tcp:127.0.0.1:0";
  return opts;
}

TEST(ServeSocket, EightClientStormIsByteIdenticalToBatch) {
  // The acceptance lock for the transport: 8 concurrent clients pipeline
  // the full 71-benchmark suite over TCP; every per-request stats object
  // must equal the one-shot batch driver's bytes, and the cache counters
  // must be exact despite the concurrency (single-flight: every unique
  // key routes exactly once across all clients).
  const ServeOptions sopts = tcp_options();
  const auto handle = start_serve(sopts);

  const std::vector<workloads::BenchmarkSpec> suite =
      workloads::benchmark_suite();
  const arch::Device device = cli::make_device("enfield");
  const std::vector<cli::RouteReport> reference =
      cli::run_batch(suite, device, sopts.defaults);

  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(handle->endpoint());
      // Pipeline the whole suite in one burst — more requests than the
      // default --max-inflight, so the server's backpressure path runs.
      for (std::size_t i = 0; i < suite.size(); ++i) {
        ASSERT_TRUE(client.send(
            "{\"id\": " + std::to_string(i) + ", \"suite_name\": " +
            json_quote(suite[i].name) + "}"));
      }
      std::map<std::string, std::string> by_id;
      for (std::size_t i = 0; i < suite.size(); ++i) {
        std::string line;
        ASSERT_TRUE(client.read_line(&line)) << "client " << c;
        const Json doc = Json::parse(line);
        by_id[doc.find("id")->raw_number()] = line;
      }
      results[c].resize(suite.size());
      for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto it = by_id.find(std::to_string(i));
        ASSERT_NE(it, by_id.end()) << "client " << c << " id " << i;
        results[c][i] = result_of(it->second);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[c].size(), suite.size()) << "client " << c;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      EXPECT_EQ(results[c][i], cli::to_json(reference[i], sopts.defaults))
          << "client " << c << ", " << suite[i].name;
    }
  }

  // Exact counters across all the concurrency: unique keys route once.
  std::set<std::uint64_t> unique;
  for (const workloads::BenchmarkSpec& spec : suite) {
    unique.insert(spec.circuit.fingerprint());
  }
  Client probe(handle->endpoint());
  ASSERT_TRUE(probe.send(R"({"id": "s", "cmd": "stats"})"));
  std::string line;
  ASSERT_TRUE(probe.read_line(&line));
  const Json stats = Json::parse(line);
  EXPECT_EQ(stats.find("requests")->as_number(),
            static_cast<double>(kClients * suite.size()));
  EXPECT_EQ(stats.find("routed")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(stats.find("errors")->as_number(), 0.0);
  EXPECT_EQ(stats.find("cache")->find("misses")->as_number(),
            static_cast<double>(unique.size()));
  EXPECT_EQ(stats.find("cache")->find("hits")->as_number(),
            static_cast<double>(kClients * suite.size() - unique.size()));
}

TEST(ServeSocket, UnixDomainSocketServesConcurrentClients) {
  ServeOptions sopts = tcp_options();
  sopts.listen = "unix:/tmp/codar_serve_socket_test_" +
                 std::to_string(::getpid()) + ".sock";
  const auto handle = start_serve(sopts);
  EXPECT_EQ(handle->endpoint(), sopts.listen);

  const arch::Device device = cli::make_device("enfield");
  const std::vector<workloads::BenchmarkSpec> suite =
      workloads::benchmark_suite();
  const std::vector<cli::RouteReport> reference =
      cli::run_batch(suite, device, sopts.defaults);

  std::vector<std::thread> clients;
  clients.reserve(2);
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      Client client(handle->endpoint());
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(client.send(
            "{\"id\": " + std::to_string(i) + ", \"suite_name\": " +
            json_quote(suite[static_cast<std::size_t>(i)].name) + "}"));
      }
      std::map<std::string, std::string> by_id;
      for (int i = 0; i < 8; ++i) {
        std::string line;
        ASSERT_TRUE(client.read_line(&line));
        by_id[Json::parse(line).find("id")->raw_number()] = line;
      }
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(result_of(by_id.at(std::to_string(i))),
                  cli::to_json(reference[static_cast<std::size_t>(i)],
                               sopts.defaults));
      }
    });
  }
  for (std::thread& t : clients) t.join();
}

TEST(ServeSocket, OversizedFrameDrawsErrorAndCloseWithoutPoisoningOthers) {
  ServeOptions sopts = tcp_options();
  sopts.max_line_bytes = 4096;
  const auto handle = start_serve(sopts);

  Client attacker(handle->endpoint());
  // No terminating newline: the reader must cap the buffered line, not
  // wait for framing that never comes.
  ASSERT_TRUE(attacker.send_raw(std::string(64 * 1024, 'a')));
  std::string line;
  ASSERT_TRUE(attacker.read_line(&line));
  EXPECT_NE(line.find("\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("exceeds"), std::string::npos) << line;
  EXPECT_TRUE(attacker.closed());

  // A well-behaved concurrent client is unaffected.
  Client normal(handle->endpoint());
  ASSERT_TRUE(normal.send(R"({"id": 1, "suite_name": "ghz_3"})"));
  ASSERT_TRUE(normal.read_line(&line));
  EXPECT_NE(line.find("\"verified\": true"), std::string::npos) << line;
}

TEST(ServeSocket, SplitAndPipelinedLinesReassemble) {
  const ServeOptions sopts = tcp_options();
  const auto handle = start_serve(sopts);

  Client client(handle->endpoint());
  // One request split across three writes...
  ASSERT_TRUE(client.send_raw(R"({"id": 1, "suite)"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.send_raw(R"(_name": "ghz)"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.send_raw("_3\"}\n"));
  // ...then two requests pipelined in a single write.
  ASSERT_TRUE(client.send_raw("{\"id\": 2, \"suite_name\": \"ghz_3\"}\n"
                              "{\"id\": 3, \"cmd\": \"stats\"}\n"));

  std::map<std::string, std::string> by_id;
  for (int i = 0; i < 3; ++i) {
    std::string line;
    ASSERT_TRUE(client.read_line(&line));
    const Json doc = Json::parse(line);
    by_id[doc.find("id")->raw_number()] = line;
  }
  // Both route requests succeed (which of the two identical ones routed
  // first and which coalesced into it is scheduling-dependent, so the
  // "cached" flag itself is not asserted).
  EXPECT_NE(by_id.at("1").find("\"verified\": true"), std::string::npos);
  EXPECT_NE(by_id.at("2").find("\"verified\": true"), std::string::npos);
  EXPECT_EQ(Json::parse(by_id.at("3")).find("requests")->as_number(), 2.0);
}

TEST(ServeSocket, MalformedJsonMidPipelineErrorsThatRequestOnly) {
  const ServeOptions sopts = tcp_options();
  const auto handle = start_serve(sopts);

  Client client(handle->endpoint());
  ASSERT_TRUE(client.send_raw(
      "{\"id\": 1, \"suite_name\": \"ghz_3\"}\n"
      "{\"id\": 2, this is not json}\n"
      "{\"id\": 3, \"suite_name\": \"ghz_3\"}\n"));
  std::map<std::string, std::string> by_id;
  for (int i = 0; i < 3; ++i) {
    std::string line;
    ASSERT_TRUE(client.read_line(&line));
    const Json doc = Json::parse(line);
    by_id[doc.find("id")->raw_number()] = line;
  }
  // The malformed line still correlates by its best-effort id (scraped
  // from the unparseable bytes) and the requests around it are untouched.
  EXPECT_NE(by_id.at("2").find("\"error\""), std::string::npos);
  EXPECT_NE(by_id.at("1").find("\"verified\": true"), std::string::npos);
  EXPECT_NE(by_id.at("3").find("\"verified\": true"), std::string::npos);

  // The connection survives malformed traffic: keep talking on it.
  ASSERT_TRUE(client.send(R"({"id": 4, "suite_name": "qft_8"})"));
  std::string line;
  ASSERT_TRUE(client.read_line(&line));
  EXPECT_NE(line.find("\"id\": 4"), std::string::npos);
}

TEST(ServeSocket, ClientDisconnectWithResponsesPendingDoesNotPoison) {
  const ServeOptions sopts = tcp_options();
  const auto handle = start_serve(sopts);

  {
    Client rude(handle->endpoint());
    // Distinct seeds bust the cache, so every request is real routing
    // work still in flight when the client vanishes.
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(rude.send("{\"id\": " + std::to_string(i) +
                            ", \"suite_name\": \"qft_8\", \"options\": "
                            "{\"seed\": " +
                            std::to_string(1000 + i) + "}}"));
    }
    rude.close();  // gone before any response lands
  }

  // The server keeps serving other clients correctly.
  Client normal(handle->endpoint());
  ASSERT_TRUE(normal.send(R"({"id": 1, "suite_name": "ghz_3"})"));
  std::string line;
  ASSERT_TRUE(normal.read_line(&line));
  EXPECT_NE(line.find("\"verified\": true"), std::string::npos) << line;
}

TEST(ServeSocket, IdleTimeoutClosesQuietConnections) {
  ServeOptions sopts = tcp_options();
  sopts.idle_timeout_ms = 200;
  const auto handle = start_serve(sopts);

  Client client(handle->endpoint());
  std::string line;
  ASSERT_TRUE(client.read_line(&line, /*timeout_ms=*/10000));
  EXPECT_NE(line.find("idle timeout"), std::string::npos) << line;
  EXPECT_TRUE(client.closed());

  // Activity resets the budget: a talking client is never reaped.
  Client busy(handle->endpoint());
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(busy.send("{\"id\": " + std::to_string(i) +
                          ", \"suite_name\": \"ghz_3\"}"));
    ASSERT_TRUE(busy.read_line(&line));
    EXPECT_NE(line.find("\"result\""), std::string::npos);
  }
}

TEST(ServeSocket, ShutdownDrainsAcceptedRequests) {
  const ServeOptions sopts = tcp_options();
  auto handle = start_serve(sopts);

  Client client(handle->endpoint());
  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) {
    // Cache-busting seeds again: real work must be in flight.
    ASSERT_TRUE(client.send("{\"id\": " + std::to_string(i) +
                            ", \"suite_name\": \"qft_8\", \"options\": "
                            "{\"seed\": " +
                            std::to_string(2000 + i) + "}}"));
  }
  // Give the reader time to accept the burst (accepting is byte-shoveling,
  // orders of magnitude faster than the routing now in flight), then pull
  // the plug mid-work.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  handle->shutdown();

  std::set<std::string> ids;
  std::string line;
  while (client.read_line(&line, /*timeout_ms=*/30000)) {
    ids.insert(Json::parse(line).find("id")->raw_number());
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests))
      << "accepted requests must be answered before shutdown closes";
  EXPECT_EQ(handle->join(), 0);
}

TEST(ServeSocket, BackpressureCapKeepsPipelinedBurstsLive) {
  ServeOptions sopts = tcp_options();
  sopts.max_inflight = 2;  // aggressive cap: the reader parks constantly
  const auto handle = start_serve(sopts);

  Client client(handle->endpoint());
  constexpr int kBurst = 24;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += "{\"id\": " + std::to_string(i) +
             ", \"suite_name\": \"ghz_3\"}\n";
  }
  ASSERT_TRUE(client.send_raw(burst));
  std::set<std::string> ids;
  for (int i = 0; i < kBurst; ++i) {
    std::string line;
    ASSERT_TRUE(client.read_line(&line)) << "response " << i;
    ids.insert(Json::parse(line).find("id")->raw_number());
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kBurst));
}

TEST(ServeSocketArgs, ParsesTransportFlags) {
  const ServeOptions opts = parse_serve_args(
      {"--listen", "tcp:0.0.0.0:7777", "--max-inflight", "128",
       "--idle-timeout-ms", "30000", "--max-line-bytes", "65536"});
  EXPECT_EQ(opts.listen, "tcp:0.0.0.0:7777");
  EXPECT_EQ(opts.max_inflight, 128u);
  EXPECT_EQ(opts.idle_timeout_ms, 30000);
  EXPECT_EQ(opts.max_line_bytes, 65536u);

  // Defaults.
  const ServeOptions defaults = parse_serve_args({});
  EXPECT_EQ(defaults.listen, "stdio");
  EXPECT_EQ(defaults.max_inflight, 64u);
  EXPECT_EQ(defaults.idle_timeout_ms, 0);

  // Bad specs fail at parse time, not at bind time.
  EXPECT_THROW(parse_serve_args({"--listen", "carrier-pigeon:coop"}),
               cli::UsageError);
  EXPECT_THROW(parse_serve_args({"--listen", "tcp:host:99999"}),
               cli::UsageError);
  EXPECT_THROW(parse_serve_args({"--max-inflight", "0"}), cli::UsageError);
  EXPECT_THROW(parse_serve_args({"--max-line-bytes", "10"}),
               cli::UsageError);
  EXPECT_THROW(parse_serve_args({"--idle-timeout-ms", "99999999999"}),
               cli::UsageError);

  EXPECT_NE(serve_usage().find("--listen"), std::string::npos);
  EXPECT_NE(serve_usage().find("--max-inflight"), std::string::npos);
}

TEST(ServeSocketArgs, StartServeRejectsStdioAndBadDevices) {
  ServeOptions opts;
  EXPECT_THROW(start_serve(opts), std::invalid_argument);  // stdio spec
  opts.listen = "tcp:127.0.0.1:0";
  opts.defaults.device = "no_such_device";
  EXPECT_THROW(start_serve(opts), std::exception);
}

}  // namespace
}  // namespace codar::service

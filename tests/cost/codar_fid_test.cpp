// Tests for fidelity-aware routing: the SwapCost pricing model itself,
// the codar-fid pass's differential contract (beta = gamma = 0 routes
// byte-identically to plain codar over the whole 71-bench suite), and the
// acceptance criterion that the default weights beat plain codar's ESP on
// at least half of the suite on the calibrated noisy Tokyo device.

#include "codar/cost/swap_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "codar/arch/device.hpp"
#include "codar/arch/device_json.hpp"
#include "codar/pipeline/pipeline.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::cost {
namespace {

/// The quantization grid of SwapCost (documented in swap_cost.hpp).
double quantize(double x) { return std::nearbyint(x * 65536.0) / 65536.0; }

/// Finds a repo-relative file by walking up from the working directory
/// (ctest runs from build/<subdir>; the repo root is a few levels up).
std::string find_repo_file(const std::string& relative) {
  namespace fs = std::filesystem;
  fs::path dir = fs::current_path();
  for (int up = 0; up < 8; ++up) {
    const fs::path candidate = dir / relative;
    if (fs::exists(candidate)) return candidate.string();
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return std::string();
}

TEST(SwapCost, ZeroWeightsPriceEveryEdgeAtZero) {
  arch::Device dev = arch::linear(3);
  dev.fidelities = arch::FidelityMap::superconducting();
  dev.coherence.t2 = 100.0;
  const SwapCost model(dev, 0.0, 0.0);
  EXPECT_EQ(model.bonus(0, 1), 0.0);
  EXPECT_EQ(model.bonus(2, 1), 0.0);
}

TEST(SwapCost, BonusesAreSymmetricNonPositiveAndQuantized) {
  arch::Device dev = arch::linear(3);
  dev.fidelities = arch::FidelityMap::superconducting();
  dev.calibration.set_fidelity_2q(1, 2, 0.9);
  dev.coherence.t1 = 300.0;
  const SwapCost model(dev, 2.0, 1.0);
  for (const auto& [a, b] : {std::pair<ir::Qubit, ir::Qubit>{0, 1},
                             std::pair<ir::Qubit, ir::Qubit>{1, 2}}) {
    const double bonus = model.bonus(a, b);
    EXPECT_EQ(bonus, model.bonus(b, a));
    EXPECT_LE(bonus, 0.0);
    // Quantized to the 1/65536 grid (bit-reproducible routing).
    EXPECT_EQ(bonus * 65536.0, std::nearbyint(bonus * 65536.0));
  }
}

TEST(SwapCost, MatchesClosedFormPricing) {
  arch::Device dev = arch::linear(2);
  dev.calibration.set_fidelity_2q(0, 1, 0.9);  // F_swap = 0.9^3
  dev.coherence.t1 = 400.0;
  dev.coherence.t2 = 200.0;
  const double beta = 2.0, gamma = 0.5;
  const SwapCost model(dev, beta, gamma);
  const double lambda = 1.0 / 400.0 + 1.0 / 200.0;
  const ir::Qubit phys[] = {0, 1};
  const double dur =
      static_cast<double>(dev.duration(ir::GateKind::kSwap, phys));
  const double expected =
      quantize(beta * std::log(std::pow(0.9, 3)) - gamma * dur * lambda);
  EXPECT_DOUBLE_EQ(model.bonus(0, 1), expected);
}

TEST(SwapCost, PrefersTheBetterCalibratedEdge) {
  arch::Device dev = arch::linear(3);
  dev.calibration.set_fidelity_2q(0, 1, 0.99);
  dev.calibration.set_fidelity_2q(1, 2, 0.90);
  const SwapCost model(dev, 2.0, 0.0);
  EXPECT_GT(model.bonus(0, 1), model.bonus(1, 2));
  // With only the duration/decoherence term and uniform durations, the
  // edges price identically; with infinite coherence the term is zero.
  const SwapCost ideal_time(dev, 0.0, 3.0);
  EXPECT_EQ(ideal_time.bonus(0, 1), ideal_time.bonus(1, 2));
  EXPECT_EQ(ideal_time.bonus(0, 1), 0.0);
}

TEST(CodarFid, ZeroWeightsRouteByteIdenticallyToCodar) {
  // The differential contract behind the router's cache story: with
  // beta = gamma = 0 the codar-fid pass must produce byte-identical
  // routed output to plain codar on every benchmark of the suite.
  const arch::Device dev = arch::enfield_6x6();
  pipeline::RoutingSpec base;
  base.router = "codar";
  pipeline::RoutingSpec fid = base;
  fid.router = "codar-fid";
  fid.fid.beta = 0.0;
  fid.fid.gamma = 0.0;
  fid.fid.alpha = 1.0;
  const pipeline::Pipeline plain(dev, base);
  const pipeline::Pipeline aware(dev, fid);
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    const pipeline::RouteReport a = plain.run(spec.circuit, true);
    const pipeline::RouteReport b = aware.run(spec.circuit, true);
    ASSERT_TRUE(a.ok()) << spec.name << ": " << a.error;
    ASSERT_TRUE(b.ok()) << spec.name << ": " << b.error;
    EXPECT_EQ(a.routed_qasm, b.routed_qasm) << spec.name;
    EXPECT_EQ(a.swaps, b.swaps) << spec.name;
    EXPECT_EQ(a.depth_out, b.depth_out) << spec.name;
    EXPECT_EQ(a.log_esp, b.log_esp) << spec.name;
  }
}

TEST(CodarFid, DefaultWeightsBeatCodarEspOnMostOfTheSuite) {
  // Acceptance: on the calibrated noisy Tokyo device, codar-fid with its
  // default weights must strictly improve log-ESP over plain codar on at
  // least half (>= 36) of the 71 benchmarks. The three 36-qubit entries
  // cannot fit a 20-qubit device and count as non-wins.
  const std::string path =
      find_repo_file("examples/devices/tokyo-noisy.json");
  ASSERT_FALSE(path.empty())
      << "examples/devices/tokyo-noisy.json not found above "
      << std::filesystem::current_path();
  const arch::Device dev = arch::load_device_file(path);
  ASSERT_TRUE(dev.coherence.any_finite());

  pipeline::RoutingSpec base;
  base.router = "codar";
  pipeline::RoutingSpec fid = base;
  fid.router = "codar-fid";
  const pipeline::Pipeline plain(dev, base);
  const pipeline::Pipeline aware(dev, fid);

  int wins = 0, routed = 0;
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    if (spec.circuit.num_qubits() > dev.graph.num_qubits()) continue;
    const pipeline::RouteReport a = plain.run(spec.circuit);
    const pipeline::RouteReport b = aware.run(spec.circuit);
    ASSERT_TRUE(a.ok()) << spec.name << ": " << a.error;
    ASSERT_TRUE(b.ok()) << spec.name << ": " << b.error;
    ++routed;
    if (b.log_esp > a.log_esp) ++wins;
  }
  EXPECT_EQ(routed, 68);
  EXPECT_GE(wins, 36) << "codar-fid won only " << wins << "/" << routed;
}

}  // namespace
}  // namespace codar::cost

// Tests for the cost subsystem's ESP estimator: the closed-form pinned
// 2-qubit case (every term checked against hand-computed logs), the
// readout/measure accounting, determinism, and an ordering cross-check
// against the density-matrix noisy simulator in src/sim — the two models
// charge decoherence differently (sim integrates busy+idle wall-clock,
// the ESP estimator prices idle only and folds gate time into calibrated
// fidelities), so the contract is agreement in *ranking*, not in value.

#include "codar/cost/fidelity_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codar/arch/device.hpp"
#include "codar/sim/noisy_simulator.hpp"

namespace codar::cost {
namespace {

using ir::Circuit;

/// linear(2) with mixed kind-level + calibrated fidelities and finite
/// coherence; the fixture of the closed-form test below.
arch::Device pinned_device() {
  arch::Device dev = arch::linear(2);
  dev.fidelities.set_all_single_qubit(0.999);
  dev.fidelities.set_all_two_qubit(0.98);
  dev.fidelities.set_measure(0.95);
  dev.calibration.set_fidelity_1q(1, 0.995);
  dev.calibration.set_fidelity_readout(0, 0.9);
  dev.calibration.set_fidelity_2q(0, 1, 0.97);
  dev.coherence.t1 = 2000.0;
  dev.coherence.t2 = 500.0;
  return dev;
}

TEST(FidelityModel, ClosedFormTwoQubitEsp) {
  const arch::Device dev = pinned_device();
  // ASAP: x q1 [0,1), h q0 [0,1), h q0 [1,2), cx [2,4). Qubit 0 is never
  // idle; qubit 1 idles exactly one cycle (between the x and the cx).
  Circuit c(2);
  c.x(1);
  c.h(0);
  c.h(0);
  c.cx(0, 1);
  const EspEstimate est = FidelityModel(dev).estimate(c);

  // Gate term: the x resolves through qubit 1's 1q calibration, the two
  // h through the kind-level default, the cx through its edge override.
  const double log_gate = std::log(0.995) + 2.0 * std::log(0.999) +
                          std::log(0.97);
  // Readout: no explicit measures, so both used qubits are charged once —
  // qubit 0 via its readout calibration, qubit 1 via the kind level.
  const double log_readout = std::log(0.9) + std::log(0.95);
  // Decoherence: one idle cycle on qubit 1 at rate 1/2000 + 1/500.
  const double log_deco = -1.0 * (1.0 / 2000.0 + 1.0 / 500.0);

  EXPECT_NEAR(est.log_gate, log_gate, 1e-12);
  EXPECT_NEAR(est.log_readout, log_readout, 1e-12);
  EXPECT_NEAR(est.log_decoherence, log_deco, 1e-12);
  EXPECT_NEAR(est.log_esp(), log_gate + log_readout + log_deco, 1e-12);
  EXPECT_NEAR(est.esp(), std::exp(est.log_esp()), 1e-15);

  ASSERT_EQ(est.gate_success.size(), 4u);
  EXPECT_DOUBLE_EQ(est.gate_success[0], 0.995);
  EXPECT_DOUBLE_EQ(est.gate_success[1], 0.999);
  EXPECT_DOUBLE_EQ(est.gate_success[2], 0.999);
  EXPECT_DOUBLE_EQ(est.gate_success[3], 0.97);
}

TEST(FidelityModel, ExplicitMeasuresLandInTheReadoutTerm) {
  const arch::Device dev = pinned_device();
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.measure(0);
  c.measure(1);
  const EspEstimate est = FidelityModel(dev).estimate(c);
  // Both measures are explicit: the readout term is exactly their
  // resolved fidelities, with no extra end-of-run charge.
  EXPECT_NEAR(est.log_readout, std::log(0.9) + std::log(0.95), 1e-12);
  EXPECT_NEAR(est.log_gate, std::log(0.999) + std::log(0.97), 1e-12);
  ASSERT_EQ(est.gate_success.size(), 4u);
  EXPECT_DOUBLE_EQ(est.gate_success[2], 0.9);   // measure q0
  EXPECT_DOUBLE_EQ(est.gate_success[3], 0.95);  // measure q1

  // Measuring only one qubit still charges the other's readout once.
  Circuit half(2);
  half.h(0);
  half.cx(0, 1);
  half.measure(1);
  const EspEstimate part = FidelityModel(dev).estimate(half);
  EXPECT_NEAR(part.log_readout, std::log(0.95) + std::log(0.9), 1e-12);
}

TEST(FidelityModel, IdealDeviceGivesUnitEsp) {
  const arch::Device dev = arch::linear(3);  // ideal fidelities, no T1/T2
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  const EspEstimate est = FidelityModel(dev).estimate(c);
  EXPECT_EQ(est.log_esp(), 0.0);
  EXPECT_EQ(est.esp(), 1.0);
  for (double f : est.gate_success) EXPECT_EQ(f, 1.0);
}

TEST(FidelityModel, EstimatesAreDeterministic) {
  const arch::Device dev = pinned_device();
  Circuit c(2);
  c.h(0);
  c.x(1);
  c.cx(0, 1);
  c.h(1);
  const EspEstimate a = FidelityModel(dev).estimate(c);
  const EspEstimate b = FidelityModel(dev).estimate(c);
  EXPECT_EQ(a.log_gate, b.log_gate);
  EXPECT_EQ(a.log_readout, b.log_readout);
  EXPECT_EQ(a.log_decoherence, b.log_decoherence);
  EXPECT_EQ(a.gate_success, b.gate_success);
}

TEST(FidelityModel, UntouchedQubitsCostNothing) {
  // Device register wider than the circuit's footprint: qubit 2 of the
  // linear(3) device is never used, so it contributes no readout and no
  // decoherence charge.
  arch::Device dev = arch::linear(3);
  dev.fidelities.set_measure(0.9);
  dev.coherence.t2 = 100.0;
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  const EspEstimate est = FidelityModel(dev).estimate(c);
  EXPECT_NEAR(est.log_readout, 2.0 * std::log(0.9), 1e-12);
  EXPECT_EQ(est.log_decoherence, 0.0);  // no idle gaps in this schedule
}

TEST(FidelityModel, OrderingAgreesWithNoisySimulator) {
  // Same logical content, one version artificially serialized so qubit 0
  // idles; the analytic ESP and the exact density-matrix fidelity both
  // must rank the parallel version higher. Gate fidelities stay ideal so
  // the comparison isolates the decoherence term (the one place the two
  // models differ in accounting).
  Circuit fast(2, "fast");
  fast.h(0);
  fast.cx(0, 1);
  Circuit slow(2, "slow");
  slow.h(0);
  for (int i = 0; i < 6; ++i) {
    slow.x(1);
    slow.x(1);
  }
  slow.cx(0, 1);

  arch::Device dev = arch::linear(2);
  dev.coherence.t2 = 40.0;
  const FidelityModel model(dev);
  const double esp_fast = model.estimate(fast).log_esp();
  const double esp_slow = model.estimate(slow).log_esp();
  EXPECT_GT(esp_fast, esp_slow);

  const sim::NoiseParams noise = sim::NoiseParams::dephasing_dominant(40.0);
  const double sim_fast =
      sim::noisy_fidelity_density(fast, 2, dev.durations, noise);
  const double sim_slow =
      sim::noisy_fidelity_density(slow, 2, dev.durations, noise);
  EXPECT_GT(sim_fast, sim_slow);

  // And both models agree the noiseless limit is ~1.
  arch::Device ideal = arch::linear(2);
  EXPECT_EQ(FidelityModel(ideal).estimate(fast).esp(), 1.0);
  EXPECT_NEAR(sim::noisy_fidelity_density(fast, 2, ideal.durations,
                                          sim::NoiseParams{}),
              1.0, 1e-10);
}

TEST(FidelityModel, MoreIdleMeansLowerEspInBothModels) {
  // Monotonicity across a family of circuits with growing idle windows:
  // the analytic estimate and the simulator must order the family the
  // same way (strictly decreasing ESP/fidelity as idling grows).
  arch::Device dev = arch::linear(2);
  dev.coherence.t1 = 120.0;
  dev.coherence.t2 = 60.0;
  const sim::NoiseParams noise{120.0, 60.0};
  double prev_esp = 1.0;
  double prev_sim = 1.0;
  for (int pairs = 1; pairs <= 3; ++pairs) {
    Circuit c(2);
    c.h(0);
    for (int i = 0; i < 4 * pairs; ++i) {
      c.x(1);
      c.x(1);
    }
    c.cx(0, 1);
    const double esp = FidelityModel(dev).estimate(c).esp();
    const double fid =
        sim::noisy_fidelity_density(c, 2, dev.durations, noise);
    EXPECT_LT(esp, prev_esp) << pairs;
    EXPECT_LT(fid, prev_sim) << pairs;
    prev_esp = esp;
    prev_sim = fid;
  }
}

}  // namespace
}  // namespace codar::cost

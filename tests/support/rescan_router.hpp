#pragma once

// The pre-incremental CODAR routing loop, preserved verbatim as a
// differential-test oracle. This is the original RoutingRun from
// src/core/src/codar_router.cpp before the event-driven rewrite: the CF set
// is recomputed by a full front-window rescan after every retirement and
// swap_step reallocates its candidate/endpoint vectors each call. It links
// the production QubitLockBank (now heap-based internally; lock *values*
// are identical to the old linear scan, and this loop's queries are
// monotone, so the bank swap does not change oracle behavior). Slow by
// design — its only job is to define the reference routing behavior the
// incremental router must reproduce gate-for-gate (same output circuit,
// same swaps_inserted, same router_makespan).
//
// Deliberately NOT kept in sync with stats-level fixes in the production
// router (cycles_simulated here still counts loop iterations, gates_routed
// still counts barriers): differential tests compare the routed circuit,
// swap count, and makespan, which the rewrite must not change.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/commutativity.hpp"
#include "codar/core/heuristic.hpp"
#include "codar/core/qubit_lock.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/layout/layout.hpp"

namespace codar::testing {

/// Working state of one oracle route() invocation (the old RoutingRun).
class RescanRoutingRun {
 public:
  RescanRoutingRun(const arch::Device& device, const core::CodarConfig& config,
                   const arch::DurationMap& lock_durations,
                   const ir::Circuit& input, const layout::Layout& initial)
      : device_(device),
        config_(config),
        lock_dur_(lock_durations),
        gates_(input.gates().begin(), input.gates().end()),
        alive_(gates_.size(), true),
        live_count_(gates_.size()),
        pi_(initial),
        initial_(initial),
        locks_(device.graph.num_qubits()),
        out_(device.graph.num_qubits(), input.name() + "_codar") {
    pending_.resize(gates_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i)
      pending_[i] = static_cast<int>(i);
  }

  core::RoutingResult run() {
    std::size_t iterations = 0;
    while (live_count_ > 0) {
      if (++iterations > kMaxIterations) {
        throw std::runtime_error(
            "RescanRouter: iteration cap exceeded (livelock?)");
      }
      ++stats_.cycles_simulated;
      const bool launched = launch_step();
      const bool inserted = swap_step();
      if (launched || inserted) {
        advance_after_progress();
        continue;
      }
      const arch::Duration next = locks_.next_expiry_after(now_);
      if (next > now_) {
        now_ = next;  // wait for a busy qubit to free up
      } else {
        force_swap();
      }
    }
    core::RoutingResult result{std::move(out_), std::move(initial_),
                               std::move(pi_), stats_};
    for (ir::Qubit q = 0; q < device_.graph.num_qubits(); ++q) {
      result.stats.router_makespan =
          std::max(result.stats.router_makespan, locks_.t_end(q));
    }
    result.stats.gates_routed = gates_.size();
    return result;
  }

 private:
  static constexpr std::size_t kMaxIterations = 50'000'000;

  void compact_pending() {
    if (dead_in_pending_ * 2 <= pending_.size()) return;
    std::erase_if(pending_, [&](int gi) {
      return !alive_[static_cast<std::size_t>(gi)];
    });
    dead_in_pending_ = 0;
  }

  /// Recomputes the CF gate list (gate indices, program order) over the
  /// first `front_window` alive pending gates — the full rescan.
  void compute_cf() {
    compact_pending();
    cf_.clear();
    const std::size_t window =
        config_.front_window <= 0
            ? pending_.size()
            : static_cast<std::size_t>(config_.front_window);
    wire_scratch_.resize(static_cast<std::size_t>(device_.graph.num_qubits()));
    for (auto& wire : wire_scratch_) wire.clear();
    std::size_t scanned = 0;
    for (const int gi : pending_) {
      if (!alive_[static_cast<std::size_t>(gi)]) continue;
      if (scanned >= window) break;
      ++scanned;
      const ir::Gate& g = gates_[static_cast<std::size_t>(gi)];
      bool is_front = true;
      for (const ir::Qubit q : g.qubits()) {
        for (const int earlier : wire_scratch_[static_cast<std::size_t>(q)]) {
          const ir::Gate& h = gates_[static_cast<std::size_t>(earlier)];
          if (!config_.commutativity_aware || !core::gates_commute(h, g)) {
            is_front = false;
            break;
          }
        }
        if (!is_front) break;
      }
      if (is_front) cf_.push_back(gi);
      for (const ir::Qubit q : g.qubits()) {
        wire_scratch_[static_cast<std::size_t>(q)].push_back(gi);
      }
    }
    cf_dirty_ = false;
  }

  void retire(int gate_index) {
    alive_[static_cast<std::size_t>(gate_index)] = false;
    ++dead_in_pending_;
    --live_count_;
    cf_dirty_ = true;
    consecutive_forced_ = 0;
    last_forced_ = core::SwapCandidate{};
  }

  bool launch_step() {
    bool launched_any = false;
    for (;;) {
      if (cf_dirty_) compute_cf();
      bool launched = false;
      for (const int gi : cf_) {
        if (!alive_[static_cast<std::size_t>(gi)]) continue;
        const ir::Gate& g = gates_[static_cast<std::size_t>(gi)];
        const ir::Gate phys =
            g.remapped([&](ir::Qubit lq) { return pi_.physical(lq); });
        if (!locks_.all_free(phys.qubits(), now_)) continue;
        if (phys.num_qubits() == 2 && phys.kind() != ir::GateKind::kBarrier &&
            !device_.graph.connected(phys.qubit(0), phys.qubit(1))) {
          continue;
        }
        out_.add(phys);
        locks_.lock(phys.qubits(), now_, lock_dur_.of(g));
        retire(gi);
        launched = true;
      }
      if (!launched) break;
      launched_any = true;
    }
    return launched_any;
  }

  std::vector<core::GateEndpoints> cf_two_qubit_endpoints() const {
    std::vector<core::GateEndpoints> endpoints;
    for (const int gi : cf_) {
      if (!alive_[static_cast<std::size_t>(gi)]) continue;
      const ir::Gate& g = gates_[static_cast<std::size_t>(gi)];
      if (g.num_qubits() != 2 || g.kind() == ir::GateKind::kBarrier) continue;
      endpoints.emplace_back(pi_.physical(g.qubit(0)),
                             pi_.physical(g.qubit(1)));
    }
    return endpoints;
  }

  std::vector<int> blocked_gates() const {
    std::vector<int> blocked;
    for (const int gi : cf_) {
      if (!alive_[static_cast<std::size_t>(gi)]) continue;
      const ir::Gate& g = gates_[static_cast<std::size_t>(gi)];
      if (g.num_qubits() != 2 || g.kind() == ir::GateKind::kBarrier) continue;
      if (!device_.graph.connected(pi_.physical(g.qubit(0)),
                                   pi_.physical(g.qubit(1)))) {
        blocked.push_back(gi);
      }
    }
    return blocked;
  }

  std::vector<core::SwapCandidate> build_candidates(
      const std::vector<int>& blocked, bool filter_locks) const {
    std::vector<core::SwapCandidate> candidates;
    auto add_edge = [&](ir::Qubit p, ir::Qubit nb) {
      core::SwapCandidate cand{std::min(p, nb), std::max(p, nb)};
      if (std::find(candidates.begin(), candidates.end(), cand) ==
          candidates.end()) {
        candidates.push_back(cand);
      }
    };
    for (const int gi : blocked) {
      const ir::Gate& g = gates_[static_cast<std::size_t>(gi)];
      for (int i = 0; i < 2; ++i) {
        const ir::Qubit p = pi_.physical(g.qubit(i));
        if (filter_locks && !locks_.is_free(p, now_)) continue;
        for (const ir::Qubit nb : device_.graph.neighbors(p)) {
          if (filter_locks && !locks_.is_free(nb, now_)) continue;
          add_edge(p, nb);
        }
      }
    }
    return candidates;
  }

  void insert_swap(core::SwapCandidate cand) {
    const arch::Duration start =
        std::max({now_, locks_.t_end(cand.a), locks_.t_end(cand.b)});
    out_.swap(cand.a, cand.b);
    const ir::Qubit pair[] = {cand.a, cand.b};
    locks_.lock(pair, start, lock_dur_.of(ir::GateKind::kSwap));
    pi_.swap_physical(cand.a, cand.b);
    ++stats_.swaps_inserted;
  }

  bool swap_step() {
    if (cf_dirty_) compute_cf();
    const std::vector<int> blocked = blocked_gates();
    if (blocked.empty()) return false;
    std::vector<core::SwapCandidate> candidates =
        build_candidates(blocked, config_.context_aware);
    bool inserted_any = false;
    while (!candidates.empty()) {
      const std::vector<core::GateEndpoints> endpoints =
          cf_two_qubit_endpoints();
      const core::SwapCandidate* best = nullptr;
      core::SwapPriority best_priority;
      for (const core::SwapCandidate& cand : candidates) {
        const core::SwapPriority p = core::swap_priority(
            endpoints, device_.graph, cand, config_.fine_priority);
        if (best == nullptr || p > best_priority) {
          best = &cand;
          best_priority = p;
        }
      }
      if (best == nullptr || best_priority.basic <= 0) break;
      const core::SwapCandidate chosen = *best;
      insert_swap(chosen);
      inserted_any = true;
      if (config_.context_aware) {
        std::erase_if(candidates, [&](const core::SwapCandidate& c) {
          return c.a == chosen.a || c.a == chosen.b || c.b == chosen.a ||
                 c.b == chosen.b;
        });
      } else {
        std::erase_if(candidates, [&](const core::SwapCandidate& c) {
          return c == chosen;
        });
      }
    }
    return inserted_any;
  }

  void force_swap() {
    if (cf_dirty_) compute_cf();
    const std::vector<int> blocked = blocked_gates();
    CODAR_ENSURES(!blocked.empty());
    ++consecutive_forced_;
    if (consecutive_forced_ > config_.stagnation_threshold) {
      escape_swap(blocked.front());
      return;
    }
    std::vector<core::SwapCandidate> candidates =
        build_candidates(blocked, config_.context_aware);
    CODAR_ENSURES(!candidates.empty());
    if (candidates.size() > 1) {
      std::erase_if(candidates, [&](const core::SwapCandidate& c) {
        return c == last_forced_;
      });
    }
    const std::vector<core::GateEndpoints> endpoints = cf_two_qubit_endpoints();
    const core::SwapCandidate* best = nullptr;
    core::SwapPriority best_priority;
    for (const core::SwapCandidate& cand : candidates) {
      const core::SwapPriority p = core::swap_priority(
          endpoints, device_.graph, cand, config_.fine_priority);
      if (best == nullptr || p > best_priority) {
        best = &cand;
        best_priority = p;
      }
    }
    last_forced_ = *best;
    insert_swap(*best);
    ++stats_.forced_swaps;
  }

  void escape_swap(int gate_index) {
    const ir::Gate& g = gates_[static_cast<std::size_t>(gate_index)];
    const ir::Qubit pa = pi_.physical(g.qubit(0));
    const ir::Qubit pb = pi_.physical(g.qubit(1));
    ir::Qubit step = -1;
    for (const ir::Qubit nb : device_.graph.neighbors(pa)) {
      if (step < 0 ||
          device_.graph.distance(nb, pb) < device_.graph.distance(step, pb)) {
        step = nb;
      }
    }
    CODAR_ENSURES(step >= 0);
    insert_swap(core::SwapCandidate{std::min(pa, step), std::max(pa, step)});
    last_forced_ = core::SwapCandidate{};
    ++stats_.forced_swaps;
    ++stats_.escape_swaps;
  }

  void advance_after_progress() {
    const arch::Duration next = locks_.next_expiry_after(now_);
    if (next > now_) now_ = next;
  }

  const arch::Device& device_;
  const core::CodarConfig& config_;
  const arch::DurationMap& lock_dur_;

  std::vector<ir::Gate> gates_;
  std::vector<int> pending_;
  std::vector<bool> alive_;
  std::size_t dead_in_pending_ = 0;
  std::size_t live_count_ = 0;
  layout::Layout pi_;
  layout::Layout initial_;
  core::QubitLockBank locks_;
  arch::Duration now_ = 0;
  ir::Circuit out_;
  core::RouterStats stats_;

  std::vector<int> cf_;
  bool cf_dirty_ = true;
  std::vector<std::vector<int>> wire_scratch_;

  core::SwapCandidate last_forced_{};
  int consecutive_forced_ = 0;
};

/// Routes `circuit` with the oracle loop, mirroring CodarRouter::route
/// (same contracts, same duration-map selection).
inline core::RoutingResult route_with_rescan(const arch::Device& device,
                                             const core::CodarConfig& config,
                                             const ir::Circuit& circuit,
                                             const layout::Layout& initial) {
  CODAR_EXPECTS(device.graph.is_fully_connected());
  CODAR_EXPECTS(ir::is_two_qubit_lowered(circuit));
  const arch::DurationMap lock_durations =
      config.duration_aware ? device.durations : arch::DurationMap::uniform();
  RescanRoutingRun run(device, config, lock_durations, circuit, initial);
  return run.run();
}

inline core::RoutingResult route_with_rescan(const arch::Device& device,
                                             const core::CodarConfig& config,
                                             const ir::Circuit& circuit) {
  return route_with_rescan(
      device, config, circuit,
      layout::Layout(circuit.num_qubits(), device.graph.num_qubits()));
}

}  // namespace codar::testing

#pragma once

// Shared assertions for routing tests: structural verification plus exact
// state-vector equivalence between the original logical circuit and the
// routed physical circuit.

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/core/routing_result.hpp"
#include "codar/core/verify.hpp"
#include "codar/sim/statevector.hpp"

namespace codar::testing {

/// Structural verification (connectivity + faithful gate sequence +
/// layout replay).
inline void expect_routing_valid(const ir::Circuit& original,
                                 const core::RoutingResult& result,
                                 const arch::Device& device) {
  const core::VerifyOutcome outcome =
      core::verify_routing(original, result, device.graph);
  EXPECT_TRUE(outcome.valid) << outcome.reason;
}

/// Exact semantic equivalence for small registers: the routed circuit's
/// output state must equal the original circuit's state re-positioned by
/// the final layout (ancilla physical qubits stay |0>).
inline void expect_states_equivalent(const ir::Circuit& original,
                                     const core::RoutingResult& result,
                                     const arch::Device& device,
                                     double tol = 1e-9) {
  const int n_phys = device.graph.num_qubits();
  ASSERT_LE(n_phys, 20) << "state-vector check limited to small devices";

  sim::Statevector routed_state(n_phys);
  routed_state.apply(result.circuit);

  // Reference: original gates re-addressed through the *final* layout.
  // Valid because the routed circuit's SWAPs shuttle states so that logical
  // qubit q ends at physical position final.physical(q).
  const ir::Circuit reference =
      original.remapped(result.final.l2p(), n_phys);
  sim::Statevector reference_state(n_phys);
  reference_state.apply(reference);

  for (std::size_t i = 0; i < routed_state.dim(); ++i) {
    const auto diff = routed_state.amp(i) - reference_state.amp(i);
    ASSERT_NEAR(std::abs(diff), 0.0, tol)
        << "amplitude mismatch at basis state " << i;
  }
}

}  // namespace codar::testing

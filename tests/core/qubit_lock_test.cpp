#include "codar/core/qubit_lock.hpp"

#include <cstdint>
#include <span>

#include <gtest/gtest.h>

namespace codar::core {
namespace {

TEST(QubitLockBank, StartsAllFree) {
  const QubitLockBank bank(4);
  for (Qubit q = 0; q < 4; ++q) {
    EXPECT_EQ(bank.t_end(q), 0);
    EXPECT_TRUE(bank.is_free(q, 0));
  }
}

TEST(QubitLockBank, LockOccupiesUntilExpiry) {
  // The paper's Fig. 3: lock t_end = 2 means busy until time 2.
  QubitLockBank bank(2);
  const Qubit qs[] = {0};
  bank.lock(qs, 0, 2);
  EXPECT_FALSE(bank.is_free(0, 0));
  EXPECT_FALSE(bank.is_free(0, 1));
  EXPECT_TRUE(bank.is_free(0, 2));
  EXPECT_TRUE(bank.is_free(1, 0));
}

TEST(QubitLockBank, DifferentDurationsFreeAtDifferentTimes) {
  // Fig. 2 mechanics: T (1 cycle) on q1 and CX (2 cycles) on q0,q2 -> q1
  // frees at 1 while q0/q2 free at 2.
  QubitLockBank bank(3);
  const Qubit t_q[] = {1};
  bank.lock(t_q, 0, 1);
  const Qubit cx_q[] = {0, 2};
  bank.lock(cx_q, 0, 2);
  EXPECT_TRUE(bank.is_free(1, 1));
  EXPECT_FALSE(bank.is_free(0, 1));
  EXPECT_FALSE(bank.is_free(2, 1));
  EXPECT_TRUE(bank.all_free(cx_q, 2));
}

TEST(QubitLockBank, AllFreeChecksEveryQubit) {
  QubitLockBank bank(3);
  const Qubit pair[] = {0, 2};
  bank.lock(pair, 0, 3);
  const Qubit mixed[] = {1, 2};
  EXPECT_FALSE(bank.all_free(mixed, 1));
  const Qubit only_free[] = {1};
  EXPECT_TRUE(bank.all_free(only_free, 0));
}

TEST(QubitLockBank, RelockingBusyQubitViolatesContract) {
  QubitLockBank bank(1);
  const Qubit qs[] = {0};
  bank.lock(qs, 0, 5);
  EXPECT_THROW(bank.lock(qs, 3, 1), ContractViolation);
  bank.lock(qs, 5, 1);  // fine at expiry
  EXPECT_EQ(bank.t_end(0), 6);
}

TEST(QubitLockBank, NextExpiryAfter) {
  QubitLockBank bank(3);
  EXPECT_EQ(bank.next_expiry_after(0), 0);  // nothing pending
  const Qubit q0[] = {0};
  const Qubit q1[] = {1};
  bank.lock(q0, 0, 6);
  bank.lock(q1, 0, 2);
  EXPECT_EQ(bank.next_expiry_after(0), 2);
  EXPECT_EQ(bank.next_expiry_after(2), 6);
  EXPECT_EQ(bank.next_expiry_after(6), 6);
}

TEST(QubitLockBank, NextExpirySkipsSupersededHeapEntries) {
  // Re-locking a qubit leaves its old expiry in the lazy-deletion heap;
  // the stale entry must be skipped, not returned.
  QubitLockBank bank(2);
  const Qubit q0[] = {0};
  const Qubit q1[] = {1};
  bank.lock(q0, 0, 2);
  bank.lock(q1, 0, 6);
  EXPECT_EQ(bank.next_expiry_after(0), 2);
  bank.lock(q0, 2, 10);  // q0 now busy until 12; the (2, q0) entry is dead
  EXPECT_EQ(bank.next_expiry_after(2), 6);
  EXPECT_EQ(bank.next_expiry_after(6), 12);
  EXPECT_EQ(bank.next_expiry_after(12), 12);
}

TEST(QubitLockBank, NextExpiryEnforcesMonotoneQueries) {
  // The lazy-deletion heap discards elapsed entries, which is only sound
  // when the clock never rewinds — the bank enforces that contract.
  QubitLockBank bank(2);
  const Qubit q0[] = {0};
  bank.lock(q0, 0, 5);
  EXPECT_EQ(bank.next_expiry_after(3), 5);
  EXPECT_THROW(bank.next_expiry_after(1), ContractViolation);
}

TEST(QubitLockBank, HeapMatchesLinearScanUnderRandomTraffic) {
  // Differential check against the former O(Q) implementation: the heap
  // answer must equal min{t_end[q] : t_end[q] > now} at every step.
  QubitLockBank bank(8);
  std::uint64_t state = 42;
  auto next_rand = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  Duration now = 0;
  for (int step = 0; step < 2000; ++step) {
    const Qubit q = static_cast<Qubit>(next_rand() % 8);
    if (bank.is_free(q, now)) {
      bank.lock(std::span<const Qubit>(&q, 1), now,
                static_cast<Duration>(next_rand() % 7));
    }
    Duration expected = now;
    for (Qubit i = 0; i < 8; ++i) {
      const Duration t = bank.t_end(i);
      if (t > now && (expected == now || t < expected)) expected = t;
    }
    ASSERT_EQ(bank.next_expiry_after(now), expected) << "step " << step;
    now = expected;  // advance like the router: to the next event
  }
}

TEST(QubitLockBank, ZeroDurationLockIsImmediatelyFree) {
  QubitLockBank bank(1);
  const Qubit qs[] = {0};
  bank.lock(qs, 4, 0);
  EXPECT_TRUE(bank.is_free(0, 4));
}

}  // namespace
}  // namespace codar::core

// Differential equivalence: the event-driven router must reproduce the
// original full-rescan loop (kept verbatim in tests/support/rescan_router.hpp)
// gate-for-gate. Routes 50+ generated circuits across devices, front
// windows, and feature ablations, asserting identical output circuits,
// swap counts, and router makespans.

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/workloads/generators.hpp"
#include "support/rescan_router.hpp"

namespace codar::core {
namespace {

using ir::Circuit;
using ir::Qubit;

void expect_same_routing(const arch::Device& device, const CodarConfig& config,
                         const Circuit& circuit) {
  const RoutingResult incremental =
      CodarRouter(device, config).route(circuit);
  const RoutingResult oracle =
      codar::testing::route_with_rescan(device, config, circuit);

  EXPECT_EQ(incremental.stats.swaps_inserted, oracle.stats.swaps_inserted);
  EXPECT_EQ(incremental.stats.router_makespan, oracle.stats.router_makespan);
  EXPECT_EQ(incremental.stats.forced_swaps, oracle.stats.forced_swaps);
  EXPECT_EQ(incremental.stats.escape_swaps, oracle.stats.escape_swaps);
  EXPECT_EQ(incremental.final, oracle.final);
  // Byte-identical output: same gates, same order, same operands.
  ASSERT_EQ(incremental.circuit.size(), oracle.circuit.size());
  for (std::size_t i = 0; i < oracle.circuit.size(); ++i) {
    ASSERT_EQ(incremental.circuit.gate(i), oracle.circuit.gate(i))
        << "first divergence at output position " << i << " on "
        << circuit.name();
  }
  EXPECT_EQ(qasm::to_qasm(incremental.circuit), qasm::to_qasm(oracle.circuit));
}

/// Adds ordering fences and measurements so the differential also covers
/// non-unitary gates.
Circuit with_fences(Circuit c) {
  const Qubit fence[] = {0, 1};
  c.barrier(fence);
  c.cx(0, 1);
  c.measure(0);
  c.measure(1);
  return c;
}

struct DiffCase {
  const char* device;
  int num_qubits;
  int num_gates;
  double two_qubit_fraction;
  std::uint64_t seed;
};

arch::Device device_by_name(const std::string& name) {
  if (name == "linear6") return arch::linear(6);
  if (name == "ring8") return arch::ring(8);
  if (name == "grid3x3") return arch::grid(3, 3);
  if (name == "yorktown") return arch::ibm_q5_yorktown();
  if (name == "tokyo") return arch::ibm_q20_tokyo();
  throw std::runtime_error("unknown device " + name);
}

class RouterDifferential : public ::testing::TestWithParam<DiffCase> {};

// 13 circuit cases x 4 config variants = 52 differentially routed circuits,
// plus the fenced/named-workload cases below.
TEST_P(RouterDifferential, MatchesRescanOracleAcrossConfigs) {
  const DiffCase& tc = GetParam();
  const arch::Device dev = device_by_name(tc.device);
  const Circuit c = workloads::random_circuit(
      tc.num_qubits, tc.num_gates, tc.two_qubit_fraction, tc.seed);

  CodarConfig full;  // all features on, default window

  CodarConfig tight_window;
  tight_window.front_window = 4;

  CodarConfig no_commut;
  no_commut.commutativity_aware = false;
  no_commut.front_window = 0;  // unbounded

  CodarConfig blind;
  blind.context_aware = false;
  blind.duration_aware = false;
  blind.fine_priority = false;

  for (const CodarConfig& config : {full, tight_window, no_commut, blind}) {
    expect_same_routing(dev, config, c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedCircuits, RouterDifferential,
    ::testing::Values(DiffCase{"linear6", 6, 80, 0.5, 21},
                      DiffCase{"linear6", 5, 120, 0.7, 22},
                      DiffCase{"ring8", 8, 100, 0.4, 23},
                      DiffCase{"ring8", 6, 150, 0.5, 24},
                      DiffCase{"grid3x3", 9, 150, 0.5, 25},
                      DiffCase{"grid3x3", 9, 200, 0.6, 26},
                      DiffCase{"grid3x3", 7, 90, 0.3, 27},
                      DiffCase{"yorktown", 5, 70, 0.5, 28},
                      DiffCase{"yorktown", 4, 110, 0.6, 29},
                      DiffCase{"tokyo", 20, 300, 0.5, 30},
                      DiffCase{"tokyo", 16, 250, 0.4, 31},
                      DiffCase{"tokyo", 12, 180, 0.6, 32},
                      DiffCase{"linear6", 3, 60, 0.8, 33}),
    [](const ::testing::TestParamInfo<DiffCase>& pinfo) {
      const DiffCase& p = pinfo.param;
      return std::string(p.device) + "_q" + std::to_string(p.num_qubits) +
             "_g" + std::to_string(p.num_gates) + "_s" +
             std::to_string(p.seed);
    });

TEST(RouterDifferential, BarriersAndMeasurementsMatchOracle) {
  const arch::Device dev = arch::grid(3, 3);
  for (const std::uint64_t seed : {41, 42, 43}) {
    const Circuit c =
        with_fences(workloads::random_circuit(9, 120, 0.5, seed));
    expect_same_routing(dev, CodarConfig{}, c);
  }
}

TEST(RouterDifferential, NamedWorkloadsMatchOracle) {
  const arch::Device tokyo = arch::ibm_q20_tokyo();
  expect_same_routing(tokyo, CodarConfig{}, workloads::qft(12));
  expect_same_routing(tokyo, CodarConfig{}, workloads::ghz(16));
  expect_same_routing(tokyo, CodarConfig{},
                      workloads::qaoa_maxcut(14, 2, 7));

  // Window of 1 exercises the boundary-sliding path hard.
  CodarConfig window1;
  window1.front_window = 1;
  expect_same_routing(tokyo, window1, workloads::qft(10));
}

}  // namespace
}  // namespace codar::core

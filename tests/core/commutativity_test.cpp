#include "codar/core/commutativity.hpp"

#include <gtest/gtest.h>

#include "codar/ir/unitary.hpp"

namespace codar::core {
namespace {

using ir::Circuit;
using ir::Gate;
using ir::GateKind;
using ir::Qubit;

TEST(GatesCommute, DisjointAlwaysCommute) {
  EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(2, 3)));
  EXPECT_TRUE(gates_commute(Gate::h(0), Gate::measure(1)));
  EXPECT_TRUE(gates_commute(Gate::measure(0), Gate::measure(1)));
}

TEST(GatesCommute, MeasureAndBarrierBlockOverlaps) {
  EXPECT_FALSE(gates_commute(Gate::measure(0), Gate::h(0)));
  EXPECT_FALSE(gates_commute(Gate::measure(0), Gate::measure(0)));
  const Qubit qs[] = {0, 1};
  EXPECT_FALSE(gates_commute(Gate::barrier(qs), Gate::cx(0, 2)));
  EXPECT_FALSE(gates_commute(Gate::z(0), Gate::measure(0)));
}

TEST(GatesCommute, PaperExampleSharedTargetCxs) {
  // The paper's §IV-B example: CX q1,q3 then CX q2,q3 share the target q3
  // and commute, so both are CF gates.
  EXPECT_TRUE(gates_commute(Gate::cx(1, 3), Gate::cx(2, 3)));
}

TEST(GatesCommute, CxStructure) {
  EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(0, 2)));   // shared control
  EXPECT_TRUE(gates_commute(Gate::cx(0, 2), Gate::cx(1, 2)));   // shared target
  EXPECT_FALSE(gates_commute(Gate::cx(0, 1), Gate::cx(1, 2)));  // chain
  EXPECT_FALSE(gates_commute(Gate::cx(0, 1), Gate::cx(1, 0)));  // reversed
  EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(0, 1)));   // identical
}

TEST(GatesCommute, DiagonalFamily) {
  EXPECT_TRUE(gates_commute(Gate::t(0), Gate::cz(0, 1)));
  EXPECT_TRUE(gates_commute(Gate::cu1(0, 1, 0.3), Gate::cu1(1, 2, 0.9)));
  EXPECT_TRUE(gates_commute(Gate::rzz(0, 1, 0.5), Gate::crz(1, 2, 0.7)));
  EXPECT_TRUE(gates_commute(Gate::rz(1, 0.2), Gate::rzz(0, 1, 0.4)));
}

TEST(GatesCommute, SingleQubitOnCxWires) {
  EXPECT_TRUE(gates_commute(Gate::t(0), Gate::cx(0, 1)));    // diag on control
  EXPECT_TRUE(gates_commute(Gate::x(1), Gate::cx(0, 1)));    // X on target
  EXPECT_TRUE(gates_commute(Gate::rx(1, 0.5), Gate::cx(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::h(0), Gate::cx(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::h(1), Gate::cx(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::x(0), Gate::cx(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::t(1), Gate::cx(0, 1)));
}

TEST(GatesCommute, SwapNeverCommutesWithOverlapExceptSpecialCases) {
  EXPECT_FALSE(gates_commute(Gate::swap(0, 1), Gate::h(0)));
  EXPECT_FALSE(gates_commute(Gate::swap(0, 1), Gate::cx(1, 2)));
  // SWAP commutes with a gate symmetric in both its qubits.
  EXPECT_TRUE(gates_commute(Gate::swap(0, 1), Gate::cz(0, 1)));
}

/// Property check: the symbolic rule table must agree with the exact
/// unitary ground truth for every pair of alphabet gates under every qubit
/// overlap pattern on three wires.
class CommutativityGroundTruth : public ::testing::Test {
 protected:
  static std::vector<Gate> gates_on(Qubit a, Qubit b) {
    return {
        Gate::x(a),          Gate::y(a),
        Gate::z(a),          Gate::h(a),
        Gate::s(a),          Gate::t(a),
        Gate::sx(a),         Gate::rx(a, 0.7),
        Gate::ry(a, 0.9),    Gate::rz(a, 1.1),
        Gate::u1(a, 0.4),    Gate::u3(a, 0.2, 0.3, 0.4),
        Gate::cx(a, b),      Gate::cx(b, a),
        Gate::cz(a, b),      Gate::cy(a, b),
        Gate::ch(a, b),      Gate::crz(a, b, 0.8),
        Gate::cu1(a, b, 0.5), Gate::rzz(a, b, 0.6),
        Gate::swap(a, b),
    };
  }
};

TEST_F(CommutativityGroundTruth, RuleTableMatchesMatrices) {
  // Overlap patterns over wires {0,1,2}: identical pair, shared first,
  // shared second, crossed.
  const std::vector<std::pair<std::pair<Qubit, Qubit>,
                              std::pair<Qubit, Qubit>>> patterns = {
      {{0, 1}, {0, 1}}, {{0, 1}, {0, 2}}, {{0, 1}, {2, 1}},
      {{0, 1}, {1, 2}}, {{0, 1}, {2, 0}},
  };
  int checked = 0;
  for (const auto& [qa, qb] : patterns) {
    for (const Gate& ga : gates_on(qa.first, qa.second)) {
      for (const Gate& gb : gates_on(qb.first, qb.second)) {
        const bool expected = ir::unitaries_commute(ga, gb);
        const bool actual = gates_commute(ga, gb);
        EXPECT_EQ(actual, expected)
            << ga.to_string() << " vs " << gb.to_string();
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 2000);
}

TEST(CommutativeFront, PlainFrontWithoutCommutativity) {
  Circuit c(3);
  c.cx(0, 1);  // 0
  c.cx(0, 2);  // 1 shares control with 0
  c.h(2);      // 2 blocked by 1
  const auto front = commutative_front(c, 0, /*use_commutativity=*/false);
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(CommutativeFront, SharedControlExposesBothCxs) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(0, 2);
  const auto front = commutative_front(c);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(CommutativeFront, PaperSharedTargetExample) {
  Circuit c(4);
  c.cx(1, 3);
  c.cx(2, 3);
  const auto front = commutative_front(c);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(CommutativeFront, QftPhaseLadderIsMutuallyCommuting) {
  // All CU1 gates of a QFT layer commute; the front should contain every
  // CU1 until the next H.
  Circuit c(4);
  c.cu1(1, 0, 0.5);
  c.cu1(2, 0, 0.25);
  c.cu1(3, 0, 0.125);
  c.h(1);  // blocked: H does not commute with CU1 on the shared wire
  const auto front = commutative_front(c);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(CommutativeFront, NonCommutingChainOnlyHead) {
  Circuit c(2);
  c.h(0);
  c.t(0);
  c.h(0);
  const auto front = commutative_front(c);
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(CommutativeFront, WindowTruncatesScan) {
  Circuit c(6);
  for (Qubit q = 0; q < 6; ++q) c.h(q);  // all independent
  EXPECT_EQ(commutative_front(c, 3).size(), 3u);
  EXPECT_EQ(commutative_front(c, 0).size(), 6u);
}

TEST(CommutativeFront, PendingSubsetRespected) {
  Circuit c(2);
  c.h(0);   // gate 0 (already executed, not pending)
  c.t(0);   // gate 1
  c.x(1);   // gate 2
  std::vector<ir::Gate> gates(c.gates().begin(), c.gates().end());
  const std::vector<int> pending = {1, 2};
  const auto front = commutative_front(gates, pending, 0, true);
  // Positions are within the pending vector.
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace codar::core

#include "codar/core/heuristic.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"

namespace codar::core {
namespace {

TEST(HBasic, PositiveWhenSwapShortensDistance) {
  const arch::Device dev = arch::linear(4);
  // One CF gate at physical endpoints (0, 3), distance 3.
  const std::vector<GateEndpoints> gates = {{0, 3}};
  // SWAP (0,1) moves the qubit at 0 to 1 -> distance 2: gain +1.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{0, 1}), 1);
  // SWAP (1,2) does not involve either endpoint: 0.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{1, 2}), 0);
}

TEST(HBasic, NegativeWhenSwapMovesApart) {
  const arch::Device dev = arch::linear(4);
  const std::vector<GateEndpoints> gates = {{1, 2}};
  // Moving 1 to 0 stretches the gate to distance 2.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{0, 1}), -1);
}

TEST(HBasic, SumsOverAllCfGates) {
  const arch::Device dev = arch::linear(5);
  // Two gates: (0,2) and (4,2). SWAP (1,2)?? moves the qubit at 2.
  const std::vector<GateEndpoints> gates = {{0, 2}, {4, 2}};
  // SWAP (2,3): gate (0,2) -> (0,3): 2->3 = -1. gate (4,2) -> (4,3): 2->1 = +1.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{2, 3}), 0);
  // SWAP (1,2): gate (0,2)->(0,1): +1; gate (4,2)->(4,1): -1.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{1, 2}), 0);
  // SWAP (0,1): gate (0,2)->(1,2): +1; gate (4,2) unaffected: 0.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{0, 1}), 1);
}

TEST(HBasic, BothEndpointsMovedBySameSwap) {
  const arch::Device dev = arch::linear(4);
  const std::vector<GateEndpoints> gates = {{1, 2}};
  // Swapping the two endpoints of the gate itself changes nothing: d stays.
  EXPECT_EQ(h_basic(gates, dev.graph, SwapCandidate{1, 2}), 0);
}

TEST(HFine, ZeroWithoutCoordinates) {
  const arch::Device dev = arch::ring(6);  // no lattice coordinates
  const std::vector<GateEndpoints> gates = {{0, 3}};
  EXPECT_EQ(h_fine(gates, dev.graph, SwapCandidate{0, 1}), 0);
}

TEST(HFine, PrefersBalancedManhattanComponents) {
  // 3x3 grid; gate endpoints (0, 8): corner to corner, VD=2 HD=2 -> |0|.
  const arch::Device dev = arch::grid(3, 3);
  const std::vector<GateEndpoints> gates = {{0, 8}};
  // SWAP (0,1): endpoint 0 -> 1 = (0,1); vs 8 = (2,2): VD=2, HD=1 -> -1.
  EXPECT_EQ(h_fine(gates, dev.graph, SwapCandidate{0, 1}), -1);
  // No swap effect: candidate not touching endpoints keeps balance |0|.
  EXPECT_EQ(h_fine(gates, dev.graph, SwapCandidate{4, 5}), 0);
}

TEST(HFine, Fig6Scenario) {
  // Paper Fig. 6: CX between q1 (top-middle) and q6 (bottom-left) of a 3x3
  // grid. Physical 1 = (0,1), physical 6 = (2,0): VD=2, HD=1.
  // SWAP {1,2} -> endpoint at (0,2): VD=2, HD=2 -> balance 0 (better).
  // SWAP {1,4}?? the paper compares routing around a busy qubit; here we
  // check the balance part: SWAP {0,1} -> endpoint (0,0): VD=2, HD=0 -> -2.
  const arch::Device dev = arch::grid(3, 3);
  const std::vector<GateEndpoints> gates = {{1, 6}};
  const auto fine_12 = h_fine(gates, dev.graph, SwapCandidate{1, 2});
  const auto fine_01 = h_fine(gates, dev.graph, SwapCandidate{0, 1});
  EXPECT_GT(fine_12, fine_01);
  EXPECT_EQ(fine_12, 0);
  EXPECT_EQ(fine_01, -2);
}

TEST(SwapPriority, LexicographicOrdering) {
  const SwapPriority low_basic{1, 100};
  const SwapPriority high_basic{2, -100};
  EXPECT_GT(high_basic, low_basic);
  const SwapPriority tie_a{2, -1};
  const SwapPriority tie_b{2, 0};
  EXPECT_GT(tie_b, tie_a);
  EXPECT_EQ((SwapPriority{1, 1}), (SwapPriority{1, 1}));
}

TEST(SwapPriority, UseFineToggle) {
  const arch::Device dev = arch::grid(3, 3);
  const std::vector<GateEndpoints> gates = {{0, 8}};
  const SwapPriority with_fine =
      swap_priority(gates, dev.graph, SwapCandidate{0, 1}, true);
  const SwapPriority no_fine =
      swap_priority(gates, dev.graph, SwapCandidate{0, 1}, false);
  EXPECT_EQ(with_fine.basic, no_fine.basic);
  EXPECT_EQ(no_fine.fine, 0);
  EXPECT_NE(with_fine.fine, 0);
}

TEST(SaturatingAdd, OrdinarySumsAreExact) {
  EXPECT_EQ(saturating_add(0, 0), 0);
  EXPECT_EQ(saturating_add(3, -5), -2);
  EXPECT_EQ(saturating_add(-7, 7), 0);
  constexpr std::int64_t inf = arch::kInfDistance;
  EXPECT_EQ(saturating_add(inf, inf), 2 * inf);
}

TEST(SaturatingAdd, ClampsAtTheInt64Limits) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(saturating_add(kMax, 1), kMax);
  EXPECT_EQ(saturating_add(kMax, kMax), kMax);
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
  // Saturation stays one-sided: a negative term still subtracts.
  EXPECT_EQ(saturating_add(kMax, -1), kMax - 1);
  EXPECT_EQ(saturating_add(kMin, 1), kMin + 1);
  static_assert(saturating_add(kMax, kMax) == kMax);
  static_assert(saturating_add(kMin, kMin) == kMin);
}

// Regression: on a disconnected device the CF set can hold many gates
// whose endpoints are unreachable from each other. Every such gate
// contributes kInfDistance-sized terms to the H_basic accumulator; the
// saturating add must keep the total defined and ordered instead of
// wrapping (signed overflow is UB with a plain +=).
TEST(HBasic, DisconnectedDeviceStaysSaturatedNotWrapped) {
  // Two 2-qubit islands: {0-1} and {2-3}.
  arch::CouplingGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);

  // A cross-island gate is unreachable before AND after any SWAP, so its
  // contribution is exactly inf - inf = 0.
  const std::vector<GateEndpoints> cross = {{0, 2}};
  EXPECT_EQ(h_basic(cross, g, SwapCandidate{0, 1}), 0);

  // Piling up cross-island gates must not wrap the accumulator: the
  // partial sums saturate, and the pairwise-cancelling terms still land
  // on 0 overall (each gate's own delta is computed before accumulation).
  const std::vector<GateEndpoints> many(100000, GateEndpoints{0, 3});
  EXPECT_EQ(h_basic(many, g, SwapCandidate{2, 3}), 0);

  // A same-island gate still produces its ordinary finite delta alongside
  // the infinite-distance noise.
  const std::vector<GateEndpoints> mixed = {{0, 2}, {1, 0}};
  EXPECT_EQ(h_basic(mixed, g, SwapCandidate{0, 1}), 0);
  // And the priority wrapper stays usable on a disconnected graph.
  const SwapPriority p = swap_priority(mixed, g, SwapCandidate{0, 1});
  EXPECT_EQ(p.basic, 0);
}

}  // namespace
}  // namespace codar::core

#include "codar/core/verify.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"

namespace codar::core {
namespace {

using ir::Circuit;
using layout::Layout;

/// Hand-built valid routing: CX q0,q2 on a 3-qubit line via one SWAP.
struct Fixture {
  arch::Device device = arch::linear(3);
  Circuit original{3, "orig"};
  RoutingResult result{Circuit{3}, Layout{3, 3}, Layout{3, 3}, {}};

  Fixture() {
    original.h(0);
    original.cx(0, 2);

    Circuit routed(3);
    routed.h(0);
    routed.swap(1, 2);  // moves logical q2 to physical 1
    routed.cx(0, 1);
    Layout final_layout(3, 3);
    final_layout.swap_physical(1, 2);
    result = RoutingResult{std::move(routed), Layout{3, 3}, final_layout, {}};
  }
};

TEST(VerifyRouting, AcceptsValidResult) {
  const Fixture f;
  const VerifyOutcome outcome =
      verify_routing(f.original, f.result, f.device.graph);
  EXPECT_TRUE(outcome.valid) << outcome.reason;
}

TEST(VerifyRouting, RejectsCouplingViolation) {
  Fixture f;
  Circuit bad(3);
  bad.h(0);
  bad.cx(0, 2);  // 0-2 not an edge of the line
  f.result.circuit = std::move(bad);
  f.result.final = Layout(3, 3);
  const VerifyOutcome outcome =
      verify_routing(f.original, f.result, f.device.graph);
  EXPECT_FALSE(outcome.valid);
  EXPECT_NE(outcome.reason.find("coupling"), std::string::npos);
}

TEST(VerifyRouting, RejectsDroppedGate) {
  Fixture f;
  Circuit bad(3);
  bad.h(0);  // CX missing
  f.result.circuit = std::move(bad);
  f.result.final = Layout(3, 3);
  const VerifyOutcome outcome =
      verify_routing(f.original, f.result, f.device.graph);
  EXPECT_FALSE(outcome.valid);
  EXPECT_NE(outcome.reason.find("dropped"), std::string::npos);
}

TEST(VerifyRouting, RejectsInventedGate) {
  Fixture f;
  Circuit bad = f.result.circuit;
  bad.x(2);  // not in the original
  f.result.circuit = std::move(bad);
  const VerifyOutcome outcome =
      verify_routing(f.original, f.result, f.device.graph);
  EXPECT_FALSE(outcome.valid);
}

TEST(VerifyRouting, RejectsIllegalReordering) {
  // Original: H then T on the same wire (they do not commute).
  const arch::Device device = arch::linear(2);
  Circuit original(2);
  original.h(0);
  original.t(0);
  Circuit reordered(2);
  reordered.t(0);
  reordered.h(0);
  const RoutingResult result{std::move(reordered), Layout(2, 2), Layout(2, 2),
                             {}};
  const VerifyOutcome outcome =
      verify_routing(original, result, device.graph);
  EXPECT_FALSE(outcome.valid);
}

TEST(VerifyRouting, AcceptsCommutingReordering) {
  // CX q1,q3 and CX q2,q3 share a target and commute — either order is a
  // faithful execution (the paper's CF example). Star-ish device where
  // both pairs are coupled directly.
  arch::CouplingGraph g(4);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const arch::Device device{"star4", std::move(g), arch::DurationMap()};
  Circuit original(4);
  original.cx(1, 3);
  original.cx(2, 3);
  Circuit reordered(4);
  reordered.cx(2, 3);
  reordered.cx(1, 3);
  const RoutingResult result{std::move(reordered), Layout(4, 4), Layout(4, 4),
                             {}};
  const VerifyOutcome outcome =
      verify_routing(original, result, device.graph);
  EXPECT_TRUE(outcome.valid) << outcome.reason;
}

TEST(VerifyRouting, RejectsWrongFinalLayout) {
  Fixture f;
  f.result.final = Layout(3, 3);  // claims identity, but a SWAP happened
  const VerifyOutcome outcome =
      verify_routing(f.original, f.result, f.device.graph);
  EXPECT_FALSE(outcome.valid);
  EXPECT_NE(outcome.reason.find("layout"), std::string::npos);
}

TEST(VerifyRouting, RejectsGateOnUnoccupiedQubit) {
  const arch::Device device = arch::linear(3);
  Circuit original(1);
  original.h(0);
  Circuit routed(3);
  routed.h(2);  // physical 2 hosts no logical qubit
  const RoutingResult result{std::move(routed), Layout(1, 3), Layout(1, 3),
                             {}};
  const VerifyOutcome outcome = verify_routing(original, result, device.graph);
  EXPECT_FALSE(outcome.valid);
}

}  // namespace
}  // namespace codar::core

#include "codar/core/front.hpp"

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "codar/core/commutativity.hpp"
#include "codar/ir/circuit.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::core {
namespace {

using ir::Circuit;
using ir::Gate;
using ir::Qubit;

std::vector<Gate> gates_of(const Circuit& c) {
  return {c.gates().begin(), c.gates().end()};
}

/// The rescan definition of the CF set over the given alive set, via the
/// reference commutative_front() (positions within `pending` mapped back to
/// gate indices).
std::vector<int> rescan_front(const std::vector<Gate>& gates,
                              const std::vector<char>& alive, int window,
                              bool use_commutativity) {
  std::vector<int> pending;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (alive[i]) pending.push_back(static_cast<int>(i));
  }
  std::vector<int> front;
  for (const std::size_t pos :
       commutative_front(gates, pending, window, use_commutativity)) {
    front.push_back(pending[pos]);
  }
  return front;
}

std::vector<int> as_vector(std::span<const int> s) {
  return {s.begin(), s.end()};
}

TEST(CommutativeFrontStructure, EmptySequence) {
  const std::vector<Gate> gates;
  const CommutativeFront front(gates, 10, true);
  EXPECT_EQ(front.live_count(), 0u);
  EXPECT_TRUE(front.front().empty());
}

TEST(CommutativeFrontStructure, IndependentGatesAllFront) {
  Circuit c(4);
  c.h(0);
  c.h(1);
  c.cx(2, 3);
  const std::vector<Gate> gates = gates_of(c);
  CommutativeFront front(gates, 0, true);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{0, 1, 2}));
  front.retire(1);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{0, 2}));
  EXPECT_EQ(front.live_count(), 2u);
  EXPECT_FALSE(front.alive(1));
}

TEST(CommutativeFrontStructure, CommutingCxPairSharesFront) {
  // CX(0,3) and CX(2,3) share target q3 and commute (Definition 1), so
  // both are CF; the plain DAG front exposes only the first.
  Circuit c(4);
  c.cx(0, 3);
  c.cx(2, 3);
  const std::vector<Gate> gates = gates_of(c);
  CommutativeFront cf(gates, 0, true);
  EXPECT_EQ(as_vector(cf.front()), (std::vector<int>{0, 1}));
  CommutativeFront dag(gates, 0, false);
  EXPECT_EQ(as_vector(dag.front()), (std::vector<int>{0}));
}

TEST(CommutativeFrontStructure, RetireUnblocksSuccessor) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  const std::vector<Gate> gates = gates_of(c);
  CommutativeFront front(gates, 0, true);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{0}));
  front.retire(0);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{1}));
  front.retire(1);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{2}));
}

TEST(CommutativeFrontStructure, WindowSlidesAsGatesRetire) {
  // Window 1: only the first alive gate is a CF candidate even when later
  // gates act on disjoint wires.
  Circuit c(4);
  c.h(0);
  c.h(1);
  c.h(2);
  const std::vector<Gate> gates = gates_of(c);
  CommutativeFront front(gates, 1, true);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{0}));
  front.retire(0);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{1}));
  front.retire(1);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{2}));
}

TEST(CommutativeFrontStructure, BarrierFencesItsWires) {
  Circuit c(3);
  const Qubit fence[] = {0, 1};
  c.h(0);
  c.barrier(fence);
  c.h(1);
  c.h(2);
  const std::vector<Gate> gates = gates_of(c);
  CommutativeFront front(gates, 0, true);
  // h(0) and h(2) are front; the barrier waits on h(0), h(1) on the fence.
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{0, 3}));
  front.retire(0);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{1, 3}));
  front.retire(1);
  EXPECT_EQ(as_vector(front.front()), (std::vector<int>{2, 3}));
}

TEST(CommutativeFrontStructure, RetireRejectsDeadGates) {
  Circuit c(2);
  c.h(0);
  c.h(0);
  const std::vector<Gate> gates = gates_of(c);
  CommutativeFront front(gates, 0, true);
  front.retire(0);
  EXPECT_THROW(front.retire(0), ContractViolation);  // already dead
}

/// Differential property: drive the incremental structure through random
/// retirement orders and compare against the rescan definition after every
/// step, across windows and both commutativity settings.
struct FrontCase {
  int num_qubits;
  int num_gates;
  double two_qubit_fraction;
  int window;
  bool use_commutativity;
  std::uint64_t seed;
};

class CommutativeFrontDifferential
    : public ::testing::TestWithParam<FrontCase> {};

TEST_P(CommutativeFrontDifferential, MatchesRescanUnderRandomRetirement) {
  const FrontCase& tc = GetParam();
  Circuit c = workloads::random_circuit(tc.num_qubits, tc.num_gates,
                                        tc.two_qubit_fraction, tc.seed);
  // Sprinkle in barriers and measures so non-unitary fencing is covered.
  const Qubit fence[] = {0, static_cast<Qubit>(tc.num_qubits - 1)};
  c.barrier(fence);
  c.measure(0);
  const std::vector<Gate> gates = gates_of(c);

  std::vector<char> alive(gates.size(), 1);
  CommutativeFront front(gates, tc.window, tc.use_commutativity);
  std::mt19937_64 rng(tc.seed * 7919 + 13);
  while (front.live_count() > 0) {
    const std::vector<int> expected =
        rescan_front(gates, alive, tc.window, tc.use_commutativity);
    ASSERT_EQ(as_vector(front.front()), expected)
        << "diverged at live_count " << front.live_count();
    ASSERT_FALSE(expected.empty());
    const int victim = expected[rng() % expected.size()];
    front.retire(victim);
    alive[static_cast<std::size_t>(victim)] = 0;
  }
  EXPECT_TRUE(front.front().empty());
}

INSTANTIATE_TEST_SUITE_P(
    RandomRetirements, CommutativeFrontDifferential,
    ::testing::Values(FrontCase{4, 60, 0.5, 0, true, 1},
                      FrontCase{4, 60, 0.5, 0, false, 2},
                      FrontCase{6, 120, 0.4, 8, true, 3},
                      FrontCase{6, 120, 0.4, 8, false, 4},
                      FrontCase{8, 150, 0.6, 1, true, 5},
                      FrontCase{8, 150, 0.6, 150, true, 6},
                      FrontCase{3, 80, 0.7, 2, true, 7},
                      FrontCase{10, 200, 0.5, 25, true, 8},
                      FrontCase{10, 200, 0.5, 25, false, 9},
                      FrontCase{5, 100, 0.3, 3, true, 10}),
    [](const ::testing::TestParamInfo<FrontCase>& pinfo) {
      const FrontCase& p = pinfo.param;
      return "q" + std::to_string(p.num_qubits) + "_g" +
             std::to_string(p.num_gates) + "_w" + std::to_string(p.window) +
             (p.use_commutativity ? "_cf" : "_dag") + "_s" +
             std::to_string(p.seed);
    });

}  // namespace
}  // namespace codar::core

#include "codar/core/codar_router.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"
#include "support/routing_checks.hpp"

namespace codar::core {
namespace {

using ir::Circuit;
using ir::GateKind;
using ir::Qubit;
using testing::expect_routing_valid;
using testing::expect_states_equivalent;

TEST(CodarRouter, HardwareCompliantCircuitPassesThrough) {
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.cx(2, 3);
  const CodarRouter router(dev);
  const RoutingResult result = router.route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 0u);
  EXPECT_EQ(result.circuit.size(), c.size());
  expect_routing_valid(c, result, dev);
  EXPECT_EQ(result.final, result.initial);
}

TEST(CodarRouter, InsertsSwapForDistantGate) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.cx(0, 2);
  const CodarRouter router(dev);
  const RoutingResult result = router.route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 1u);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

TEST(CodarRouter, RejectsUnloweredCircuit) {
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.ccx(0, 1, 2);
  const CodarRouter router(dev);
  EXPECT_THROW(router.route(c), ContractViolation);
}

TEST(CodarRouter, RejectsOversizedCircuit) {
  const arch::Device dev = arch::linear(3);
  Circuit c(5);
  c.h(4);
  const CodarRouter router(dev);
  EXPECT_THROW(router.route(c), ContractViolation);
}

TEST(CodarRouter, RejectsDisconnectedDevice) {
  arch::CouplingGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const arch::Device dev{"split", std::move(g), arch::DurationMap()};
  EXPECT_THROW(CodarRouter router(dev), ContractViolation);
}

// --- Paper Fig. 2: duration awareness unlocks the earlier SWAP -----------

arch::Device fig2_device() {
  // 2x2 lattice (the motivating examples' coupling map): Q0-Q1, Q0-Q2,
  // Q1-Q3, Q2-Q3; Q0 and Q3 are not adjacent.
  return arch::grid(2, 2);
}

Circuit fig2_program() {
  // T q[1] and CX q[0],q[2] start together; CX q[0],q[3] needs a SWAP.
  Circuit c(4, "fig2");
  c.t(1);
  c.cx(0, 2);
  c.cx(0, 3);
  return c;
}

TEST(CodarRouter, Fig2DurationAwareUsesEarlyFreeQubit) {
  const arch::Device dev = fig2_device();
  const Circuit c = fig2_program();
  const CodarRouter router(dev);
  const RoutingResult result = router.route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);

  // The paper's answer: SWAP q[3],q[1] is the best candidate because it can
  // start at cycle 1, right after T finishes, while CX q[0],q[2] still runs.
  ASSERT_EQ(result.stats.swaps_inserted, 1u);
  const auto swap_it =
      std::find_if(result.circuit.gates().begin(),
                   result.circuit.gates().end(), [](const ir::Gate& g) {
                     return g.kind() == GateKind::kSwap;
                   });
  ASSERT_NE(swap_it, result.circuit.gates().end());
  EXPECT_TRUE((swap_it->qubit(0) == 1 && swap_it->qubit(1) == 3) ||
              (swap_it->qubit(0) == 3 && swap_it->qubit(1) == 1));

  // Timeline: T 0..1, CX 0..2, SWAP 1..7, CX(Q0,Q1) 7..9.
  EXPECT_EQ(schedule::weighted_depth(result.circuit, dev.durations), 9);
  EXPECT_EQ(result.stats.router_makespan, 9);
}

TEST(CodarRouter, Fig2DurationBlindIsNoBetter) {
  const arch::Device dev = fig2_device();
  const Circuit c = fig2_program();
  CodarConfig blind;
  blind.duration_aware = false;
  const RoutingResult aware = CodarRouter(dev).route(c);
  const RoutingResult blind_result = CodarRouter(dev, blind).route(c);
  expect_routing_valid(c, blind_result, dev);
  EXPECT_GE(schedule::weighted_depth(blind_result.circuit, dev.durations),
            schedule::weighted_depth(aware.circuit, dev.durations));
}

// --- Paper Fig. 7 walk-through -------------------------------------------

TEST(CodarRouter, Fig7WalkThrough) {
  // 6-qubit device; gate sequence: CX q0,q2; T q1; CX q0,q3.
  // Cycle 0: first two launch; SWAP {q3,q5} has negative priority and the
  // lock-free filter rules out {q1,q3}/{q2,q3}. Cycle 1: q1 frees, SWAP
  // q1,q3 is chosen; locks of q1,q3 go to 1 + 6 = 7.
  arch::CouplingGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 5);
  g.add_edge(4, 5);
  const arch::Device dev{"fig7", std::move(g), arch::DurationMap()};

  Circuit c(6, "fig7");
  c.cx(0, 2);
  c.t(1);
  c.cx(0, 3);

  const CodarRouter router(dev);
  const RoutingResult result = router.route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);

  ASSERT_EQ(result.stats.swaps_inserted, 1u);
  // Output order: the two executable gates, then the SWAP q1,q3, then the
  // remapped CX on the physical pair (0,1).
  ASSERT_EQ(result.circuit.size(), 4u);
  EXPECT_EQ(result.circuit.gate(2).kind(), GateKind::kSwap);
  EXPECT_TRUE(result.circuit.gate(2).acts_on(1));
  EXPECT_TRUE(result.circuit.gate(2).acts_on(3));
  const ir::Gate& final_cx = result.circuit.gate(3);
  EXPECT_EQ(final_cx.kind(), GateKind::kCX);
  EXPECT_EQ(final_cx.qubit(0), 0);
  EXPECT_EQ(final_cx.qubit(1), 1);
  // SWAP starts at 1 (T's lock expiry) and runs 6 cycles -> locks go to 7;
  // the CX follows at 7..9.
  const schedule::Schedule sched =
      schedule::asap_schedule(result.circuit, dev.durations);
  EXPECT_EQ(sched.gates[2].start, 1);
  EXPECT_EQ(sched.gates[2].finish, 7);
  EXPECT_EQ(sched.makespan, 9);
}

// --- Context sensitivity (Fig. 1 mechanism) -------------------------------

TEST(CodarRouter, ContextAwareAvoidsBusyQubits) {
  // Ring of 6: CX q1,q2 occupies Q1,Q2 for two cycles while CX q0,q3 needs
  // routing (distance 3 around either arc). The context-aware router must
  // route through the *free* arc; the context-blind ablation picks a SWAP
  // touching the busy region and has to wait for it.
  const arch::Device dev = arch::ring(6);
  Circuit c(6, "fig1_ring");
  c.cx(1, 2);  // occupies Q1, Q2 until cycle 2
  c.cx(0, 3);  // blocked, needs SWAPs

  const RoutingResult aware = CodarRouter(dev).route(c);
  CodarConfig blind_cfg;
  blind_cfg.context_aware = false;
  const RoutingResult blind = CodarRouter(dev, blind_cfg).route(c);
  expect_routing_valid(c, aware, dev);
  expect_routing_valid(c, blind, dev);
  expect_states_equivalent(c, aware, dev);

  auto first_swap = [](const Circuit& circuit) {
    const auto it = std::find_if(circuit.gates().begin(),
                                 circuit.gates().end(), [](const ir::Gate& g) {
                                   return g.kind() == GateKind::kSwap;
                                 });
    EXPECT_NE(it, circuit.gates().end());
    return *it;
  };
  // Context-aware: first SWAP avoids the locked Q1/Q2.
  const ir::Gate aware_swap = first_swap(aware.circuit);
  EXPECT_FALSE(aware_swap.acts_on(1));
  EXPECT_FALSE(aware_swap.acts_on(2));
  // Context-blind: its tie-break lands on the busy edge (Q0, Q1).
  const ir::Gate blind_swap = first_swap(blind.circuit);
  EXPECT_TRUE(blind_swap.acts_on(1));
  // And the execution time shows it: aware is no slower.
  EXPECT_LE(schedule::weighted_depth(aware.circuit, dev.durations),
            schedule::weighted_depth(blind.circuit, dev.durations));
}

// --- Commutativity look-ahead ---------------------------------------------

TEST(CodarRouter, CommutativityExposesSharedTargetCx) {
  // CX q0,q3 (blocked, needs routing) followed by CX q2,q3 (adjacent).
  // The gates share target q3 and commute, so with commutativity detection
  // the second launches immediately; the plain-DAG-front ablation must
  // first route and retire the blocked gate.
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.cx(0, 3);
  c.cx(2, 3);

  const RoutingResult with_cf = CodarRouter(dev).route(c);
  CodarConfig no_cf_cfg;
  no_cf_cfg.commutativity_aware = false;
  const RoutingResult no_cf = CodarRouter(dev, no_cf_cfg).route(c);
  expect_routing_valid(c, with_cf, dev);
  expect_routing_valid(c, no_cf, dev);
  expect_states_equivalent(c, with_cf, dev);
  expect_states_equivalent(c, no_cf, dev);

  // With CF look-ahead, the adjacent CX launches at cycle 0: first output
  // gate is a CX on physical (2,3).
  ASSERT_FALSE(with_cf.circuit.empty());
  const ir::Gate& first = with_cf.circuit.gate(0);
  EXPECT_EQ(first.kind(), GateKind::kCX);
  EXPECT_TRUE(first.acts_on(2));
  EXPECT_TRUE(first.acts_on(3));
  // Without it, the router must start with a SWAP for the blocked gate.
  ASSERT_FALSE(no_cf.circuit.empty());
  EXPECT_EQ(no_cf.circuit.gate(0).kind(), GateKind::kSwap);
  EXPECT_LE(schedule::weighted_depth(with_cf.circuit, dev.durations),
            schedule::weighted_depth(no_cf.circuit, dev.durations));
}

TEST(CodarRouter, AblationConfigsAllProduceValidRoutes) {
  const arch::Device dev = arch::ibm_q5_yorktown();
  const Circuit c = workloads::random_circuit(5, 60, 0.5, 123);
  for (const bool context : {true, false}) {
    for (const bool duration : {true, false}) {
      for (const bool commut : {true, false}) {
        for (const bool fine : {true, false}) {
          CodarConfig cfg;
          cfg.context_aware = context;
          cfg.duration_aware = duration;
          cfg.commutativity_aware = commut;
          cfg.fine_priority = fine;
          const RoutingResult result = CodarRouter(dev, cfg).route(c);
          expect_routing_valid(c, result, dev);
        }
      }
    }
  }
}

// --- Stat regressions ------------------------------------------------------

TEST(CodarRouter, CyclesCountDistinctTimestampsFig2) {
  // Hand-computed Fig. 2 timeline: the router visits t = 0 (T and
  // CX q0,q2 launch), t = 1 (T's qubit frees, SWAP q1,q3 inserted), t = 2
  // (CX q0,q2 frees; nothing can run — SWAP holds q1,q3 until 7) and t = 7
  // (the final CX launches). Four distinct timestamps.
  const RoutingResult result = CodarRouter(fig2_device()).route(fig2_program());
  EXPECT_EQ(result.stats.cycles_simulated, 4u);
}

TEST(CodarRouter, CyclesNotInflatedByForcedSwapRounds) {
  // Three pairwise-commuting CZ gates between the even corners of a
  // 6-ring: every candidate SWAP has H_basic = 0 (each helps one gate and
  // hurts another symmetrically), so the very first iteration deadlocks
  // into force_swap. That forced round and the follow-up SWAP round happen
  // at the same timestamp t = 0; the old per-iteration counter reported 6
  // "cycles" where the router only worked at the 5 distinct times
  // 0, 6, 8, 10, 16.
  const arch::Device dev = arch::ring(6);
  Circuit c(6, "cz_triangle");
  c.cz(0, 2);
  c.cz(2, 4);
  c.cz(4, 0);
  const RoutingResult result = CodarRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  EXPECT_GT(result.stats.forced_swaps, 0u);
  EXPECT_EQ(result.stats.cycles_simulated, 5u);
  EXPECT_EQ(result.stats.router_makespan, 18);
}

TEST(CodarRouter, BarriersReportedSeparatelyFromRoutedGates) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.h(0);
  const Qubit fence[] = {0, 1};
  c.barrier(fence);
  c.cx(0, 2);
  c.barrier(fence);
  c.measure(0);
  const CodarRouter router(dev);
  const RoutingResult result = router.route(c);
  // Barriers are ordering fences, not operations: they must not inflate
  // gates_routed (which feeds fidelity/ESP post-processing).
  EXPECT_EQ(result.stats.barriers, 2u);
  EXPECT_EQ(result.stats.gates_routed, c.size() - 2);
  EXPECT_EQ(result.circuit.size(),
            result.stats.gates_routed + result.stats.barriers +
                result.stats.swaps_inserted);
}

TEST(CodarRouter, MeasureAndBarrierAreRouted) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.h(0);
  const Qubit fence[] = {0, 1};
  c.barrier(fence);
  c.cx(0, 2);
  c.measure(0);
  c.measure(2);
  const CodarRouter router(dev);
  const RoutingResult result = router.route(c);
  expect_routing_valid(c, result, dev);
  std::size_t measures = 0;
  std::size_t barriers = 0;
  for (const ir::Gate& g : result.circuit.gates()) {
    if (g.kind() == GateKind::kMeasure) ++measures;
    if (g.kind() == GateKind::kBarrier) ++barriers;
  }
  EXPECT_EQ(measures, 2u);
  EXPECT_EQ(barriers, 1u);
}

TEST(CodarRouter, CustomInitialLayoutRespected) {
  const arch::Device dev = arch::linear(4);
  Circuit c(2);
  c.cx(0, 1);
  const layout::Layout initial = layout::Layout::from_l2p({3, 2}, 4);
  const CodarRouter router(dev);
  const RoutingResult result = router.route(c, initial);
  EXPECT_EQ(result.initial, initial);
  EXPECT_EQ(result.stats.swaps_inserted, 0u);  // 3 and 2 are adjacent
  EXPECT_EQ(result.circuit.gate(0).qubit(0), 3);
  EXPECT_EQ(result.circuit.gate(0).qubit(1), 2);
  expect_routing_valid(c, result, dev);
}

TEST(CodarRouter, StatsAreConsistent) {
  const arch::Device dev = arch::grid(3, 3);
  const Circuit c = workloads::qft(6);
  const RoutingResult result = CodarRouter(dev).route(c);
  EXPECT_EQ(result.stats.gates_routed, c.size());  // qft has no barriers
  EXPECT_EQ(result.stats.barriers, 0u);
  EXPECT_EQ(result.circuit.size(), c.size() + result.stats.swaps_inserted);
  EXPECT_EQ(result.circuit.swap_count(), result.stats.swaps_inserted);
  EXPECT_GT(result.stats.cycles_simulated, 0u);
  // Cycles are distinct simulated timestamps; the router can never visit
  // more timestamps than its timeline has, plus the initial t = 0.
  EXPECT_LE(result.stats.cycles_simulated,
            static_cast<std::size_t>(result.stats.router_makespan) + 1);
  // The router's own timeline is exactly the ASAP schedule of its output.
  EXPECT_GE(result.stats.router_makespan,
            schedule::weighted_depth(result.circuit, dev.durations));
}

/// Property sweep: many random circuits on several devices must route,
/// verify, and (when small enough) stay semantically exact.
struct PropertyCase {
  const char* device_name;
  int num_qubits;
  int num_gates;
  double two_qubit_fraction;
  std::uint64_t seed;
};

class CodarRouterProperty : public ::testing::TestWithParam<PropertyCase> {};

arch::Device device_by_name(const std::string& name, int n) {
  if (name == "linear") return arch::linear(n);
  if (name == "ring") return arch::ring(n);
  if (name == "grid3x3") return arch::grid(3, 3);
  if (name == "yorktown") return arch::ibm_q5_yorktown();
  if (name == "tokyo") return arch::ibm_q20_tokyo();
  throw std::runtime_error("unknown device " + name);
}

TEST_P(CodarRouterProperty, RoutesVerifiesAndPreservesSemantics) {
  const PropertyCase& tc = GetParam();
  const arch::Device dev = device_by_name(tc.device_name, tc.num_qubits);
  const Circuit c = workloads::random_circuit(
      tc.num_qubits, tc.num_gates, tc.two_qubit_fraction, tc.seed);
  const RoutingResult result = CodarRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  if (dev.graph.num_qubits() <= 9) {
    expect_states_equivalent(c, result, dev);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, CodarRouterProperty,
    ::testing::Values(
        PropertyCase{"linear", 4, 40, 0.5, 1},
        PropertyCase{"linear", 6, 80, 0.5, 2},
        PropertyCase{"linear", 8, 120, 0.6, 3},
        PropertyCase{"ring", 5, 60, 0.5, 4},
        PropertyCase{"ring", 8, 100, 0.4, 5},
        PropertyCase{"grid3x3", 9, 150, 0.5, 6},
        PropertyCase{"grid3x3", 7, 90, 0.7, 7},
        PropertyCase{"yorktown", 5, 70, 0.5, 8},
        PropertyCase{"yorktown", 4, 50, 0.3, 9},
        PropertyCase{"tokyo", 20, 400, 0.5, 10},
        PropertyCase{"tokyo", 12, 250, 0.6, 11}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      return std::string(param_info.param.device_name) + "_q" +
             std::to_string(param_info.param.num_qubits) + "_g" +
             std::to_string(param_info.param.num_gates) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace codar::core

#include "codar/schedule/timeline.hpp"

#include <gtest/gtest.h>

namespace codar::schedule {
namespace {

using arch::DurationMap;
using ir::Circuit;

TEST(TimelineStats, EmptyCircuit) {
  const Circuit c(3);
  const TimelineStats stats = analyze_timeline(c, DurationMap());
  EXPECT_EQ(stats.makespan, 0);
  EXPECT_EQ(stats.mean_parallelism, 0.0);
}

TEST(TimelineStats, FullyParallelLayer) {
  Circuit c(4);
  for (ir::Qubit q = 0; q < 4; ++q) c.h(q);
  const TimelineStats stats = analyze_timeline(c, DurationMap());
  EXPECT_EQ(stats.makespan, 1);
  EXPECT_DOUBLE_EQ(stats.mean_parallelism, 4.0);
  EXPECT_DOUBLE_EQ(stats.qubit_utilization, 1.0);
}

TEST(TimelineStats, SerialChain) {
  Circuit c(1);
  c.h(0);
  c.t(0);
  const TimelineStats stats = analyze_timeline(c, DurationMap());
  EXPECT_EQ(stats.makespan, 2);
  EXPECT_DOUBLE_EQ(stats.mean_parallelism, 1.0);
  EXPECT_EQ(stats.busiest_qubit, 0);
  EXPECT_EQ(stats.busiest_qubit_cycles, 2);
}

TEST(TimelineStats, TwoQubitGateCountsBothWires) {
  Circuit c(2);
  c.cx(0, 1);  // 2 cycles on both qubits
  const TimelineStats stats = analyze_timeline(c, DurationMap());
  EXPECT_EQ(stats.makespan, 2);
  EXPECT_DOUBLE_EQ(stats.qubit_utilization, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_parallelism, 1.0);
}

TEST(TimelineStats, IdleTimeLowersUtilization) {
  Circuit c(2);
  c.h(0);      // busy 1 cycle
  c.cx(0, 1);  // both busy 2 more
  const TimelineStats stats = analyze_timeline(c, DurationMap());
  EXPECT_EQ(stats.makespan, 3);
  // Qubit 0 busy 3/3; qubit 1 busy 2/3 -> utilization 5/6.
  EXPECT_NEAR(stats.qubit_utilization, 5.0 / 6.0, 1e-12);
}

TEST(RenderTimeline, ShowsGatesAndIdle) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const std::string gantt = render_timeline(c, DurationMap());
  // Q0: H then CC; Q1: idle then CC.
  EXPECT_NE(gantt.find("Q0  |HCC"), std::string::npos) << gantt;
  EXPECT_NE(gantt.find("Q1  |.CC"), std::string::npos) << gantt;
  EXPECT_NE(gantt.find("t = 0..3"), std::string::npos);
}

TEST(RenderTimeline, SwapRendersAsS) {
  Circuit c(2);
  c.swap(0, 1);
  const std::string gantt = render_timeline(c, DurationMap());
  EXPECT_NE(gantt.find("SSSSSS"), std::string::npos) << gantt;
}

TEST(RenderTimeline, TruncatesLongSchedules) {
  Circuit c(1);
  for (int i = 0; i < 50; ++i) c.h(0);
  const std::string gantt = render_timeline(c, DurationMap(), 10);
  EXPECT_NE(gantt.find("..."), std::string::npos);
  EXPECT_NE(gantt.find("t = 0..50"), std::string::npos);
}

TEST(RenderTimeline, BarrierLeavesMark) {
  Circuit c(2);
  c.h(0);
  const ir::Qubit both[] = {0, 1};
  c.barrier(both);
  c.h(1);
  const std::string gantt = render_timeline(c, DurationMap());
  // Q0 runs H in cycle 0 and hits the zero-width barrier at cycle 1.
  EXPECT_NE(gantt.find("H|"), std::string::npos) << gantt;
}

}  // namespace
}  // namespace codar::schedule

#include "codar/schedule/success.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace codar::schedule {
namespace {

using arch::DurationMap;
using arch::FidelityMap;
using ir::Circuit;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EstimateSuccess, IdealEverythingIsOne) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const EspBreakdown esp =
      estimate_success(c, DurationMap(), FidelityMap(), kInf);
  EXPECT_DOUBLE_EQ(esp.gate_factor, 1.0);
  EXPECT_DOUBLE_EQ(esp.coherence_factor, 1.0);
  EXPECT_DOUBLE_EQ(esp.esp(), 1.0);
}

TEST(EstimateSuccess, GateFactorIsProductOfFidelities) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);
  FidelityMap fid;
  fid.set(ir::GateKind::kH, 0.99);
  fid.set(ir::GateKind::kCX, 0.95);
  const EspBreakdown esp = estimate_success(c, DurationMap(), fid, kInf);
  EXPECT_NEAR(esp.gate_factor, 0.99 * 0.95 * 0.95, 1e-12);
}

TEST(EstimateSuccess, CoherenceFactorUsesQubitLifetimes) {
  Circuit c(2);
  c.h(0);      // q0 alive 0..1
  c.cx(0, 1);  // both alive to 3; q1 from 1
  const EspBreakdown esp =
      estimate_success(c, DurationMap(), FidelityMap(), 100.0);
  // Exposure: q0 = 3 - 0, q1 = 3 - 1 -> 5 cycles total.
  EXPECT_NEAR(esp.coherence_factor, std::exp(-5.0 / 100.0), 1e-12);
}

TEST(EstimateSuccess, UntouchedQubitsDoNotDecohere) {
  Circuit c(5);
  c.h(0);
  const EspBreakdown esp =
      estimate_success(c, DurationMap(), FidelityMap(), 10.0);
  EXPECT_NEAR(esp.coherence_factor, std::exp(-1.0 / 10.0), 1e-12);
}

TEST(EstimateSuccess, LongerScheduleLowersEsp) {
  Circuit fast(2);
  fast.h(0);
  fast.cx(0, 1);
  Circuit slow(2);
  slow.h(0);
  for (int i = 0; i < 8; ++i) slow.t(0);
  slow.cx(0, 1);
  const FidelityMap fid = FidelityMap::superconducting();
  const double esp_fast =
      estimate_success(fast, DurationMap(), fid, 50.0).esp();
  const double esp_slow =
      estimate_success(slow, DurationMap(), fid, 50.0).esp();
  EXPECT_GT(esp_fast, esp_slow);
}

TEST(EstimateSuccess, MoreSwapsLowerGateFactor) {
  Circuit direct(2);
  direct.cx(0, 1);
  Circuit swapped(3);
  swapped.swap(1, 2);
  swapped.cx(0, 1);
  const FidelityMap fid = FidelityMap::superconducting();
  EXPECT_GT(estimate_success(direct, DurationMap(), fid, kInf).gate_factor,
            estimate_success(swapped, DurationMap(), fid, kInf).gate_factor);
}

TEST(EstimateSuccess, RejectsNonPositiveCoherence) {
  Circuit c(1);
  c.h(0);
  EXPECT_THROW(estimate_success(c, DurationMap(), FidelityMap(), 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace codar::schedule

#include <gtest/gtest.h>

#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::schedule {
namespace {

using arch::DurationMap;
using ir::Circuit;

// Invariant sweeps of the ASAP scheduler over random circuits.

class SchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Circuit circuit() const {
    return workloads::random_circuit(8, 250, 0.5, GetParam());
  }
};

TEST_P(SchedulerProperties, MakespanBoundedBySerialSum) {
  const Circuit c = circuit();
  const DurationMap durations;
  Duration serial = 0;
  for (const ir::Gate& g : c.gates()) serial += durations.of(g);
  const Duration makespan = weighted_depth(c, durations);
  EXPECT_LE(makespan, serial);
  EXPECT_GT(makespan, 0);
}

TEST_P(SchedulerProperties, MakespanAtLeastBusiestWire) {
  const Circuit c = circuit();
  const DurationMap durations;
  std::vector<Duration> busy(8, 0);
  for (const ir::Gate& g : c.gates()) {
    for (const ir::Qubit q : g.qubits()) {
      busy[static_cast<std::size_t>(q)] += durations.of(g);
    }
  }
  const Duration busiest = *std::max_element(busy.begin(), busy.end());
  EXPECT_GE(weighted_depth(c, durations), busiest);
}

TEST_P(SchedulerProperties, GatesNeverOverlapOnAWire) {
  const Circuit c = circuit();
  const DurationMap durations;
  const Schedule sched = asap_schedule(c, durations);
  // For each wire, collect intervals and check pairwise disjointness.
  std::vector<std::vector<std::pair<Duration, Duration>>> wires(8);
  for (const ScheduledGate& sg : sched.gates) {
    for (const ir::Qubit q : c.gate(sg.gate_index).qubits()) {
      wires[static_cast<std::size_t>(q)].emplace_back(sg.start, sg.finish);
    }
  }
  for (const auto& intervals : wires) {
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      for (std::size_t j = i + 1; j < intervals.size(); ++j) {
        const bool disjoint = intervals[i].second <= intervals[j].first ||
                              intervals[j].second <= intervals[i].first;
        EXPECT_TRUE(disjoint);
      }
    }
  }
}

TEST_P(SchedulerProperties, ProgramOrderRespectedPerWire) {
  const Circuit c = circuit();
  const Schedule sched = asap_schedule(c, DurationMap());
  std::vector<Duration> last_finish(8, 0);
  for (const ScheduledGate& sg : sched.gates) {
    for (const ir::Qubit q : c.gate(sg.gate_index).qubits()) {
      EXPECT_GE(sg.start, last_finish[static_cast<std::size_t>(q)]);
      last_finish[static_cast<std::size_t>(q)] = sg.finish;
    }
  }
}

TEST_P(SchedulerProperties, UniformDurationsMatchUnweightedDepth) {
  // With every gate at 1 cycle (incl. SWAP), the weighted depth equals
  // the classic layer depth.
  const Circuit c = circuit();
  DurationMap uniform;
  uniform.set_all_single_qubit(1);
  uniform.set_all_two_qubit(1);
  uniform.set(ir::GateKind::kSwap, 1);
  uniform.set(ir::GateKind::kMeasure, 1);
  EXPECT_EQ(weighted_depth(c, uniform),
            static_cast<Duration>(unweighted_depth(c)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace codar::schedule

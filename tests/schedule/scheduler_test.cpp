#include "codar/schedule/scheduler.hpp"

#include <gtest/gtest.h>

namespace codar::schedule {
namespace {

using arch::DurationMap;
using ir::Circuit;
using ir::Qubit;

TEST(AsapSchedule, EmptyCircuit) {
  const Circuit c(2);
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.makespan, 0);
  EXPECT_TRUE(s.gates.empty());
}

TEST(AsapSchedule, SerialChainAccumulates) {
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.x(0);
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.makespan, 3);
  EXPECT_EQ(s.gates[2].start, 2);
}

TEST(AsapSchedule, ParallelGatesOverlap) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.makespan, 1);
  EXPECT_EQ(s.active_gates_at(0), 3);
}

TEST(AsapSchedule, PaperFig2Timing) {
  // T q[1] (1 cycle) and CX q[0],q[2] (2 cycles) start together at 0; a
  // SWAP on {q1,q3} can start at cycle 1 — the paper's Fig. 2(d) timeline.
  Circuit c(4);
  c.t(1);
  c.cx(0, 2);
  c.swap(1, 3);
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.gates[0].start, 0);
  EXPECT_EQ(s.gates[0].finish, 1);
  EXPECT_EQ(s.gates[1].start, 0);
  EXPECT_EQ(s.gates[1].finish, 2);
  EXPECT_EQ(s.gates[2].start, 1);  // waits only for T, not for CX
  EXPECT_EQ(s.gates[2].finish, 7);
  EXPECT_EQ(s.makespan, 7);
}

TEST(AsapSchedule, ConflictingSwapWaitsForCx) {
  // The Fig. 2(c) alternative: SWAP touching the CX's qubit starts at 2.
  Circuit c(4);
  c.t(1);
  c.cx(0, 2);
  c.swap(2, 3);
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.gates[2].start, 2);
  EXPECT_EQ(s.makespan, 8);
}

TEST(AsapSchedule, BarrierSynchronizesAtZeroCost) {
  Circuit c(2);
  c.cx(0, 1);  // 0..2
  const Qubit both[] = {0, 1};
  c.barrier(both);
  c.h(0);
  c.h(1);
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.gates[1].start, 2);
  EXPECT_EQ(s.gates[1].finish, 2);  // zero duration
  EXPECT_EQ(s.gates[2].start, 2);
  EXPECT_EQ(s.makespan, 3);
}

TEST(AsapSchedule, RespectsCustomDurations) {
  DurationMap ion = DurationMap::ion_trap();
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const Schedule s = asap_schedule(c, ion);
  EXPECT_EQ(s.gates[1].start, 1);
  EXPECT_EQ(s.makespan, 13);  // 1 + 12
}

TEST(WeightedDepth, MatchesScheduleMakespan) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.t(2);
  EXPECT_EQ(weighted_depth(c, DurationMap()), 1 + 2 + 2 + 1);
}

TEST(UnweightedDepth, CountsLayers) {
  Circuit c(3);
  c.h(0);      // layer 1
  c.h(1);      // layer 1
  c.cx(0, 1);  // layer 2
  c.cx(1, 2);  // layer 3
  EXPECT_EQ(unweighted_depth(c), 3);
}

TEST(UnweightedDepth, BarriersDoNotAddALayer) {
  Circuit c(2);
  c.h(0);
  const Qubit both[] = {0, 1};
  c.barrier(both);
  c.h(1);
  EXPECT_EQ(unweighted_depth(c), 2);
}

TEST(Schedule, ActiveGatesAt) {
  Circuit c(2);
  c.cx(0, 1);  // 0..2
  c.h(0);      // 2..3
  const Schedule s = asap_schedule(c, DurationMap());
  EXPECT_EQ(s.active_gates_at(0), 1);
  EXPECT_EQ(s.active_gates_at(1), 1);
  EXPECT_EQ(s.active_gates_at(2), 1);
  EXPECT_EQ(s.active_gates_at(3), 0);
}

}  // namespace
}  // namespace codar::schedule

// CRC32C tests against the published Castagnoli test vectors (RFC 3720
// §B.4, also used by LevelDB/RocksDB) plus streaming-equivalence checks —
// the store's record framing depends on this exact polynomial, so a wrong
// table would silently invalidate every persisted cache on upgrade.

#include "codar/common/crc32c.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace codar::common {
namespace {

TEST(Crc32c, StandardVectors) {
  // The classic check value for "123456789".
  EXPECT_EQ(crc32c("123456789"), 0xe3069283u);

  // RFC 3720 §B.4 vectors.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[static_cast<std::size_t>(i)] = static_cast<char>(i);
  EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
  std::string descending(32, '\0');
  for (int i = 0; i < 32; ++i) {
    descending[static_cast<std::size_t>(i)] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(crc32c(descending), 0x113fdb5cu);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c("", 0), 0u);
  const Crc32c fresh;
  EXPECT_EQ(fresh.value(), 0u);
}

TEST(Crc32c, StreamingMatchesOneShotAtEverySplit) {
  const std::string data = "the store frames every record with this crc";
  const std::uint32_t expected = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32c crc;
    crc.update(data.substr(0, split));
    crc.update(data.substr(split));
    EXPECT_EQ(crc.value(), expected) << "split at " << split;
  }
}

TEST(Crc32c, ValueIsObservableMidStream) {
  // value() finalizes without resetting: observing it and then continuing
  // must give the same result as an uninterrupted stream.
  Crc32c crc;
  crc.update("abc");
  const std::uint32_t partial = crc.value();
  EXPECT_EQ(partial, crc32c("abc"));
  crc.update("def");
  EXPECT_EQ(crc.value(), crc32c("abcdef"));
}

TEST(Crc32c, SingleBitFlipsChangeTheSum) {
  const std::string base(64, 'A');
  const std::uint32_t reference = crc32c(base);
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = base;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(flipped), reference)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace codar::common

#include <gtest/gtest.h>

#include <sstream>

#include "codar/common/arena.hpp"
#include "codar/common/expects.hpp"
#include "codar/common/rng.hpp"
#include "codar/common/table.hpp"

namespace codar {
namespace {

TEST(Expects, ViolationCarriesLocationAndKind) {
  try {
    CODAR_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Expects, EnsuresReportsPostcondition) {
  try {
    CODAR_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"),
              std::string::npos);
  }
}

TEST(Expects, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(CODAR_EXPECTS(true));
  EXPECT_NO_THROW(CODAR_ENSURES(2 + 2 == 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 4000; ++i) ++hits[rng.index(8)];
  for (const int h : hits) EXPECT_GT(h, 0);
  EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.bernoulli(0.25)) ++heads;
  }
  EXPECT_NEAR(heads / 5000.0, 0.25, 0.03);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);  // header rule
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(FmtFixed, Decimals) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(1.0, 3), "1.000");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  common::Arena arena(/*first_block_bytes=*/64);
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = static_cast<char*>(arena.allocate(8, 8));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_GE(b, a + 3);  // bump allocation never overlaps
  EXPECT_GT(arena.bytes_reserved(), 0u);
}

TEST(Arena, GrowsByChainingBlocksAndResetsInPlace) {
  common::Arena arena(/*first_block_bytes=*/32);
  // Far more than the first block: forces doubling chains.
  for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 100u * 64u);

  // reset() reclaims every byte but keeps the blocks: replaying the same
  // allocation pattern must not reserve anything new.
  arena.reset();
  for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  common::Arena arena(/*first_block_bytes=*/16);
  auto* p = arena.allocate(1u << 12, 64);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_GE(arena.bytes_reserved(), 1u << 12);
}

TEST(ArenaVector, BehavesLikeAVector) {
  common::Arena arena;
  common::ArenaVector<int> v{common::ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 999);
  // Rebind through a nested container compiles and works.
  common::ArenaVector<common::ArenaVector<int>> nested{
      common::ArenaAllocator<common::ArenaVector<int>>(arena)};
  nested.emplace_back(common::ArenaAllocator<int>(arena));
  nested[0].assign({1, 2, 3});
  EXPECT_EQ(nested[0][2], 3);
}

}  // namespace
}  // namespace codar

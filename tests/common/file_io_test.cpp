// POSIX file-I/O helper tests: append/pread round-trips, exact-read
// semantics at EOF, the flock-based directory lock, and the small
// filesystem utilities the store's recovery path leans on.

#include "codar/common/file_io.hpp"

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace codar::common {
namespace {

namespace fs = std::filesystem;

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("codar_file_io_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(FileIoTest, AppendThenReadBack) {
  const std::string file = path("log");
  {
    AppendFile out(file);
    EXPECT_EQ(out.size(), 0u);
    EXPECT_TRUE(out.append("hello ", 6));
    EXPECT_TRUE(out.append("world", 5));
    EXPECT_EQ(out.size(), 11u);
    EXPECT_TRUE(out.sync());
  }
  RandomReadFile in(file);
  EXPECT_EQ(in.size(), 11u);
  char buf[11];
  ASSERT_TRUE(in.read_at(0, sizeof buf, buf));
  EXPECT_EQ(std::string(buf, sizeof buf), "hello world");
  // Positional reads: any offset, no seek state between calls.
  char mid[5];
  ASSERT_TRUE(in.read_at(6, sizeof mid, mid));
  EXPECT_EQ(std::string(mid, sizeof mid), "world");
  ASSERT_TRUE(in.read_at(0, 5, mid));
  EXPECT_EQ(std::string(mid, 5), "hello");
}

TEST_F(FileIoTest, AppendFileReopensInAppendMode) {
  const std::string file = path("log");
  { AppendFile(file).append("aaa", 3); }
  {
    AppendFile out(file);  // must not truncate
    EXPECT_EQ(out.size(), 3u);
    out.append("bbb", 3);
  }
  RandomReadFile in(file);
  char buf[6];
  ASSERT_TRUE(in.read_at(0, sizeof buf, buf));
  EXPECT_EQ(std::string(buf, sizeof buf), "aaabbb");
}

TEST_F(FileIoTest, ReadPastEofIsAShortReadNotGarbage) {
  const std::string file = path("log");
  { AppendFile(file).append("abc", 3); }
  RandomReadFile in(file);
  char buf[8] = {};
  EXPECT_FALSE(in.read_at(0, 4, buf));   // spans EOF
  EXPECT_FALSE(in.read_at(3, 1, buf));   // starts at EOF
  EXPECT_FALSE(in.read_at(100, 1, buf)); // starts past EOF
  EXPECT_TRUE(in.read_at(2, 1, buf));    // last byte is fine
  EXPECT_EQ(buf[0], 'c');
}

TEST_F(FileIoTest, ConcurrentAppendAndPreadOnSamePath) {
  // The store reads segments it is still appending to; a reader opened
  // before further appends must see them (no stale user-space buffering).
  const std::string file = path("log");
  AppendFile out(file);
  out.append("first", 5);
  RandomReadFile in(file);
  out.append("second", 6);
  char buf[11];
  ASSERT_TRUE(in.read_at(0, sizeof buf, buf));
  EXPECT_EQ(std::string(buf, sizeof buf), "firstsecond");
}

TEST_F(FileIoTest, MissingFileThrows) {
  EXPECT_THROW(RandomReadFile(path("absent")), std::runtime_error);
  EXPECT_THROW(AppendFile(path("no_such_dir/file")), std::runtime_error);
}

TEST_F(FileIoTest, DirLockIsExclusivePerDirectory) {
  auto first = std::make_unique<DirLock>(dir_.string(), "LOCK");
  EXPECT_THROW(DirLock(dir_.string(), "LOCK"), std::runtime_error);
  // A different directory is independent.
  fs::create_directories(dir_ / "other");
  EXPECT_NO_THROW(DirLock((dir_ / "other").string(), "LOCK"));
  // Destroying the holder releases the lock.
  first.reset();
  EXPECT_NO_THROW(DirLock(dir_.string(), "LOCK"));
}

TEST_F(FileIoTest, EnsureDirectoryCreatesParentsAndIsIdempotent) {
  const std::string nested = (dir_ / "a" / "b" / "c").string();
  ensure_directory(nested);
  EXPECT_TRUE(fs::is_directory(nested));
  ensure_directory(nested);  // second call is a no-op
  // A file squatting on the path is an error, not silent success.
  const std::string file = path("plain");
  std::ofstream(file) << "x";
  EXPECT_THROW(ensure_directory(file), std::runtime_error);
}

TEST_F(FileIoTest, ListFilesWithPrefixFiltersAndSorts) {
  std::ofstream(path("codar-000000000002.seg")) << "b";
  std::ofstream(path("codar-000000000001.seg")) << "a";
  std::ofstream(path("codar-000000000010.seg")) << "c";
  std::ofstream(path("unrelated.txt")) << "d";
  fs::create_directories(dir_ / "codar-subdir");  // directories excluded

  const std::vector<std::string> files =
      list_files_with_prefix(dir_.string(), "codar-");
  ASSERT_EQ(files.size(), 3u);
  // Zero-padded names sort lexicographically == numerically.
  EXPECT_EQ(files[0], "codar-000000000001.seg");
  EXPECT_EQ(files[1], "codar-000000000002.seg");
  EXPECT_EQ(files[2], "codar-000000000010.seg");

  EXPECT_TRUE(list_files_with_prefix(path("missing_dir"), "x").empty());
}

TEST_F(FileIoTest, TruncateRemoveAndSize) {
  const std::string file = path("log");
  { AppendFile(file).append("0123456789", 10); }
  EXPECT_EQ(file_size(file), 10u);
  EXPECT_TRUE(truncate_file(file, 4));
  EXPECT_EQ(file_size(file), 4u);
  EXPECT_TRUE(remove_file(file));
  EXPECT_EQ(file_size(file), 0u);
  EXPECT_FALSE(remove_file(file));  // already gone
}

}  // namespace
}  // namespace codar::common

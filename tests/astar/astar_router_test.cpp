#include "codar/astar/astar_router.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/arch/extra_devices.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"
#include "support/routing_checks.hpp"

namespace codar::astar {
namespace {

using core::RoutingResult;
using ir::Circuit;
using testing::expect_routing_valid;
using testing::expect_states_equivalent;

TEST(AstarRouter, HardwareCompliantCircuitPassesThrough) {
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.cx(2, 3);
  const RoutingResult result = AstarRouter(dev).route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 0u);
  expect_routing_valid(c, result, dev);
}

TEST(AstarRouter, BarriersNotCountedAsRoutedGates) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.h(0);
  const ir::Qubit fence[] = {0, 1};
  c.barrier(fence);
  c.cx(0, 1);
  const RoutingResult result = AstarRouter(dev).route(c);
  EXPECT_EQ(result.stats.barriers, 1u);
  EXPECT_EQ(result.stats.gates_routed, c.size() - 1);
}

TEST(AstarRouter, FindsMinimalSwapCountOnALine) {
  // CX q0,q2 on a 3-line needs exactly one SWAP; A* must find the optimum.
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.cx(0, 2);
  const RoutingResult result = AstarRouter(dev).route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 1u);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

TEST(AstarRouter, OptimalForDistanceThree) {
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.cx(0, 3);
  const RoutingResult result = AstarRouter(dev).route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 2u);  // D-1 is achievable
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

TEST(AstarRouter, MultiGateLayerIsSolvedJointly) {
  // Two crossing far gates in one layer: the A* searches the joint
  // problem rather than routing them one at a time.
  const arch::Device dev = arch::ring(6);
  Circuit c(6);
  c.cx(0, 3);
  c.cx(1, 4);
  const RoutingResult result = AstarRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
  EXPECT_LE(result.stats.swaps_inserted, 4u);
}

TEST(AstarRouter, RejectsBadInputs) {
  const arch::Device dev = arch::linear(3);
  Circuit toffoli(3);
  toffoli.ccx(0, 1, 2);
  EXPECT_THROW(AstarRouter(dev).route(toffoli), ContractViolation);
  AstarConfig bad;
  bad.max_expansions = 0;
  EXPECT_THROW(AstarRouter(dev, bad), ContractViolation);
}

TEST(AstarRouter, GreedyFallbackStillProducesValidRoutes) {
  // A 1-expansion budget forces the fallback path on every layer.
  AstarConfig cfg;
  cfg.max_expansions = 1;
  const arch::Device dev = arch::grid(3, 3);
  const Circuit c = workloads::random_circuit(8, 150, 0.5, 5);
  const RoutingResult result = AstarRouter(dev, cfg).route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

TEST(AstarRouter, AllToAllNeedsNoSwaps) {
  const arch::Device dev = arch::ion_trap_all_to_all(7);
  const Circuit c = workloads::qft(7);
  const RoutingResult result = AstarRouter(dev).route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 0u);
  expect_routing_valid(c, result, dev);
}

TEST(AstarRouter, MeasureAndBarrierSurvive) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.h(0);
  const ir::Qubit fence[] = {0, 1};
  c.barrier(fence);
  c.cx(0, 2);
  c.measure(2);
  const RoutingResult result = AstarRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
}

struct AstarCase {
  int num_qubits;
  int num_gates;
  std::uint64_t seed;
};

class AstarProperty : public ::testing::TestWithParam<AstarCase> {};

TEST_P(AstarProperty, RandomCircuitsRouteAndVerify) {
  const AstarCase& tc = GetParam();
  const arch::Device dev = arch::grid(3, 3);
  const Circuit c =
      workloads::random_circuit(tc.num_qubits, tc.num_gates, 0.5, tc.seed);
  const RoutingResult result = AstarRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, AstarProperty,
    ::testing::Values(AstarCase{5, 80, 41}, AstarCase{7, 120, 42},
                      AstarCase{9, 180, 43}, AstarCase{8, 140, 44}),
    [](const ::testing::TestParamInfo<AstarCase>& param_info) {
      return "q" + std::to_string(param_info.param.num_qubits) + "_s" +
             std::to_string(param_info.param.seed);
    });

TEST(AstarRouter, ComparableToSabreOnMediumWorkload) {
  // Sanity: the layered A* should land in the same swap-count ballpark as
  // the greedy heuristics, not orders of magnitude off.
  const arch::Device dev = arch::ibm_q20_tokyo();
  const Circuit c = workloads::random_circuit(12, 400, 0.5, 17);
  const RoutingResult result = AstarRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  EXPECT_LT(result.stats.swaps_inserted, 600u);
  EXPECT_GT(result.stats.swaps_inserted, 10u);
}

}  // namespace
}  // namespace codar::astar

// The string-keyed device registry: built-in catalog coverage, alias
// resolution, parameterized specs, error behavior (unknown specs list
// every registered spec, like routers/mappings), and external
// registration.

#include "codar/pipeline/device_registry.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device_json.hpp"

namespace codar::pipeline {
namespace {

TEST(DeviceRegistry, BuiltinsRegisterOnFirstUse) {
  DeviceRegistry& reg = DeviceRegistry::instance();
  for (const char* name : {"q16", "tokyo", "enfield", "sycamore",
                           "yorktown", "grid", "linear", "ring", "heavyhex",
                           "octagons", "iontrap", "file"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  // Fixed presets first, in catalog order.
  ASSERT_GE(reg.entries().size(), 12u);
  EXPECT_EQ(reg.entries().front().name, "q16");
}

TEST(DeviceRegistry, MakeResolvesNamesAliasesAndParameters) {
  DeviceRegistry& reg = DeviceRegistry::instance();
  EXPECT_EQ(reg.make("tokyo").graph.num_qubits(), 20);
  EXPECT_EQ(reg.make("q20").graph.num_qubits(), 20);
  EXPECT_EQ(reg.make("ibm_q20_tokyo").graph.num_qubits(), 20);
  EXPECT_EQ(reg.make("grid:2x3").graph.num_qubits(), 6);
  EXPECT_EQ(reg.make("linear:5").graph.num_qubits(), 5);
}

TEST(DeviceRegistry, SpecsEnumeratesDisplayForms) {
  const std::string specs = DeviceRegistry::instance().specs();
  EXPECT_NE(specs.find("tokyo"), std::string::npos);
  EXPECT_NE(specs.find("grid:RxC"), std::string::npos);
  EXPECT_NE(specs.find("file:PATH.json"), std::string::npos);
}

TEST(DeviceRegistry, ErrorsCarryTheFullSpecList) {
  DeviceRegistry& reg = DeviceRegistry::instance();
  try {
    reg.make("nope");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find(reg.specs()), std::string::npos);
  }
  // Parameter shape errors name the expected form.
  try {
    reg.make("grid");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("grid:RxC"), std::string::npos);
  }
  try {
    reg.make("yorktown:5");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("takes no parameter"),
              std::string::npos);
  }
}

TEST(DeviceRegistry, RejectsBadRegistrations) {
  DeviceRegistry reg;
  EXPECT_THROW(reg.add(DeviceEntry{}), std::logic_error);  // no factory
  DeviceEntry entry;
  entry.name = "custom";
  entry.spec = "custom";
  entry.make = [](const std::string&, const std::string&) {
    return arch::ibm_q5_yorktown();
  };
  reg.add(entry);
  EXPECT_THROW(reg.add(entry), std::logic_error);  // duplicate
  DeviceEntry alias_clash;
  alias_clash.name = "other";
  alias_clash.spec = "other";
  alias_clash.aliases = {"custom"};
  alias_clash.make = entry.make;
  EXPECT_THROW(reg.add(alias_clash), std::logic_error);
}

TEST(DeviceRegistry, ExternalEntriesJoinTheCatalog) {
  // A private registry (the process-wide one must stay pristine for the
  // other tests): registering one entry makes it buildable and listed.
  DeviceRegistry reg;
  DeviceEntry entry;
  entry.name = "twin";
  entry.spec = "twin:N";
  entry.description = "two disconnected qubits (test)";
  entry.takes_arg = true;
  entry.make = [](const std::string&, const std::string& arg) {
    return arch::linear(std::stoi(arg));
  };
  reg.add(std::move(entry));
  EXPECT_EQ(reg.make("twin:4").graph.num_qubits(), 4);
  EXPECT_EQ(reg.specs(), "twin:N");
}

}  // namespace
}  // namespace codar::pipeline

// Tests for the composable compilation pipeline: a round-trip over every
// registered router × mapping combination, the stage sequence and its
// instrumentation, failure reporting, and the JSON contract that stage
// timings stay out of the stats unless the caller opted in (--timing).

#include <algorithm>

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/cli/report.hpp"
#include "codar/pipeline/pipeline.hpp"

namespace codar::pipeline {
namespace {

/// The paper's Fig. 2 motivating program: T q[1] and CX q[0],q[2] start
/// together; CX q[0],q[3] needs a SWAP on any device where Q0 and Q3 are
/// not adjacent (true on tokyo and on the 2x2 lattice alike).
ir::Circuit fig2_program() {
  ir::Circuit c(4, "fig2");
  c.t(1);
  c.cx(0, 2);
  c.cx(0, 3);
  return c;
}

bool has_stage(const RouteReport& report, std::string_view stage) {
  return std::any_of(report.stage_us.begin(), report.stage_us.end(),
                     [&](const StageTiming& t) { return t.stage == stage; });
}

TEST(Pipeline, EveryRouterTimesEveryMappingRoutesAndVerifies) {
  const arch::Device device = arch::ibm_q20_tokyo();
  const ir::Circuit circuit = fig2_program();
  for (const RouterEntry& router : RouterRegistry::instance().entries()) {
    for (const MappingEntry& mapping :
         MappingRegistry::instance().entries()) {
      RoutingSpec spec;
      spec.router = router.name;
      spec.mapping = mapping.name;
      const Pipeline pipe(device, spec);
      EXPECT_EQ(pipe.router().name(), router.name);
      EXPECT_EQ(pipe.mapping().name(), mapping.name);

      const RouteReport report = pipe.run(circuit);
      const std::string combo = router.name + " x " + mapping.name;
      EXPECT_TRUE(report.ok()) << combo << ": " << report.error;
      EXPECT_TRUE(report.verified) << combo;
      EXPECT_EQ(report.gates_in, 3u) << combo;
      EXPECT_EQ(report.gates_out, report.gates_in + report.swaps) << combo;
      EXPECT_GE(report.depth_out, report.depth_in) << combo;
    }
  }
}

TEST(Pipeline, RecordsTheStageSequence) {
  const arch::Device device = arch::ibm_q20_tokyo();
  RoutingSpec spec;
  const Pipeline pipe(device, spec);
  const RouteReport report =
      pipe.run(fig2_program(), /*keep_qasm=*/true);
  ASSERT_TRUE(report.ok()) << report.error;
  // Default spec: no peephole stage; verify on; render requested.
  const char* expected[] = {"lower", "initial", "route",
                            "report", "verify", "render"};
  ASSERT_EQ(report.stage_us.size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(report.stage_us[i].stage, expected[i]);
  }
  // route_us is the "route" stage by definition.
  EXPECT_EQ(report.route_us, report.stage_us[2].us);
  EXPECT_FALSE(report.routed_qasm.empty());

  RoutingSpec tweaked;
  tweaked.peephole = true;
  tweaked.verify = false;
  const RouteReport other =
      Pipeline(device, tweaked).run(fig2_program(), /*keep_qasm=*/false);
  EXPECT_TRUE(other.verify_skipped);
  EXPECT_TRUE(has_stage(other, "peephole"));
  EXPECT_FALSE(has_stage(other, "verify"));
  EXPECT_FALSE(has_stage(other, "render"));
}

TEST(Pipeline, UnknownPassNamesFailConstruction) {
  const arch::Device device = arch::ibm_q20_tokyo();
  RoutingSpec bad_router;
  bad_router.router = "qiskit";
  EXPECT_THROW(Pipeline(device, bad_router), UsageError);
  RoutingSpec bad_mapping;
  bad_mapping.mapping = "annealed";
  EXPECT_THROW(Pipeline(device, bad_mapping), UsageError);

  // The CLI wrapper degrades the same failure to an error report instead
  // of throwing, matching every other per-circuit failure.
  cli::Options opts;
  opts.router = "qiskit";
  const RouteReport report =
      cli::route_circuit(fig2_program(), device, opts, /*keep_qasm=*/false);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("unknown router"), std::string::npos)
      << report.error;
}

TEST(Pipeline, OversizedCircuitFailsInTheLowerStage) {
  const arch::Device device = arch::ibm_q5_yorktown();
  RoutingSpec spec;
  ir::Circuit wide(8, "wide");
  for (ir::Qubit q = 1; q < 8; ++q) wide.cx(0, q);
  const RouteReport report = Pipeline(device, spec).run(wide);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("qubits"), std::string::npos) << report.error;
}

TEST(Pipeline, StageTimingsAreExcludedFromJsonUnlessTimingIsSet) {
  const arch::Device device = arch::ibm_q20_tokyo();
  cli::Options opts;
  const RouteReport report =
      cli::route_circuit(fig2_program(), device, opts, /*keep_qasm=*/false);
  ASSERT_TRUE(report.ok()) << report.error;
  ASSERT_FALSE(report.stage_us.empty());  // instrumentation always runs

  // Default rendering: no wall-time keys at all, so batch stats stay
  // bit-identical across runs and thread counts.
  const std::string plain = cli::to_json(report, opts);
  EXPECT_EQ(plain.find("route_us"), std::string::npos) << plain;
  EXPECT_EQ(plain.find("stage_us"), std::string::npos) << plain;

  cli::Options timed = opts;
  timed.timing = true;
  const std::string with_timing = cli::to_json(report, timed);
  EXPECT_NE(with_timing.find("\"route_us\": "), std::string::npos)
      << with_timing;
  EXPECT_NE(with_timing.find("\"stage_us\": {\"lower\": "),
            std::string::npos)
      << with_timing;
  EXPECT_NE(with_timing.find("\"route\": "), std::string::npos)
      << with_timing;
}

}  // namespace
}  // namespace codar::pipeline

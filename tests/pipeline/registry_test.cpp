// Tests for the string-keyed pass registries: the built-in entries, the
// lookup error contract (unknown names list the registered ones), the
// knob-parsing hooks that replaced parse_routing_flag's per-pass plumbing,
// and registration validation.

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/pipeline/registry.hpp"

namespace codar::pipeline {
namespace {

TEST(RouterRegistry, BuiltinsAreRegisteredInOrder) {
  const RouterRegistry& reg = RouterRegistry::instance();
  ASSERT_GE(reg.entries().size(), 4u);
  EXPECT_EQ(reg.entries()[0].name, "codar");
  EXPECT_EQ(reg.entries()[1].name, "codar-fid");
  EXPECT_EQ(reg.entries()[2].name, "sabre");
  EXPECT_EQ(reg.entries()[3].name, "astar");
  for (const RouterEntry& e : reg.entries()) {
    EXPECT_FALSE(e.description.empty()) << e.name;
    EXPECT_TRUE(static_cast<bool>(e.make)) << e.name;
  }
  EXPECT_EQ(reg.names(), "codar|codar-fid|sabre|astar");
}

TEST(MappingRegistry, BuiltinsAreRegisteredInOrder) {
  const MappingRegistry& reg = MappingRegistry::instance();
  ASSERT_GE(reg.entries().size(), 3u);
  EXPECT_EQ(reg.entries()[0].name, "identity");
  EXPECT_EQ(reg.entries()[1].name, "greedy");
  EXPECT_EQ(reg.entries()[2].name, "sabre");
  EXPECT_EQ(reg.names(), "identity|greedy|sabre");
}

TEST(PassRegistry, UnknownNamesListRegisteredOnes) {
  EXPECT_EQ(RouterRegistry::instance().find("qiskit"), nullptr);
  try {
    RouterRegistry::instance().at("qiskit");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown router 'qiskit' "
              "(expected codar|codar-fid|sabre|astar)");
  }
  try {
    MappingRegistry::instance().at("annealed");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown initial mapping 'annealed' "
              "(expected identity|greedy|sabre)");
  }
}

TEST(PassRegistry, RejectsDuplicateAndIncompleteEntries) {
  RouterRegistry local;  // fresh registry, no builtins
  RouterEntry entry{"mine", "a test router",
                    [](const arch::Device&, const RoutingSpec&) {
                      return std::unique_ptr<RoutingPass>();
                    },
                    nullptr};
  local.add(entry);
  EXPECT_THROW(local.add(entry), std::logic_error);  // duplicate name
  RouterEntry nameless = entry;
  nameless.name.clear();
  EXPECT_THROW(local.add(nameless), std::logic_error);
  RouterEntry factoryless = entry;
  factoryless.name = "other";
  factoryless.make = nullptr;
  EXPECT_THROW(local.add(factoryless), std::logic_error);
}

TEST(PassRegistry, RouterKnobHooksParseCodarFlags) {
  RoutingSpec spec;
  const RouterRegistry& reg = RouterRegistry::instance();
  auto no_value = []() -> std::string {
    throw UsageError("flag expects a value");
  };
  EXPECT_TRUE(reg.parse_knob(spec, "--no-context", no_value));
  EXPECT_FALSE(spec.codar.context_aware);
  EXPECT_TRUE(reg.parse_knob(spec, "--window", [] { return "25"; }));
  EXPECT_EQ(spec.codar.front_window, 25);
  EXPECT_TRUE(reg.parse_knob(spec, "--stagnation", [] { return "7"; }));
  EXPECT_EQ(spec.codar.stagnation_threshold, 7);
  // Malformed / out-of-range values throw the shared UsageError.
  EXPECT_THROW(reg.parse_knob(spec, "--window", [] { return "wide"; }),
               UsageError);
  EXPECT_THROW(reg.parse_knob(spec, "--stagnation", [] { return "0"; }),
               UsageError);
  // Flags no pass owns are left for the caller.
  EXPECT_FALSE(reg.parse_knob(spec, "--batch", no_value));
}

TEST(PassRegistry, RouterKnobHooksParseFidWeights) {
  RoutingSpec spec;
  const RouterRegistry& reg = RouterRegistry::instance();
  EXPECT_TRUE(reg.parse_knob(spec, "--alpha", [] { return "1.5"; }));
  EXPECT_EQ(spec.fid.alpha, 1.5);
  EXPECT_TRUE(reg.parse_knob(spec, "--beta", [] { return "0"; }));
  EXPECT_EQ(spec.fid.beta, 0.0);
  EXPECT_TRUE(reg.parse_knob(spec, "--gamma", [] { return "2.25"; }));
  EXPECT_EQ(spec.fid.gamma, 2.25);
  EXPECT_THROW(reg.parse_knob(spec, "--beta", [] { return "steep"; }),
               UsageError);
  EXPECT_THROW(reg.parse_knob(spec, "--beta", [] { return "inf"; }),
               UsageError);
  EXPECT_THROW(reg.parse_knob(spec, "--gamma", [] { return "-1"; }),
               UsageError);
}

TEST(PassRegistry, MappingKnobHooksParseSeedAndRounds) {
  RoutingSpec spec;
  const MappingRegistry& reg = MappingRegistry::instance();
  EXPECT_TRUE(reg.parse_knob(spec, "--seed", [] { return "99"; }));
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_TRUE(reg.parse_knob(spec, "--mapping-rounds", [] { return "5"; }));
  EXPECT_EQ(spec.mapping_rounds, 5);
  EXPECT_THROW(
      reg.parse_knob(spec, "--mapping-rounds", [] { return "-1"; }),
      UsageError);
}

TEST(RoutingSpec, ExtrasAreSortedAndReplaceable) {
  RoutingSpec spec;
  EXPECT_EQ(spec.extra("beam"), nullptr);
  spec.set_extra("beam", "8");
  spec.set_extra("alpha", "0.5");
  spec.set_extra("beam", "16");  // replace, not duplicate
  ASSERT_EQ(spec.extras.size(), 2u);
  EXPECT_EQ(spec.extras[0].first, "alpha");  // sorted for fingerprinting
  EXPECT_EQ(spec.extras[1].first, "beam");
  ASSERT_NE(spec.extra("beam"), nullptr);
  EXPECT_EQ(*spec.extra("beam"), "16");
}

TEST(PassRegistry, FactoriesBuildPassesThatKnowTheirNames) {
  const arch::Device device = arch::ibm_q20_tokyo();
  RoutingSpec spec;
  for (const RouterEntry& e : RouterRegistry::instance().entries()) {
    const std::unique_ptr<RoutingPass> pass = e.make(device, spec);
    ASSERT_NE(pass, nullptr) << e.name;
    EXPECT_EQ(pass->name(), e.name);
    EXPECT_FALSE(pass->describe_config().empty()) << e.name;
  }
  for (const MappingEntry& e : MappingRegistry::instance().entries()) {
    const std::unique_ptr<MappingPass> pass = e.make(spec);
    ASSERT_NE(pass, nullptr) << e.name;
    EXPECT_EQ(pass->name(), e.name);
    EXPECT_FALSE(pass->describe_config().empty()) << e.name;
  }
}

}  // namespace
}  // namespace codar::pipeline

#include <gtest/gtest.h>

#include <cmath>

#include "codar/sim/statevector.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::workloads {
namespace {

using ir::GateKind;
using sim::Statevector;

TEST(Qpe, ExactPhasesAreRecoveredDeterministically) {
  const int counting = 4;
  for (const int j : {0, 1, 5, 9, 15}) {
    const double theta = static_cast<double>(j) / 16.0;
    const Circuit c = qpe(counting, theta);
    Statevector psi(c.num_qubits());
    psi.apply(c);
    for (int bit = 0; bit < counting; ++bit) {
      EXPECT_NEAR(psi.probability_one(bit),
                  static_cast<double>((j >> bit) & 1), 1e-9)
          << "j=" << j << " bit " << bit;
    }
  }
}

TEST(Qpe, InexactPhaseConcentratesNearTruth) {
  // theta = 0.3 is not exactly representable on 4 bits; the most likely
  // outcome must still be one of the two nearest grid points (4 or 5).
  const Circuit c = qpe(4, 0.3);
  Statevector psi(c.num_qubits());
  psi.apply(c);
  double best_p = 0.0;
  int best_j = -1;
  for (int j = 0; j < 16; ++j) {
    double p = 0.0;
    for (std::size_t i = 0; i < psi.dim(); ++i) {
      if ((i & 15u) == static_cast<unsigned>(j)) p += std::norm(psi.amp(i));
    }
    if (p > best_p) {
      best_p = p;
      best_j = j;
    }
  }
  EXPECT_TRUE(best_j == 4 || best_j == 5) << "argmax " << best_j;
  EXPECT_GT(best_p, 0.3);
}

TEST(Qpe, StructureIsCu1Heavy) {
  const Circuit c = qpe(6, 0.5);
  std::size_t cu1 = 0;
  for (const ir::Gate& g : c.gates()) {
    if (g.kind() == GateKind::kCU1) ++cu1;
  }
  // 6 kickback controls + 15 inverse-QFT ladder rotations.
  EXPECT_EQ(cu1, 21u);
}

TEST(HiddenShift, RecoversShiftDeterministically) {
  for (const std::uint64_t shift : {0b0000ULL, 0b1010ULL, 0b0111ULL,
                                    0b1111ULL}) {
    const Circuit c = hidden_shift(4, shift);
    Statevector psi(4);
    psi.apply(c);
    EXPECT_NEAR(std::norm(psi.amp(static_cast<std::size_t>(shift))), 1.0,
                1e-9)
        << "shift " << shift;
  }
}

TEST(HiddenShift, LargerInstance) {
  const std::uint64_t shift = 0b101101;
  const Circuit c = hidden_shift(6, shift);
  Statevector psi(6);
  psi.apply(c);
  EXPECT_NEAR(std::norm(psi.amp(static_cast<std::size_t>(shift))), 1.0,
              1e-9);
}

TEST(HiddenShift, RejectsOddWidth) {
  EXPECT_THROW(hidden_shift(5, 1), ContractViolation);
  EXPECT_THROW(hidden_shift(4, 1u << 4), ContractViolation);
}

TEST(QuantumVolume, StructureAndDeterminism) {
  const Circuit a = quantum_volume(6, 4, 11);
  const Circuit b = quantum_volume(6, 4, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.gate(i), b.gate(i));
  // 3 pairs per layer, each pair = 6 u3 + 2 cx.
  EXPECT_EQ(a.size(), 4u * 3u * 8u);
  std::size_t cx = 0;
  for (const ir::Gate& g : a.gates()) {
    if (g.kind() == GateKind::kCX) ++cx;
  }
  EXPECT_EQ(cx, 4u * 3u * 2u);
}

TEST(QuantumVolume, StatePreservesNorm) {
  const Circuit c = quantum_volume(5, 3, 2);
  Statevector psi(5);
  psi.apply(c);
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-9);
}

TEST(QuantumVolume, OddQubitCountLeavesOneIdlePerLayer) {
  const Circuit c = quantum_volume(5, 2, 9);
  EXPECT_EQ(c.size(), 2u * 2u * 8u);  // floor(5/2)=2 pairs per layer
}

}  // namespace
}  // namespace codar::workloads

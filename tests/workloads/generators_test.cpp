#include "codar/workloads/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codar/ir/decompose.hpp"
#include "codar/sim/statevector.hpp"

namespace codar::workloads {
namespace {

using ir::GateKind;
using sim::Statevector;

/// Probability that the first `bits` qubits read exactly `value`, summed
/// over all other qubits.
double register_probability(const Statevector& psi, int bits,
                            std::size_t value) {
  const std::size_t mask = (std::size_t{1} << bits) - 1;
  double p = 0.0;
  for (std::size_t i = 0; i < psi.dim(); ++i) {
    if ((i & mask) == value) p += std::norm(psi.amp(i));
  }
  return p;
}

TEST(Qft, UniformFromZeroAndUnitary) {
  const Circuit c = qft(5);
  Statevector psi(5);
  psi.apply(c);
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-10);
  for (std::size_t i = 0; i < psi.dim(); ++i) {
    EXPECT_NEAR(std::abs(psi.amp(i)), 1.0 / std::sqrt(32.0), 1e-10);
  }
}

TEST(Qft, InverseUndoesQft) {
  Circuit prep(4);
  prep.x(1);
  prep.x(3);  // basis state |1010...>
  Statevector psi(4);
  psi.apply(prep);
  psi.apply(qft(4));
  psi.apply(inverse_qft(4));
  EXPECT_NEAR(std::abs(psi.amp(0b1010)), 1.0, 1e-9);
}

TEST(Qft, FinalSwapsReverseBits) {
  const Circuit c = qft(4, /*with_final_swaps=*/true);
  std::size_t swaps = 0;
  for (const ir::Gate& g : c.gates()) {
    if (g.kind() == GateKind::kSwap) ++swaps;
  }
  EXPECT_EQ(swaps, 2u);
}

TEST(Ghz, EqualSuperpositionOfAllZerosAllOnes) {
  Statevector psi(4);
  psi.apply(ghz(4));
  EXPECT_NEAR(std::abs(psi.amp(0)), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(std::abs(psi.amp(15)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(WState, UniformSingleExcitationAmplitudes) {
  const int n = 5;
  Statevector psi(n);
  psi.apply(w_state(n));
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  for (int q = 0; q < n; ++q) {
    const std::size_t basis = std::size_t{1} << q;
    EXPECT_NEAR(std::abs(psi.amp(basis)), expected, 1e-9) << "qubit " << q;
  }
  EXPECT_NEAR(std::abs(psi.amp(0)), 0.0, 1e-9);
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-9);
}

TEST(BernsteinVazirani, RecoversSecretDeterministically) {
  const std::uint64_t secret = 0b1101;
  const Circuit c = bernstein_vazirani(4, secret);
  EXPECT_EQ(c.num_qubits(), 5);
  Statevector psi(5);
  psi.apply(c);
  for (int q = 0; q < 4; ++q) {
    const double expected = ((secret >> q) & 1U) ? 1.0 : 0.0;
    EXPECT_NEAR(psi.probability_one(q), expected, 1e-9) << "qubit " << q;
  }
}

TEST(DeutschJozsa, ConstantGivesAllZeros) {
  const Circuit c = deutsch_jozsa(4, /*balanced=*/false);
  Statevector psi(5);
  psi.apply(c);
  EXPECT_NEAR(register_probability(psi, 4, 0), 1.0, 1e-9);
}

TEST(DeutschJozsa, BalancedNeverGivesAllZeros) {
  const Circuit c = deutsch_jozsa(4, /*balanced=*/true);
  Statevector psi(5);
  psi.apply(c);
  EXPECT_NEAR(register_probability(psi, 4, 0), 0.0, 1e-9);
}

TEST(Simon, MeasurementsAreOrthogonalToSecret) {
  const int n = 3;
  const std::uint64_t secret = 0b101;
  const Circuit c = simon(n, secret);
  EXPECT_EQ(c.num_qubits(), 2 * n);
  Statevector psi(2 * n);
  psi.apply(c);
  // Every input-register outcome y with nonzero probability satisfies
  // y . s = 0 (mod 2) — the Simon promise.
  const std::size_t mask = (std::size_t{1} << n) - 1;
  for (std::size_t i = 0; i < psi.dim(); ++i) {
    if (std::norm(psi.amp(i)) < 1e-12) continue;
    const std::size_t y = i & mask;
    EXPECT_EQ(std::popcount(y & secret) % 2, 0)
        << "outcome y=" << y << " not orthogonal to s";
  }
}

TEST(Grover, AmplifiesMarkedState) {
  const int n = 3;
  const Circuit c = grover(n, 1);
  Statevector psi(c.num_qubits());
  psi.apply(ir::decompose_toffoli(c));
  // One iteration on 3 qubits boosts |111> to ~0.78 probability.
  const double p = register_probability(psi, n, 0b111);
  EXPECT_GT(p, 0.7);
  // Unmarked states are suppressed below uniform.
  EXPECT_LT(register_probability(psi, n, 0b010), 1.0 / 8.0);
}

TEST(Grover, AncillasAreRestored) {
  const int n = 5;  // uses n - 3 = 2 ancillas
  const Circuit c = grover(n, 1);
  EXPECT_EQ(c.num_qubits(), n + 2);
  Statevector psi(c.num_qubits());
  psi.apply(ir::decompose_toffoli(c));
  for (int anc = n; anc < c.num_qubits(); ++anc) {
    EXPECT_NEAR(psi.probability_one(anc), 0.0, 1e-9) << "ancilla " << anc;
  }
}

TEST(CuccaroAdder, AddsOnBasisStates) {
  const int bits = 3;
  for (const auto& [a, b] : std::vector<std::pair<int, int>>{
           {0, 0}, {1, 0}, {3, 5}, {7, 7}, {2, 6}, {5, 4}}) {
    Circuit prep(2 * bits + 2, "prep");
    for (int i = 0; i < bits; ++i) {
      if ((a >> i) & 1) prep.x(1 + 2 * i);
      if ((b >> i) & 1) prep.x(2 + 2 * i);
    }
    prep.append(cuccaro_adder(bits));
    Statevector psi(2 * bits + 2);
    psi.apply(prep);
    const int sum = a + b;
    // Decode: b_i at qubit 2+2i, carry-out at the last qubit, and the a
    // register must be restored.
    for (int i = 0; i < bits; ++i) {
      EXPECT_NEAR(psi.probability_one(2 + 2 * i),
                  static_cast<double>((sum >> i) & 1), 1e-9)
          << "a=" << a << " b=" << b << " bit " << i;
      EXPECT_NEAR(psi.probability_one(1 + 2 * i),
                  static_cast<double>((a >> i) & 1), 1e-9)
          << "a-register corrupted";
    }
    EXPECT_NEAR(psi.probability_one(2 * bits + 1),
                static_cast<double>((sum >> bits) & 1), 1e-9)
        << "carry out wrong for a=" << a << " b=" << b;
  }
}

TEST(DraperAdder, AddsModuloPowerOfTwo) {
  const int bits = 3;
  for (const auto& [a, b] : std::vector<std::pair<int, int>>{
           {0, 0}, {1, 0}, {0, 1}, {3, 5}, {6, 7}, {2, 3}}) {
    Circuit prep(2 * bits, "prep");
    for (int i = 0; i < bits; ++i) {
      if ((a >> i) & 1) prep.x(i);
      if ((b >> i) & 1) prep.x(bits + i);
    }
    prep.append(draper_adder(bits));
    Statevector psi(2 * bits);
    psi.apply(prep);
    const int sum = (a + b) % (1 << bits);
    const std::size_t expected =
        static_cast<std::size_t>(a) |
        (static_cast<std::size_t>(sum) << bits);
    EXPECT_NEAR(std::abs(psi.amp(expected)), 1.0, 1e-8)
        << "a=" << a << " b=" << b << " sum=" << sum;
  }
}

TEST(ToffoliChain, StructureAndDeterminism) {
  const Circuit c = toffoli_chain(5, 2);
  EXPECT_EQ(c.size(), 6u);  // (5-2) per layer * 2
  for (const ir::Gate& g : c.gates()) {
    EXPECT_EQ(g.kind(), GateKind::kCCX);
  }
}

TEST(RandomCircuit, DeterministicGivenSeed) {
  const Circuit a = random_circuit(6, 100, 0.5, 42);
  const Circuit b = random_circuit(6, 100, 0.5, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gate(i), b.gate(i));
  }
  const Circuit c = random_circuit(6, 100, 0.5, 43);
  bool any_different = false;
  for (std::size_t i = 0; i < std::min(c.size(), a.size()); ++i) {
    if (!(a.gate(i) == c.gate(i))) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomCircuit, RespectsTwoQubitFraction) {
  const Circuit all_2q = random_circuit(5, 200, 1.0, 7);
  EXPECT_EQ(all_2q.two_qubit_gate_count(), 200u);
  const Circuit no_2q = random_circuit(5, 200, 0.0, 7);
  EXPECT_EQ(no_2q.two_qubit_gate_count(), 0u);
}

TEST(QaoaMaxcut, LayersAndMixerStructure) {
  const Circuit c = qaoa_maxcut(8, 3, 11);
  std::size_t rzz = 0, rx = 0, h = 0;
  for (const ir::Gate& g : c.gates()) {
    if (g.kind() == GateKind::kRZZ) ++rzz;
    if (g.kind() == GateKind::kRX) ++rx;
    if (g.kind() == GateKind::kH) ++h;
  }
  EXPECT_EQ(h, 8u);
  EXPECT_EQ(rx, 24u);      // n per layer
  EXPECT_GE(rzz, 3u * 8u); // at least the ring per layer
}

TEST(HardwareEfficientAnsatz, GateCounts) {
  const Circuit c = hardware_efficient_ansatz(6, 3, 5);
  std::size_t ry = 0, cz = 0;
  for (const ir::Gate& g : c.gates()) {
    if (g.kind() == GateKind::kRY) ++ry;
    if (g.kind() == GateKind::kCZ) ++cz;
  }
  EXPECT_EQ(ry, 24u);  // (layers+1) * n
  EXPECT_EQ(cz, 15u);  // layers * (n-1)
}

TEST(IsingTrotter, GateCounts) {
  const Circuit c = ising_trotter(5, 4);
  std::size_t rzz = 0, rx = 0;
  for (const ir::Gate& g : c.gates()) {
    if (g.kind() == GateKind::kRZZ) ++rzz;
    if (g.kind() == GateKind::kRX) ++rx;
  }
  EXPECT_EQ(rzz, 16u);  // (n-1) * steps
  EXPECT_EQ(rx, 20u);   // n * steps
}

TEST(Generators, RejectInvalidArguments) {
  EXPECT_THROW(qft(0), ContractViolation);
  EXPECT_THROW(ghz(1), ContractViolation);
  EXPECT_THROW(w_state(1), ContractViolation);
  EXPECT_THROW(simon(3, 0), ContractViolation);
  EXPECT_THROW(grover(1, 1), ContractViolation);
  EXPECT_THROW(random_circuit(5, 10, 1.5, 1), ContractViolation);
}

}  // namespace
}  // namespace codar::workloads

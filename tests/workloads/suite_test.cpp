#include "codar/workloads/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "codar/ir/decompose.hpp"

namespace codar::workloads {
namespace {

TEST(BenchmarkSuite, Has71EntriesLikeThePaper) {
  const auto suite = benchmark_suite();
  EXPECT_EQ(suite.size(), 71u);
}

TEST(BenchmarkSuite, SizeDistributionMatchesPaper) {
  // 68 benchmarks use 3..16 qubits; three use 36 (Sycamore-only).
  const auto suite = benchmark_suite();
  std::size_t small = 0, huge = 0;
  for (const BenchmarkSpec& spec : suite) {
    const int n = spec.circuit.num_qubits();
    if (n >= 3 && n <= 16) ++small;
    if (n == 36) ++huge;
  }
  EXPECT_EQ(small, 68u);
  EXPECT_EQ(huge, 3u);
}

TEST(BenchmarkSuite, SortedAscendingByQubits) {
  const auto suite = benchmark_suite();
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_LE(suite[i - 1].circuit.num_qubits(),
              suite[i].circuit.num_qubits());
  }
}

TEST(BenchmarkSuite, AllLoweredToTwoQubitGates) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    EXPECT_TRUE(ir::is_two_qubit_lowered(spec.circuit)) << spec.name;
  }
}

TEST(BenchmarkSuite, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate name " << spec.name;
  }
}

TEST(BenchmarkSuite, CoversTensOfThousandsOfGates) {
  // The paper's collection tops out around 30k gates; ours must reach the
  // same order of magnitude.
  std::size_t max_gates = 0;
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    max_gates = std::max(max_gates, spec.circuit.size());
  }
  EXPECT_GE(max_gates, 15000u);
}

TEST(BenchmarkSuite, DeterministicAcrossCalls) {
  const auto a = benchmark_suite();
  const auto b = benchmark_suite();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].circuit.size(), b[i].circuit.size());
  }
}

TEST(FamousAlgorithms, SevenSmallPrograms) {
  const auto algos = famous_algorithms();
  EXPECT_EQ(algos.size(), 7u);
  for (const BenchmarkSpec& spec : algos) {
    EXPECT_LE(spec.circuit.num_qubits(), 9) << spec.name;
    EXPECT_TRUE(ir::is_two_qubit_lowered(spec.circuit)) << spec.name;
  }
}

}  // namespace
}  // namespace codar::workloads

#include "codar/qasm/parser.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "codar/qasm/lexer.hpp"

namespace codar::qasm {
namespace {

using ir::GateKind;

constexpr const char* kHeader =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

TEST(Parser, EmptyProgramIsEmptyCircuit) {
  const ir::Circuit c = parse(kHeader);
  EXPECT_EQ(c.num_qubits(), 0);
  EXPECT_TRUE(c.empty());
}

TEST(Parser, SingleRegisterAndGates) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[3];\nh q[0];\ncx q[0],q[2];\n");
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind(), GateKind::kH);
  EXPECT_EQ(c.gate(1).kind(), GateKind::kCX);
  EXPECT_EQ(c.gate(1).qubit(1), 2);
}

TEST(Parser, MultipleRegistersAreFlattened) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg a[2];\nqreg b[3];\ncx a[1],b[0];\n");
  EXPECT_EQ(c.num_qubits(), 5);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).qubit(0), 1);  // a[1] -> 1
  EXPECT_EQ(c.gate(0).qubit(1), 2);  // b[0] -> 2
}

TEST(Parser, ParameterExpressions) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[1];\n"
                              "rz(pi/4) q[0];\n"
                              "rz(-pi/2) q[0];\n"
                              "rz(2*pi/8+1) q[0];\n"
                              "rz(sin(0)) q[0];\n"
                              "rz(2^3) q[0];\n");
  using std::numbers::pi;
  EXPECT_DOUBLE_EQ(c.gate(0).param(0), pi / 4.0);
  EXPECT_DOUBLE_EQ(c.gate(1).param(0), -pi / 2.0);
  EXPECT_DOUBLE_EQ(c.gate(2).param(0), pi / 4.0 + 1.0);
  EXPECT_DOUBLE_EQ(c.gate(3).param(0), 0.0);
  EXPECT_DOUBLE_EQ(c.gate(4).param(0), 8.0);
}

TEST(Parser, RegisterBroadcast) {
  const ir::Circuit c =
      parse(std::string(kHeader) + "qreg q[3];\nh q;\n");
  ASSERT_EQ(c.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.gate(i).kind(), GateKind::kH);
    EXPECT_EQ(c.gate(i).qubit(0), static_cast<ir::Qubit>(i));
  }
}

TEST(Parser, TwoRegisterBroadcast) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg a[2];\nqreg b[2];\ncx a,b;\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).qubit(0), 0);
  EXPECT_EQ(c.gate(0).qubit(1), 2);
  EXPECT_EQ(c.gate(1).qubit(0), 1);
  EXPECT_EQ(c.gate(1).qubit(1), 3);
}

TEST(Parser, MixedBroadcastScalar) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg a[1];\nqreg b[3];\ncx a[0],b;\n");
  ASSERT_EQ(c.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(c.gate(i).qubit(0), 0);
}

TEST(Parser, MeasureWithBroadcast) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[2];\ncreg c[2];\nmeasure q -> c;\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind(), GateKind::kMeasure);
  EXPECT_EQ(c.gate(1).qubit(0), 1);
}

TEST(Parser, MeasureSingleBit) {
  const ir::Circuit c = parse(
      std::string(kHeader) +
      "qreg q[2];\ncreg c[2];\nmeasure q[1] -> c[0];\n");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).qubit(0), 1);
}

TEST(Parser, BarrierNarrowAndWide) {
  const ir::Circuit narrow = parse(
      std::string(kHeader) + "qreg q[2];\nbarrier q[0], q[1];\n");
  ASSERT_EQ(narrow.size(), 1u);
  EXPECT_EQ(narrow.gate(0).kind(), GateKind::kBarrier);

  // Wide barrier becomes a chained fence of overlapping records.
  const ir::Circuit wide =
      parse(std::string(kHeader) + "qreg q[6];\nbarrier q;\n");
  EXPECT_GE(wide.size(), 2u);
  for (const ir::Gate& g : wide.gates()) {
    EXPECT_EQ(g.kind(), GateKind::kBarrier);
  }
  // Consecutive chain links share a qubit (transitivity of the fence).
  for (std::size_t i = 0; i + 1 < wide.size(); ++i) {
    EXPECT_TRUE(wide.gate(i).overlaps(wide.gate(i + 1)));
  }
}

TEST(Parser, UserGateDefinitionExpands) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[2];\n"
                              "gate bell a, b { h a; cx a, b; }\n"
                              "bell q[0], q[1];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind(), GateKind::kH);
  EXPECT_EQ(c.gate(1).kind(), GateKind::kCX);
}

TEST(Parser, ParameterizedGateDefinition) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[1];\n"
                              "gate phase2(t) a { rz(t/2) a; rz(t/2) a; }\n"
                              "phase2(pi) q[0];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.gate(0).param(0), std::numbers::pi / 2.0);
}

TEST(Parser, NestedGateDefinitions) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[2];\n"
                              "gate inner a { h a; }\n"
                              "gate outer a, b { inner a; cx a, b; inner b; }\n"
                              "outer q[0], q[1];\n");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(2).kind(), GateKind::kH);
  EXPECT_EQ(c.gate(2).qubit(0), 1);
}

TEST(Parser, OpaqueDeclarationIgnored) {
  const ir::Circuit c = parse(std::string(kHeader) +
                              "qreg q[1];\nopaque magic a;\nh q[0];\n");
  ASSERT_EQ(c.size(), 1u);
}

TEST(Parser, ErrorUnknownGate) {
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[1];\nfrobnicate q[0];\n"),
               QasmError);
}

TEST(Parser, ErrorUnknownRegister) {
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[1];\nh r[0];\n"),
               QasmError);
}

TEST(Parser, ErrorIndexOutOfRange) {
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[2];\nh q[2];\n"),
               QasmError);
}

TEST(Parser, ErrorWrongArity) {
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[2];\ncx q[0];\n"),
               QasmError);
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[1];\nrz q[0];\n"),
               QasmError);
}

TEST(Parser, ErrorDuplicateOperand) {
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[2];\ncx q[1],q[1];\n"),
               QasmError);
}

TEST(Parser, ErrorUnsupportedConstructs) {
  EXPECT_THROW(parse(std::string(kHeader) + "qreg q[1];\nreset q[0];\n"),
               QasmError);
  EXPECT_THROW(
      parse(std::string(kHeader) +
            "qreg q[1];\ncreg c[1];\nif (c==1) x q[0];\n"),
      QasmError);
}

TEST(Parser, ErrorMismatchedBroadcast) {
  EXPECT_THROW(
      parse(std::string(kHeader) + "qreg a[2];\nqreg b[3];\ncx a,b;\n"),
      QasmError);
}

TEST(Parser, ErrorPositionIsReported) {
  try {
    parse("OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n");
    FAIL() << "expected QasmError";
  } catch (const QasmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Parser, QiskitStyleProgramParses) {
  // A representative snippet of the style emitted by Qiskit/ScaffCC.
  const char* program = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cu1(pi/2) q[1],q[0];
h q[1];
cu1(pi/4) q[2],q[0];
cu1(pi/2) q[2],q[1];
h q[2];
barrier q;
measure q -> c;
)";
  const ir::Circuit c = parse(program, "qft4_fragment");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.name(), "qft4_fragment");
  std::size_t cu1_count = 0;
  std::size_t measures = 0;
  for (const ir::Gate& g : c.gates()) {
    if (g.kind() == GateKind::kCU1) ++cu1_count;
    if (g.kind() == GateKind::kMeasure) ++measures;
  }
  EXPECT_EQ(cu1_count, 3u);
  EXPECT_EQ(measures, 4u);
}

}  // namespace
}  // namespace codar::qasm

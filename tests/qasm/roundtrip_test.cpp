#include <gtest/gtest.h>

#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::qasm {
namespace {

/// Writer -> parser round trip must reproduce the exact gate sequence.
void expect_roundtrip(const ir::Circuit& original) {
  const std::string text = to_qasm(original);
  const ir::Circuit reparsed = parse(text, original.name());
  ASSERT_EQ(reparsed.num_qubits(), original.num_qubits());
  ASSERT_EQ(reparsed.size(), original.size()) << text;
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed.gate(i), original.gate(i))
        << "gate " << i << ": " << original.gate(i).to_string();
  }
}

TEST(QasmRoundtrip, AllGateKindsSurvive) {
  ir::Circuit c(4);
  c.i(0);
  c.x(0);
  c.y(1);
  c.z(2);
  c.h(3);
  c.s(0);
  c.sdg(1);
  c.t(2);
  c.tdg(3);
  c.sx(0);
  c.rx(1, 0.25);
  c.ry(2, -1.5);
  c.rz(3, 3.14159);
  c.u1(0, 0.5);
  c.u2(1, 0.25, 0.75);
  c.u3(2, 0.1, 0.2, 0.3);
  c.cx(0, 1);
  c.cz(1, 2);
  c.cy(2, 3);
  c.ch(3, 0);
  c.crz(0, 2, 0.6);
  c.cu1(1, 3, 0.7);
  c.rzz(0, 3, 0.8);
  c.swap(1, 2);
  c.ccx(0, 1, 2);
  c.measure(0);
  expect_roundtrip(c);
}

TEST(QasmRoundtrip, ExtremeParameterValues) {
  ir::Circuit c(1);
  c.rz(0, 1e-15);
  c.rz(0, 1e15);
  c.rz(0, -2.718281828459045);
  expect_roundtrip(c);
}

class GeneratorRoundtrip
    : public ::testing::TestWithParam<ir::Circuit> {};

TEST_P(GeneratorRoundtrip, SurvivesWriterParserLoop) {
  expect_roundtrip(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, GeneratorRoundtrip,
    ::testing::Values(workloads::qft(5), workloads::ghz(6),
                      workloads::bernstein_vazirani(5, 0b10110),
                      workloads::grover(4, 1), workloads::cuccaro_adder(3),
                      workloads::draper_adder(3),
                      workloads::qaoa_maxcut(6, 2, 7),
                      workloads::random_circuit(6, 200, 0.4, 9)),
    [](const ::testing::TestParamInfo<ir::Circuit>& param_info) {
      std::string name = param_info.param.name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace codar::qasm

#include "codar/qasm/lexer.hpp"

#include <gtest/gtest.h>

namespace codar::qasm {
namespace {

TEST(Lexer, TokenizesSimpleStatement) {
  const auto tokens = tokenize("cx q[0],q[1];");
  ASSERT_EQ(tokens.size(), 12u);  // cx q [ 0 ] , q [ 1 ] ; eof
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "cx");
  EXPECT_EQ(tokens[1].text, "q");
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.0);
}

TEST(Lexer, TokenCountsAndEof) {
  const auto tokens = tokenize("h q;");
  // h, q, ;, eof
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, SkipsCommentsAndWhitespace) {
  const auto tokens = tokenize("// comment line\n  h   q ; // trailing\n");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "h");
}

TEST(Lexer, RealNumbersWithExponents) {
  const auto tokens = tokenize("rz(1.5e-2)");
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.015);
  const auto tokens2 = tokenize(".25");
  EXPECT_DOUBLE_EQ(tokens2[0].number, 0.25);
}

TEST(Lexer, ArrowAndOperators) {
  const auto tokens = tokenize("a -> b + c - d * e / f ^ g");
  EXPECT_EQ(tokens[1].kind, TokenKind::kArrow);
  EXPECT_EQ(tokens[3].kind, TokenKind::kPlus);
  EXPECT_EQ(tokens[5].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[7].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[9].kind, TokenKind::kSlash);
  EXPECT_EQ(tokens[11].kind, TokenKind::kCaret);
}

TEST(Lexer, StringLiteral) {
  const auto tokens = tokenize("include \"qelib1.inc\";");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "qelib1.inc");
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = tokenize("h q;\ncx q[0],q[1];");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[3].text, "cx");
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_EQ(tokens[3].column, 1);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("include \"oops"), QasmError);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  try {
    tokenize("h q; @");
    FAIL() << "expected QasmError";
  } catch (const QasmError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 6);
  }
}

}  // namespace
}  // namespace codar::qasm

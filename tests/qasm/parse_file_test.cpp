#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "codar/qasm/lexer.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/workloads/suite.hpp"

namespace codar::qasm {
namespace {

class ParseFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "codar_qasm_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path write(const std::string& name,
                              const std::string& contents) {
    const std::filesystem::path path = dir_ / name;
    std::ofstream out(path);
    out << contents;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(ParseFileTest, ReadsAndParses) {
  const auto path = write("bell.qasm",
                          "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx "
                          "q[0],q[1];\n");
  const ir::Circuit c = parse_file(path.string());
  EXPECT_EQ(c.num_qubits(), 2);
  EXPECT_EQ(c.size(), 2u);
}

TEST_F(ParseFileTest, MissingFileThrows) {
  EXPECT_THROW(parse_file((dir_ / "nope.qasm").string()),
               std::runtime_error);
}

TEST_F(ParseFileTest, ParseErrorsCarryThroughFromFiles) {
  const auto path = write("bad.qasm", "OPENQASM 2.0;\nqreg q[1];\nboom;\n");
  EXPECT_THROW(parse_file(path.string()), QasmError);
}

TEST_F(ParseFileTest, WholeSuiteRoundTripsThroughDisk) {
  // Write + reread a slice of the benchmark suite: exactly what the
  // export_suite tool and external-compiler comparisons rely on.
  int checked = 0;
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    if (spec.circuit.size() > 400) continue;
    const auto path = write(spec.name + ".qasm", to_qasm(spec.circuit));
    const ir::Circuit reparsed = parse_file(path.string());
    ASSERT_EQ(reparsed.size(), spec.circuit.size()) << spec.name;
    for (std::size_t i = 0; i < reparsed.size(); ++i) {
      ASSERT_EQ(reparsed.gate(i), spec.circuit.gate(i))
          << spec.name << " gate " << i;
    }
    ++checked;
  }
  EXPECT_GE(checked, 40);
}

}  // namespace
}  // namespace codar::qasm

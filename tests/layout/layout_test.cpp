#include "codar/layout/layout.hpp"

#include <gtest/gtest.h>

namespace codar::layout {
namespace {

TEST(Layout, IdentityConstruction) {
  const Layout l(3, 5);
  EXPECT_EQ(l.num_logical(), 3);
  EXPECT_EQ(l.num_physical(), 5);
  for (Qubit q = 0; q < 3; ++q) {
    EXPECT_EQ(l.physical(q), q);
    EXPECT_EQ(l.logical(q), q);
  }
  EXPECT_EQ(l.logical(3), -1);
  EXPECT_EQ(l.logical(4), -1);
  EXPECT_FALSE(l.occupied(4));
}

TEST(Layout, RequiresEnoughPhysicalQubits) {
  EXPECT_THROW(Layout(5, 3), ContractViolation);
}

TEST(Layout, FromL2pValidates) {
  const Layout l = Layout::from_l2p({3, 0, 2}, 4);
  EXPECT_EQ(l.physical(0), 3);
  EXPECT_EQ(l.logical(3), 0);
  EXPECT_EQ(l.logical(1), -1);
  EXPECT_THROW(Layout::from_l2p({0, 0}, 3), ContractViolation);  // not injective
  EXPECT_THROW(Layout::from_l2p({0, 7}, 3), ContractViolation);  // out of range
}

TEST(Layout, SwapPhysicalBothOccupied) {
  Layout l(2, 2);
  l.swap_physical(0, 1);
  EXPECT_EQ(l.physical(0), 1);
  EXPECT_EQ(l.physical(1), 0);
  EXPECT_EQ(l.logical(0), 1);
  EXPECT_EQ(l.logical(1), 0);
}

TEST(Layout, SwapPhysicalWithEmptySlot) {
  Layout l(1, 3);  // logical 0 at physical 0; slots 1, 2 empty
  l.swap_physical(0, 2);
  EXPECT_EQ(l.physical(0), 2);
  EXPECT_EQ(l.logical(0), -1);
  EXPECT_EQ(l.logical(2), 0);
  l.swap_physical(1, 2);
  EXPECT_EQ(l.physical(0), 1);
}

TEST(Layout, SwapIsInvolution) {
  Layout l = Layout::from_l2p({2, 0, 3}, 4);
  const Layout before = l;
  l.swap_physical(1, 3);
  l.swap_physical(1, 3);
  EXPECT_EQ(l, before);
}

TEST(Layout, SwapRejectsBadArguments) {
  Layout l(2, 2);
  EXPECT_THROW(l.swap_physical(0, 0), ContractViolation);
  EXPECT_THROW(l.swap_physical(0, 9), ContractViolation);
}

TEST(RandomLayout, InjectiveAndDeterministic) {
  const Layout a = random_layout(10, 20, 42);
  const Layout b = random_layout(10, 20, 42);
  EXPECT_EQ(a, b);
  std::vector<bool> used(20, false);
  for (Qubit q = 0; q < 10; ++q) {
    const Qubit p = a.physical(q);
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
    used[static_cast<std::size_t>(p)] = true;
    EXPECT_EQ(a.logical(p), q);
  }
  const Layout c = random_layout(10, 20, 43);
  EXPECT_FALSE(a == c);  // overwhelmingly likely with different seeds
}

}  // namespace
}  // namespace codar::layout

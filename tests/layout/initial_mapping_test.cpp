#include "codar/layout/initial_mapping.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::layout {
namespace {

using ir::Circuit;

TEST(InteractionGraph, CountsTwoQubitGates) {
  Circuit c(3);
  c.h(0);          // 1q gates ignored
  c.cx(0, 1);
  c.cx(0, 1);
  c.cz(1, 2);
  const InteractionGraph ig(c);
  EXPECT_EQ(ig.weight(0, 1), 2);
  EXPECT_EQ(ig.weight(1, 0), 2);
  EXPECT_EQ(ig.weight(1, 2), 1);
  EXPECT_EQ(ig.weight(0, 2), 0);
  EXPECT_EQ(ig.degree(1), 3);
  EXPECT_EQ(ig.pairs().size(), 2u);
}

TEST(InteractionGraph, BarriersAreNotInteractions) {
  Circuit c(2);
  const Qubit both[] = {0, 1};
  c.barrier(both);
  const InteractionGraph ig(c);
  EXPECT_EQ(ig.weight(0, 1), 0);
}

TEST(MappingCost, WeightedDistanceSum) {
  const arch::Device dev = arch::linear(4);
  Circuit c(3);
  c.cx(0, 1);
  c.cx(0, 2);
  c.cx(0, 2);
  const InteractionGraph ig(c);
  // Identity layout: w(0,1)*d(0,1) + w(0,2)*d(0,2) = 1*1 + 2*2 = 5.
  EXPECT_EQ(mapping_cost(ig, dev.graph, Layout(3, 4)), 5);
  // Put logical 2 next to logical 0: cost 1*2 + 2*1 = 4.
  const Layout better = Layout::from_l2p({1, 3, 2}, 4);
  EXPECT_EQ(mapping_cost(ig, dev.graph, better), 4);
}

TEST(GreedyInteractionLayout, PlacesHotPairAdjacent) {
  const arch::Device dev = arch::linear(5);
  Circuit c(3);
  for (int i = 0; i < 10; ++i) c.cx(0, 1);
  c.cx(1, 2);
  const Layout layout = greedy_interaction_layout(c, dev.graph);
  EXPECT_EQ(dev.graph.distance(layout.physical(0), layout.physical(1)), 1);
}

TEST(GreedyInteractionLayout, InjectiveAndDeterministic) {
  const arch::Device dev = arch::ibm_q20_tokyo();
  const Circuit c = workloads::qft(10);
  const Layout a = greedy_interaction_layout(c, dev.graph);
  const Layout b = greedy_interaction_layout(c, dev.graph);
  EXPECT_EQ(a, b);
  std::vector<bool> used(20, false);
  for (Qubit q = 0; q < 10; ++q) {
    const Qubit p = a.physical(q);
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
    used[static_cast<std::size_t>(p)] = true;
  }
}

TEST(GreedyInteractionLayout, BeatsWorstCaseOnStarCircuit) {
  // Star interaction: everything talks to qubit 0; greedy should place
  // qubit 0 centrally, beating the identity corner placement on cost.
  const arch::Device dev = arch::grid(3, 3);
  Circuit c(5);
  for (Qubit q = 1; q < 5; ++q) c.cx(0, q);
  const InteractionGraph ig(c);
  const Layout greedy = greedy_interaction_layout(c, dev.graph);
  EXPECT_LE(mapping_cost(ig, dev.graph, greedy),
            mapping_cost(ig, dev.graph, Layout(5, 9)));
  // All four partners adjacent to the hub is achievable on a 3x3 grid.
  EXPECT_EQ(mapping_cost(ig, dev.graph, greedy), 4);
}

TEST(AnnealedLayout, NeverWorseThanItsStart) {
  const arch::Device dev = arch::grid(4, 4);
  const Circuit c = workloads::random_circuit(12, 300, 0.6, 3);
  const InteractionGraph ig(c);
  const Layout start = random_layout(12, 16, 7);
  const Layout annealed = annealed_layout(c, dev.graph, start, 11, 1500);
  EXPECT_LE(mapping_cost(ig, dev.graph, annealed),
            mapping_cost(ig, dev.graph, start));
}

TEST(AnnealedLayout, DeterministicGivenSeed) {
  const arch::Device dev = arch::grid(3, 3);
  const Circuit c = workloads::qft(6);
  const Layout start(6, 9);
  const Layout a = annealed_layout(c, dev.graph, start, 5, 500);
  const Layout b = annealed_layout(c, dev.graph, start, 5, 500);
  EXPECT_EQ(a, b);
}

TEST(AnnealedLayout, ZeroIterationsReturnsStart) {
  const arch::Device dev = arch::linear(4);
  Circuit c(3);
  c.cx(0, 2);
  const Layout start(3, 4);
  EXPECT_EQ(annealed_layout(c, dev.graph, start, 1, 0), start);
}

TEST(AnnealedLayout, ImprovesGreedyOnDenseCircuit) {
  const arch::Device dev = arch::grid(4, 4);
  const Circuit c = workloads::qft(12);
  const InteractionGraph ig(c);
  const Layout greedy = greedy_interaction_layout(c, dev.graph);
  const Layout annealed = annealed_layout(c, dev.graph, greedy, 13, 3000);
  EXPECT_LE(mapping_cost(ig, dev.graph, annealed),
            mapping_cost(ig, dev.graph, greedy));
}

}  // namespace
}  // namespace codar::layout

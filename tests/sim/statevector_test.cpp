#include "codar/sim/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codar/workloads/generators.hpp"

namespace codar::sim {
namespace {

using ir::Circuit;
using ir::Gate;

TEST(Statevector, InitializesToZeroState) {
  const Statevector psi(3);
  EXPECT_EQ(psi.dim(), 8u);
  EXPECT_EQ(psi.amp(0), Complex(1.0));
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(psi.amp(i), Complex(0.0));
  EXPECT_DOUBLE_EQ(psi.norm_squared(), 1.0);
}

TEST(Statevector, HadamardMakesUniformSuperposition) {
  Statevector psi(1);
  psi.apply(Gate::h(0));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(psi.amp(0).real(), inv_sqrt2, 1e-12);
  EXPECT_NEAR(psi.amp(1).real(), inv_sqrt2, 1e-12);
}

TEST(Statevector, BellState) {
  Statevector psi(2);
  psi.apply(Gate::h(0));
  psi.apply(Gate::cx(0, 1));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(psi.amp(0b00)), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(psi.amp(0b11)), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(psi.amp(0b01)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(psi.amp(0b10)), 0.0, 1e-12);
}

TEST(Statevector, XFlipsTargetBit) {
  Statevector psi(2);
  psi.apply(Gate::x(1));
  EXPECT_EQ(psi.amp(0b10), Complex(1.0));
}

TEST(Statevector, CxControlIsFirstOperand) {
  Statevector psi(2);
  psi.apply(Gate::x(0));      // control on
  psi.apply(Gate::cx(0, 1));  // flips target
  EXPECT_NEAR(std::abs(psi.amp(0b11)), 1.0, 1e-12);

  Statevector psi2(2);
  psi2.apply(Gate::x(1));      // target on, control off
  psi2.apply(Gate::cx(0, 1));  // no-op
  EXPECT_NEAR(std::abs(psi2.amp(0b10)), 1.0, 1e-12);
}

TEST(Statevector, SwapExchangesAmplitudes) {
  Statevector psi(2);
  psi.apply(Gate::x(0));
  psi.apply(Gate::swap(0, 1));
  EXPECT_NEAR(std::abs(psi.amp(0b10)), 1.0, 1e-12);
}

TEST(Statevector, CcxIsControlledControlledNot) {
  Statevector psi(3);
  psi.apply(Gate::x(0));
  psi.apply(Gate::x(1));
  psi.apply(Gate::ccx(0, 1, 2));
  EXPECT_NEAR(std::abs(psi.amp(0b111)), 1.0, 1e-12);

  Statevector psi2(3);
  psi2.apply(Gate::x(0));
  psi2.apply(Gate::ccx(0, 1, 2));
  EXPECT_NEAR(std::abs(psi2.amp(0b001)), 1.0, 1e-12);
}

TEST(Statevector, MeasureAndBarrierAreNoOps) {
  Statevector psi(1);
  psi.apply(Gate::h(0));
  const Complex before = psi.amp(1);
  psi.apply(Gate::measure(0));
  const ir::Qubit qs[] = {0};
  psi.apply(Gate::barrier(qs));
  EXPECT_EQ(psi.amp(1), before);
}

TEST(Statevector, ProbabilityOne) {
  Statevector psi(2);
  psi.apply(Gate::h(0));
  EXPECT_NEAR(psi.probability_one(0), 0.5, 1e-12);
  EXPECT_NEAR(psi.probability_one(1), 0.0, 1e-12);
}

TEST(Statevector, InnerProductAndFidelity) {
  Statevector a(1), b(1);
  a.apply(Gate::h(0));
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(a.fidelity(b), 0.5, 1e-12);
  EXPECT_NEAR(a.fidelity(a), 1.0, 1e-12);
}

TEST(Statevector, UnitaryEvolutionPreservesNorm) {
  Statevector psi(4);
  psi.apply(workloads::qft(4));
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-10);
}

TEST(Statevector, QftOfZeroIsUniform) {
  const int n = 4;
  Statevector psi(n);
  psi.apply(workloads::qft(n));
  const double expect_amp = 1.0 / std::sqrt(16.0);
  for (std::size_t i = 0; i < psi.dim(); ++i) {
    EXPECT_NEAR(std::abs(psi.amp(i)), expect_amp, 1e-10) << i;
  }
}

TEST(Statevector, GhzStateHasTwoPeaks) {
  Statevector psi(5);
  psi.apply(workloads::ghz(5));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(psi.amp(0)), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(psi.amp(31)), inv_sqrt2, 1e-12);
}

TEST(Statevector, NonUnitaryMatrixChangesNorm) {
  Statevector psi(1);
  psi.apply(Gate::h(0));
  ir::Matrix damp(2);  // |0><0| projector
  damp.at(0, 0) = 1.0;
  psi.apply_1q_matrix(damp, 0);
  EXPECT_NEAR(psi.norm_squared(), 0.5, 1e-12);
  psi.normalize();
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-12);
}

TEST(Statevector, RejectsOutOfRangeQubit) {
  Statevector psi(2);
  EXPECT_THROW(psi.apply(Gate::h(2)), ContractViolation);
}

}  // namespace
}  // namespace codar::sim

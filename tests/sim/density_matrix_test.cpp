#include "codar/sim/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codar/sim/noise_model.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::sim {
namespace {

using ir::Circuit;
using ir::Gate;

TEST(DensityMatrix, InitializesToZeroProjector) {
  const DensityMatrix rho(2);
  EXPECT_EQ(rho.entry(0, 0), Complex(1.0));
  EXPECT_EQ(rho.entry(1, 1), Complex(0.0));
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, PureEvolutionMatchesStatevector) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  c.cx(1, 2);
  c.h(2);
  DensityMatrix rho(3);
  rho.apply(c);
  Statevector psi(3);
  psi.apply(c);
  // rho == |psi><psi|.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t col = 0; col < 8; ++col) {
      const Complex expected = psi.amp(r) * std::conj(psi.amp(col));
      EXPECT_NEAR(std::abs(rho.entry(r, col) - expected), 0.0, 1e-10);
    }
  }
  EXPECT_NEAR(rho.fidelity(psi), 1.0, 1e-10);
}

TEST(DensityMatrix, TraceIsPreservedByUnitaries) {
  DensityMatrix rho(4);
  rho.apply(workloads::qft(4));
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, DephasingKillsCoherences) {
  DensityMatrix rho(1);
  rho.apply(Gate::h(0));
  EXPECT_NEAR(std::abs(rho.entry(0, 1)), 0.5, 1e-12);
  // Full dephasing (p = 1/2) zeroes off-diagonals, keeps populations.
  rho.apply_kraus_1q(dephasing_kraus(0.5), 0);
  EXPECT_NEAR(std::abs(rho.entry(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.entry(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.entry(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, PartialDephasingShrinksCoherence) {
  DensityMatrix rho(1);
  rho.apply(Gate::h(0));
  rho.apply_kraus_1q(dephasing_kraus(0.25), 0);
  // Coherence scales by (1-2p) = 0.5.
  EXPECT_NEAR(std::abs(rho.entry(0, 1)), 0.25, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho(1);
  rho.apply(Gate::x(0));
  rho.apply_kraus_1q(damping_kraus(0.3), 0);
  EXPECT_NEAR(rho.entry(1, 1).real(), 0.7, 1e-12);
  EXPECT_NEAR(rho.entry(0, 0).real(), 0.3, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  // Ground state is a fixed point.
  DensityMatrix ground(1);
  ground.apply_kraus_1q(damping_kraus(0.9), 0);
  EXPECT_NEAR(ground.entry(0, 0).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, DampingOnlyTouchesItsQubit) {
  DensityMatrix rho(2);
  rho.apply(Gate::x(0));
  rho.apply(Gate::x(1));
  rho.apply_kraus_1q(damping_kraus(1.0), 0);
  // Qubit 0 decayed to |0>, qubit 1 stays |1>: state |10> (index 2).
  EXPECT_NEAR(rho.entry(2, 2).real(), 1.0, 1e-12);
  EXPECT_NEAR(rho.probability_one(1), 1.0, 1e-12);
  EXPECT_NEAR(rho.probability_one(0), 0.0, 1e-12);
}

TEST(DensityMatrix, FidelityAgainstOrthogonalStateIsZero) {
  DensityMatrix rho(1);  // |0><0|
  Statevector one(1);
  one.apply(Gate::x(0));
  EXPECT_NEAR(rho.fidelity(one), 0.0, 1e-12);
}

TEST(DensityMatrix, KrausChannelIsTracePreservingOnRandomState) {
  DensityMatrix rho(2);
  rho.apply(workloads::random_circuit(2, 30, 0.4, 5));
  rho.apply_kraus_1q(dephasing_kraus(0.17), 0);
  rho.apply_kraus_1q(damping_kraus(0.23), 1);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, MixedStateFidelityBetweenZeroAndOne) {
  DensityMatrix rho(1);
  rho.apply(Gate::h(0));
  rho.apply_kraus_1q(dephasing_kraus(0.5), 0);  // fully mixed in X basis
  Statevector plus(1);
  plus.apply(Gate::h(0));
  const double f = rho.fidelity(plus);
  EXPECT_GT(f, 0.45);
  EXPECT_LT(f, 0.55);
}

}  // namespace
}  // namespace codar::sim

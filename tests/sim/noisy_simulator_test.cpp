#include "codar/sim/noisy_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codar/workloads/generators.hpp"

namespace codar::sim {
namespace {

using arch::DurationMap;
using ir::Circuit;

TEST(NoiseParams, ProbabilitiesFollowExponentials) {
  const NoiseParams p{100.0, 200.0};
  EXPECT_NEAR(p.damping_prob(0.0), 0.0, 1e-12);
  EXPECT_NEAR(p.damping_prob(100.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(p.dephasing_prob(200.0), 0.5 * (1.0 - std::exp(-1.0)), 1e-12);
  // Infinite times disable the channel.
  const NoiseParams off;
  EXPECT_EQ(off.damping_prob(1e6), 0.0);
  EXPECT_EQ(off.dephasing_prob(1e6), 0.0);
}

TEST(NoiseParams, RegimeFactories) {
  const NoiseParams deph = NoiseParams::dephasing_dominant(50.0);
  EXPECT_TRUE(std::isinf(deph.t1));
  EXPECT_DOUBLE_EQ(deph.t2, 50.0);
  const NoiseParams damp = NoiseParams::damping_dominant(70.0);
  EXPECT_TRUE(std::isinf(damp.t2));
  EXPECT_DOUBLE_EQ(damp.t1, 70.0);
}

TEST(NoisySimulator, NoNoiseGivesUnitFidelity) {
  const Circuit c = workloads::ghz(3);
  const double f =
      noisy_fidelity_density(c, 3, DurationMap(), NoiseParams{});
  EXPECT_NEAR(f, 1.0, 1e-10);
}

TEST(NoisySimulator, FidelityDecreasesWithNoise) {
  const Circuit c = workloads::ghz(4);
  const DurationMap durations;
  const double strong = noisy_fidelity_density(
      c, 4, durations, NoiseParams::dephasing_dominant(10.0));
  const double weak = noisy_fidelity_density(
      c, 4, durations, NoiseParams::dephasing_dominant(1000.0));
  EXPECT_LT(strong, weak);
  EXPECT_GT(weak, 0.9);
  EXPECT_GT(strong, 0.0);
  EXPECT_LT(strong, 0.9);
}

TEST(NoisySimulator, LongerCircuitsLoseMoreFidelity) {
  // Same logical content, one artificially serialized with idle qubits:
  // time-based decoherence must punish the longer schedule.
  Circuit fast(2, "fast");
  fast.h(0);
  fast.cx(0, 1);
  Circuit slow(2, "slow");
  slow.h(0);
  for (int i = 0; i < 6; ++i) {
    slow.x(1);
    slow.x(1);  // busy-wait pairs of X: identity, but takes time
  }
  slow.cx(0, 1);
  const NoiseParams noise = NoiseParams::dephasing_dominant(40.0);
  const double f_fast = noisy_fidelity_density(fast, 2, DurationMap(), noise);
  const double f_slow = noisy_fidelity_density(slow, 2, DurationMap(), noise);
  EXPECT_GT(f_fast, f_slow);
}

TEST(NoisySimulator, DampingRegimeDecaysTowardGround) {
  // Excite qubit 0, then stretch the schedule with gates on qubit 1 only:
  // qubit 0 idles in |1> and must decay over the trailing makespan.
  Circuit c(2);
  c.x(0);
  for (int i = 0; i < 20; ++i) c.t(1);
  const DensityMatrix rho = run_noisy_density(
      c, 2, DurationMap(), NoiseParams::damping_dominant(10.0));
  // ~19 idle cycles at T1 = 10: population ~ exp(-1.9) ~ 0.15.
  EXPECT_LT(rho.probability_one(0), 0.25);
  EXPECT_GT(rho.probability_one(0), 0.05);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(NoisySimulator, TrajectoryAveragesApproachDensityResult) {
  const Circuit c = workloads::ghz(3);
  const DurationMap durations;
  const NoiseParams noise{80.0, 80.0};
  const double exact = noisy_fidelity_density(c, 3, durations, noise);
  const double sampled =
      noisy_fidelity_trajectories(c, 3, durations, noise, 600, 1234);
  EXPECT_NEAR(sampled, exact, 0.08);
}

TEST(NoisySimulator, TrajectoriesAreSeedDeterministic) {
  const Circuit c = workloads::ghz(3);
  const NoiseParams noise{30.0, 30.0};
  const Statevector a = run_noisy_trajectory(c, 3, DurationMap(), noise, 7);
  const Statevector b = run_noisy_trajectory(c, 3, DurationMap(), noise, 7);
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_EQ(a.amp(i), b.amp(i));
  }
}

TEST(NoisySimulator, TrajectoryStatesStayNormalized) {
  const Circuit c = workloads::random_circuit(4, 60, 0.5, 3);
  const Statevector psi = run_noisy_trajectory(
      c, 4, DurationMap(), NoiseParams{25.0, 25.0}, 99);
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-9);
}

TEST(NoisySimulator, WiderRegisterThanCircuitIsAllowed) {
  const Circuit c = workloads::ghz(3);
  const double f = noisy_fidelity_density(
      c, 5, DurationMap(), NoiseParams::dephasing_dominant(500.0));
  EXPECT_GT(f, 0.8);
  EXPECT_LE(f, 1.0 + 1e-12);
}

}  // namespace
}  // namespace codar::sim

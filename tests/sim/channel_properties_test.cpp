#include <gtest/gtest.h>

#include <cmath>

#include "codar/sim/noisy_simulator.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::sim {
namespace {

using ir::Gate;

// Physics property tests of the noise channels: Kraus completeness,
// channel composition laws, and trajectory-vs-exact agreement sweeps.

TEST(ChannelProperties, KrausCompleteness) {
  // Σ K_i† K_i = I for both channels across the parameter range.
  for (const double p : {0.0, 0.1, 0.37, 0.5, 0.9, 1.0}) {
    for (const auto& kraus : {dephasing_kraus(p), damping_kraus(p)}) {
      ir::Matrix sum(2);
      for (const ir::Matrix& k : kraus) {
        sum = sum + (k.dagger() * k);
      }
      EXPECT_LT((sum - ir::Matrix::identity(2)).max_abs(), 1e-12)
          << "p=" << p;
    }
  }
}

TEST(ChannelProperties, DephasingComposesLikeElapsedTime) {
  // Applying dephasing for t1 then t2 must equal one application for
  // t1 + t2 (the channel family is a semigroup in elapsed time).
  const NoiseParams noise = NoiseParams::dephasing_dominant(50.0);
  DensityMatrix split(1);
  split.apply(Gate::h(0));
  split.apply_kraus_1q(dephasing_kraus(noise.dephasing_prob(12.0)), 0);
  split.apply_kraus_1q(dephasing_kraus(noise.dephasing_prob(30.0)), 0);
  DensityMatrix joint(1);
  joint.apply(Gate::h(0));
  joint.apply_kraus_1q(dephasing_kraus(noise.dephasing_prob(42.0)), 0);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(std::abs(split.entry(r, c) - joint.entry(r, c)), 0.0,
                  1e-12);
    }
  }
}

TEST(ChannelProperties, DampingComposesLikeElapsedTime) {
  const NoiseParams noise = NoiseParams::damping_dominant(40.0);
  DensityMatrix split(1);
  split.apply(Gate::x(0));
  split.apply_kraus_1q(damping_kraus(noise.damping_prob(8.0)), 0);
  split.apply_kraus_1q(damping_kraus(noise.damping_prob(22.0)), 0);
  DensityMatrix joint(1);
  joint.apply(Gate::x(0));
  joint.apply_kraus_1q(damping_kraus(noise.damping_prob(30.0)), 0);
  EXPECT_NEAR(split.probability_one(0), joint.probability_one(0), 1e-12);
  EXPECT_NEAR(split.probability_one(0), std::exp(-30.0 / 40.0), 1e-12);
}

TEST(ChannelProperties, DephasingFixesZBasisStates) {
  // Computational basis states are immune to pure dephasing.
  DensityMatrix rho(2);
  rho.apply(Gate::x(1));
  rho.apply_kraus_1q(dephasing_kraus(0.5), 0);
  rho.apply_kraus_1q(dephasing_kraus(0.5), 1);
  EXPECT_NEAR(rho.probability_one(1), 1.0, 1e-12);
  EXPECT_NEAR(rho.probability_one(0), 0.0, 1e-12);
}

TEST(ChannelProperties, FullDampingResetsToGround) {
  DensityMatrix rho(1);
  rho.apply(Gate::h(0));
  rho.apply_kraus_1q(damping_kraus(1.0), 0);
  EXPECT_NEAR(rho.probability_one(0), 0.0, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

/// Trajectory-vs-exact agreement over a grid of noise strengths.
struct SweepCase {
  double t1;
  double t2;
};

class TrajectoryAgreement : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TrajectoryAgreement, MatchesDensityMatrixWithinSamplingError) {
  const SweepCase& tc = GetParam();
  const NoiseParams noise{tc.t1, tc.t2};
  const ir::Circuit c = workloads::ghz(3);
  const arch::DurationMap durations;
  const double exact = noisy_fidelity_density(c, 3, durations, noise);
  const double sampled =
      noisy_fidelity_trajectories(c, 3, durations, noise, 800, 99);
  EXPECT_NEAR(sampled, exact, 0.07)
      << "T1=" << tc.t1 << " T2=" << tc.t2;
}

INSTANTIATE_TEST_SUITE_P(
    NoiseGrid, TrajectoryAgreement,
    ::testing::Values(SweepCase{30.0, 1e18}, SweepCase{1e18, 30.0},
                      SweepCase{60.0, 60.0}, SweepCase{150.0, 40.0},
                      SweepCase{40.0, 150.0}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return "t1_" + std::to_string(static_cast<int>(
                         std::min(param_info.param.t1, 999.0))) +
             "_t2_" + std::to_string(static_cast<int>(
                          std::min(param_info.param.t2, 999.0)));
    });

}  // namespace
}  // namespace codar::sim
